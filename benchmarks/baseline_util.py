"""Shared baseline loading for the ``check_*_regression.py`` gates.

Every gate compares a fresh ``benchmarks/results/*.json`` against a
tracked ``benchmarks/*.json`` baseline.  When either file is missing or
malformed (a half-written results file from an interrupted bench, a bad
merge of the tracked baseline), the gates used to die with a raw
``FileNotFoundError``/``JSONDecodeError`` traceback — technically a CI
failure, but one that reads like a gate bug instead of what it is: a
file that needs regenerating.  :func:`load_json` turns both cases into
a one-line actionable error naming the file and the command that
rebuilds it (see ``docs/reproduction.md``), and exits nonzero.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def load_json(path: Path, regenerate: str) -> dict:
    """Parse ``path`` as JSON, or exit 2 with a one-line fix-it error.

    ``regenerate`` is the shell command that recreates the file; it is
    embedded in the error so a CI log (or a fresh checkout) is
    self-explanatory without opening this repo's docs.
    """
    try:
        text = path.read_text()
    except OSError as err:
        reason = err.strerror or err.__class__.__name__
        _fail(f"{path}: cannot read baseline/results file ({reason}) — "
              f"regenerate with: {regenerate}")
    try:
        return json.loads(text)
    except json.JSONDecodeError as err:
        _fail(f"{path}: malformed JSON (line {err.lineno}: {err.msg}) — "
              f"regenerate with: {regenerate}")


def load_pair(baseline_path: Path, fresh_path: Path) -> tuple[dict, dict]:
    """Load ``(baseline, fresh)`` for one gate, deriving the regeneration
    commands from the conventional ``BENCH_<name>.json`` ↔
    ``bench_<name>.py`` naming every bench in this directory follows.
    """
    stem = baseline_path.name.removeprefix("BENCH_").removesuffix(".json")
    bench = f"PYTHONPATH=src python -m pytest -q benchmarks/bench_{stem}.py"
    baseline = load_json(
        baseline_path,
        f"{bench} && cp benchmarks/results/{baseline_path.name} benchmarks/")
    fresh = load_json(fresh_path, bench)
    return baseline, fresh


def _fail(message: str):
    print(message, file=sys.stderr)
    raise SystemExit(2)
