"""Fleet at scale: 128/512 *executed* nodes at near-constant per-node cost.

PR 3 proved the community claim with 26 executed nodes; this bench
proves the scaling story that makes large executed outbreaks affordable
on one machine:

- **Golden-image COW forking** — consumers share one booted image per
  (app, layout); private bytes accrue only for pages a node actually
  writes, so fleet checkpoint memory grows with the *touched* working
  set, not with N.  Asserted: unique page bytes at N=512 grow
  sub-linearly versus N=128 (4x the nodes, well under 4x the bytes).
- **Lazy materialization** — a contained outbreak (immunity freezes the
  epidemic) touches a bounded set of nodes; the rest never build a
  Sweeper stack at all.  Asserted: untouched nodes exist at N=512.
- **Sharded scheduler + indexed bus** — event order is pinned by the
  regression gate (identical trajectory fields), so the structures are
  proven order-preserving, not just fast.

The second test runs the ROADMAP's executed-fleet α-grid sweep: small-N
fleets across the producer-ratio grid, overlaid against the ODE curves
(Figure 6's axes, executed instead of integrated) and matched exactly
against seeded Gillespie runs.

Results go to ``benchmarks/results/BENCH_fleet_scale.json`` (scratch);
the *recorded* baseline is tracked at
``benchmarks/BENCH_fleet_scale.json`` and
``check_fleet_scale_regression.py`` fails CI if any seed-deterministic
trajectory quantity drifts.  Wall-clock and memory-byte fields are
reported but never gated (memory is asserted sub-linear here instead).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from repro.worm.fleet import FleetConfig, run_fleet

from conftest import RESULTS_DIR, report

#: Fleet sizes for the scale runs (vulnerable httpd populations).
SCALE_NS = (128, 512)
#: Executed-vs-ODE band for one small-N realization per α point: the
#: continuum limit is compared multiplicatively (branching noise at
#: N=64 is large — the fig6 stochastic cross-check uses the same form).
ODE_RATIO_BAND = 6.0
ODE_RATIO_FLOOR = 0.1
#: 4x the nodes must cost well under 4x the unique page bytes.
SUBLINEAR_FACTOR = 3.0

#: α grid for the executed Figure-6-style sweep (producers out of 64).
SWEEP_POPULATION = 64
SWEEP_PRODUCERS = (2, 4, 8, 16)

#: Worker counts for the speedup-vs-cores curve (0 = in-process).
PARALLEL_WORKERS = (0, 1, 2, 4)
#: Wall-clock speedup the 4-worker run must reach — asserted only on
#: hosts that actually have >= 4 cores (the curve is recorded either
#: way; a 1-core CI box cannot physically speed up and the honest
#: number is the record).
PARALLEL_SPEEDUP_MIN = 2.0
PARALLEL_SPEEDUP_CORES = 4

#: Hybrid tier: executed core embedded in a modeled halo (§6 at the
#: paper's internet scale — 10⁶ total hosts, 10³ of them executed).
HYBRID_EXECUTED = 1000
HYBRID_PRODUCERS = 64
HYBRID_HALO = 1_000_000

#: Result fields that legitimately differ across worker topologies.
TOPOLOGY_FIELDS = {"wall_seconds", "aggregate_insns_per_second",
                   "memory", "workers"}


def _parallel_config() -> FleetConfig:
    """A benign-heavy contained outbreak: guest execution (the
    parallelizable part) dominates the wall clock, which is what the
    speedup curve is supposed to measure."""
    return FleetConfig(seed=7, vulnerable_nodes=512, producers=32,
                       extra_apps=(), beta=0.6, benign_rate=0.8,
                       gamma2=3.0, horizon=60.0, post_immunity_slack=4.0)


def _hybrid_config() -> FleetConfig:
    return FleetConfig(seed=13, vulnerable_nodes=HYBRID_EXECUTED,
                       producers=HYBRID_PRODUCERS, extra_apps=(),
                       beta=0.4, benign_rate=0.005, gamma2=3.0,
                       horizon=120.0, post_immunity_slack=4.0,
                       halo_hosts=HYBRID_HALO, max_contacts=250_000)


def _scale_config(n: int) -> FleetConfig:
    """A contained outbreak: α is fixed at 1/16 so t₀ (and hence the
    epidemic's frozen size) is comparable across N, and benign traffic
    is sparse enough that untouched consumers stay unmaterialized."""
    return FleetConfig(seed=7, vulnerable_nodes=n, producers=n // 16,
                       extra_apps=(), beta=0.6, benign_rate=0.01,
                       gamma2=3.0, horizon=300.0, post_immunity_slack=4.0)


def _sweep_config(producers: int) -> FleetConfig:
    return FleetConfig(seed=11, vulnerable_nodes=SWEEP_POPULATION,
                       producers=producers, extra_apps=(), beta=0.6,
                       benign_rate=0.01, gamma2=3.0, horizon=300.0,
                       post_immunity_slack=4.0)


def _trajectory_fields(result) -> dict:
    """The seed-deterministic aggregates the regression gate pins
    (node-level reports stay in BENCH_fleet.json's 26-node record)."""
    return {
        "population": result.population,
        "producers": result.producers,
        "total_nodes": result.total_nodes,
        "t0": result.t0,
        "availability": result.availability,
        "gamma_measured": result.gamma_measured,
        "infected_final": result.infected_final,
        "infection_ratio": result.infection_ratio,
        "contacts": result.contacts,
        "contacts_to_producers": result.contacts_to_producers,
        "contacts_blocked": result.contacts_blocked,
        "contacts_wasted": result.contacts_wasted,
        "benign_sent": result.benign_sent,
        "bundles_published": result.bundles_published,
        "nodes_materialized": result.nodes_materialized,
        "golden": result.golden,
        "gillespie": result.gillespie,
    }


def test_fleet_scale():
    runs = {}
    lines = ["FLEET AT SCALE — executed outbreaks, golden-fork COW "
             "memory, lazy boot", ""]
    for n in SCALE_NS:
        config = _scale_config(n)
        wall_start = time.perf_counter()
        result = run_fleet(config)
        wall = time.perf_counter() - wall_start

        # -- the epidemic executed end to end --------------------------
        assert result.t0 is not None
        assert result.bundles_published >= 1
        assert result.contacts_blocked >= 1
        assert result.infected_final == result.gillespie["final_infected"]
        assert abs(result.t0 - result.gillespie["t0"]) < 1e-9

        # -- lazy boot: a contained outbreak leaves nodes untouched ----
        assert result.nodes_materialized < result.total_nodes, \
            "every node materialized; outbreak not contained"
        # -- golden forking: consumers share boot images ---------------
        assert result.golden["forks"] >= \
            result.nodes_materialized - result.golden["images"] - 1

        runs[n] = {"wall_seconds": wall, "memory": result.memory,
                   **_trajectory_fields(result)}
        m = result.memory
        lines += [
            f"N={n:>4}  wall {wall:6.2f} s   t0 {result.t0:7.3f} s   "
            f"infected {result.infected_final} "
            f"({result.infection_ratio:.0%})   "
            f"blocked {result.contacts_blocked}",
            f"        materialized {result.nodes_materialized}/"
            f"{result.total_nodes} nodes   golden forks "
            f"{result.golden['forks']} off {result.golden['images']} "
            f"images",
            f"        page bytes: {m['page_bytes_unique'] / 1e6:.2f} MB "
            f"unique vs {m['page_bytes_per_node_sum'] / 1e6:.2f} MB "
            f"per-node sum (sharing x{m['sharing_factor']:.1f})",
        ]

    # -- checkpoint memory is sub-linear in N --------------------------
    small, large = runs[SCALE_NS[0]], runs[SCALE_NS[-1]]
    growth = SCALE_NS[-1] / SCALE_NS[0]
    byte_growth = (large["memory"]["page_bytes_unique"]
                   / small["memory"]["page_bytes_unique"])
    lines += ["", f"unique-page growth N x{growth:.0f} -> bytes "
              f"x{byte_growth:.2f} (sub-linear bound x{SUBLINEAR_FACTOR})"]
    assert byte_growth < SUBLINEAR_FACTOR, \
        f"checkpoint memory grew x{byte_growth:.2f} for x{growth:.0f} nodes"

    report("fleet_scale", lines)

    payload = {
        "unit": "virtual_seconds_ratios_and_bytes",
        "config": {
            "seed": 7, "beta": 0.6, "benign_rate": 0.01, "gamma2": 3.0,
            "alpha": "1/16", "ns": list(SCALE_NS),
            "sublinear_factor": SUBLINEAR_FACTOR,
        },
        "results": {str(n): runs[n] for n in SCALE_NS},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_fleet_scale.json"
    existing = json.loads(path.read_text()) if path.exists() else {}
    existing.update(payload)
    path.write_text(json.dumps(existing, indent=2) + "\n")


def test_fleet_alpha_sweep():
    """Figures 6-8, executed: infection ratio vs deployment ratio α from
    real fleets, overlaid on the ODE with the *measured* γ plugged in
    and matched exactly against the seeded Gillespie realization."""
    points = []
    for producers in SWEEP_PRODUCERS:
        result = run_fleet(_sweep_config(producers))
        assert result.gillespie is not None
        assert abs(result.t0 - result.gillespie["t0"]) < 1e-9
        assert result.infected_final == result.gillespie["final_infected"]
        point = {
            "alpha": producers / SWEEP_POPULATION,
            "producers": producers,
            "executed_ratio": result.infection_ratio,
            "gillespie_ratio": result.gillespie["infection_ratio"],
            "gamma_measured": result.gamma_measured,
            "t0": result.t0,
            "infected_final": result.infected_final,
            "ode_ratio": (result.model["infection_ratio"]
                          if result.model else None),
        }
        if point["ode_ratio"] is not None:
            ode = point["ode_ratio"]
            assert point["executed_ratio"] \
                >= ode / ODE_RATIO_BAND - ODE_RATIO_FLOOR
            assert point["executed_ratio"] \
                <= min(1.0, ode * ODE_RATIO_BAND + ODE_RATIO_FLOOR)
        points.append(point)

    # More producers -> earlier t0: the α axis works as the model says.
    t0s = [p["t0"] for p in points]
    assert t0s == sorted(t0s, reverse=True)

    lines = [f"EXECUTED α-GRID SWEEP — N={SWEEP_POPULATION} real nodes "
             "per point, overlaid on ODE (Fig. 6 axes)", "",
             "alpha     t0        gamma     executed  gillespie ode"]
    for p in points:
        ode = "n/a" if p["ode_ratio"] is None else f"{p['ode_ratio']:.3f}"
        lines.append(
            f"{p['alpha']:<9.4f} {p['t0']:<9.3f} "
            f"{p['gamma_measured']:<9.3f} {p['executed_ratio']:<9.3f} "
            f"{p['gillespie_ratio']:<9.3f} {ode}")
    report("fleet_alpha_sweep", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_fleet_scale.json"
    existing = json.loads(path.read_text()) if path.exists() else {}
    existing["alpha_sweep"] = {
        "population": SWEEP_POPULATION,
        "seed": 11,
        "ode_ratio_band": ODE_RATIO_BAND,
        "points": points,
    }
    path.write_text(json.dumps(existing, indent=2) + "\n")


def test_fleet_parallel_speedup():
    """Multi-core execution: the speedup-vs-workers curve on a
    benign-heavy N=512 outbreak, with the trajectory asserted
    bit-identical at every worker count.

    The determinism assertion is unconditional — it is the tentpole
    invariant.  The speedup assertion is conditional on the host
    actually having >= PARALLEL_SPEEDUP_CORES cores: the honest curve
    (plus ``cores_available``) is recorded either way, and a 1-core
    container records its ~1.0x without failing CI."""
    cores = len(os.sched_getaffinity(0))
    walls: dict[str, float] = {}
    reference = None
    trajectory = None
    for workers in PARALLEL_WORKERS:
        config = dataclasses.replace(_parallel_config(), workers=workers)
        wall_start = time.perf_counter()
        result = run_fleet(config)
        walls[str(workers)] = time.perf_counter() - wall_start
        data = result.to_dict()
        for key in TOPOLOGY_FIELDS:
            data.pop(key, None)
        if reference is None:
            reference, trajectory = data, result
        else:
            assert data == reference, \
                f"workers={workers} diverged from the sequential trajectory"
    speedup = walls["1"] / walls["4"]
    lines = ["FLEET PARALLEL SPEEDUP — N=512 benign-heavy, trajectory "
             "bit-identical at every worker count", "",
             f"cores available: {cores}",
             f"t0 {trajectory.t0:.3f} s   infected "
             f"{trajectory.infected_final}   benign {trajectory.benign_sent}"]
    lines += [f"workers={w}  wall {walls[str(w)]:6.2f} s"
              for w in PARALLEL_WORKERS]
    lines += ["", f"speedup (1 -> 4 workers): x{speedup:.2f}"
              f"  (asserted >= x{PARALLEL_SPEEDUP_MIN} when cores >= "
              f"{PARALLEL_SPEEDUP_CORES})"]
    report("fleet_parallel", lines)
    if cores >= PARALLEL_SPEEDUP_CORES:
        assert speedup >= PARALLEL_SPEEDUP_MIN, \
            f"4-worker speedup x{speedup:.2f} on a {cores}-core host"

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_fleet_scale.json"
    existing = json.loads(path.read_text()) if path.exists() else {}
    existing["parallel"] = {
        "config": {"seed": 7, "n": 512, "producers": 32, "beta": 0.6,
                   "benign_rate": 0.8, "horizon": 60.0,
                   "workers": list(PARALLEL_WORKERS)},
        "cores_available": cores,
        "walls": walls,
        "speedup": speedup,
        "trajectory": {
            "t0": trajectory.t0,
            "infected_final": trajectory.infected_final,
            "contacts": trajectory.contacts,
            "benign_sent": trajectory.benign_sent,
            "bundles_published": trajectory.bundles_published,
        },
    }
    path.write_text(json.dumps(existing, indent=2) + "\n")


def test_fleet_hybrid_internet_scale():
    """The Gillespie halo at the paper's scale: 1 000 executed Sweeper
    nodes embedded in a modeled population of 10⁶ hosts, contacts
    crossing the core↔halo boundary in both directions, conservation
    asserted per contact and the whole trajectory matched exactly
    against the aggregate Gillespie process over the combined
    population."""
    config = _hybrid_config()
    wall_start = time.perf_counter()
    result = run_fleet(config)
    wall = time.perf_counter() - wall_start

    halo = result.halo
    assert halo["conservation"]["ok"]
    assert result.population == HYBRID_EXECUTED + HYBRID_HALO
    # Infections and crossings happen in both tiers/directions.
    assert halo["core_infected"] > 0 and halo["infected_final"] > 0
    assert halo["boundary"]["core_to_halo"] > 0
    assert halo["boundary"]["halo_to_core"] > 0
    # Community immunity reached both tiers.
    assert result.contacts_blocked > 0 and halo["blocked"] > 0
    # The hybrid is the matched-seed Gillespie realization exactly.
    assert result.gillespie is not None
    assert abs(result.t0 - result.gillespie["t0"]) < 1e-9
    assert result.infected_final == result.gillespie["final_infected"]

    lines = [
        "FLEET HYBRID — 1 000 executed nodes in a 10⁶-host modeled "
        "population", "",
        f"wall {wall:6.2f} s   contacts {result.contacts}   "
        f"t0 {result.t0:.3f} s   gamma {result.gamma_measured:.3f} s",
        f"infected {result.infected_final} "
        f"({result.infection_ratio:.2%}) = core "
        f"{halo['core_infected']} + halo {halo['infected_final']}",
        f"boundary {halo['boundary']}",
        f"blocked: core {result.contacts_blocked}, halo "
        f"{halo['blocked']}   materialized {result.nodes_materialized}/"
        f"{result.total_nodes}",
        f"gillespie(combined N={result.population}): t0 "
        f"{result.gillespie['t0']:.3f}, infected "
        f"{result.gillespie['final_infected']}  -> exact match",
    ]
    report("fleet_hybrid", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_fleet_scale.json"
    existing = json.loads(path.read_text()) if path.exists() else {}
    existing["hybrid"] = {
        "config": {"seed": 13, "executed": HYBRID_EXECUTED,
                   "producers": HYBRID_PRODUCERS,
                   "halo_hosts": HYBRID_HALO, "beta": 0.4,
                   "benign_rate": 0.005, "max_contacts": 250_000},
        "wall_seconds": wall,
        "t0": result.t0,
        "availability": result.availability,
        "gamma_measured": result.gamma_measured,
        "infected_final": result.infected_final,
        "infection_ratio": result.infection_ratio,
        "contacts": result.contacts,
        "nodes_materialized": result.nodes_materialized,
        "halo": halo,
        "gillespie": result.gillespie,
    }
    path.write_text(json.dumps(existing, indent=2) + "\n")
