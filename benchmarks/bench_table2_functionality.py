"""Table 2: overall Sweeper results — every analysis step on every exploit.

Regenerates the paper's functionality table: for each of the four
exploits, what memory-state analysis, memory-bug detection, input/taint
analysis and dynamic slicing each conclude, plus the VSEFs generated.
The assertions encode the per-row expectations of the paper's Table 2.
"""

import pytest

from conftest import report, run_attack_pipeline

#: Expectation per exploit: (coredump classification fragment,
#: expected membug kinds, expected VSEF kinds).
_EXPECTATIONS = {
    "Apache1": ("stack smashing", {"stack_smash"},
                {"ret_guard", "store_guard"}),
    "Apache2": ("NULL pointer", set(), {"null_check"}),
    "CVS": ("double free", {"double_free", "dangling_write"},
            {"double_free"}),
    "Squid": ("overflow in lib. strcat", {"heap_overflow"},
              {"heap_bounds"}),
}


@pytest.mark.parametrize("name", list(_EXPECTATIONS))
def test_full_pipeline_functionality(benchmark, name):
    classification, membug_kinds, vsef_kinds = _EXPECTATIONS[name]

    def pipeline():
        return run_attack_pipeline(name)

    spec, sweeper = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    record = sweeper.attacks[0]
    outcome = record.outcome
    assert classification in outcome.coredump.classification
    assert {r.kind for r in outcome.membug_reports} >= membug_kinds
    assert {v.kind for v in record.vsefs_installed} >= vsef_kinds
    assert outcome.malicious_msg_ids == [5]
    assert outcome.exploit_input == spec.payload()
    assert outcome.slice_verified
    assert record.recovery is not None and record.recovery.ok


def test_emit_table2(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["TABLE 2 — Overall Sweeper results "
             "(paper Table 2, regenerated)", ""]
    for name in _EXPECTATIONS:
        spec, sweeper = run_attack_pipeline(name)
        record = sweeper.attacks[0]
        outcome = record.outcome
        process = sweeper.process
        lines.append(f"== {name} ({spec.cve}, {spec.bug_type}) ==")
        lines.append(f"  #1 Memory State Analysis: "
                     f"{outcome.coredump.summary()}")
        lines.append(f"     classification: "
                     f"{outcome.coredump.classification}")
        for vsef in outcome.coredump.vsefs:
            lines.append(f"     VSEF: {vsef.note or vsef.describe()}")
        if outcome.membug_reports:
            for bug in outcome.membug_reports:
                lines.append(f"  #2 Memory Bug Detection: "
                             f"{bug.describe(process)}")
        else:
            lines.append("  #2 Memory Bug Detection: no memory bug "
                         "detected")
        taint_summary = outcome.step("input_taint").summary
        lines.append(f"  #3 Input/Taint Analysis: {taint_summary}")
        preview = (outcome.exploit_input or b"")[:48]
        lines.append(f"     isolated input: {preview!r}"
                     f"{'...' if outcome.exploit_input and len(outcome.exploit_input) > 48 else ''}")
        lines.append(f"  #4 Slicing: "
                     f"{'verifies results' if outcome.slice_verified else 'DISAGREES'}")
        lines.append(f"  Recovery: replayed "
                     f"{record.recovery.replayed_messages}, dropped "
                     f"{record.recovery.dropped_messages}, duplicates "
                     f"suppressed {record.recovery.duplicates_suppressed}")
        lines.append("")
    report("table2_functionality", lines)
