"""Emergent ρ < 1: executed layout collisions vs the paper's 2^-b.

The paper's address-space-diversity argument (§3.1, §6) makes a worm's
hijack succeed only on a host whose layout collides with the exploit's
embedded address guess — probability ρ = 2^-entropy_bits per host.  The
fleet executes that: with ``entropy_bits = b`` susceptible consumers
boot *randomized* layouts (one draw per cohort, golden-forked), the
worm payload still carries the reference-layout gadget address, and a
contact owns the host iff the exploit-critical region's slide is
genuinely 0.  Nothing consults ρ; this bench measures it.

Three measurements:

1. **Low entropy, direct CI check** (``b = 3``): stratified cohorts at
   proportional (round-robin) allocation make the raw executed hijack
   ratio over first-contact trials a direct estimator of ρ.  Aggregated
   over seeds it must land inside the binomial 95% CI of 2^-3 — the
   acceptance criterion.
2. **Paper entropy, importance splitting** (``b = 12``): 2^-12 is far
   too rare to hit by luck at fleet size, so the colliding stratum is
   deliberately over-allocated (2 cohorts: half the consumers collide)
   and the per-stratum reweighted estimator ρ̂ = w₀·ĥ₀ + (1-w₀)·ĥ_rest
   (w₀ = 2^-12) recovers the analytic value with stated variance.
   Within a cohort the layout decides the outcome deterministically, so
   the strata are *pure* (ĥ₀ = 1, ĥ_rest = 0): the estimator is exact
   given the design and the stated variance is 0 — all the randomness
   was in the stratum draw, which stratification pins by construction.
   The *raw* ratio is meanwhile wildly biased (≈ 0.5 ≫ 2^-12), which is
   exactly why the reweighting matters.
3. **Plain (iid) sampling fails**: every cohort drawing all slides
   independently at b = 12 has a 2^-12 chance of colliding; across the
   recorded seeds no cohort ever does, so patient zero — who needs a
   collision to exist — cannot be placed and the fleet refuses to run.
   The rare event is unreachable without importance splitting.

Cross-validation gains the ρ parameter: each run's matched-seed
Gillespie realization (``simulate_outbreak`` at ρ = 2^-b) is recorded
next to the executed trajectory.  The two agree loosely, not exactly:
the fleet's randomness is *quenched* (layouts frozen at boot — a
non-colliding node can never be infected, re-contacts replay the same
outcome) while the model's ρ draw is *annealed* (fresh coin per
contact), so executed infection totals sit systematically at or below
the Gillespie run's.  See docs/reproduction.md.

Everything here is seed-deterministic; results go to
``benchmarks/results/BENCH_rho.json`` (scratch) and the recorded
baseline ``benchmarks/BENCH_rho.json`` is gated by
``check_rho_regression.py`` (wall-clock fields excluded).
"""

from __future__ import annotations

import json
import math
import time

import pytest

from repro.worm.fleet import FleetConfig, FleetDivergence, run_fleet

from conftest import RESULTS_DIR, report

#: Aggregation seeds for the low-entropy direct measurement.
LOW_ENTROPY_BITS = 3
LOW_SEEDS = (0, 1, 2, 3, 4, 5)
#: The paper's entropy (ρ = 2^-12, machine/layout.py's default).
PAPER_ENTROPY_BITS = 12
PAPER_SEEDS = (0, 1, 2, 3)
#: Over-allocation for the importance split: 2 cohorts at b = 12 puts
#: half the consumers in the colliding stratum instead of 2^-12 of them.
PAPER_COHORTS = 2
#: iid-sampling demonstration seeds (all fail to place patient zero).
IID_SEEDS = tuple(range(8))

#: Executed vs matched-ρ Gillespie: loose multiplicative band on the
#: aggregate infection ratios (quenched vs annealed randomness, small
#: counts — see module docstring).
GILLESPIE_RATIO_BAND = 2.5


def _rho_config(seed: int, bits: int, sampling: str = "stratified",
                cohorts: int = 0) -> FleetConfig:
    """A contained httpd-only outbreak big enough to accumulate
    first-contact trials: γ₂ = 8 keeps the pre-immunity window open,
    sparse benign traffic keeps untouched consumers unmaterialized."""
    return FleetConfig(seed=seed, vulnerable_nodes=128, producers=8,
                       extra_apps=(), entropy_bits=bits,
                       layout_sampling=sampling, layout_cohorts=cohorts,
                       beta=0.6, benign_rate=0.01, gamma2=8.0,
                       horizon=300.0, post_immunity_slack=4.0)


def _trajectory_fields(result) -> dict:
    """The seed-deterministic aggregates the regression gate pins."""
    return {
        "population": result.population,
        "rho": result.rho,
        "t0": result.t0,
        "availability": result.availability,
        "gamma_measured": result.gamma_measured,
        "infected_final": result.infected_final,
        "infection_ratio": result.infection_ratio,
        "contacts": result.contacts,
        "contacts_blocked": result.contacts_blocked,
        "contacts_faulted": result.contacts_faulted,
        "contacts_wasted": result.contacts_wasted,
        "bundles_published": result.bundles_published,
        "nodes_materialized": result.nodes_materialized,
        "golden_layouts": result.golden["layouts"],
        "layout": result.layout,
        "gillespie": result.gillespie,
    }


#: Records memoized across the pytest entry points and the aggregate
#: writer (each measurement runs once per process).
_RECORDS: dict = {}


def _memo(key, thunk):
    if key not in _RECORDS:
        _RECORDS[key] = thunk()
    return _RECORDS[key]


def _measure_low_entropy() -> dict:
    """b = 3, stratified, proportional allocation: the raw executed
    hijack ratio over aggregated first-contact trials sits inside the
    binomial 95% CI of 2^-3 — the acceptance criterion."""
    p = 2.0 ** -LOW_ENTROPY_BITS
    runs = {}
    trials = hits = 0
    executed_infected = gillespie_infected = 0
    wall_start = time.perf_counter()
    for seed in LOW_SEEDS:
        result = run_fleet(_rho_config(seed, LOW_ENTROPY_BITS))
        layout = result.layout
        assert layout is not None
        assert layout["sampling"] == "stratified"
        assert layout["rho_analytic"] == p
        assert result.rho == p

        # Hijacks land only via executed collisions: every hit is in the
        # colliding stratum, every non-colliding trial faulted clean.
        for cohort in layout["per_cohort"]:
            if not cohort["collides"]:
                assert cohort["hits"] == 0
        assert result.contacts_faulted >= 1

        # Strata are pure (layouts decide deterministically), so any
        # seed whose colliding stratum got a trial reports the design
        # estimator exactly: ρ̂ = w₀·1 + (1-w₀)·0 = 2^-b, variance 0.
        if any(c["collides"] and c["trials"] for c in layout["per_cohort"]):
            assert layout["rho_estimate"] == p
            assert layout["rho_stddev"] == 0.0

        trials += layout["trials"]
        hits += layout["hits"]
        executed_infected += result.infected_final
        gillespie_infected += result.gillespie["final_infected"]
        runs[seed] = _trajectory_fields(result)
    wall = time.perf_counter() - wall_start

    assert trials >= 100, f"too few first-contact trials ({trials})"
    measured = hits / trials
    ci = 1.96 * math.sqrt(p * (1.0 - p) / trials)
    assert abs(measured - p) <= ci, \
        f"measured {measured:.4f} outside 95% CI {p}±{ci:.4f} " \
        f"({hits}/{trials} trials)"

    # Matched-ρ Gillespie agreement: loose multiplicative band on the
    # aggregate (quenched executed layouts vs annealed model draws).
    ratio = executed_infected / gillespie_infected
    assert 1.0 / GILLESPIE_RATIO_BAND <= ratio <= GILLESPIE_RATIO_BAND, \
        f"executed/gillespie infections {executed_infected}/" \
        f"{gillespie_infected} outside x{GILLESPIE_RATIO_BAND} band"

    record = {
        "entropy_bits": LOW_ENTROPY_BITS,
        "rho_analytic": p,
        "seeds": list(LOW_SEEDS),
        "trials": trials,
        "hits": hits,
        "rho_measured": measured,
        "ci95_halfwidth": ci,
        "executed_infected_total": executed_infected,
        "gillespie_infected_total": gillespie_infected,
        "wall_seconds": wall,
        "runs": runs,
    }
    report("bench_rho_low_entropy", [
        f"EMERGENT RHO — b={LOW_ENTROPY_BITS}, stratified, "
        f"{len(LOW_SEEDS)} seeds",
        f"  trials={trials} hits={hits} "
        f"measured={measured:.4f} vs 2^-{LOW_ENTROPY_BITS}={p} "
        f"(95% CI ±{ci:.4f})",
        f"  executed/gillespie infections: "
        f"{executed_infected}/{gillespie_infected}",
    ])
    return record


def _measure_paper_entropy() -> dict:
    """b = 12: the importance-split estimator recovers ρ = 2^-12 from a
    128-node fleet by over-allocating the colliding stratum."""
    w0 = 2.0 ** -PAPER_ENTROPY_BITS
    runs = {}
    n0 = h0 = nr = hr = 0
    trials = hits = 0
    wall_start = time.perf_counter()
    for seed in PAPER_SEEDS:
        result = run_fleet(_rho_config(seed, PAPER_ENTROPY_BITS,
                                       cohorts=PAPER_COHORTS))
        layout = result.layout
        assert layout is not None
        assert layout["cohorts"] == PAPER_COHORTS
        assert result.rho == w0
        # One golden boot per cohort, not per node: randomization did
        # not defeat COW forking.
        assert result.golden["layouts"] <= PAPER_COHORTS + 2
        for cohort in layout["per_cohort"]:
            if cohort["collides"]:
                n0 += cohort["trials"]
                h0 += cohort["hits"]
            else:
                nr += cohort["trials"]
                hr += cohort["hits"]
        trials += layout["trials"]
        hits += layout["hits"]
        # Per-seed estimator, when the rare stratum has trials, is the
        # exact design value (pure strata).
        if any(c["collides"] and c["trials"] for c in layout["per_cohort"]):
            assert layout["rho_estimate"] == w0
            assert layout["rho_stddev"] == 0.0
        runs[seed] = _trajectory_fields(result)
    wall = time.perf_counter() - wall_start

    # The over-allocated design populates the rare stratum heavily.
    assert n0 >= 20, f"colliding stratum underpopulated ({n0} trials)"
    assert h0 == n0, "a colliding-layout hijack failed to land"
    assert hr == 0, "a non-colliding hijack landed"

    estimate = w0 * (h0 / n0) + (1.0 - w0) * ((hr / nr) if nr else 0.0)
    assert estimate == w0
    # The raw ratio shows why reweighting is mandatory: the colliding
    # stratum holds ~half the trials, so raw ≈ 0.5, 3 orders off.
    measured = hits / trials
    assert measured > 100 * w0

    record = {
        "entropy_bits": PAPER_ENTROPY_BITS,
        "rho_analytic": w0,
        "seeds": list(PAPER_SEEDS),
        "cohorts": PAPER_COHORTS,
        "colliding_trials": n0, "colliding_hits": h0,
        "rest_trials": nr, "rest_hits": hr,
        "rho_estimate": estimate,
        "rho_stddev": 0.0,
        "rho_measured_raw": measured,
        "wall_seconds": wall,
        "runs": runs,
    }
    report("bench_rho_paper_entropy", [
        f"IMPORTANCE SPLIT — b={PAPER_ENTROPY_BITS}, "
        f"{PAPER_COHORTS} cohorts, {len(PAPER_SEEDS)} seeds",
        f"  strata: colliding {h0}/{n0}, rest {hr}/{nr}",
        f"  reweighted estimate={estimate!r} == 2^-12={w0!r}; "
        f"raw={measured:.3f} (biased by design, reweighting corrects)",
    ])
    return record


def _measure_iid() -> dict:
    """Plain iid layout sampling at b = 12: no cohort ever collides, so
    patient zero cannot exist and the fleet refuses to run — the
    rare-event problem importance splitting solves."""
    failures = []
    for seed in IID_SEEDS:
        with pytest.raises(FleetDivergence, match="colliding layout"):
            run_fleet(_rho_config(seed, PAPER_ENTROPY_BITS,
                                  sampling="iid", cohorts=8))
        failures.append(seed)
    record = {
        "entropy_bits": PAPER_ENTROPY_BITS,
        "sampling": "iid",
        "seeds": list(IID_SEEDS),
        "patient_zero_impossible": failures,
    }
    report("bench_rho_iid", [
        f"IID SAMPLING — b={PAPER_ENTROPY_BITS}: patient zero "
        f"impossible in {len(failures)}/{len(IID_SEEDS)} seeds "
        f"(no cohort drew the 2^-12 colliding layout)",
    ])
    return record


def test_rho_low_entropy_within_ci():
    _memo("low_entropy", _measure_low_entropy)


def test_rho_paper_entropy_importance_split():
    _memo("paper_entropy", _measure_paper_entropy)


def test_rho_iid_sampling_misses_rare_stratum():
    _memo("iid", _measure_iid)


def test_write_results():
    """Aggregate the three measurements into BENCH_rho.json."""
    payload = {
        "low_entropy": _memo("low_entropy", _measure_low_entropy),
        "paper_entropy": _memo("paper_entropy", _measure_paper_entropy),
        "iid": _memo("iid", _measure_iid),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_rho.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    test_write_results()
