"""Figure 4: throughput overhead at varying checkpoint intervals (Squid).

The paper: ~0.925% at the default 200 ms interval, ~5% at the fastest
30 ms interval.  Our curve emerges from the same mechanism (fork-style
per-page checkpoint cost + deferred COW copies competing with request
service work); the asserted shape is the paper's claim: overhead falls
monotonically with the interval, ≲1% at 200 ms and around 5% at 30 ms.
"""

import pytest

from repro.apps.squidp import build_squidp
from repro.apps.workload import benign_requests, measure_throughput
from repro.runtime.sweeper import SweeperConfig

from conftest import report

INTERVALS_MS = (20, 30, 50, 100, 150, 200)
#: Extra service work per request (cache lookups / disk the real Squid
#: does); keeps the virtual CPU saturated — see workload docstring.
WORK_CYCLES = 20_000
REQUESTS = 150

#: Paper's reading of Figure 4 (fraction overhead).
PAPER_POINTS = {30: 0.05, 200: 0.00925}


def _overhead_curve() -> dict[int, float]:
    requests = benign_requests("squidp", REQUESTS)
    baseline = measure_throughput(build_squidp(), requests,
                                  protected=False,
                                  per_request_work_cycles=WORK_CYCLES)
    curve = {}
    for interval in INTERVALS_MS:
        config = SweeperConfig(seed=0, checkpoint_interval_ms=interval)
        protected = measure_throughput(build_squidp(), requests,
                                       config=config,
                                       per_request_work_cycles=WORK_CYCLES)
        curve[interval] = 1.0 - protected.mbps / baseline.mbps
    return curve


@pytest.fixture(scope="module")
def curve():
    return _overhead_curve()


def test_fig4_curve(benchmark, curve):
    """Benchmark one protected run; assert the Figure 4 shape."""
    requests = benign_requests("squidp", 40)

    def one_protected_run():
        return measure_throughput(
            build_squidp(), requests,
            config=SweeperConfig(seed=0, checkpoint_interval_ms=200.0),
            per_request_work_cycles=WORK_CYCLES)

    benchmark.pedantic(one_protected_run, rounds=1, iterations=1)
    overheads = [curve[interval] for interval in INTERVALS_MS]
    assert overheads == sorted(overheads, reverse=True), \
        "overhead must fall as the interval grows"
    assert curve[200] < 0.015, "default interval must be ~1% or less"
    assert 0.02 < curve[30] < 0.10, "30 ms interval should be around 5%"


def test_emit_fig4(benchmark, curve):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["FIGURE 4 — Overhead vs checkpoint interval, Squid "
             "(fraction of throughput)", ""]
    header = f"{'interval (ms)':>14s} {'paper':>8s} {'ours':>9s}  curve"
    lines.append(header)
    lines.append("-" * len(header))
    for interval in INTERVALS_MS:
        paper = PAPER_POINTS.get(interval)
        paper_text = f"{paper:8.3%}" if paper is not None else "       -"
        bar = "#" * int(curve[interval] * 400)
        lines.append(f"{interval:>14d} {paper_text} "
                     f"{curve[interval]:>9.3%}  {bar}")
    report("fig4_checkpoint_overhead", lines)
