"""Figure 7: hit-list worm (β = 1000) with proactive protection ρ = 2⁻¹².

Includes the abstract's headline claim: a hit-list worm that would
otherwise infect every vulnerable host in under a second is contained
below 5% at the measured end-to-end γ of ~5 s.
"""

import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.worm.community import HITLIST_1K, figure7_data
from repro.worm.si_model import WormParams, _derivatives

from conftest import report


@pytest.fixture(scope="module")
def grid():
    return figure7_data()


def test_unprotected_hitlist_saturates_subsecond(benchmark):
    """The premise: without defense, beta=1000 owns everyone in <1 s."""
    params = WormParams(beta=1000, population=100_000, producer_ratio=0.0,
                        gamma=0, rho=1.0)

    def saturation():
        solution = solve_ivp(_derivatives(params), (0, 1.0), (1.0, 0.0),
                             t_eval=np.array([0.5, 1.0]), rtol=1e-8,
                             atol=1e-10)
        return solution.y[0][-1] / params.population

    ratio = benchmark.pedantic(saturation, rounds=1, iterations=1)
    assert ratio > 0.99


def test_fig7_paper_points(benchmark, grid):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # gamma=5 at alpha=1e-4: "negligible (less than 1%)"
    assert grid[5][0.0001] < 0.01
    # the caption's knee: "gamma = 50 is much worse than gamma = 30"
    assert grid[50][0.0001] > 5 * grid[30][0.0001]
    # abstract claim: containment under 5% at gamma = 5 s
    assert grid[5][0.0001] < 0.05


def test_emit_fig7(benchmark, grid):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["FIGURE 7 — Sweeper + proactive protection vs hit-list worm "
             "(beta=1000, rho=2^-12, N=100000)", "",
             "paper: gamma=5 -> <1% even at alpha=1e-4; gamma=50 is much "
             "worse than gamma=30", ""]
    alphas = list(HITLIST_1K.alphas)
    header = "gamma\\alpha " + " ".join(f"{a:>9}" for a in alphas)
    lines.append(header)
    lines.append("-" * len(header))
    for gamma in HITLIST_1K.gammas:
        row = " ".join(f"{grid[gamma][a]:>9.3%}" for a in alphas)
        lines.append(f"{gamma:>10.0f}s {row}")
    report("fig7_hitlist_1000", lines)
