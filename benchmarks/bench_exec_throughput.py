"""Guest instruction throughput: the execution core's perf baseline.

Measures wall-clock guest instructions/second in the deployment modes
the paper cares about:

- **plain** — no tool, no VSEF: the batched loop over predecoded
  executable cells (the common case whose cost Sweeper promises is ~0).
- **vsef** — one armed vulnerability-specific filter: the checked loop
  that adds a per-PC probe but still runs cells.
- **instrumented** — a lightweight analysis tool attached (ins/mem/reg/
  branch events): the fully instrumented step() path.
- **stepped** — the plain deployment driven one step() at a time, i.e.
  the shape of the per-instruction loop every caller used before the
  batched run() API existed.

Results are printed, persisted as a table, and emitted as
``benchmarks/results/BENCH_exec_throughput.json`` (scratch output; the
*recorded* baseline lives at ``benchmarks/BENCH_exec_throughput.json``
and is compared by ``check_throughput_regression.py``).  Trajectory on
the reference container: the pre-refactor seed executed the mixed
workload at ~0.33M insns/s and the ALU loop at ~0.47M insns/s; the
batched cell core (PR 1) reached ~1.8M and ~2.3M (≈5x); trace-fusion
supercells (PR 2) reach ~3.5M and ~4.0M (a further ≈1.9x/1.7x).  The
assertions below are self-contained regression guards rather than
absolute-speed claims.

CFG-driven trace extension (superblock fusion through unconditional
jumps and into single-entry call targets, plus page-probe CSE within a
trace) lifts the mixed workload further — the call/helper/ret cycle
that used to cost three dispatch-loop iterations per request becomes
one supercell, and its stack traffic hits the cached write page.  The
ALU loop is unchanged by design: a tight conditional loop has no
unconditional transfer to fuse through and no memory traffic to cache.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import ProcessExited
from repro.instrument.hooks import Tool
from repro.machine.process import load_program

from conftest import RESULTS_DIR, report

#: A request-service-shaped mix: inner data loop, call/ret + stack
#: traffic, flag tests.  ``r1`` scales iteration count.
MIXED_SOURCE = """
.text
main:
 mov r6, buf
 mov r0, 0
 mov r1, {iters}
outer:
 mov r2, 0
inner:
 st [r6+0], r2
 ld r3, [r6+0]
 add r2, 1
 cmp r2, 4
 jne inner
 call helper
 add r0, 1
 cmp r0, r1
 jne outer
 halt
helper:
 push fp
 mov fp, sp
 mov r4, r0
 xor r4, r2
 pop fp
 ret
.data
buf: .space 64
"""

ALU_SOURCE = """
.text
main:
 mov r0, 0
 mov r1, {iters}
loop:
 add r0, 1
 cmp r0, r1
 jne loop
 halt
"""

MIXED_ITERS = 25_000
ALU_ITERS = 250_000


class _LightAnalysis(Tool):
    """A counting tool shaped like lightweight always-on analysis."""

    name = "light-analysis"

    def __init__(self):
        self.ins = 0
        self.mem = 0
        self.regs = 0
        self.branches = 0

    def on_ins(self, pc, insn, cpu):
        self.ins += 1

    def on_mem_read(self, pc, addr, size):
        self.mem += 1

    def on_mem_write(self, pc, addr, size, data):
        self.mem += 1

    def on_reg_write(self, pc, reg, value):
        self.regs += 1

    def on_branch(self, pc, target, taken):
        self.branches += 1


def _arm_vsef(process):
    """A benign null_check-shaped probe at the helper entry: the per-PC
    dict lookup is the cost being measured, as in §5.3."""
    addr = process.symbols.get("helper", process.symbols["main"])

    def check(cpu, insn):
        cpu.cycles += 2
        if cpu.regs[8] < 0x1000:      # never true: SP stays in the stack
            raise AssertionError("benign VSEF fired")

    process.cpu.pre_checks[addr] = [check]


def _time_run(source_template: str, iters: int, mode: str) -> tuple:
    """Run one mode; returns (elapsed_seconds, final_cycles)."""
    process = load_program(source_template.format(iters=iters))
    if mode == "instrumented":
        process.hooks.attach(_LightAnalysis(), process)
    elif mode == "vsef":
        _arm_vsef(process)
    start = time.perf_counter()
    if mode == "stepped":
        try:
            while True:
                process.cpu.step()
        except ProcessExited:
            pass
    else:
        result = process.run()
        assert result.reason == "exit"
    return time.perf_counter() - start, process.cpu.cycles


def _throughput_matrix() -> dict:
    matrix: dict[str, dict[str, float]] = {}
    for workload, template, iters in (
            ("mixed", MIXED_SOURCE, MIXED_ITERS),
            ("alu", ALU_SOURCE, ALU_ITERS)):
        # The workloads are deterministic pure-guest code (no natives,
        # no syscalls), so the plain run's cycle count IS the executed
        # instruction count; armed checks charge extra cycles, so the
        # same count is reused for every mode to report true insns/s.
        plain_elapsed, insns = _time_run(template, iters, "plain")
        modes = {"plain": insns / plain_elapsed}
        for mode in ("vsef", "instrumented", "stepped"):
            elapsed, _cycles = _time_run(template, iters, mode)
            modes[mode] = insns / elapsed
        matrix[workload] = modes
    return matrix


def test_exec_throughput(benchmark):
    matrix = benchmark.pedantic(_throughput_matrix, rounds=1, iterations=1)

    lines = ["EXEC THROUGHPUT — guest instructions per wall second", ""]
    header = (f"{'workload':>10s} {'plain':>12s} {'vsef':>12s} "
              f"{'instrumented':>13s} {'stepped':>12s}")
    lines.append(header)
    lines.append("-" * len(header))
    for workload, modes in matrix.items():
        lines.append(
            f"{workload:>10s} {modes['plain']:>12,.0f} "
            f"{modes['vsef']:>12,.0f} {modes['instrumented']:>13,.0f} "
            f"{modes['stepped']:>12,.0f}")
    report("exec_throughput", lines)

    payload = {
        "unit": "guest_insns_per_wall_second",
        "workloads": matrix,
        "reference": {
            "note": "seed = pre-refactor interpreter; pr1 = batched cell "
                    "core before trace fusion; contiguous_fusion = "
                    "block-bounded supercells before CFG-driven "
                    "extension (all measured on the reference container "
                    "class)",
            "seed_mixed_plain": 330_000,
            "seed_alu_plain": 470_000,
            "pr1_mixed_plain": 1_787_000,
            "pr1_alu_plain": 2_294_000,
            "contiguous_fusion_mixed_plain": 3_495_000,
            "contiguous_fusion_alu_plain": 4_034_000,
            "speedup_mixed_vs_seed": matrix["mixed"]["plain"] / 330_000,
            "speedup_alu_vs_seed": matrix["alu"]["plain"] / 470_000,
            "speedup_mixed_vs_pr1": matrix["mixed"]["plain"] / 1_787_000,
            "speedup_alu_vs_pr1": matrix["alu"]["plain"] / 2_294_000,
            "speedup_mixed_vs_contiguous_fusion":
                matrix["mixed"]["plain"] / 3_495_000,
            "speedup_alu_vs_contiguous_fusion":
                matrix["alu"]["plain"] / 4_034_000,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_exec_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    for workload, modes in matrix.items():
        plain = modes["plain"]
        # The batched cell loop must decisively beat per-step dispatch
        # and attached-tool execution; VSEF arming must stay cheap.
        # Relative ratios are machine-independent regression guards.
        assert plain >= 1.5 * modes["stepped"], workload
        assert plain >= 2.0 * modes["instrumented"], workload
        assert modes["vsef"] >= 0.5 * plain, workload
    # Against the recorded seed numbers, the uninstrumented fast path
    # must hold the batched-core win plus the trace-fusion multiple
    # (>=1.5x over PR 1 at introduction; ~6x over the seed with margin
    # for machine noise).  This is an absolute wall-clock floor, only
    # meaningful on reference-class hardware — skipped on shared CI
    # runners (CI env var), which may be arbitrarily slow.
    if not os.environ.get("CI"):
        assert matrix["mixed"]["plain"] >= 6 * 330_000
        assert matrix["alu"]["plain"] >= 6 * 470_000
