"""Fail CI when per-request service latency regresses.

Compares the fresh ``benchmarks/results/BENCH_request_latency.json``
(written by ``bench_request_latency.py``) against the *tracked* baseline
``benchmarks/BENCH_request_latency.json``.  Absolute microseconds are
machine-dependent, so the gate is machine-normalized: it enforces the
*tax* ratios — checkpointed/unprotected and analysis/unprotected
latency on the same machine in the same run.  A regression on the
request path (snapshots back to O(mapped pages), eager checkpoint
materialization, analysis falling back to the interpreter) inflates a
tax ratio regardless of runner speed.

Two further checks are independent of the fresh run:

- The tracked baseline must itself honour this PR's acceptance claim:
  its recorded checkpointed p99 beats its recorded ``pre_change``
  checkpointed p99 by at least ``MIN_IMPROVEMENT`` (2x) — so the
  improvement stays auditable from the tracked file alone.
- With ``REFERENCE_HW=1`` absolute p50/p99 are enforced within
  ``TOLERANCE`` of the baseline (reference-class containers only).

Usage: ``PYTHONPATH=src python benchmarks/check_request_latency_regression.py``
(after running the bench).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from baseline_util import load_json

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "BENCH_request_latency.json"
FRESH_PATH = HERE / "results" / "BENCH_request_latency.json"

BENCH_CMD = ("PYTHONPATH=src python -m pytest -q "
             "benchmarks/bench_request_latency.py")
BASELINE_CMD = (BENCH_CMD + " && cp benchmarks/results/"
                "BENCH_request_latency.json benchmarks/")

#: Wall-clock latency ratios jitter far more than throughput ratios on
#: shared runners (the unprotected denominator is a few hundred
#: microseconds), so the headroom is generous; the regression this gate
#: exists to catch (the pre-change ~9x checkpoint tax vs the recorded
#: ~2x) still clears it by a wide margin.
TOLERANCE = 0.80

#: Gated machine-normalized ratios.  ``analysis_tax_p99`` is reported
#: but not gated: the analysis scenario's p99 over 40 requests is its
#: max, too noisy to pin.
GATED_RATIOS = ("checkpoint_tax_p50", "checkpoint_tax_p99",
                "analysis_tax_p50")

MIN_IMPROVEMENT = 2.0


def main() -> int:
    baseline = load_json(BASELINE_PATH, BASELINE_CMD)
    fresh = load_json(FRESH_PATH, BENCH_CMD)
    failures: list[str] = []

    for key in GATED_RATIOS:
        want = baseline["ratios"][key]
        got = fresh["ratios"].get(key)
        limit = want * (1 + TOLERANCE)
        verdict = "ok" if got is not None and got <= limit else "FAIL"
        print(f"{key:>20s}: baseline {want:6.2f}  fresh "
              f"{got if got is not None else float('nan'):6.2f}  "
              f"(limit {limit:6.2f})  [{verdict}]")
        if verdict == "FAIL":
            failures.append(f"{key}: {got} > {limit:.2f} "
                            f"(baseline {want} + {TOLERANCE:.0%})")

    # The acceptance claim, auditable from the tracked file alone.
    recorded = baseline["scenarios"]["checkpointed"]["p99_us"]
    pre = baseline["pre_change"]["checkpointed"]["p99_us"]
    improvement = pre / recorded
    verdict = "ok" if improvement >= MIN_IMPROVEMENT else "FAIL"
    print(f"{'checkpointed p99':>20s}: pre-change {pre:,.1f}us -> recorded "
          f"{recorded:,.1f}us = {improvement:.2f}x  [{verdict}]")
    if verdict == "FAIL":
        failures.append(
            f"tracked baseline improves checkpointed p99 only "
            f"{improvement:.2f}x over pre_change (< {MIN_IMPROVEMENT}x)")

    if os.environ.get("REFERENCE_HW"):
        for scenario, base_row in baseline["scenarios"].items():
            fresh_row = fresh["scenarios"][scenario]
            for key in ("p50_us", "p99_us"):
                want, got = base_row[key], fresh_row[key]
                if got > want * (1 + TOLERANCE):
                    failures.append(
                        f"{scenario} {key}: {got:,.1f}us > "
                        f"{want * (1 + TOLERANCE):,.1f}us")

    if failures:
        print(f"\nrequest latency regression >{TOLERANCE:.0%} above the "
              "recorded baseline:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno request-latency regression against the recorded baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
