"""Fail CI when the scale fleet drifts from its recorded trajectory.

Compares the fresh ``benchmarks/results/BENCH_fleet_scale.json``
(written by ``bench_fleet_scale.py``) against the tracked baseline
``benchmarks/BENCH_fleet_scale.json`` with the same field-level walk
and drift report as ``check_fleet_regression.py``.  Everything gated is
seed-deterministic virtual-time trajectory data — t₀, γ, infection and
contact counts, materialization and golden-fork tallies, the α-sweep
points, the parallel tier's trajectory record and the hybrid tier's
halo/boundary/conservation accounting.

Excluded on top of the shared wall-clock/memory set: the parallel
tier's machine-dependent curve (``walls``, ``speedup``,
``cores_available``) and per-worker topology accounting (``workers``,
``peak_rss_bytes``) — the *trajectory* those runs realize is gated, the
hardware they ran on is not.

Files are loaded through :mod:`baseline_util`, so a missing or
half-written file fails with the one-line regeneration command instead
of a traceback.

Usage: ``PYTHONPATH=src python benchmarks/check_fleet_scale_regression.py``
(after running the bench).
"""

from __future__ import annotations

import sys
from pathlib import Path

from baseline_util import load_pair
from check_fleet_regression import EXCLUDED, compare_payloads

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "BENCH_fleet_scale.json"
FRESH_PATH = HERE / "results" / "BENCH_fleet_scale.json"

#: Machine/topology-dependent additions to the shared exclusion set.
SCALE_EXCLUDED = EXCLUDED | {"walls", "speedup", "cores_available",
                             "workers", "peak_rss_bytes"}


def main() -> int:
    baseline, fresh = load_pair(BASELINE_PATH, FRESH_PATH)
    return compare_payloads(baseline, fresh, "fleet-scale",
                            excluded=SCALE_EXCLUDED)


if __name__ == "__main__":
    sys.exit(main())
