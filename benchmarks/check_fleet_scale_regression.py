"""Fail CI when the scale fleet drifts from its recorded trajectory.

Compares the fresh ``benchmarks/results/BENCH_fleet_scale.json``
(written by ``bench_fleet_scale.py``) against the tracked baseline
``benchmarks/BENCH_fleet_scale.json`` with the same field-level walk
and drift report as ``check_fleet_regression.py``.  Everything gated is
seed-deterministic virtual-time trajectory data — t₀, γ, infection and
contact counts, materialization and golden-fork tallies, the α-sweep
points.  Wall-clock fields and the ``memory`` byte accounting are
excluded (the bench itself asserts memory sub-linearity; exact byte
counts may legitimately move with memory-layout changes).

Usage: ``PYTHONPATH=src python benchmarks/check_fleet_scale_regression.py``
(after running the bench).
"""

from __future__ import annotations

import sys
from pathlib import Path

from check_fleet_regression import EXCLUDED, compare

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "BENCH_fleet_scale.json"
FRESH_PATH = HERE / "results" / "BENCH_fleet_scale.json"


def main() -> int:
    return compare(BASELINE_PATH, FRESH_PATH, "fleet-scale",
                   excluded=EXCLUDED)


if __name__ == "__main__":
    sys.exit(main())
