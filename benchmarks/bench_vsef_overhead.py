"""§5.3 "Vulnerability Monitoring": throughput cost of a deployed VSEF.

The paper measured a 0.93% throughput drop with the Squid heap-bounds
VSEF active (91.6 vs 92.5 Mbps), dominated by the malloc/free/strlen
bookkeeping at the guarded callsite.  This bench deploys the same VSEF
(bounds-check strcat when called by ftpBuildTitleUrl) and compares a
benign FTP-heavy workload with and without it.
"""

import pytest

from repro.antibody.vsef import VSEF, CodeLoc, install_vsef
from repro.apps.squidp import build_squidp
from repro.isa.assembler import assemble
from repro.machine.cpu import CPU_HZ
from repro.machine.process import Process

from conftest import report

REQUESTS = 300
WORK_CYCLES = 4_000


def _ftp_requests(count: int) -> list[bytes]:
    return [f"GET ftp://user{i % 7}@ftp.site/pub/obj{i}".encode()
            for i in range(count)]


def _throughput(with_vsef: bool) -> float:
    process = Process(build_squidp(), seed=4)
    process.run(max_steps=2_000_000)
    if with_vsef:
        image = build_squidp()
        offset = image.symbols["ftpBuildTitleUrl"][1]
        vsef = VSEF(kind="heap_bounds",
                    params={"native": "strcat",
                            "caller": CodeLoc("code", offset)})
        install_vsef(vsef, process)
    start = process.cpu.cycles
    bytes_moved = 0
    for request in _ftp_requests(REQUESTS):
        sent_before = len(process.sent)
        process.feed(request)
        process.run(max_steps=2_000_000)
        process.cpu.cycles += WORK_CYCLES
        bytes_moved += len(request) + sum(
            len(s.data) for s in process.sent[sent_before:])
    elapsed = (process.cpu.cycles - start) / CPU_HZ
    return bytes_moved * 8 / elapsed / 1e6


@pytest.fixture(scope="module")
def measurements():
    return {"without": _throughput(False), "with": _throughput(True)}


def test_vsef_overhead_under_three_percent(benchmark, measurements):
    benchmark.pedantic(lambda: _throughput(True), rounds=1, iterations=1)
    drop = 1.0 - measurements["with"] / measurements["without"]
    assert 0.0 <= drop < 0.03, f"VSEF overhead {drop:.2%} too high"


def test_emit_vsef_overhead(benchmark, measurements):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    drop = 1.0 - measurements["with"] / measurements["without"]
    lines = ["§5.3 Vulnerability Monitoring — VSEF overhead, Squid "
             "(heap bounds-check at strcat / ftpBuildTitleUrl)", "",
             f"paper: 92.5 -> 91.6 Mbps   (0.93% drop)",
             f"ours : {measurements['without']:.4f} -> "
             f"{measurements['with']:.4f} Mbps   ({drop:.2%} drop)"]
    report("vsef_overhead", lines)
