"""Per-request service latency under sustained benign load.

The paper's production claim is *latency*-shaped, not just throughput:
checkpoint/rollback protection must be cheap enough that an individual
request does not notice it.  This bench drives a sustained seeded
``TrafficStream`` through one Sweeper node and reports wall-clock
p50/p99/p999 per-request service time in three deployments:

- **unprotected** — checkpointing effectively disabled (interval far
  beyond the run horizon): the floor set by guest execution itself.
- **checkpointed** — an aggressive 2 ms interval plus modeled busy work
  per request, so tens of checkpoints fire inside every request.  This
  is the checkpoint-dominated configuration the delta-snapshot path is
  judged on.
- **analysis** — every request sampled (taint tracker attached), the
  instrumented-execution deployment the instrumented cell tier serves.

Wall-clock absolute numbers are machine-dependent; the gated record is
the machine-normalized *tax* ratios (checkpointed/unprotected and
analysis/unprotected p99) plus the ``pre_change`` block: the same
scenarios measured on this PR's base commit on the same machine, kept
in the tracked JSON so the claimed improvement stays auditable.

Results go to ``benchmarks/results/BENCH_request_latency.json``; the
recorded baseline lives at ``benchmarks/BENCH_request_latency.json``
and is enforced by ``check_request_latency_regression.py``.
"""

from __future__ import annotations

import json
import time

from repro.apps.httpd import build_httpd
from repro.apps.workload import TrafficStream
from repro.runtime.sweeper import Sweeper, SweeperConfig

from conftest import RESULTS_DIR, report

APP = "httpd"
TRAFFIC_SEED = 11

#: Modeled per-request service work (cache lookups, disk, compression).
#: 300k cycles = 150 ms of virtual time per request: at a 2 ms interval
#: ~75 checkpoints fire inside each request, which is what makes the
#: checkpointed scenario checkpoint-dominated.
WORK_CYCLES = 300_000
CHECKPOINT_INTERVAL_MS = 2.0
#: An interval far beyond any request's virtual time: after the boot
#: checkpoint, no further checkpoint ever becomes due.
DISABLED_INTERVAL_MS = 1e9

WARMUP = 20
REQUESTS = 250
ANALYSIS_WARMUP = 3
ANALYSIS_REQUESTS = 40
#: Each scenario runs this many times and the repetition with the
#: lowest p99 is kept.  Tail latency on shared runners is dominated by
#: host scheduling spikes that hit whichever scenario is executing when
#: the machine hiccups; best-of-N suppresses those (the probability all
#: N repetitions are hit falls off geometrically) while leaving every
#: cost the guest actually pays — checkpoint takes, instrumentation —
#: fully visible, since those recur identically in every repetition.
REPEATS = 3

#: The same three scenarios measured at this PR's *base* commit on the
#: same container class (recorded when the PR introduced the bench, per
#: the reproduction workflow).  The regression gate checks the tracked
#: post-change record improves checkpointed p99 >= 2x over this.
PRE_CHANGE = {
    "note": "measured at this PR's base commit, same machine/config",
    "unprotected": {"p50_us": 289.3, "p99_us": 468.1, "p999_us": 1300.9},
    "checkpointed": {"p50_us": 1551.8, "p99_us": 4235.1, "p999_us": 4987.8},
    "analysis": {"p50_us": 1049.0, "p99_us": 2129.0, "p999_us": 2129.0},
}


def _percentile(sorted_us: list[float], q: float) -> float:
    index = min(len(sorted_us) - 1, int(q * len(sorted_us)))
    return sorted_us[index]


def _summarize(samples_s: list[float]) -> dict:
    ordered = sorted(sample * 1e6 for sample in samples_s)
    return {
        "requests": len(ordered),
        "mean_us": round(sum(ordered) / len(ordered), 1),
        "p50_us": round(_percentile(ordered, 0.50), 1),
        "p99_us": round(_percentile(ordered, 0.99), 1),
        "p999_us": round(_percentile(ordered, 0.999), 1),
    }


def _run_scenario(interval_ms: float, sample_every: int, warmup: int,
                  requests: int, work_cycles: int) -> dict:
    config = SweeperConfig(seed=3, checkpoint_interval_ms=interval_ms,
                           sample_every=sample_every)
    sweeper = Sweeper(build_httpd(), app_name=APP, config=config)
    stream = TrafficStream(APP, seed=TRAFFIC_SEED)
    for _ in range(warmup):
        sweeper.submit(stream.next_request())
        if work_cycles:
            sweeper.advance_busy(work_cycles)
    samples: list[float] = []
    for _ in range(requests):
        data = stream.next_request()
        start = time.perf_counter()
        sweeper.submit(data)
        if work_cycles:
            sweeper.advance_busy(work_cycles)
        samples.append(time.perf_counter() - start)
    summary = _summarize(samples)
    summary["checkpoints_taken"] = sweeper.checkpoints.total_taken
    assert not sweeper.attacks, "benign traffic must not trip detection"
    return summary


def _best_of(repeats: int, *args) -> dict:
    return min((_run_scenario(*args) for _ in range(repeats)),
               key=lambda row: row["p99_us"])


def _latency_matrix() -> dict:
    return {
        "unprotected": _best_of(REPEATS, DISABLED_INTERVAL_MS, 0, WARMUP,
                                REQUESTS, WORK_CYCLES),
        "checkpointed": _best_of(REPEATS, CHECKPOINT_INTERVAL_MS, 0, WARMUP,
                                 REQUESTS, WORK_CYCLES),
        "analysis": _best_of(REPEATS, DISABLED_INTERVAL_MS, 1,
                             ANALYSIS_WARMUP, ANALYSIS_REQUESTS, 0),
    }


def test_request_latency(benchmark):
    matrix = benchmark.pedantic(_latency_matrix, rounds=1, iterations=1)

    lines = ["REQUEST LATENCY — wall microseconds per request", ""]
    header = (f"{'scenario':>14s} {'p50':>10s} {'p99':>10s} {'p999':>10s} "
              f"{'mean':>10s} {'ckpts':>7s}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in matrix.items():
        lines.append(
            f"{name:>14s} {row['p50_us']:>10,.1f} {row['p99_us']:>10,.1f} "
            f"{row['p999_us']:>10,.1f} {row['mean_us']:>10,.1f} "
            f"{row['checkpoints_taken']:>7d}")
    report("request_latency", lines)

    ratios = {
        "checkpoint_tax_p50": round(
            matrix["checkpointed"]["p50_us"]
            / matrix["unprotected"]["p50_us"], 3),
        "checkpoint_tax_p99": round(
            matrix["checkpointed"]["p99_us"]
            / matrix["unprotected"]["p99_us"], 3),
        "analysis_tax_p50": round(
            matrix["analysis"]["p50_us"]
            / matrix["unprotected"]["p50_us"], 3),
        "analysis_tax_p99": round(
            matrix["analysis"]["p99_us"]
            / matrix["unprotected"]["p99_us"], 3),
    }
    payload = {
        "unit": "wall_microseconds_per_request",
        "app": APP,
        "config": {
            "traffic_seed": TRAFFIC_SEED,
            "work_cycles_per_request": WORK_CYCLES,
            "checkpoint_interval_ms": CHECKPOINT_INTERVAL_MS,
            "requests": REQUESTS,
            "analysis_requests": ANALYSIS_REQUESTS,
        },
        "scenarios": matrix,
        "ratios": ratios,
        "pre_change": PRE_CHANGE,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_request_latency.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    # Self-contained guards (machine-independent ratios): ~75 checkpoint
    # takes per request must not multiply tail latency beyond a small
    # factor of the unprotected floor once snapshots are O(dirty).
    assert matrix["checkpointed"]["checkpoints_taken"] > \
        matrix["unprotected"]["checkpoints_taken"]
    if PRE_CHANGE["checkpointed"]["p99_us"] is not None:
        assert ratios["checkpoint_tax_p99"] <= 6.0, ratios
