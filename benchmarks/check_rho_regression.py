"""Fail CI when the emergent-ρ measurement drifts from its record.

Compares the fresh ``benchmarks/results/BENCH_rho.json`` (written by
``bench_rho.py``) against the *tracked* baseline
``benchmarks/BENCH_rho.json``.  Every quantity in the record is
seed-deterministic — per-seed executed trajectories, per-cohort
trial/hit tallies, the reweighted estimator, the matched-ρ Gillespie
realizations — so any drift means a layer of the ρ pipeline changed
behaviour: a layout draw moved, a collision outcome flipped, the
estimator's arithmetic changed, a sandbox verification altered the
delivery path's virtual-time bookkeeping.

Wall-clock fields are machine-dependent and excluded.

Usage: ``PYTHONPATH=src python benchmarks/check_rho_regression.py``
(after running the bench).
"""

from __future__ import annotations

import sys
from pathlib import Path

from baseline_util import load_pair

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "BENCH_rho.json"
FRESH_PATH = HERE / "results" / "BENCH_rho.json"

EXCLUDED = {"wall_seconds"}

REL_TOL = 1e-9


def walk(base, fresh, path, failures):
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in sorted(set(base) | set(fresh)):
            if key in EXCLUDED:
                continue
            if key not in base or key not in fresh:
                failures.append(f"{path}.{key}: present in only one side")
                continue
            walk(base[key], fresh[key], f"{path}.{key}", failures)
        return
    if isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            failures.append(f"{path}: length {len(base)} != {len(fresh)}")
            return
        for index, (b, f) in enumerate(zip(base, fresh)):
            walk(b, f, f"{path}[{index}]", failures)
        return
    if isinstance(base, float) and isinstance(fresh, float):
        scale = max(abs(base), abs(fresh), 1.0)
        if abs(base - fresh) > REL_TOL * scale:
            failures.append(f"{path}: {base!r} != {fresh!r}")
        return
    if base != fresh:
        failures.append(f"{path}: {base!r} != {fresh!r}")


def main() -> int:
    baseline, fresh = load_pair(BASELINE_PATH, FRESH_PATH)
    failures: list[str] = []
    walk(baseline, fresh, "rho", failures)
    if failures:
        print("emergent-ρ measurement diverged from the recorded "
              "deterministic baseline:")
        for line in failures:
            print(f"  {line}")
        return 1
    low = baseline["low_entropy"]
    print(f"rho measurement matches the recorded baseline "
          f"(b={low['entropy_bits']}: {low['hits']}/{low['trials']} "
          f"trials, measured {low['rho_measured']:.4f} vs "
          f"analytic {low['rho_analytic']}; "
          f"b={baseline['paper_entropy']['entropy_bits']} estimate "
          f"{baseline['paper_entropy']['rho_estimate']!r})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
