"""Figure 6: Sweeper community defense against Slammer (β = 0.1).

Regenerates the infection-ratio-vs-deployment-ratio curves for γ ∈
{5..100} s, checks the paper's quoted operating points, and
cross-validates one point against the stochastic simulator.
"""

import pytest

from repro.worm.community import SLAMMER, figure6_data
from repro.worm.simulation import simulate_outbreak

from conftest import report


@pytest.fixture(scope="module")
def grid():
    return figure6_data()


def test_fig6_paper_points(benchmark, grid):
    benchmark.pedantic(figure6_data, rounds=1, iterations=1)
    # "alpha = 0.0001 and gamma = 5 s -> infection ratio only 15%"
    assert grid[5][0.0001] == pytest.approx(0.15, abs=0.05)
    # "alpha = 0.001 protects all but ~5% even at gamma = 20 s"
    assert grid[20][0.001] < 0.10
    # Monotonicity along both axes.
    for gamma in SLAMMER.gammas:
        ordered = [grid[gamma][a] for a in sorted(SLAMMER.alphas)]
        assert ordered == sorted(ordered, reverse=True)
    for alpha in SLAMMER.alphas:
        ordered = [grid[g][alpha] for g in sorted(SLAMMER.gammas)]
        assert ordered == sorted(ordered)


def test_fig6_stochastic_cross_check(benchmark, grid):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ode = grid[10][0.001]
    runs = [simulate_outbreak(SLAMMER.beta, SLAMMER.population, 0.001,
                              10, seed=seed).infection_ratio
            for seed in range(8)]
    mean = sum(runs) / len(runs)
    assert ode / 8 < mean < ode * 8      # branching noise is large


def test_emit_fig6(benchmark, grid):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["FIGURE 6 — Sweeper defense against Slammer "
             "(beta=0.1, N=100000): infection ratio", "",
             "paper spot-checks: alpha=1e-4,gamma=5 -> ~15%; "
             "alpha=1e-3,gamma=20 -> ~5%", ""]
    alphas = list(SLAMMER.alphas)
    header = "gamma\\alpha " + " ".join(f"{a:>9}" for a in alphas)
    lines.append(header)
    lines.append("-" * len(header))
    for gamma in SLAMMER.gammas:
        row = " ".join(f"{grid[gamma][a]:>9.3%}" for a in alphas)
        lines.append(f"{gamma:>10.0f}s {row}")
    report("fig6_slammer", lines)
