"""Fail CI when the executed fleet drifts from its recorded trajectory.

Compares the fresh ``benchmarks/results/BENCH_fleet.json`` (written by
``bench_fleet.py``) against the *tracked* baseline
``benchmarks/BENCH_fleet.json``.  The fleet is seed-deterministic: with
an unchanged config every virtual-time quantity — t₀, the measured γ,
infection counts, contact tallies, per-node bookkeeping — must
reproduce exactly (small float tolerance for serialization).  A
mismatch means an executed layer changed behaviour: a different
analysis outcome, a VSEF that stopped blocking, an altered clock or
bus ordering.

On failure the report is diagnosable from CI logs alone: a field-level
summary of the key epidemic quantities (expected vs. actual t₀, γ,
availability, infection and contact counts), the first diverging node
entry, and then every diverging path.

Wall-clock fields (``wall_seconds``, ``aggregate_insns_per_second``)
are machine-dependent and excluded, as is the ``memory`` page-sharing
block (asserted sub-linear by ``bench_fleet_scale.py`` instead of
pinned byte-for-byte).

Usage: ``PYTHONPATH=src python benchmarks/check_fleet_regression.py``
(after running the bench).
"""

from __future__ import annotations

import sys
from pathlib import Path

from baseline_util import load_pair

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "BENCH_fleet.json"
FRESH_PATH = HERE / "results" / "BENCH_fleet.json"

#: Machine-dependent (or deliberately ungated) fields, never compared.
EXCLUDED = {"wall_seconds", "aggregate_insns_per_second", "memory"}

REL_TOL = 1e-9

#: The epidemic quantities a drift report leads with: the fields one
#: compares first when diagnosing seed drift.
KEY_FIELDS = ("t0", "availability", "gamma_measured", "gamma1_first_vsef",
              "infected_final", "infection_ratio", "contacts",
              "contacts_to_producers", "contacts_blocked",
              "contacts_wasted", "bundles_published", "benign_sent",
              "benign_responses", "nodes_materialized")


def walk(base, fresh, path, failures, excluded=EXCLUDED):
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in sorted(set(base) | set(fresh)):
            if key in excluded:
                continue
            if key not in base or key not in fresh:
                failures.append(f"{path}.{key}: present in only one side")
                continue
            walk(base[key], fresh[key], f"{path}.{key}", failures, excluded)
        return
    if isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            failures.append(f"{path}: length {len(base)} != {len(fresh)}")
            return
        for index, (b, f) in enumerate(zip(base, fresh)):
            walk(b, f, f"{path}[{index}]", failures, excluded)
        return
    if isinstance(base, float) and isinstance(fresh, float):
        scale = max(abs(base), abs(fresh), 1.0)
        if abs(base - fresh) > REL_TOL * scale:
            failures.append(f"{path}: {base!r} != {fresh!r}")
        return
    if base != fresh:
        failures.append(f"{path}: {base!r} != {fresh!r}")


def _key_field_diff(base_result: dict, fresh_result: dict) -> list[str]:
    """Expected-vs-actual table for the headline epidemic quantities."""
    lines = []
    for key in KEY_FIELDS:
        expected = base_result.get(key)
        actual = fresh_result.get(key)
        marker = " " if expected == actual else "!"
        lines.append(f"  {marker} {key:<22} expected {expected!r}"
                     f"   actual {actual!r}")
    return lines


def _first_diverging_node(base_result: dict, fresh_result: dict
                          ) -> list[str]:
    """Pinpoint the first per-node report that differs."""
    base_nodes = base_result.get("nodes") or []
    fresh_nodes = fresh_result.get("nodes") or []
    for index, (b, f) in enumerate(zip(base_nodes, fresh_nodes)):
        if b != f:
            fields = sorted(k for k in set(b) | set(f)
                            if b.get(k) != f.get(k))
            return [f"  first diverging node: [{index}] "
                    f"{b.get('name', '?')} — fields {', '.join(fields)}",
                    f"    expected: "
                    f"{ {k: b.get(k) for k in fields} }",
                    f"    actual:   "
                    f"{ {k: f.get(k) for k in fields} }"]
    if len(base_nodes) != len(fresh_nodes):
        return [f"  node count changed: {len(base_nodes)} -> "
                f"{len(fresh_nodes)}"]
    return []


def _result_views(payload: dict) -> list[tuple[str, dict]]:
    """The result dicts a payload carries: the 26-node record's single
    ``result``, or the scale record's per-N ``results`` map — so the
    drift report renders for either layout."""
    if "result" in payload:
        return [("", payload["result"])]
    return [(f"[N={n}] ", result)
            for n, result in sorted(payload.get("results", {}).items(),
                                    key=lambda item: int(item[0]))]


def compare(baseline_path: Path, fresh_path: Path, label: str,
            excluded=EXCLUDED) -> int:
    return compare_payloads(*load_pair(baseline_path, fresh_path),
                            label, excluded)


def compare_payloads(baseline: dict, fresh: dict, label: str,
                     excluded=EXCLUDED) -> int:
    """Field-level walk + drift report over already-loaded payloads —
    the comparison half of :func:`compare`, for gates that load their
    files through :mod:`baseline_util` themselves."""
    failures: list[str] = []
    walk(baseline, fresh, label, failures, excluded)
    if failures:
        print(f"{label} run diverged from the recorded deterministic "
              "baseline:")
        fresh_views = dict(_result_views(fresh))
        for prefix, base_result in _result_views(baseline):
            fresh_result = fresh_views.get(prefix, {})
            diverged = any(base_result.get(k) != fresh_result.get(k)
                           for k in KEY_FIELDS) \
                or base_result.get("nodes") != fresh_result.get("nodes")
            if diverged:
                print(f"{prefix}key epidemic fields "
                      "(! marks divergence):")
                for line in _key_field_diff(base_result, fresh_result):
                    print(line)
                for line in _first_diverging_node(base_result,
                                                  fresh_result):
                    print(line)
        print(f"all diverging paths ({len(failures)}):")
        for failure in failures[:40]:
            print(f"  - {failure}")
        if len(failures) > 40:
            print(f"  ... and {len(failures) - 40} more")
        return 1
    detail = f"seed {baseline.get('config', {}).get('seed')}"
    result = baseline.get("result")
    if result:
        detail += (f", N={result.get('population')}, infection ratio "
                   f"{result.get('infection_ratio', 0.0):.4f}")
    print(f"{label} trajectory matches the recorded baseline ({detail})")
    return 0


def main() -> int:
    return compare(BASELINE_PATH, FRESH_PATH, "fleet")


if __name__ == "__main__":
    sys.exit(main())
