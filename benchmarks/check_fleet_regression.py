"""Fail CI when the executed fleet drifts from its recorded trajectory.

Compares the fresh ``benchmarks/results/BENCH_fleet.json`` (written by
``bench_fleet.py``) against the *tracked* baseline
``benchmarks/BENCH_fleet.json``.  The fleet is seed-deterministic: with
an unchanged config every virtual-time quantity — t₀, the measured γ,
infection counts, contact tallies, per-node bookkeeping — must
reproduce exactly (small float tolerance for serialization).  A
mismatch means an executed layer changed behaviour: a different
analysis outcome, a VSEF that stopped blocking, an altered clock or
bus ordering.

Wall-clock fields (``wall_seconds``, ``aggregate_insns_per_second``)
are machine-dependent and excluded.

Usage: ``PYTHONPATH=src python benchmarks/check_fleet_regression.py``
(after running the bench).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "BENCH_fleet.json"
FRESH_PATH = HERE / "results" / "BENCH_fleet.json"

#: Machine-dependent fields, never gated.
EXCLUDED = {"wall_seconds", "aggregate_insns_per_second"}

REL_TOL = 1e-9


def _walk(base, fresh, path, failures):
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in sorted(set(base) | set(fresh)):
            if key in EXCLUDED:
                continue
            if key not in base or key not in fresh:
                failures.append(f"{path}.{key}: present in only one side")
                continue
            _walk(base[key], fresh[key], f"{path}.{key}", failures)
        return
    if isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            failures.append(f"{path}: length {len(base)} != {len(fresh)}")
            return
        for index, (b, f) in enumerate(zip(base, fresh)):
            _walk(b, f, f"{path}[{index}]", failures)
        return
    if isinstance(base, float) and isinstance(fresh, float):
        scale = max(abs(base), abs(fresh), 1.0)
        if abs(base - fresh) > REL_TOL * scale:
            failures.append(f"{path}: {base!r} != {fresh!r}")
        return
    if base != fresh:
        failures.append(f"{path}: {base!r} != {fresh!r}")


def main() -> int:
    baseline = json.loads(BASELINE_PATH.read_text())
    fresh = json.loads(FRESH_PATH.read_text())
    failures: list[str] = []
    _walk(baseline, fresh, "fleet", failures)
    if failures:
        print("fleet run diverged from the recorded deterministic "
              "baseline:")
        for failure in failures[:40]:
            print(f"  - {failure}")
        if len(failures) > 40:
            print(f"  ... and {len(failures) - 40} more")
        return 1
    print("fleet trajectory matches the recorded baseline "
          f"(seed {baseline['config']['seed']}, "
          f"N={baseline['result']['population']}, "
          f"infection ratio {baseline['result']['infection_ratio']:.4f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
