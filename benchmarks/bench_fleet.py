"""Executed community fleet: the §6 community claim measured from real
nodes.

Boots the default :class:`FleetConfig` — 26 executed Sweeper nodes
(20 vulnerable httpd forming the epidemic population, α = 0.2, plus
squidp/cvsd riders), one shared CommunityBus — runs the seeded outbreak
and records t₀, the measured γ = γ₁ + γ₂ and the final infection ratio,
cross-validated two ways:

- **Gillespie, matched seed**: the fleet's contact process consumes the
  same rng sequence as ``simulate_outbreak``, so the executed run must
  realize the *same trajectory* (t₀ to float precision, infection
  counts exactly) once the measured γ is plugged in.  Any drift means
  an executed defense misbehaved.
- **ODE**: one stochastic realization at N = 20 sits off the continuum
  limit, so the infection ratio is compared with a loose tolerance.

Results go to ``benchmarks/results/BENCH_fleet.json`` (scratch); the
*recorded* baseline is tracked at ``benchmarks/BENCH_fleet.json`` and
``check_fleet_regression.py`` fails CI if any seed-deterministic
quantity drifts.  Wall-clock fields (aggregate nodes×insns/s) are
reported but never gated.
"""

from __future__ import annotations

import json

from repro.worm.fleet import FleetConfig, run_fleet

from conftest import RESULTS_DIR, report

#: Executed-vs-Gillespie agreement must be essentially exact.
GILLESPIE_T0_TOL = 1e-9
#: Executed-vs-ODE: one small-N realization against the continuum.
ODE_RATIO_TOL = 0.25

CONFIG = FleetConfig()


def test_fleet_outbreak():
    result = run_fleet(CONFIG)

    # -- acceptance: N >= 20 executed nodes, at least one producer -----
    assert result.total_nodes >= 20
    assert result.producers >= 1
    assert result.t0 is not None, "worm never reached a producer"
    assert result.availability + CONFIG.post_immunity_slack \
        <= CONFIG.horizon, "horizon clipped the epidemic"

    # -- executed == matched-seed Gillespie ----------------------------
    gillespie = result.gillespie
    assert gillespie is not None
    assert abs(result.t0 - gillespie["t0"]) < GILLESPIE_T0_TOL
    assert result.infected_final == gillespie["final_infected"]

    # -- executed vs ODE (loose: one realization at N = 20) ------------
    model = result.model
    assert model is not None
    assert abs(result.infection_ratio - model["infection_ratio"]) \
        <= ODE_RATIO_TOL

    # -- the community mechanism actually executed ---------------------
    assert result.bundles_published >= 1
    assert result.contacts_blocked >= 1, \
        "no post-immunity contact was blocked by an executed antibody"
    for node in result.nodes:
        if node["infected"]:
            assert node["infected_at"] <= result.availability

    lines = [
        "EXECUTED COMMUNITY FLEET — measured vs modeled outbreak",
        "",
        f"nodes executed        {result.total_nodes} "
        f"(population N={result.population}, producers="
        f"{result.producers}, alpha={result.producer_ratio:.2f})",
        f"worm                  beta={result.beta}/s rho={result.rho} "
        f"seed={result.seed}",
        f"t0 first producer hit {result.t0:10.4f} s   "
        f"(gillespie {gillespie['t0']:10.4f}, ode {model['t0']:10.4f})",
        f"gamma measured        {result.gamma_measured:10.4f} s   "
        f"(gamma1 to first VSEF {result.gamma1_first_vsef * 1000:.1f} ms "
        f"+ gamma2 {CONFIG.gamma2:.1f} s)",
        f"infection ratio       {result.infection_ratio:10.4f}     "
        f"(gillespie {gillespie['infection_ratio']:.4f}, "
        f"ode {model['infection_ratio']:.4f})",
        f"contacts              {result.contacts} total, "
        f"{result.contacts_to_producers} on producers, "
        f"{result.contacts_blocked} blocked by antibodies, "
        f"{result.contacts_wasted} wasted",
        f"benign traffic        {result.benign_sent} requests, "
        f"{result.benign_responses} responses",
        f"bundles published     {result.bundles_published}",
        f"aggregate throughput  {result.aggregate_insns_per_second:,.0f} "
        f"guest insns/s across {result.total_nodes} nodes "
        f"({result.wall_seconds:.2f} s wall)",
    ]
    report("fleet", lines)

    payload = {
        "unit": "virtual_seconds_and_ratios",
        "config": {
            "seed": CONFIG.seed,
            "vulnerable_nodes": CONFIG.vulnerable_nodes,
            "producers": CONFIG.producers,
            "extra_apps": [list(x) for x in CONFIG.extra_apps],
            "beta": CONFIG.beta,
            "rho": CONFIG.rho,
            "benign_rate": CONFIG.benign_rate,
            "gamma2": CONFIG.gamma2,
            "horizon": CONFIG.horizon,
            "post_immunity_slack": CONFIG.post_immunity_slack,
        },
        "tolerances": {
            "gillespie_t0": GILLESPIE_T0_TOL,
            "ode_infection_ratio": ODE_RATIO_TOL,
        },
        "result": result.to_dict(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fleet.json").write_text(
        json.dumps(payload, indent=2) + "\n")
