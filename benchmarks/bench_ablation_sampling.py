"""Ablation: sampled heavyweight monitoring (§4.2).

Quantifies what sampling buys on hosts where ASLR detection fails (the
ρ-success case): with the guest at the *reference* layout, the Apache1
hijack succeeds silently unless the attacking request happens to be
sampled.  Coverage therefore equals the sampling rate — the paper's
"hosts can use heavier-weight detection when idle" trade, made concrete.
"""

import pytest

from repro.apps.exploits import apache1_exploit
from repro.apps.httpd import build_httpd
from repro.machine.layout import ReferenceLayout
from repro.machine.process import Process
from repro.runtime.sweeper import Sweeper, SweeperConfig

from conftest import report

ATTACK_POSITIONS = range(8)   # which request in the stream is the worm


def _reference_sweeper(sample_every: int) -> Sweeper:
    config = SweeperConfig(seed=0, sample_every=sample_every)
    sweeper = Sweeper(build_httpd(), app_name="httpd", config=config)
    sweeper.process = Process(build_httpd(), layout=ReferenceLayout(),
                              seed=0, name="httpd")
    sweeper.pipeline.process = sweeper.process
    sweeper.checkpoints.checkpoints.clear()
    sweeper._last_cycles = sweeper.process.cpu.cycles
    sweeper.process.run(max_steps=2_000_000)
    sweeper.checkpoints.take(sweeper.process)
    return sweeper


def _coverage(sample_every: int) -> float:
    """Fraction of attack positions caught by sampled taint."""
    caught = 0
    for position in ATTACK_POSITIONS:
        sweeper = _reference_sweeper(sample_every)
        for index in range(position):
            sweeper.submit(f"GET /p{index} HTTP/1.0\n".encode())
        sweeper.submit(apache1_exploit())
        if any(d.kind == "sampled" for d in sweeper.detections):
            caught += 1
    return caught / len(ATTACK_POSITIONS)


@pytest.fixture(scope="module")
def coverage():
    return {every: _coverage(every) for every in (1, 2, 4, 0)}


def test_sampling_coverage_scales_with_rate(benchmark, coverage):
    benchmark.pedantic(lambda: _coverage(2), rounds=1, iterations=1)
    assert coverage[1] == 1.0          # sample everything: catch all
    assert coverage[0] == 0.0          # no sampling: rho-case missed
    assert coverage[1] >= coverage[2] >= coverage[4] >= coverage[0]
    assert coverage[2] == pytest.approx(0.5, abs=0.13)


def test_emit_ablation_sampling(benchmark, coverage):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["ABLATION — §4.2 sampled heavyweight monitoring "
             "(Apache1 hijack on an UNrandomized host)", "",
             "without ASLR the hijack succeeds silently; only sampled "
             "taint analysis can catch it:", ""]
    for every, fraction in sorted(coverage.items(),
                                  key=lambda kv: (kv[0] == 0, kv[0])):
        label = "off" if every == 0 else f"every {every}"
        lines.append(f"  sampling {label:>8s} -> "
                     f"{fraction:6.1%} of attack positions detected")
    lines.append("")
    lines.append("coverage == sampling rate: the paper's idle-time "
                 "sampling dial.")
    report("ablation_sampling", lines)
