"""Figure 8: hit-list worm (β = 4000) with proactive protection ρ = 2⁻¹².

The paper's harshest scenario — forty thousand times faster than the
observed Slammer.  Checks the quoted 40% @ γ=10 point and the γ=20 knee.
"""

import pytest

from repro.worm.community import HITLIST_4K, figure8_data

from conftest import report


@pytest.fixture(scope="module")
def grid():
    return figure8_data()


def test_fig8_paper_points(benchmark, grid):
    benchmark.pedantic(figure8_data, rounds=1, iterations=1)
    # "40% for beta = 4000" at alpha=1e-4, gamma=10
    assert grid[10][0.0001] == pytest.approx(0.40, abs=0.10)
    # gamma=5: "negligible (less than 1%)"
    assert grid[5][0.0001] < 0.01
    # the caption's knee: "gamma = 20 is much worse than gamma = 10"
    assert grid[20][0.0001] > 2 * grid[10][0.0001]


def test_fig8_harsher_than_fig7(benchmark, grid):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.worm.community import figure7_data

    fig7 = figure7_data()
    for gamma in (10, 20, 30):
        assert grid[gamma][0.0001] >= fig7[gamma][0.0001]


def test_emit_fig8(benchmark, grid):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["FIGURE 8 — Sweeper + proactive protection vs hit-list worm "
             "(beta=4000, rho=2^-12, N=100000)", "",
             "paper: alpha=1e-4,gamma=10 -> ~40%; gamma=20 is much worse "
             "than gamma=10", ""]
    alphas = list(HITLIST_4K.alphas)
    header = "gamma\\alpha " + " ".join(f"{a:>9}" for a in alphas)
    lines.append(header)
    lines.append("-" * len(header))
    for gamma in HITLIST_4K.gammas:
        row = " ".join(f"{grid[gamma][a]:>9.3%}" for a in alphas)
        lines.append(f"{gamma:>10.0f}s {row}")
    report("fig8_hitlist_4000", lines)
