"""Ablation: address-space randomization as the lightweight monitor.

DESIGN.md calls this design choice out: ASLR is what turns a would-be
compromise into a detectable crash at near-zero cost.  This bench
quantifies it with the Apache1 control-flow hijack:

- on the *reference* (unrandomized) layout the exploit genuinely takes
  over the server (the worm's ``rho = success`` case);
- across randomized layouts it is detected (crashes) essentially always,
  consistent with the modeled ``rho = 2^-entropy``.
"""

import random

import pytest

from repro.apps.exploits import apache1_exploit
from repro.apps.httpd import build_httpd
from repro.errors import VMFault
from repro.machine.layout import (ReferenceLayout, guess_probability,
                                  randomized_layout)
from repro.machine.process import Process

from conftest import report

TRIALS = 40


def _attack(layout) -> str:
    """Returns 'owned' | 'detected' | 'survived'."""
    process = Process(build_httpd(), layout=layout, seed=1)
    process.run(max_steps=2_000_000)
    process.feed(apache1_exploit())
    try:
        result = process.run(max_steps=2_000_000)
    except VMFault:
        return "detected"
    if process.sent and process.sent[-1].data.startswith(b"OWNED!"):
        return "owned"
    return "survived" if result.reason != "exit" else "owned"


@pytest.fixture(scope="module")
def outcomes():
    randomized = [_attack(randomized_layout(random.Random(seed)))
                  for seed in range(TRIALS)]
    return {"reference": _attack(ReferenceLayout()),
            "randomized": randomized}


def test_reference_layout_is_compromised(benchmark, outcomes):
    benchmark.pedantic(lambda: _attack(ReferenceLayout()), rounds=1,
                       iterations=1)
    assert outcomes["reference"] == "owned"


def test_randomization_detects_the_attack(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    detected = outcomes["randomized"].count("detected")
    assert detected == len(outcomes["randomized"]), \
        "expected detection in every randomized trial at 12-bit entropy"


def test_emit_ablation(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    detected = outcomes["randomized"].count("detected")
    lines = ["ABLATION — address-space randomization as the lightweight "
             "monitor (Apache1 hijack)", "",
             f"reference (no ASLR) layout : {outcomes['reference']} "
             f"(worm executes its payload)",
             f"randomized layouts         : {detected}/{TRIALS} detected "
             f"as crashes",
             f"modeled bypass probability : rho = "
             f"{guess_probability(12):.2e} per base (paper's 2^-12)"]
    report("ablation_aslr", lines)
