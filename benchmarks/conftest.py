"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure from the paper and records
the rows under ``benchmarks/results/`` (pytest captures stdout, so the
files are the durable record; EXPERIMENTS.md summarizes them).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, lines: list[str]) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{text}")
    return text


def run_attack_pipeline(name: str, seed: int = 5, warmup: int = 5,
                        config=None):
    """Boot an app under Sweeper, warm it up, deliver the exploit."""
    from repro.apps.exploits import EXPLOITS
    from repro.apps.workload import benign_requests
    from repro.runtime.sweeper import Sweeper, SweeperConfig

    spec = EXPLOITS[name]
    sweeper = Sweeper(spec.build_image(), app_name=spec.app,
                      config=config or SweeperConfig(seed=seed))
    for request in benign_requests(spec.app, warmup):
        sweeper.submit(request)
    sweeper.submit(spec.payload())
    assert sweeper.attacks, f"{name}: exploit did not trigger"
    return spec, sweeper
