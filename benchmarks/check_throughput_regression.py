"""Fail CI when the throughput bench regresses against the recorded
baseline.

Compares the fresh ``benchmarks/results/BENCH_exec_throughput.json``
(written by ``bench_exec_throughput.py``) against the *tracked* baseline
``benchmarks/BENCH_exec_throughput.json``.  Shared CI runners vary
wildly in absolute speed, so the gate is machine-normalized: for each
workload it checks the ``plain/stepped`` and ``plain/instrumented``
speedup ratios — how much the batched fused loop beats per-instruction
dispatch on the *same* machine.  A hot-path regression (lost fusion, a
new per-instruction branch, a slower cell body) shrinks those ratios
regardless of runner speed.  A ratio more than ``TOLERANCE`` (20%)
below the baseline's fails the gate.

Set ``REFERENCE_HW=1`` to additionally enforce absolute insns/s within
the same tolerance (meaningful only on reference-class containers).

Usage: ``PYTHONPATH=src python benchmarks/check_throughput_regression.py``
(after running the bench).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from baseline_util import load_pair

TOLERANCE = 0.20

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "BENCH_exec_throughput.json"
FRESH_PATH = HERE / "results" / "BENCH_exec_throughput.json"

#: The machine-normalized ratios the gate enforces per workload.
RATIOS = (("plain", "stepped"), ("plain", "instrumented"))


def _ratio(modes: dict, num: str, den: str) -> float:
    return modes[num] / modes[den]


def main() -> int:
    baseline, fresh = load_pair(BASELINE_PATH, FRESH_PATH)
    baseline, fresh = baseline["workloads"], fresh["workloads"]
    failures = []
    for workload, base_modes in baseline.items():
        fresh_modes = fresh.get(workload)
        if fresh_modes is None:
            failures.append(f"{workload}: missing from fresh results")
            continue
        for num, den in RATIOS:
            want = _ratio(base_modes, num, den)
            got = _ratio(fresh_modes, num, den)
            verdict = "ok" if got >= want * (1 - TOLERANCE) else "FAIL"
            print(f"{workload:>8s} {num}/{den}: baseline {want:6.2f}  "
                  f"fresh {got:6.2f}  [{verdict}]")
            if verdict == "FAIL":
                failures.append(
                    f"{workload} {num}/{den}: {got:.2f} < "
                    f"{want * (1 - TOLERANCE):.2f} (baseline {want:.2f} "
                    f"- {TOLERANCE:.0%})")
        if os.environ.get("REFERENCE_HW"):
            for mode, want in base_modes.items():
                got = fresh_modes[mode]
                if got < want * (1 - TOLERANCE):
                    failures.append(
                        f"{workload} {mode}: {got:,.0f} insns/s < "
                        f"{want * (1 - TOLERANCE):,.0f}")
    if failures:
        print("\nthroughput regression >20% below recorded baseline:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno throughput regression against the recorded baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
