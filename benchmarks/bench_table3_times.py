"""Table 3: Sweeper failure analysis time.

Regenerates the cumulative antibody-availability times (first VSEF, best
VSEF, initial analysis, total) and per-component diagnosis times for the
two applications the paper measured (Apache1 and Squid), reporting paper
values next to ours.  Absolute values differ (their 2.4 GHz P4 vs our
2 MHz virtual CPU + published tool overhead factors); the asserted shape
is what the paper argues from: the first VSEF arrives within tens of
milliseconds — orders of magnitude before full analysis completes — and
slicing dominates total time.
"""

import pytest

from conftest import report, run_attack_pipeline

#: Paper's Table 3, in seconds.
_PAPER = {
    "Apache1": {"first": 0.060, "best": 14.0, "initial": 24.0,
                "total": 68.0, "memstate": 0.06, "membug": 14.0,
                "taint": 9.0, "slicing": 45.0},
    "Squid": {"first": 0.040, "best": 0.040, "initial": 38.0,
              "total": 145.0, "memstate": 0.04, "membug": 30.0,
              "taint": 7.0, "slicing": 108.0},
}


def _measure(name: str):
    _spec, sweeper = run_attack_pipeline(name)
    outcome = sweeper.attacks[0].outcome
    return {
        "first": outcome.time_to_first_vsef,
        "best": outcome.time_to_best_vsef,
        "initial": outcome.initial_analysis_time,
        "total": outcome.total_analysis_time,
        "memstate": outcome.step("memory_state").virtual_seconds,
        "membug": outcome.step("memory_bug").virtual_seconds,
        "taint": outcome.step("input_taint").virtual_seconds,
        "slicing": outcome.step("slicing").virtual_seconds,
    }


@pytest.mark.parametrize("name", ["Apache1", "Squid"])
def test_analysis_time_shape(benchmark, name):
    ours = benchmark.pedantic(lambda: _measure(name), rounds=1,
                              iterations=1)
    # The paper's claims, as shape assertions:
    assert ours["first"] <= 0.1            # antibody within ~100 ms
    assert ours["first"] <= ours["best"] <= ours["total"]
    assert ours["slicing"] >= ours["membug"]        # slicing dominates
    assert ours["slicing"] >= ours["taint"]
    assert ours["total"] >= 10 * ours["first"]      # orders of magnitude


def test_emit_table3(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["TABLE 3 — Sweeper failure analysis time "
             "(cumulative from detection; paper vs measured)", ""]
    header = (f"{'App':9s} {'quantity':22s} {'paper (s)':>10s} "
              f"{'ours (s)':>10s}")
    lines.append(header)
    lines.append("-" * len(header))
    rows = [("first", "time to first VSEF"),
            ("best", "time to best VSEF"),
            ("initial", "initial analysis time"),
            ("total", "total analysis time"),
            ("memstate", "  memory state analysis"),
            ("membug", "  memory bug detection"),
            ("taint", "  input/taint analysis"),
            ("slicing", "  dynamic slicing")]
    for name in ("Apache1", "Squid"):
        ours = _measure(name)
        for key, label in rows:
            lines.append(f"{name:9s} {label:22s} "
                         f"{_PAPER[name][key]:>10.2f} "
                         f"{ours[key]:>10.3f}")
        lines.append("")
    lines.append("shape checks: first VSEF within tens of ms; slicing "
                 "dominates; total >> first.")
    report("table3_times", lines)
