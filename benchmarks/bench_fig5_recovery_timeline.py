"""Figure 5: client-perceived throughput across a single attack (Squid).

The paper's figure: steady throughput, a short dip ~24 s in "due to
recovery taking place", then service resumes — versus a >5 s restart
with dropped connections and cache warmup.

Configuration note: the paper's own text says antibodies "should be
distributed immediately upon availability" and attributes the dip to
*recovery*, not to the (much longer, Table 3) full analysis — i.e. the
initial memory-state VSEF plus rollback/re-execution happen inline and
the heavyweight replay passes are deferred.  This bench uses exactly
that immediate-response configuration; Table 3's bench measures the
full sequential pipeline.
"""

import pytest

from repro.apps.exploits import squid_exploit
from repro.apps.squidp import build_squidp
from repro.apps.workload import benign_requests
from repro.runtime.sweeper import Sweeper, SweeperConfig

from conftest import report

#: Request spacing: ~375 ms of service work per request stretches 120
#: requests across the paper's ~45 s timeline.
WORK_CYCLES = 750_000
ATTACK_AT_REQUEST = 60
TOTAL_REQUESTS = 120
RESTART_SECONDS = 5.0         # §1.1: restart takes up to several seconds


def _timeline():
    """Returns (bucket -> bytes served that virtual second, attack_time,
    recovered_time, sweeper)."""
    config = SweeperConfig(seed=3, enable_membug=False,
                           enable_taint=False, enable_slicing=False)
    sweeper = Sweeper(build_squidp(), app_name="squid", config=config)
    requests = benign_requests("squidp", TOTAL_REQUESTS)
    buckets: dict[int, int] = {}
    attack_time = recovered_time = None
    for index, request in enumerate(requests):
        if index == ATTACK_AT_REQUEST:
            attack_time = sweeper.clock
            sweeper.submit(squid_exploit())
            recovered_time = sweeper.clock
        served = sum(len(r) for r in sweeper.submit(request))
        buckets[int(sweeper.clock)] = buckets.get(int(sweeper.clock), 0) \
            + served
        sweeper.advance_busy(WORK_CYCLES)
    return buckets, attack_time, recovered_time, sweeper


@pytest.fixture(scope="module")
def timeline():
    return _timeline()


def test_fig5_shape(benchmark, timeline):
    buckets, attack_time, recovered_time, sweeper = timeline
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert attack_time is not None
    outage = recovered_time - attack_time
    assert outage > 0, "the attack must cost some service time"
    assert outage < RESTART_SECONDS, \
        "recovery must beat the restart baseline"
    # Service resumed: traffic flows after recovery.
    post = [count for second, count in buckets.items()
            if second > recovered_time]
    assert post and max(post) > 0
    # The initial antibody is live and the attack did not recur.
    assert sweeper.antibodies
    assert len(sweeper.attacks) == 1
    # A VSEF (not a crash) stops a replayed exploit.
    crashes_before = len(sweeper.attacks)
    sweeper.submit(squid_exploit())
    assert len(sweeper.attacks) == crashes_before


def test_emit_fig5(benchmark, timeline):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    buckets, attack_time, recovered_time, _sweeper = timeline
    outage = recovered_time - attack_time
    lines = ["FIGURE 5 — Throughput during a single attack, Squid "
             "(bytes served per virtual second)", "",
             f"attack at t={attack_time:.2f}s; service restored at "
             f"t={recovered_time:.2f}s",
             f"outage {outage:.2f}s (initial VSEF + rollback recovery) "
             f"vs restart baseline {RESTART_SECONDS:.1f}s + cache warmup",
             ""]
    peak = max(buckets.values()) or 1
    for second in range(int(max(buckets)) + 1):
        count = buckets.get(second, 0)
        bar = "#" * int(40 * count / peak)
        marker = ""
        if attack_time is not None and int(attack_time) == second:
            marker = "   <- attack: detection, analysis, recovery"
        lines.append(f"t={second:>3d}s {count:>8d} B/s |{bar}{marker}")
    report("fig5_recovery_timeline", lines)
