"""Sweeper reproduction: lightweight end-to-end defense against fast worms.

A full-system Python reproduction of *"Sweeper: A Lightweight End-to-End
System for Defending Against Fast Worms"* (Tucek et al., EuroSys 2007),
including the substrate the paper ran on: a 32-bit VM with randomized
address-space layout, an Rx-style checkpoint/rollback runtime, PIN-style
attachable instrumentation, the four analysis tools, VSEF/signature
antibodies, the three vulnerable servers with their four CVE analogues,
and the Section 6 worm-epidemic community model.

Quickstart::

    from repro import Sweeper, build_squidp, squid_exploit

    sweeper = Sweeper(build_squidp(), app_name="squid")
    sweeper.submit(b"GET http://example.com/page")   # served normally
    sweeper.submit(squid_exploit())                  # detected & healed
    print(sweeper.attacks[0].outcome.steps)          # the Fig. 3 pipeline
    print(sweeper.antibodies)                        # shareable VSEFs

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.errors import (AttackDetected, ProcessExited, RecoveryFailed,
                          ReproError, VMFault)
from repro.isa import assemble, Image
from repro.machine import Process, load_program
from repro.machine.layout import (AddressSpaceLayout, ReferenceLayout,
                                  randomized_layout)
from repro.runtime import Sweeper, SweeperConfig, VirtualClock
from repro.antibody import (VSEF, CommunityBus, SandboxVerifier,
                            install_vsef, verify_antibody)
from repro.apps import (EXPLOITS, ExploitStream, TrafficStream,
                        benign_requests, build_cvsd, build_httpd,
                        build_squidp, apache1_exploit, apache2_exploit,
                        cvs_exploit, squid_exploit, measure_throughput)
from repro.worm import (FleetConfig, FleetResult, WormParams,
                        infection_ratio, run_fleet, solve_outbreak,
                        simulate_outbreak)

__version__ = "1.0.0"

__all__ = [
    "ReproError", "VMFault", "AttackDetected", "ProcessExited",
    "RecoveryFailed",
    "assemble", "Image", "Process", "load_program",
    "AddressSpaceLayout", "ReferenceLayout", "randomized_layout",
    "Sweeper", "SweeperConfig", "VirtualClock",
    "VSEF", "CommunityBus", "SandboxVerifier", "install_vsef",
    "verify_antibody",
    "EXPLOITS", "ExploitStream", "TrafficStream", "benign_requests",
    "build_cvsd", "build_httpd", "build_squidp", "apache1_exploit",
    "apache2_exploit", "cvs_exploit", "squid_exploit",
    "measure_throughput",
    "FleetConfig", "FleetResult", "WormParams", "infection_ratio",
    "run_fleet", "solve_outbreak", "simulate_outbreak",
    "__version__",
]
