"""Parameter sweeps for Figures 6-8 and end-to-end γ accounting (§6.2-6.3).

Scenario constants follow the paper:

- **Slammer** (Fig. 6): β = 0.1, N = 100 000, reactive defense only.
- **Hit-list** (Figs. 7, 8): β = 1000 / 4000, N = 100 000, proactive
  protection ρ = 2⁻¹² (what "many address randomizations achieve").

γ values sweep {5, 10, 20, 30, 50, 100} seconds and deployment ratios α
sweep the paper's x-axes.  The paper's headline: a measured γ ≈ 2 s of
detection+analysis plus Vigilante's < 3 s dissemination gives γ = 5 s,
which contains even a β = 4000 hit-list worm below 1% — and the abstract's
"under 5%" claim for a sub-second worm holds at tiny α.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.worm.si_model import WormParams, solve_outbreak


@dataclass(frozen=True)
class Scenario:
    name: str
    beta: float
    population: int
    rho: float
    alphas: tuple[float, ...]
    gammas: tuple[float, ...]


#: Fig. 6 — Slammer as observed (reactive only, ρ=1).
SLAMMER = Scenario(name="slammer", beta=0.1, population=100_000, rho=1.0,
                   alphas=(0.1, 0.01, 0.005, 0.001, 0.0001),
                   gammas=(5, 10, 20, 30, 50, 100))

#: Fig. 7 — hit-list worm at β=1000 with proactive protection ρ=2^-12.
HITLIST_1K = Scenario(name="hitlist-1000", beta=1000.0, population=100_000,
                      rho=2.0 ** -12,
                      alphas=(0.5, 0.1, 0.01, 0.001, 0.0001),
                      gammas=(5, 10, 20, 30, 50, 100))

#: Fig. 8 — hit-list worm at β=4000.
HITLIST_4K = Scenario(name="hitlist-4000", beta=4000.0, population=100_000,
                      rho=2.0 ** -12,
                      alphas=(0.5, 0.1, 0.01, 0.001, 0.0001),
                      gammas=(5, 10, 20, 30, 50, 100))


def infection_ratio_grid(scenario: Scenario) -> dict[float, dict[float, float]]:
    """``{gamma: {alpha: infection_ratio}}`` — one curve per γ."""
    grid: dict[float, dict[float, float]] = {}
    for gamma in scenario.gammas:
        row: dict[float, float] = {}
        for alpha in scenario.alphas:
            params = WormParams(beta=scenario.beta,
                                population=scenario.population,
                                producer_ratio=alpha, gamma=gamma,
                                rho=scenario.rho)
            row[alpha] = solve_outbreak(params).infection_ratio
        grid[gamma] = row
    return grid


def figure6_data() -> dict[float, dict[float, float]]:
    """Fig. 6: Sweeper vs Slammer (β=0.1)."""
    return infection_ratio_grid(SLAMMER)


def figure7_data() -> dict[float, dict[float, float]]:
    """Fig. 7: Sweeper + proactive protection vs hit-list (β=1000)."""
    return infection_ratio_grid(HITLIST_1K)


def figure8_data() -> dict[float, dict[float, float]]:
    """Fig. 8: Sweeper + proactive protection vs hit-list (β=4000)."""
    return infection_ratio_grid(HITLIST_4K)


def hybrid_fleet_config(scenario: Scenario, executed_nodes: int,
                        producers: int, seed: int = 0,
                        benign_rate: float = 0.01,
                        horizon: float = 300.0,
                        max_contacts: int = 250_000,
                        workers: int = 0) -> "FleetConfig":
    """Map a Fig. 6-8 scenario onto an executed-core + Gillespie-halo
    fleet: ``executed_nodes`` real Sweeper guests embedded in the
    scenario's full population as modeled hosts.

    The epidemic population becomes ``scenario.population`` exactly —
    the executed core supplies the producers (so α is realized by real
    analysis pipelines publishing on a real bus) and the halo makes up
    the difference, which is how a few hundred booted guests carry the
    community claim at the paper's 10⁵-host scale.  Only ρ = 1
    scenarios are executable today: the emergent-ρ regime derives ρ
    from layout entropy per *executed* consumer, and a modeled host has
    no layout to collide with.
    """
    from repro.worm.fleet import FleetConfig

    if scenario.rho != 1.0:
        raise ValueError(
            f"scenario {scenario.name!r} assumes rho={scenario.rho}; the "
            f"hybrid fleet executes rho=1 cores (emergent rho needs "
            f"executed consumers, not modeled ones)")
    if executed_nodes > scenario.population:
        raise ValueError("executed core exceeds the scenario population")
    return FleetConfig(
        seed=seed,
        vulnerable_nodes=executed_nodes,
        producers=producers,
        extra_apps=(),
        beta=scenario.beta,
        rho=scenario.rho,
        benign_rate=benign_rate,
        horizon=horizon,
        max_contacts=max_contacts,
        halo_hosts=scenario.population - executed_nodes,
        workers=workers)


def end_to_end_gamma(analysis_seconds: float,
                     dissemination_seconds: float = 3.0) -> float:
    """γ = γ₁ (detect+analyze, measured from the pipeline) + γ₂
    (dissemination; Vigilante's measured < 3 s)."""
    return analysis_seconds + dissemination_seconds


def containment_summary(gamma: float, alpha: float = 0.0001,
                        beta: float = 1000.0,
                        population: int = 100_000,
                        rho: float = 2.0 ** -12) -> float:
    """The abstract's claim: infection ratio for a hit-list worm that
    would otherwise own every vulnerable host in under a second."""
    params = WormParams(beta=beta, population=population,
                        producer_ratio=alpha, gamma=gamma, rho=rho)
    return solve_outbreak(params).infection_ratio
