"""Community defense modeling (§6): SI epidemics, hit-list worms, sweeps.

- :mod:`repro.worm.si_model` — the paper's equations (1)-(4): a
  Susceptible-Infected epidemic with a Producer sub-population that
  begins antibody generation on first contact, plus the proactive
  ``rho`` attenuation of hit-list worms under address randomization.
- :mod:`repro.worm.community` — α/γ parameter sweeps reproducing
  Figures 6, 7 and 8, and the end-to-end γ accounting that ties the
  measured Sweeper pipeline times into the model.
- :mod:`repro.worm.simulation` — a discrete-event (Gillespie) stochastic
  worm simulator used to cross-validate the ODE model.
"""

from repro.worm.si_model import (WormParams, OutbreakResult, solve_outbreak,
                                 infection_ratio, time_to_first_contact)
from repro.worm.community import (figure6_data, figure7_data, figure8_data,
                                  infection_ratio_grid, end_to_end_gamma,
                                  SLAMMER, HITLIST_1K, HITLIST_4K)
from repro.worm.simulation import simulate_outbreak, SimulationResult
from repro.worm.fleet import (FleetConfig, FleetNode, FleetResult,
                              run_fleet)
from repro.worm.export import grid_to_csv, series_for_gamma

__all__ = [
    "grid_to_csv", "series_for_gamma",
    "WormParams", "OutbreakResult", "solve_outbreak", "infection_ratio",
    "time_to_first_contact",
    "figure6_data", "figure7_data", "figure8_data", "infection_ratio_grid",
    "end_to_end_gamma", "SLAMMER", "HITLIST_1K", "HITLIST_4K",
    "simulate_outbreak", "SimulationResult",
    "FleetConfig", "FleetNode", "FleetResult", "run_fleet",
]
