"""Exporters for the worm-model figures (CSV / gnuplot-friendly).

The benches render ASCII tables; these helpers produce machine-readable
series for anyone regenerating the figures with their own plotting
stack.
"""

from __future__ import annotations

import csv
import io

from repro.worm.community import Scenario, infection_ratio_grid


def grid_to_csv(scenario: Scenario,
                grid: dict[float, dict[float, float]] | None = None) -> str:
    """Render a γ×α infection-ratio grid as CSV.

    Columns: ``gamma`` then one column per deployment ratio α, matching
    the figures' one-curve-per-γ layout.
    """
    if grid is None:
        grid = infection_ratio_grid(scenario)
    out = io.StringIO()
    writer = csv.writer(out)
    alphas = list(scenario.alphas)
    writer.writerow(["gamma"] + [f"alpha={alpha}" for alpha in alphas])
    for gamma in scenario.gammas:
        writer.writerow([gamma] + [f"{grid[gamma][alpha]:.6f}"
                                   for alpha in alphas])
    return out.getvalue()


def series_for_gamma(scenario: Scenario, gamma: float,
                     grid: dict[float, dict[float, float]] | None = None
                     ) -> list[tuple[float, float]]:
    """One figure curve: (alpha, infection_ratio) pairs for a given γ."""
    if grid is None:
        grid = infection_ratio_grid(scenario)
    if gamma not in grid:
        raise KeyError(f"gamma {gamma} not in scenario "
                       f"(has {sorted(grid)})")
    return [(alpha, grid[gamma][alpha]) for alpha in scenario.alphas]
