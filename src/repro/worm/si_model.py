"""The paper's epidemic model (§6.1, equations (1)-(4)).

Susceptible-Infected dynamics with a Producer fraction α::

    dI/dt = β·ρ·I·(1 - α - I/N)          (1)/(3)
    dP/dt = α·β·I·(1 - P/(α·N))          (2)/(4)

``I`` is the number of infected hosts, ``P`` the number of Producers
contacted by at least one infection attempt, ``β`` the per-infected
contact rate toward vulnerable hosts, and ``ρ`` the probability that one
infection attempt defeats proactive protection (address-space
randomization); ``ρ = 1`` recovers the reactive-only equations (1)-(2).
Note ρ attenuates *infection* but not *producer contact*: a failed
attempt still crashes a Producer's server, which is exactly the
detection signal.

``T0`` is when ``P`` first reaches 1 — the earliest moment any Producer
can start analysis.  All hosts are immune at ``T0 + γ`` (γ = analysis
time γ₁ + dissemination time γ₂), so the outbreak's final size is
``I(T0 + γ)`` and the infection ratio is ``I(T0 + γ)/N``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp


@dataclass(frozen=True)
class WormParams:
    """One outbreak scenario."""

    beta: float                 # contact rate per infected host (1/s)
    population: int             # N, vulnerable hosts
    producer_ratio: float       # α
    gamma: float                # response time γ = γ1 + γ2 (s)
    rho: float = 1.0            # proactive-protection bypass probability
    initial_infected: float = 1.0

    def __post_init__(self):
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if not 0 <= self.producer_ratio < 1:
            raise ValueError("producer ratio must be in [0, 1)")
        if not 0 < self.rho <= 1:
            raise ValueError("rho must be in (0, 1]")
        if self.population <= 0:
            raise ValueError("population must be positive")
        if self.gamma < 0:
            raise ValueError("gamma cannot be negative")


@dataclass(frozen=True)
class OutbreakResult:
    """Solved outbreak."""

    params: WormParams
    t0: float                   # time of first producer contact
    infected_at_t0: float
    final_infected: float       # I(T0 + γ)
    infection_ratio: float      # I(T0 + γ) / N
    contained: bool             # producers existed and T0 was reached


def _derivatives(params: WormParams):
    beta, alpha = params.beta, params.producer_ratio
    population, rho = params.population, params.rho
    producers = alpha * population

    def fn(_t, state):
        infected, contacted = state
        infected = min(max(infected, 0.0), population)
        susceptible_fraction = max(0.0, 1.0 - alpha
                                   - infected / population)
        d_infected = beta * rho * infected * susceptible_fraction
        if producers > 0:
            d_contacted = (beta * infected
                           * max(0.0, 1.0 - contacted / producers) * alpha)
        else:
            d_contacted = 0.0
        return (d_infected, d_contacted)

    return fn


def time_to_first_contact(params: WormParams,
                          horizon: float = 1e7) -> float | None:
    """``T0``: when the first Producer receives an infection attempt."""
    if params.producer_ratio <= 0:
        return None

    def first_contact(_t, state):
        return state[1] - 1.0

    first_contact.terminal = True
    first_contact.direction = 1.0
    solution = solve_ivp(_derivatives(params), (0.0, horizon),
                         (params.initial_infected, 0.0),
                         events=first_contact, rtol=1e-8, atol=1e-10,
                         dense_output=True)
    if solution.t_events[0].size == 0:
        return None
    return float(solution.t_events[0][0])


def solve_outbreak(params: WormParams, horizon: float = 1e7
                   ) -> OutbreakResult:
    """Solve the outbreak: find ``T0`` then integrate to ``T0 + γ``."""
    t0 = time_to_first_contact(params, horizon=horizon)
    if t0 is None:
        # No producers are ever contacted: the worm saturates the
        # susceptible consumers unimpeded.
        final = params.population * (1.0 - params.producer_ratio)
        return OutbreakResult(params=params, t0=float("inf"),
                              infected_at_t0=final, final_infected=final,
                              infection_ratio=final / params.population,
                              contained=False)
    end = t0 + params.gamma
    # A gamma of zero (or small enough to vanish in float addition)
    # collapses to a single evaluation point.
    eval_times = np.array([t0, end]) if end > t0 else np.array([t0])
    solution = solve_ivp(_derivatives(params), (0.0, end),
                         (params.initial_infected, 0.0),
                         t_eval=eval_times, rtol=1e-8, atol=1e-10)
    infected_at_t0 = float(solution.y[0][0])
    final = float(solution.y[0][-1])
    final = min(final, params.population * (1.0 - params.producer_ratio))
    return OutbreakResult(params=params, t0=t0,
                          infected_at_t0=infected_at_t0,
                          final_infected=final,
                          infection_ratio=final / params.population,
                          contained=True)


def infection_ratio(beta: float, population: int, producer_ratio: float,
                    gamma: float, rho: float = 1.0) -> float:
    """Convenience wrapper: the quantity Figures 6-8 plot."""
    params = WormParams(beta=beta, population=population,
                        producer_ratio=producer_ratio, gamma=gamma, rho=rho)
    return solve_outbreak(params).infection_ratio
