"""The executed community fleet: N real Sweeper nodes on one shared bus.

Everything §6 of the paper claims about the *community* — producers pay
for analysis once, consumers are protected within γ = γ₁ + γ₂ — was
previously modeled only as ODE/Gillespie aggregates (:mod:`si_model`,
:mod:`simulation`).  This module closes the loop: a discrete-event,
virtual-time scheduler boots N *actual* ``Sweeper``-protected guest
processes (mixed httpd/squidp/cvsd, mixed producer/consumer roles),
drives them with interleaved benign traffic and worm contacts, and lets
producers publish antibodies that consumers apply off one shared
:class:`~repro.antibody.distribution.CommunityBus` — so t₀, γ and the
final infection ratio are **measured from executed nodes**.

Roles map onto the epidemic model exactly:

- **Producers** (the α fraction) run the full Sweeper stack on a
  *randomized* layout: a worm contact faults (the lightweight
  detection), triggers real rollback/replay analysis, and publishes
  VSEFs + signatures on the bus.  γ₁ is whatever the executed pipeline
  takes.
- **Susceptible consumers** run *without* proactive protection
  (reference layout, ``randomize_layout=False``) and without analysis
  modules: a worm contact genuinely hijacks control flow — the httpd
  backdoor answers ``OWNED!`` and the host is infected.  Once a bundle
  is available on the bus, a consumer applies it before its next event
  and the same contact is *blocked by an executed VSEF* instead.

**Cross-validation by construction.**  The worm contact process draws
from its rng in *exactly* the sequence :func:`simulate_outbreak` does —
one ``expovariate(β·I)`` gap per contact, one uniform roll to pick the
target bucket (producers / susceptible / rest), one ρ draw in the
susceptible branch — while node *identities* within a bucket come from
a separate rng.  A fleet run with seed *s* therefore realizes the same
stochastic trajectory as ``simulate_outbreak(seed=s, γ=measured γ)``:
t₀ matches to float precision and infection counts match exactly,
*provided the executed defenses behave as the model assumes*.  Any
divergence (an antibody that fails to block, an exploit that fails to
land) breaks the match — which is precisely what makes the comparison a
test of the executed system.  The ODE solution is compared with a loose
tolerance (one stochastic realization at small N sits well off the
continuum limit).

Only the reactive regime ρ = 1 is executable today: susceptible
consumers are unrandomized, so every landed contact owns them — the
Slammer/Fig. 6 setting.  ρ < 1 would randomize consumer layouts and let
the collision probability emerge from execution; that is an open item.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import random
import time
from dataclasses import dataclass, field

from repro.antibody.distribution import CommunityBus
from repro.apps.cvsd import build_cvsd
from repro.apps.exploits import APP_EXPLOITS, EXPLOITS, ExploitStream
from repro.apps.httpd import build_httpd
from repro.apps.squidp import build_squidp
from repro.apps.workload import TrafficStream
from repro.errors import ReproError
from repro.machine.cpu import CPU_HZ
from repro.runtime.sweeper import Sweeper, SweeperConfig
from repro.worm.simulation import simulate_outbreak

_BUILDERS = {"httpd": build_httpd, "squidp": build_squidp, "cvsd": build_cvsd}

#: What the httpd backdoor answers when a hijack lands: the infection
#: signal the fleet reads off the executed responses.
_INFECTION_MARKER = b"OWNED!"

#: Exploits that genuinely *own* an unrandomized host (reach a gadget
#: that answers with the marker) rather than just crashing it; only
#: these can play the worm.  Today that is the Apache1 stack smash.
_OWNING_EXPLOITS = {"Apache1"}

_KIND_BENIGN = 0
_KIND_CONTACT = 1


class FleetDivergence(ReproError):
    """The executed fleet departed from the epidemic process it mirrors
    (e.g. a patient-zero exploit failed to land)."""


@dataclass(frozen=True)
class FleetConfig:
    """One fleet scenario.

    The worm targets ``vulnerable_app``; those nodes form the epidemic
    population N (``producers`` of them run full analysis, so
    α = producers / N).  ``extra_apps`` nodes ride along serving benign
    traffic only — mixed-workload realism plus aggregate throughput.
    """

    seed: int = 0
    vulnerable_app: str = "httpd"
    vulnerable_nodes: int = 20          # epidemic population N
    producers: int = 4                  # α·N of the vulnerable population
    #: (app, consumers, producers) triples of along-for-the-ride nodes.
    extra_apps: tuple[tuple[str, int, int], ...] = (("squidp", 2, 1),
                                                    ("cvsd", 2, 1))
    worm_exploit: str = "Apache1"       # must own an unrandomized host
    beta: float = 0.4                   # worm contacts/s per infected node
    rho: float = 1.0                    # only the reactive regime executes
    benign_rate: float = 0.3            # benign requests/s per node
    gamma2: float = 3.0                 # bus dissemination latency γ₂
    horizon: float = 60.0               # hard virtual-time stop
    #: Keep running this long past community immunity so blocked
    #: contacts are demonstrated, then stop (everything after immunity
    #: is epidemiologically frozen).
    post_immunity_slack: float = 6.0
    checkpoint_interval_ms: float = 200.0
    max_contacts: int = 100_000

    @property
    def total_nodes(self) -> int:
        return self.vulnerable_nodes + sum(c + p for _, c, p
                                           in self.extra_apps)


@dataclass
class FleetNode:
    """One executed node and its epidemic bookkeeping."""

    index: int
    name: str
    app: str
    role: str                           # "producer" | "consumer"
    vulnerable: bool
    sweeper: Sweeper
    traffic: TrafficStream
    arrivals: random.Random             # inter-arrival draws (per-node)
    infected: bool = False
    infected_at: float | None = None
    immune_at: float | None = None
    requests: int = 0
    responses: int = 0
    contacts: int = 0
    worm: ExploitStream | None = None   # armed when this node is infected

    def report(self) -> dict:
        sweeper = self.sweeper
        return {
            "name": self.name, "app": self.app, "role": self.role,
            "vulnerable": self.vulnerable,
            "infected": self.infected, "infected_at": self.infected_at,
            "immune_at": self.immune_at,
            "benign_requests": self.requests,
            "benign_responses": self.responses,
            "worm_contacts": self.contacts,
            "attacks_analyzed": len(sweeper.attacks),
            "detections": len(sweeper.detections),
            "antibodies": len(sweeper.antibodies),
            "requests_filtered": sweeper.proxy.filtered_count,
            "virtual_time": sweeper.clock,
        }


@dataclass
class FleetResult:
    """What one executed fleet run measured."""

    population: int
    producers: int
    producer_ratio: float
    beta: float
    rho: float
    seed: int
    total_nodes: int
    t0: float | None                    # first producer contact (fleet time)
    availability: float | None          # first bundle reachable on the bus
    gamma_measured: float | None        # availability - t0 = γ₁ + γ₂
    gamma1_first_vsef: float | None     # detect → first VSEF, first analysis
    infected_final: int
    infection_ratio: float
    contacts: int
    contacts_to_producers: int
    contacts_blocked: int               # delivered to a consumer, defended
    contacts_wasted: int                # landed on an already-infected host
    benign_sent: int
    benign_responses: int
    bundles_published: int
    total_guest_cycles: int
    wall_seconds: float
    aggregate_insns_per_second: float
    nodes: list[dict] = field(default_factory=list)
    gillespie: dict | None = None       # matched-seed simulate_outbreak
    model: dict | None = None           # solve_outbreak (needs scipy)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _validate(config: FleetConfig):
    if config.rho != 1.0:
        raise ReproError(
            "the executed fleet supports only rho = 1.0 (susceptible "
            "consumers run unrandomized so worm contacts genuinely land); "
            "rho < 1 needs layout-randomized consumers — see ROADMAP")
    if config.producers < 1:
        raise ReproError("a community needs at least one producer")
    if config.producers >= config.vulnerable_nodes:
        raise ReproError("the vulnerable population must contain "
                         "susceptible consumers")
    spec = EXPLOITS.get(config.worm_exploit)
    if spec is None or spec.app != config.vulnerable_app or \
            config.worm_exploit not in APP_EXPLOITS[config.vulnerable_app]:
        raise ReproError(f"worm exploit {config.worm_exploit!r} does not "
                         f"target {config.vulnerable_app!r}")
    if config.worm_exploit not in _OWNING_EXPLOITS:
        raise ReproError(
            f"worm exploit {config.worm_exploit!r} cannot own a host: only "
            f"control-flow hijacks that succeed on an unrandomized layout "
            f"({', '.join(sorted(_OWNING_EXPLOITS))}) are executable as "
            f"infections — the others merely crash the target")


class _FleetRun:
    """One in-flight execution of :func:`run_fleet`."""

    def __init__(self, config: FleetConfig):
        _validate(config)
        self.config = config
        #: The epidemic rng — consumed in exactly simulate_outbreak's
        #: draw order so a fleet run is a matched Gillespie realization.
        self.rng_contacts = random.Random(config.seed)
        #: Node-identity rng: which concrete node within a drawn bucket.
        self.detail = random.Random((config.seed << 16) ^ 0x5F1EE7)
        self.bus = CommunityBus(dissemination_latency=config.gamma2)
        self.nodes: list[FleetNode] = []
        self._build_nodes()
        self.v_producers = [n for n in self.nodes
                            if n.vulnerable and n.role == "producer"]
        self.v_consumers = [n for n in self.nodes
                            if n.vulnerable and n.role == "consumer"]
        self.population = len(self.v_producers) + len(self.v_consumers)
        self.susceptible = list(self.v_consumers)
        self.infected: list[FleetNode] = []

        self.heap: list[tuple[float, int, int, int]] = []
        self._seq = itertools.count()
        self.t0: float | None = None
        self.contacts = 0
        self.contacts_to_producers = 0
        self.contacts_blocked = 0
        self.contacts_wasted = 0
        self.benign_sent = 0
        self.benign_responses = 0

    # -- construction -------------------------------------------------------

    def _node_config(self, role: str, vulnerable: bool,
                     seed: int) -> SweeperConfig:
        producer = role == "producer"
        return SweeperConfig(
            seed=seed,
            checkpoint_interval_ms=self.config.checkpoint_interval_ms,
            enable_membug=producer, enable_taint=producer,
            enable_slicing=producer,
            publish_antibodies=producer,
            dissemination_latency=self.config.gamma2,
            # Susceptible consumers are the unprotected hosts of the
            # model: no address randomization, so the worm owns them.
            randomize_layout=not (vulnerable and not producer))

    def _build_nodes(self):
        config = self.config
        images = {}
        roster: list[tuple[str, str, bool]] = []
        for i in range(config.producers):
            roster.append((config.vulnerable_app, "producer", True))
        for i in range(config.vulnerable_nodes - config.producers):
            roster.append((config.vulnerable_app, "consumer", True))
        for app, consumers, producers in config.extra_apps:
            for i in range(producers):
                roster.append((app, "producer", False))
            for i in range(consumers):
                roster.append((app, "consumer", False))
        counters: dict[tuple[str, str], itertools.count] = {}
        for index, (app, role, vulnerable) in enumerate(roster):
            if app not in images:
                images[app] = _BUILDERS[app]()
            ordinal = next(counters.setdefault((app, role),
                                               itertools.count(1)))
            node = FleetNode(
                index=index,
                name=f"{app}-{role[0]}{ordinal}",
                app=app, role=role, vulnerable=vulnerable,
                sweeper=Sweeper(
                    images[app], app_name=app,
                    config=self._node_config(role, vulnerable,
                                             seed=config.seed * 31 + index),
                    bus=self.bus if role == "producer" else None),
                traffic=TrafficStream(
                    app, seed=config.seed * 9_000_007 + index),
                arrivals=random.Random(config.seed * 1_000_003
                                       + 7919 * index + 11))
            self.bus.subscribe(node.name)
            self.nodes.append(node)

    # -- scheduling ---------------------------------------------------------

    def _push(self, t: float, kind: int, idx: int):
        heapq.heappush(self.heap, (t, next(self._seq), kind, idx))

    def _cutoff(self) -> float:
        avail = self.bus.first_available_time(self.config.vulnerable_app)
        if avail is None:
            return self.config.horizon
        return min(self.config.horizon,
                   avail + self.config.post_immunity_slack)

    # -- delivery -----------------------------------------------------------

    def _apply_bus(self, node: FleetNode, t: float):
        """Antibodies available by ``t`` apply before the node serves its
        next event — the consumer's poll-on-wake discipline."""
        for bundle in self.bus.poll(node.name, t):
            if bundle.app != node.app:
                continue
            applied = node.sweeper.apply_foreign_vsefs(bundle.vsefs)
            for signature in bundle.signatures:
                node.sweeper.proxy.signatures.add(signature)
            if (applied or bundle.signatures) and node.immune_at is None:
                node.immune_at = t

    def _deliver(self, node: FleetNode, data: bytes, t: float) -> list[bytes]:
        self._apply_bus(node, t)
        node.sweeper.vclock.advance_to(t)
        # The steppable split: arrival is logged (and filtered) at the
        # event time, then the node advances through its inbox.
        node.sweeper.schedule(data)
        return node.sweeper.advance()

    def _deliver_contact(self, node: FleetNode, payload: bytes,
                         t: float) -> bool:
        """Deliver one worm contact; returns True if the host was owned."""
        responses = self._deliver(node, payload, t)
        node.contacts += 1
        owned = any(_INFECTION_MARKER in r for r in responses)
        if owned and not node.infected:
            node.infected = True
            node.infected_at = t
            node.worm = ExploitStream(
                self.config.worm_exploit,
                seed=self.config.seed * 5_000_011 + node.index)
            self.infected.append(node)
            if node in self.susceptible:
                self.susceptible.remove(node)
        return owned

    def _worm_payload(self) -> bytes:
        attacker = self.infected[self.detail.randrange(len(self.infected))]
        return attacker.worm.next_payload()

    # -- event handlers -----------------------------------------------------

    def _handle_benign(self, node: FleetNode, t: float):
        if node.infected:
            return                      # owned host: out of service
        responses = self._deliver(node, node.traffic.next_request(), t)
        node.requests += 1
        node.responses += len(responses)
        self.benign_sent += 1
        self.benign_responses += len(responses)
        if self.config.benign_rate > 0:
            nxt = t + node.arrivals.expovariate(self.config.benign_rate)
            if nxt <= self._cutoff():
                self._push(nxt, _KIND_BENIGN, node.index)

    def _handle_contact(self, t: float):
        """One worm contact, mirroring simulate_outbreak's draws:
        uniform roll over the population picks the bucket, a ρ draw is
        consumed in the susceptible branch, and the realized outcome is
        whatever the executed node does with the payload."""
        rng = self.rng_contacts
        self.contacts += 1
        roll = rng.random() * self.population
        n_producers = len(self.v_producers)
        if roll < n_producers:
            target = self.v_producers[self.detail.randrange(n_producers)]
            self.contacts_to_producers += 1
            if self.t0 is None:
                self.t0 = t
            self._deliver_contact(target, self._worm_payload(), t)
        elif roll < n_producers + len(self.susceptible):
            rng.random()                # the ρ draw (ρ = 1: always lands)
            target = self.susceptible[
                self.detail.randrange(len(self.susceptible))]
            owned = self._deliver_contact(target, self._worm_payload(), t)
            if not owned:
                self.contacts_blocked += 1
        else:
            # Contact on an already-infected host: wasted, like the
            # model's "else" bucket.  Not delivered — the process there
            # is the worm now, not the server.
            self.contacts_wasted += 1
        if self.contacts < self.config.max_contacts:
            gap = rng.expovariate(self.config.beta * len(self.infected))
            if t + gap <= self._cutoff():
                self._push(t + gap, _KIND_CONTACT, -1)

    # -- main loop ----------------------------------------------------------

    def run(self) -> FleetResult:
        config = self.config
        wall_start = time.perf_counter()

        if config.benign_rate > 0:
            for node in self.nodes:
                self._push(node.arrivals.expovariate(config.benign_rate),
                           _KIND_BENIGN, node.index)

        # Patient zero (t = 0): an external attacker owns one consumer —
        # the model's single initially-infected host.
        attacker = ExploitStream(config.worm_exploit,
                                 seed=config.seed * 5_000_011 - 1)
        patient = self.v_consumers[
            self.detail.randrange(len(self.v_consumers))]
        if not self._deliver_contact(patient, attacker.next_payload(), 0.0):
            raise FleetDivergence(
                f"patient-zero exploit failed to own {patient.name}")
        # First contact gap, exactly as the Gillespie loop draws it.
        gap = self.rng_contacts.expovariate(config.beta * len(self.infected))
        if gap <= self._cutoff():
            self._push(gap, _KIND_CONTACT, -1)

        while self.heap:
            t, _, kind, idx = heapq.heappop(self.heap)
            if t > self._cutoff():
                break
            if kind == _KIND_BENIGN:
                self._handle_benign(self.nodes[idx], t)
            else:
                self._handle_contact(t)

        return self._result(time.perf_counter() - wall_start)

    # -- results ------------------------------------------------------------

    def _result(self, wall_seconds: float) -> FleetResult:
        config = self.config
        availability = self.bus.first_available_time(config.vulnerable_app)
        gamma = (availability - self.t0
                 if availability is not None and self.t0 is not None
                 else None)
        gamma1 = None
        for node in self.v_producers:
            if node.sweeper.attacks:
                record = node.sweeper.attacks[0]
                if record.first_vsef_at is not None:
                    gamma1 = record.first_vsef_at - record.detected_at
                break
        total_cycles = sum(n.sweeper.process.cpu.cycles for n in self.nodes)
        infected_final = len(self.infected)
        result = FleetResult(
            population=self.population,
            producers=len(self.v_producers),
            producer_ratio=len(self.v_producers) / self.population,
            beta=config.beta, rho=config.rho, seed=config.seed,
            total_nodes=len(self.nodes),
            t0=self.t0, availability=availability, gamma_measured=gamma,
            gamma1_first_vsef=gamma1,
            infected_final=infected_final,
            infection_ratio=infected_final / self.population,
            contacts=self.contacts,
            contacts_to_producers=self.contacts_to_producers,
            contacts_blocked=self.contacts_blocked,
            contacts_wasted=self.contacts_wasted,
            benign_sent=self.benign_sent,
            benign_responses=self.benign_responses,
            bundles_published=len(self.bus.published),
            total_guest_cycles=total_cycles,
            wall_seconds=wall_seconds,
            aggregate_insns_per_second=total_cycles / wall_seconds
            if wall_seconds > 0 else 0.0,
            nodes=[node.report() for node in self.nodes])
        self._cross_validate(result)
        return result

    def _cross_validate(self, result: FleetResult):
        """Replay the same epidemic in the aggregate models with the
        *measured* γ plugged in."""
        if result.gamma_measured is None:
            return
        config = self.config
        sim = simulate_outbreak(
            beta=config.beta, population=result.population,
            producer_ratio=result.producer_ratio,
            gamma=result.gamma_measured, rho=config.rho, seed=config.seed)
        result.gillespie = {
            "t0": sim.t0,
            "final_infected": sim.final_infected,
            "infection_ratio": sim.infection_ratio,
        }
        try:
            from repro.worm.si_model import WormParams, solve_outbreak
        except ImportError:             # scipy not available: skip the ODE
            return
        ode = solve_outbreak(WormParams(
            beta=config.beta, population=result.population,
            producer_ratio=result.producer_ratio,
            gamma=result.gamma_measured, rho=config.rho))
        result.model = {
            "t0": ode.t0,
            "infection_ratio": ode.infection_ratio,
        }


def run_fleet(config: FleetConfig | None = None) -> FleetResult:
    """Boot the fleet, run the outbreak, measure, cross-validate."""
    return _FleetRun(config or FleetConfig()).run()
