"""The executed community fleet: N real Sweeper nodes on one shared bus.

Everything §6 of the paper claims about the *community* — producers pay
for analysis once, consumers are protected within γ = γ₁ + γ₂ — was
previously modeled only as ODE/Gillespie aggregates (:mod:`si_model`,
:mod:`simulation`).  This module closes the loop: a discrete-event,
virtual-time scheduler boots N *actual* ``Sweeper``-protected guest
processes (mixed httpd/squidp/cvsd, mixed producer/consumer roles),
drives them with interleaved benign traffic and worm contacts, and lets
producers publish antibodies that consumers apply off one shared
:class:`~repro.antibody.distribution.CommunityBus` — so t₀, γ and the
final infection ratio are **measured from executed nodes**.

Roles map onto the epidemic model exactly:

- **Producers** (the α fraction) run the full Sweeper stack on a
  *randomized* layout: a worm contact faults (the lightweight
  detection), triggers real rollback/replay analysis, and publishes
  VSEFs + signatures on the bus.  γ₁ is whatever the executed pipeline
  takes.
- **Susceptible consumers** run *without* proactive protection
  (reference layout, ``randomize_layout=False``) and without analysis
  modules: a worm contact genuinely hijacks control flow — the httpd
  backdoor answers ``OWNED!`` and the host is infected.  Once a bundle
  is available on the bus, a consumer applies it before its next event
  and the same contact is *blocked by an executed VSEF* instead.

**Cross-validation by construction.**  The worm contact process draws
from its rng in *exactly* the sequence :func:`simulate_outbreak` does —
one ``expovariate(β·I)`` gap per contact, one uniform roll to pick the
target bucket (producers / susceptible / rest), one ρ draw in the
susceptible branch — while node *identities* within a bucket come from
a separate rng.  A fleet run with seed *s* therefore realizes the same
stochastic trajectory as ``simulate_outbreak(seed=s, γ=measured γ)``:
t₀ matches to float precision and infection counts match exactly,
*provided the executed defenses behave as the model assumes*.  Any
divergence (an antibody that fails to block, an exploit that fails to
land) breaks the match — which is precisely what makes the comparison a
test of the executed system.  The ODE solution is compared with a loose
tolerance (one stochastic realization at small N sits well off the
continuum limit).

**ρ < 1 is emergent, not assumed.**  With ``entropy_bits = 0`` (the
default) susceptible consumers are unrandomized and every landed
contact owns them — the reactive Slammer/Fig. 6 regime, ρ = 1.  With
``entropy_bits = b > 0`` consumers load *randomized* layouts: the worm
payload still embeds the reference-layout gadget address, so a hijack
lands only on a consumer whose exploit-critical region slide happens to
be 0 — probability 2^-b per layout, the paper's ρ — and faults
(detected, recovered, host stays clean) everywhere else.  Nothing
consults ρ to decide the outcome; the executed collision does.
Consumers are grouped into *layout cohorts* that share one layout draw,
so golden-image COW forking keeps working (one boot per cohort, not per
node); ``layout_sampling="stratified"`` pins cohort k's critical slide
to stratum k — stratum 0 is the colliding class — which both guarantees
the rare stratum is populated (importance splitting: measure a 2^-12
event without 2^12 nodes) and gives the reweighted estimator
ρ̂ = 2^-b·ĥ₀ + (1-2^-b)·ĥ_rest with per-stratum binomial variance.
Trials are *first* worm contacts per node (layouts are frozen at boot,
so re-contacts replay the same outcome and are not independent
evidence), delivered before the node holds any antibody.

**Bundles are verified before installation.**  Consumers poll the bus
and hand each bundle to :meth:`Sweeper.apply_bundle`: a bundle carrying
its exploit input replays in a sandboxed fork (one shared
:class:`~repro.antibody.verify.SandboxVerifier` boot per app, restored
copy-on-write per trial) and is *rejected — logged, never installed —*
unless something detects the attack; input-less early bundles apply
immediately and verify when the input arrives (§3.3's deferrable
verification).  Verification costs host wall clock only, never consumer
virtual time, so the ρ = 1 trajectory is bit-identical with it on.

**Scale.**  Fleets of hundreds of nodes pay three structural costs, all
fixed here without changing a single popped-event order at any N:

- *Boot and checkpoint memory*: nodes sharing an (image, layout) fork a
  :class:`~repro.runtime.golden.GoldenImageCache` golden image instead
  of re-executing initialization, and the forked pages are shared
  copy-on-write — so N idle consumers hold ~1 copy of the post-boot
  working set, not N (the CXL-style structural-sharing move).
- *Lazy materialization*: a node builds its Sweeper stack only on first
  contact/request; untouched nodes report their (golden-derived) boot
  state and cost nothing.  Exactness is free because a node's virtual
  clock is its own — boot advances it identically whenever it runs.
- *Scheduling*: the single flat event heap becomes a
  :class:`ShardedEventQueue` — per-shard heaps merged through a
  head-pointer heap, with batch (heapify) scheduling of the initial
  benign traffic.  A process-wide push counter keeps the pop order
  bit-identical to the flat heap's, so determinism never depends on the
  shard map.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math
import random
import time
from dataclasses import dataclass, field

from repro.antibody.distribution import CommunityBus
from repro.antibody.verify import SandboxVerifier
from repro.apps.cvsd import build_cvsd
from repro.apps.exploits import APP_EXPLOITS, EXPLOITS, ExploitStream
from repro.apps.httpd import build_httpd
from repro.apps.squidp import build_squidp
from repro.apps.workload import TrafficStream
from repro.errors import ReproError
from repro.machine.cpu import CPU_HZ
from repro.machine.layout import randomized_layout
from repro.machine.memory import PAGE_SIZE
from repro.runtime.golden import GoldenImageCache
from repro.runtime.sweeper import Sweeper, SweeperConfig, boot_layout
from repro.worm.simulation import GillespieHalo, simulate_outbreak

_BUILDERS = {"httpd": build_httpd, "squidp": build_squidp, "cvsd": build_cvsd}

#: What the httpd backdoor answers when a hijack lands: the infection
#: signal the fleet reads off the executed responses.
_INFECTION_MARKER = b"OWNED!"

#: Exploits that genuinely *own* an unrandomized host (reach a gadget
#: that answers with the marker) rather than just crashing it; only
#: these can play the worm.  Today that is the Apache1 stack smash.
_OWNING_EXPLOITS = {"Apache1"}

_KIND_BENIGN = 0
_KIND_CONTACT = 1


class FleetDivergence(ReproError):
    """The executed fleet departed from the epidemic process it mirrors
    (e.g. a patient-zero exploit failed to land)."""


@dataclass(frozen=True)
class FleetConfig:
    """One fleet scenario.

    The worm targets ``vulnerable_app``; those nodes form the epidemic
    population N (``producers`` of them run full analysis, so
    α = producers / N).  ``extra_apps`` nodes ride along serving benign
    traffic only — mixed-workload realism plus aggregate throughput.
    """

    seed: int = 0
    vulnerable_app: str = "httpd"
    vulnerable_nodes: int = 20          # epidemic population N
    producers: int = 4                  # α·N of the vulnerable population
    #: (app, consumers, producers) triples of along-for-the-ride nodes.
    extra_apps: tuple[tuple[str, int, int], ...] = (("squidp", 2, 1),
                                                    ("cvsd", 2, 1))
    worm_exploit: str = "Apache1"       # must own an unrandomized host
    beta: float = 0.4                   # worm contacts/s per infected node
    #: The analytic ρ the run is cross-validated against.  Not a free
    #: knob: 1.0 (derived — the reactive regime at entropy_bits = 0, or
    #: 2^-entropy_bits when entropy is set) or explicitly equal to
    #: 2^-entropy_bits.  The *executed* outcome never consults it.
    rho: float = 1.0
    #: ρ < 1, executably.  0 keeps reference-layout consumers (every
    #: landed contact owns the host).  b > 0 randomizes susceptible
    #: consumers with b bits of per-region entropy, so a hijack lands
    #: only via an executed layout collision — analytic ρ = 2^-b.
    entropy_bits: int = 0
    #: Layout cohorts across the susceptible consumers: one layout draw
    #: — and one golden boot image — per cohort, nodes assigned
    #: round-robin.  0 picks min(2^entropy_bits, susceptible nodes).
    layout_cohorts: int = 0
    #: "stratified": cohort k's exploit-critical slide is pinned to
    #: stratum k (stratum 0 collides; non-zero strata sampled without
    #: replacement when cohorts < 2^b) — the importance-splitting design
    #: that populates the rare stratum by construction.  "iid": every
    #: cohort draws all slides independently — plain sampling, which at
    #: high entropy will usually miss the colliding stratum entirely.
    layout_sampling: str = "stratified"
    #: Sandbox-verify bundles on the consumer delivery path; rejected
    #: bundles are logged and never installed.  Trajectory-neutral (the
    #: sandbox spends host wall clock, not consumer virtual time).
    verify_bundles: bool = True
    benign_rate: float = 0.3            # benign requests/s per node
    gamma2: float = 3.0                 # bus dissemination latency γ₂
    horizon: float = 60.0               # hard virtual-time stop
    #: Keep running this long past community immunity so blocked
    #: contacts are demonstrated, then stop (everything after immunity
    #: is epidemiologically frozen).
    post_immunity_slack: float = 6.0
    checkpoint_interval_ms: float = 200.0
    max_contacts: int = 100_000
    #: Event-queue shards; 0 picks ~√N automatically.  Any value yields
    #: the identical event order (the queue's push counter is global).
    scheduler_shards: int = 0
    #: Shard worker *processes* hosting the executed nodes (0 = host
    #: everything in this process).  Nodes map to workers by
    #: ``index % workers``; the coordinator keeps every epidemic rng
    #: draw and pops the queue in global push-counter order, so the
    #: trajectory is bit-identical at any worker count (see
    #: :mod:`repro.worm.parallel`).
    workers: int = 0
    #: Gillespie halo: modeled hosts surrounding the executed core.  The
    #: epidemic population becomes ``vulnerable_nodes + halo_hosts``,
    #: contacts cross the core↔halo boundary in both directions, and
    #: conservation (no host in both tiers) is asserted per contact.
    #: 0 runs the pure-executed fleet, bit-identical to before the halo
    #: existed (the halo consumes no extra epidemic rng draws).
    halo_hosts: int = 0

    @property
    def total_nodes(self) -> int:
        return self.vulnerable_nodes + sum(c + p for _, c, p
                                           in self.extra_apps)


class ShardedEventQueue:
    """K per-shard heaps merged through a heap of shard-head pointers.

    ``push``/``pop`` keep each shard's heap small (events for one slice
    of the fleet), and the top-level heap only tracks one pointer per
    non-empty shard.  Entries carry a queue-wide monotone sequence
    number, so the pop order is exactly the flat-heap order ``(t, seq)``
    regardless of how nodes map to shards.  Head pointers go stale when
    a push supersedes a shard's head; stale pointers are skipped on pop
    (sequence numbers are unique, so a match is exact and nothing pops
    twice).  ``extend`` batch-schedules with one heapify per shard
    instead of N pushes — how the initial benign traffic is seeded.
    """

    __slots__ = ("_heaps", "_top", "_seq", "_len")

    def __init__(self, shards: int = 1):
        self._heaps: list[list[tuple[float, int, int, int]]] = \
            [[] for _ in range(max(1, shards))]
        self._top: list[tuple[float, int, int]] = []
        self._seq = itertools.count()
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def shards(self) -> int:
        return len(self._heaps)

    def push(self, t: float, kind: int, idx: int):
        shard = idx % len(self._heaps)
        heap = self._heaps[shard]
        entry = (t, next(self._seq), kind, idx)
        heapq.heappush(heap, entry)
        self._len += 1
        if heap[0] is entry:
            heapq.heappush(self._top, (t, entry[1], shard))

    def extend(self, items):
        """Batch-schedule ``(t, kind, idx)`` triples (sequence numbers
        follow iteration order, matching one-by-one pushes)."""
        for t, kind, idx in items:
            self._heaps[idx % len(self._heaps)].append(
                (t, next(self._seq), kind, idx))
            self._len += 1
        self._top = []
        for shard, heap in enumerate(self._heaps):
            heapq.heapify(heap)
            if heap:
                self._top.append((heap[0][0], heap[0][1], shard))
        heapq.heapify(self._top)

    def pop(self) -> tuple[float, int, int] | None:
        """The globally earliest event as ``(t, kind, idx)``."""
        while self._top:
            t, seq, shard = heapq.heappop(self._top)
            heap = self._heaps[shard]
            if not heap or heap[0][0] != t or heap[0][1] != seq:
                continue                      # stale head pointer
            entry = heapq.heappop(heap)
            self._len -= 1
            if heap:
                heapq.heappush(self._top, (heap[0][0], heap[0][1], shard))
            return entry[0], entry[2], entry[3]
        return None


@dataclass
class LayoutCohort:
    """One shared layout draw across a slice of susceptible consumers.

    Members load the identical randomized layout (``layout_seed`` +
    optional pinned critical slide), so they fork one golden boot image
    — the COW savings survive randomization.  The cohort is also the
    estimator's stratum: ``trials``/``hits`` tally each member's *first*
    pre-immunity worm contact and whether it genuinely owned the host.
    """

    index: int
    layout_seed: int
    pin: dict[str, int] | None
    critical_slide: int         # realized slide of the exploit-critical region
    collides: bool              # slide == 0: the worm's address guess lands
    nodes: int = 0
    trials: int = 0
    hits: int = 0

    def report(self) -> dict:
        return {"cohort": self.index, "critical_slide": self.critical_slide,
                "collides": self.collides, "nodes": self.nodes,
                "trials": self.trials, "hits": self.hits}


@dataclass
class FleetNode:
    """One executed node and its epidemic bookkeeping.

    The Sweeper stack is *lazy*: ``sweeper`` stays ``None`` until the
    scheduler first delivers an event to this node, at which point the
    node materializes — forked from a golden boot image when one exists
    for its (app, layout).  An untouched node is pure bookkeeping.
    """

    index: int
    name: str
    app: str
    role: str                           # "producer" | "consumer"
    vulnerable: bool
    config: SweeperConfig
    traffic: TrafficStream
    arrivals: random.Random             # inter-arrival draws (per-node)
    sweeper: Sweeper | None = None
    infected: bool = False
    infected_at: float | None = None
    immune_at: float | None = None
    requests: int = 0
    responses: int = 0
    contacts: int = 0
    worm: ExploitStream | None = None   # armed when this node is infected
    #: Layout cohort membership (emergent-ρ consumers only).
    cohort: int | None = None
    collides: bool | None = None

    def report(self) -> dict:
        sweeper = self.sweeper
        return {
            "name": self.name, "app": self.app, "role": self.role,
            "vulnerable": self.vulnerable,
            "infected": self.infected, "infected_at": self.infected_at,
            "immune_at": self.immune_at,
            "benign_requests": self.requests,
            "benign_responses": self.responses,
            "worm_contacts": self.contacts,
            "attacks_analyzed": len(sweeper.attacks),
            "detections": len(sweeper.detections),
            "antibodies": len(sweeper.antibodies),
            "requests_filtered": sweeper.proxy.filtered_count,
            "bundles_verified": sum(1 for o in sweeper.bundle_log
                                    if o.verified is True),
            "bundles_rejected": sum(1 for o in sweeper.bundle_log
                                    if o.verified is False),
            "virtual_time": sweeper.clock,
        }

    def boot_stub_report(self, boot_clock: float) -> dict:
        """What :meth:`report` would say for a node that booted but was
        never touched — synthesized so untouched nodes need not boot."""
        return {
            "name": self.name, "app": self.app, "role": self.role,
            "vulnerable": self.vulnerable,
            "infected": False, "infected_at": None, "immune_at": None,
            "benign_requests": 0, "benign_responses": 0,
            "worm_contacts": 0, "attacks_analyzed": 0, "detections": 0,
            "antibodies": 0, "requests_filtered": 0,
            "bundles_verified": 0, "bundles_rejected": 0,
            "virtual_time": boot_clock,
        }


@dataclass
class FleetResult:
    """What one executed fleet run measured."""

    population: int
    producers: int
    producer_ratio: float
    beta: float
    rho: float
    seed: int
    total_nodes: int
    t0: float | None                    # first producer contact (fleet time)
    availability: float | None          # first bundle reachable on the bus
    gamma_measured: float | None        # availability - t0 = γ₁ + γ₂
    gamma1_first_vsef: float | None     # detect → first VSEF, first analysis
    infected_final: int
    infection_ratio: float
    contacts: int
    contacts_to_producers: int
    contacts_blocked: int               # delivered to a consumer, defended
    contacts_wasted: int                # landed on an already-infected host
    #: Hijacks defeated by an executed layout collision failure: the
    #: exploit's address guess missed and the consumer faulted clean
    #: (always 0 in the ρ = 1 regime).
    contacts_faulted: int
    benign_sent: int
    benign_responses: int
    bundles_published: int
    total_guest_cycles: int
    wall_seconds: float
    aggregate_insns_per_second: float
    #: Scale accounting: how many nodes ever materialized a Sweeper
    #: stack, and how the golden-image cache served them.
    nodes_materialized: int = 0
    golden: dict | None = None          # GoldenImageCache.stats()
    #: Checkpoint/live page sharing across the fleet (bytes); excluded
    #: from regression gates, asserted sub-linear by the scale bench.
    memory: dict | None = None
    #: Emergent-ρ accounting (None in the ρ = 1 regime): cohort design,
    #: per-stratum trial/hit tallies and the reweighted estimator.
    layout: dict | None = None
    #: Sandbox bundle-verification accounting (None when disabled).
    verification: dict | None = None
    #: Gillespie-halo accounting (None without a halo): modeled-tier
    #: counts, boundary crossings and the conservation check.
    halo: dict | None = None
    #: Worker-pool accounting (None in-process): per-worker node
    #: ownership, events executed and peak RSS.  Topology-dependent, so
    #: excluded from trajectory comparisons like ``memory``.
    workers: dict | None = None
    nodes: list[dict] = field(default_factory=list)
    gillespie: dict | None = None       # matched-seed simulate_outbreak
    model: dict | None = None           # solve_outbreak (needs scipy)

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        # Absent features stay absent from the payload, so tracked
        # baselines written before the halo/worker fields existed remain
        # byte-stable and the regression gate's key walk never sees a
        # one-sided key.
        if self.halo is None:
            data.pop("halo")
        if self.workers is None:
            data.pop("workers")
        return data


def _validate(config: FleetConfig):
    if config.entropy_bits < 0:
        raise ReproError("entropy_bits must be >= 0")
    # Checked in every regime so a typo staged at rho = 1 surfaces
    # immediately, not when entropy_bits is later flipped on.
    if config.layout_sampling not in ("iid", "stratified"):
        raise ReproError(f"unknown layout_sampling "
                         f"{config.layout_sampling!r} "
                         "(expected 'iid' or 'stratified')")
    if config.layout_cohorts < 0:
        raise ReproError("layout_cohorts must be >= 0")
    if config.entropy_bits == 0:
        if config.rho != 1.0:
            raise ReproError(
                "rho is not a free knob: with entropy_bits = 0 the fleet "
                "executes the reactive regime rho = 1.0 (susceptible "
                "consumers run unrandomized so worm contacts genuinely "
                "land); set entropy_bits = b to execute rho = 2^-b as "
                "emergent layout collisions instead of assuming it")
    else:
        derived = 2.0 ** -config.entropy_bits
        if config.rho not in (1.0, derived):
            raise ReproError(
                f"rho is derived from entropy_bits "
                f"(2^-{config.entropy_bits} = {derived}); leave it at the "
                f"default or set it to the derived value")
        if config.layout_cohorts > 2 ** config.entropy_bits:
            raise ReproError(
                f"layout_cohorts = {config.layout_cohorts} exceeds the "
                f"2^{config.entropy_bits} distinct strata of the critical "
                f"slide — cohorts beyond that cannot be distinct")
    if config.producers < 1:
        raise ReproError("a community needs at least one producer")
    if config.producers >= config.vulnerable_nodes:
        raise ReproError("the vulnerable population must contain "
                         "susceptible consumers")
    spec = EXPLOITS.get(config.worm_exploit)
    if spec is None or spec.app != config.vulnerable_app or \
            config.worm_exploit not in APP_EXPLOITS[config.vulnerable_app]:
        raise ReproError(f"worm exploit {config.worm_exploit!r} does not "
                         f"target {config.vulnerable_app!r}")
    if config.worm_exploit not in _OWNING_EXPLOITS:
        raise ReproError(
            f"worm exploit {config.worm_exploit!r} cannot own a host: only "
            f"control-flow hijacks that succeed on an unrandomized layout "
            f"({', '.join(sorted(_OWNING_EXPLOITS))}) are executable as "
            f"infections — the others merely crash the target")
    if config.entropy_bits > 0 and spec.hijack_region is None:
        raise ReproError(
            f"worm exploit {config.worm_exploit!r} embeds no absolute "
            f"address guess (hijack_region is None), so randomization "
            f"cannot attenuate it — emergent rho < 1 needs a layout-"
            f"dependent hijack")
    if config.workers < 0 or config.workers > 64:
        raise ReproError("workers must be between 0 (in-process) and 64")
    if config.halo_hosts < 0:
        raise ReproError("halo_hosts must be >= 0")


# -- roster construction (shared with the parallel workers) ----------------
#
# Building the fleet roster is a pure function of the config: cohort
# planning, node configs, traffic/arrival rngs, image construction —
# no booting, no rng shared with the epidemic process.  Worker
# processes (:mod:`repro.worm.parallel`) rebuild the identical roster
# from the pickled config alone, which is what makes the coordinator ↔
# worker protocol small: messages carry node *indices*, never node
# state.

def plan_cohorts(config: FleetConfig) -> list[LayoutCohort]:
    """Draw the susceptible population's layout cohorts.

    Each cohort is one concrete randomized layout; members fork one
    golden boot image.  Stratified sampling pins cohort k's
    exploit-critical slide to stratum value k — stratum 0 *is* the
    colliding class, so the rare event is populated by construction
    (the importance-splitting move); with fewer cohorts than strata
    the non-zero strata are sampled without replacement from a
    dedicated rng.  The layout draw itself mirrors
    :func:`~repro.runtime.sweeper.boot_layout` exactly, so the
    planned slide is the slide the booted node genuinely loads.
    """
    bits = config.entropy_bits
    susceptible = config.vulnerable_nodes - config.producers
    count = config.layout_cohorts or min(2 ** bits, susceptible)
    count = max(1, min(count, susceptible))
    region = EXPLOITS[config.worm_exploit].hijack_region
    if config.layout_sampling == "stratified":
        if count == 2 ** bits:
            strata = list(range(count))
        else:
            picker = random.Random(config.seed ^ 0x57A7B17E)
            strata = [0] + sorted(picker.sample(
                range(1, 2 ** bits), count - 1))
    else:
        strata = [None] * count
    cohorts = []
    for k, stratum in enumerate(strata):
        layout_seed = config.seed * 4_900_019 + 1009 * k + 7
        pin = {region: stratum} if stratum is not None else None
        layout = randomized_layout(random.Random(layout_seed),
                                   entropy_bits=bits, pin=pin)
        slide = layout.slide_pages[region]
        cohorts.append(LayoutCohort(
            index=k, layout_seed=layout_seed, pin=pin,
            critical_slide=slide, collides=slide == 0))
    return cohorts


def _node_config(config: FleetConfig, role: str, vulnerable: bool,
                 seed: int, cohort: LayoutCohort | None = None,
                 layout_seed: int | None = None) -> SweeperConfig:
    producer = role == "producer"
    susceptible = vulnerable and not producer
    if susceptible and cohort is not None:
        # Emergent ρ: a randomized consumer on its cohort's layout.
        randomize, entropy = True, config.entropy_bits
        layout_seed, layout_pin = cohort.layout_seed, cohort.pin
    else:
        # Susceptible consumers in the ρ = 1 regime are the model's
        # unprotected hosts: no address randomization, so the worm
        # owns them.  Producers/riders randomize at full entropy
        # (layout_seed shares producer cohort draws when set).
        randomize, entropy = not susceptible, None
        layout_pin = None
    kwargs = {} if entropy is None else {"entropy_bits": entropy}
    return SweeperConfig(
        seed=seed,
        checkpoint_interval_ms=config.checkpoint_interval_ms,
        enable_membug=producer, enable_taint=producer,
        enable_slicing=producer,
        publish_antibodies=producer,
        dissemination_latency=config.gamma2,
        randomize_layout=randomize,
        layout_seed=layout_seed, layout_pin=layout_pin,
        verify_foreign=config.verify_bundles,
        **kwargs)


def build_roster(config: FleetConfig
                 ) -> tuple[list[FleetNode], dict[str, object],
                            list[LayoutCohort]]:
    """Build the fleet roster as pure bookkeeping; no node boots here.

    Returns ``(nodes, images, cohorts)``.  Sweeper stacks materialize
    on first delivered event (see :meth:`NodeHost._sweeper`), so a
    512-node fleet only ever pays for the nodes the outbreak actually
    touches.  Deterministic per config — coordinator and every worker
    process build byte-identical rosters independently; the caller
    subscribes the nodes it hosts to its own bus.
    """
    emergent = config.entropy_bits > 0
    cohorts = plan_cohorts(config) if emergent else []
    images: dict[str, object] = {}
    nodes: list[FleetNode] = []
    roster: list[tuple[str, str, bool]] = []
    for i in range(config.producers):
        roster.append((config.vulnerable_app, "producer", True))
    for i in range(config.vulnerable_nodes - config.producers):
        roster.append((config.vulnerable_app, "consumer", True))
    for app, consumers, producers in config.extra_apps:
        for i in range(producers):
            roster.append((app, "producer", False))
        for i in range(consumers):
            roster.append((app, "consumer", False))
    counters: dict[tuple[str, str], itertools.count] = {}
    # Emergent mode shares layout draws: susceptible consumers join
    # their round-robin cohort, and producers form layout cohorts of
    # their own (capped at the consumer-cohort count) so randomized
    # producers fork golden boot images too.
    producer_cohorts = (min(config.producers, len(cohorts))
                        if emergent else 0)
    susceptible_seen = producers_seen = 0
    for index, (app, role, vulnerable) in enumerate(roster):
        if app not in images:
            images[app] = _BUILDERS[app]()
        ordinal = next(counters.setdefault((app, role),
                                           itertools.count(1)))
        cohort = producer_layout_seed = None
        if emergent and vulnerable:
            if role == "consumer":
                cohort = cohorts[susceptible_seen % len(cohorts)]
                cohort.nodes += 1
                susceptible_seen += 1
            else:
                producer_layout_seed = (
                    config.seed * 7_700_011
                    + 101 * (producers_seen % producer_cohorts) + 13)
                producers_seen += 1
        nodes.append(FleetNode(
            index=index,
            name=f"{app}-{role[0]}{ordinal}",
            app=app, role=role, vulnerable=vulnerable,
            config=_node_config(config, role, vulnerable,
                                seed=config.seed * 31 + index,
                                cohort=cohort,
                                layout_seed=producer_layout_seed),
            traffic=TrafficStream(
                app, seed=config.seed * 9_000_007 + index),
            arrivals=random.Random(config.seed * 1_000_003
                                   + 7919 * index + 11),
            cohort=cohort.index if cohort is not None else None,
            collides=cohort.collides if cohort is not None else None))
    return nodes, images, cohorts


class NodeHost:
    """The node-hosting surface: materialize lazily, apply the bus,
    deliver events.

    Shared verbatim by the in-process fleet (:class:`_FleetRun`) and the
    per-process worker harness (:class:`repro.worm.parallel`), so the
    executed delivery semantics cannot drift between the sequential and
    parallel paths.  A host provides ``images``, ``bus`` (the bus its
    nodes poll), ``golden``, ``verifier`` and a ``materialized``
    counter; producers publish to whatever :meth:`_node_bus` returns
    (the real community bus in-process, a recording buffer in a
    worker).
    """

    images: dict
    golden: GoldenImageCache
    materialized: int

    def _node_bus(self, node: FleetNode):
        return self.bus if node.role == "producer" else None

    def _sweeper(self, node: FleetNode) -> Sweeper:
        """The node's Sweeper stack, materializing it on first use.

        Materialization order cannot perturb the trajectory: boot state
        is deterministic per (image, layout, seed) — golden-forked or
        eager — and each node's virtual clock is its own, advanced by
        boot identically whenever boot happens.
        """
        if node.sweeper is None:
            node.sweeper = Sweeper(
                self.images[node.app], app_name=node.app,
                config=node.config,
                bus=self._node_bus(node),
                golden=self.golden)
            self.materialized += 1
        return node.sweeper

    def _apply_bus(self, node: FleetNode, sweeper: Sweeper, t: float):
        """Antibodies available by ``t`` apply before the node serves its
        next event — the consumer's poll-on-wake discipline.  Each bundle
        goes through the verified delivery path: replayed in a sandboxed
        fork when it carries its exploit input, rejected (never
        installed) when nothing detects the attack."""
        for bundle in self.bus.poll(node.name, t):
            if bundle.app != node.app:
                continue
            outcome = sweeper.apply_bundle(bundle, verifier=self.verifier)
            if (outcome.vsefs or outcome.signatures) \
                    and node.immune_at is None:
                node.immune_at = t

    def _deliver(self, node: FleetNode, data: bytes, t: float) -> list[bytes]:
        sweeper = self._sweeper(node)
        self._apply_bus(node, sweeper, t)
        sweeper.vclock.advance_to(t)
        # The steppable split: arrival is logged (and filtered) at the
        # event time, then the node advances through its inbox.
        sweeper.schedule(data)
        return sweeper.advance()


class _FleetRun(NodeHost):
    """One in-flight execution of :func:`run_fleet`."""

    def __init__(self, config: FleetConfig):
        _validate(config)
        self.config = config
        #: Emergent-ρ regime: consumer layouts randomized, ρ = 2^-b.
        self.emergent = config.entropy_bits > 0
        #: The analytic ρ cross-validation runs against — derived, never
        #: steering an executed outcome.
        self.rho = (2.0 ** -config.entropy_bits if self.emergent
                    else config.rho)
        #: Worker pool, forked *before* the coordinator builds any heavy
        #: state so the child processes start from a near-empty image
        #: and rebuild their rosters from the config alone.
        self.pool = None
        if config.workers:
            from repro.worm.parallel import FleetWorkerPool
            self.pool = FleetWorkerPool(config)
        #: The epidemic rng — consumed in exactly simulate_outbreak's
        #: draw order so a fleet run is a matched Gillespie realization.
        self.rng_contacts = random.Random(config.seed)
        #: Node-identity rng: which concrete node within a drawn bucket.
        self.detail = random.Random((config.seed << 16) ^ 0x5F1EE7)
        self.bus = CommunityBus(dissemination_latency=config.gamma2)
        self.golden = GoldenImageCache()
        #: In-process verification only: with a worker pool the real
        #: sandboxes live in the workers, and the coordinator replays
        #: their accounting logically (see parallel._VerifierReplay).
        self.verifier = (SandboxVerifier()
                         if config.verify_bundles and not config.workers
                         else None)
        self.materialized = 0
        self.nodes, self.images, self.cohorts = build_roster(config)
        for node in self.nodes:
            self.bus.subscribe(node.name)
        self.v_producers = [n for n in self.nodes
                            if n.vulnerable and n.role == "producer"]
        self.v_consumers = [n for n in self.nodes
                            if n.vulnerable and n.role == "consumer"]
        self.population = len(self.v_producers) + len(self.v_consumers)
        self.susceptible = list(self.v_consumers)
        self.infected: list[FleetNode] = []
        #: The modeled tier: aggregate Gillespie state around the core.
        self.halo = (GillespieHalo(config.halo_hosts, self.rho)
                     if config.halo_hosts else None)
        #: One payload stream for all halo attackers (a modeled attacker
        #: has no per-node identity; the stream seed is disjoint from
        #: every executed node's worm stream and from patient zero's).
        self.halo_worm = (ExploitStream(config.worm_exploit,
                                        seed=config.seed * 5_000_011 - 2)
                          if self.halo else None)
        self.total_population = self.population + config.halo_hosts
        #: Core↔halo contact bookkeeping by (attacker tier, target tier).
        self.boundary = {"core_to_core": 0, "core_to_halo": 0,
                         "halo_to_core": 0, "halo_to_halo": 0}
        if self.pool is not None:
            self.pool.bind(self)

        shards = config.scheduler_shards or \
            max(1, int(round(config.total_nodes ** 0.5)))
        self.queue = ShardedEventQueue(shards)
        self.t0: float | None = None
        self.contacts = 0
        self.contacts_to_producers = 0
        self.contacts_blocked = 0
        self.contacts_wasted = 0
        self.contacts_faulted = 0
        self.benign_sent = 0
        self.benign_responses = 0

    # -- scheduling ---------------------------------------------------------

    def _push(self, t: float, kind: int, idx: int):
        self.queue.push(t, kind, idx)

    def _cutoff(self) -> float:
        avail = self.bus.first_available_time(self.config.vulnerable_app)
        if avail is None:
            return self.config.horizon
        return min(self.config.horizon,
                   avail + self.config.post_immunity_slack)

    # -- delivery -----------------------------------------------------------

    def _deliver_contact(self, node: FleetNode, payload: bytes,
                         t: float) -> bool:
        """Deliver one worm contact; returns True if the host was owned.

        With a worker pool the guest execution happens on the node's
        owning worker (a synchronous round-trip, since infection state
        feeds the very next epidemic draw); all bookkeeping — infected
        roster, susceptible list, the attacker's payload stream — stays
        here on the coordinator either way."""
        if self.pool is not None:
            owned = self.pool.dispatch_contact(node, payload, t)
            node.contacts += 1
        else:
            responses = self._deliver(node, payload, t)
            node.contacts += 1
            owned = any(_INFECTION_MARKER in r for r in responses)
        if owned and not node.infected:
            node.infected = True
            node.infected_at = t
            node.worm = ExploitStream(
                self.config.worm_exploit,
                seed=self.config.seed * 5_000_011 + node.index)
            self.infected.append(node)
            if node in self.susceptible:
                self.susceptible.remove(node)
        return owned

    def _infected_total(self) -> int:
        return len(self.infected) + \
            (self.halo.infected if self.halo is not None else 0)

    def _draw_attacker(self) -> tuple[bool, FleetNode | None]:
        """Uniform attacker draw over *all* infected hosts, executed and
        modeled: ``(from_halo, node)`` with ``node`` None for a halo
        attacker.  With no halo this is exactly the historical
        ``detail.randrange(len(infected))`` draw."""
        executed = len(self.infected)
        k = self.detail.randrange(self._infected_total())
        if k < executed:
            return False, self.infected[k]
        return True, None

    def _worm_payload(self) -> tuple[bytes, bool]:
        """One worm payload and whether its attacker is a halo host."""
        from_halo, attacker = self._draw_attacker()
        if from_halo:
            return self.halo_worm.next_payload(), True
        return attacker.worm.next_payload(), False

    def _count_boundary(self, from_halo: bool, to_halo: bool):
        if self.halo is None:
            return
        self.boundary[f"{'halo' if from_halo else 'core'}_to_"
                      f"{'halo' if to_halo else 'core'}"] += 1

    def _assert_conservation(self):
        """No host counted in both tiers, none lost: the executed core
        partitions into producers/susceptible/infected and the halo into
        susceptible/infected, summing to the combined population after
        every contact."""
        halo = self.halo
        if halo is None:
            return
        core = len(self.v_producers) + len(self.susceptible) \
            + len(self.infected)
        if core != self.population \
                or halo.susceptible + halo.infected != halo.hosts:
            raise FleetDivergence(
                f"core/halo conservation violated at contact "
                f"{self.contacts}: core {core}/{self.population}, halo "
                f"{halo.susceptible}+{halo.infected}/{halo.hosts}")

    # -- event handlers -----------------------------------------------------

    def _handle_benign(self, node: FleetNode, t: float):
        if node.infected:
            return                      # owned host: out of service
        if self.pool is not None:
            # Fire-and-forget: a benign event publishes nothing and
            # feeds no epidemic draw, so the coordinator never waits on
            # it — this is where the wall-clock parallelism comes from.
            # Response tallies are collected once, at finalize.
            self.pool.dispatch_benign(node, t)
            node.requests += 1
            self.benign_sent += 1
        else:
            responses = self._deliver(node, node.traffic.next_request(), t)
            node.requests += 1
            node.responses += len(responses)
            self.benign_sent += 1
            self.benign_responses += len(responses)
        if self.config.benign_rate > 0:
            nxt = t + node.arrivals.expovariate(self.config.benign_rate)
            if nxt <= self._cutoff():
                self._push(nxt, _KIND_BENIGN, node.index)

    def _handle_contact(self, t: float):
        """One worm contact, mirroring simulate_outbreak's draws:
        uniform roll over the *combined* population picks the bucket, a
        ρ draw is consumed in each susceptible branch, and the realized
        outcome is whatever the executed node does with the payload —
        or, in the halo bucket, what the model's ρ draw decides for a
        modeled host.  With ``halo_hosts = 0`` the draw sequence is
        byte-identical to the historical pure-executed one."""
        rng = self.rng_contacts
        halo = self.halo
        self.contacts += 1
        roll = rng.random() * self.total_population
        n_producers = len(self.v_producers)
        if roll < n_producers:
            target = self.v_producers[self.detail.randrange(n_producers)]
            self.contacts_to_producers += 1
            if self.t0 is None:
                self.t0 = t
            payload, from_halo = self._worm_payload()
            self._count_boundary(from_halo, to_halo=False)
            self._deliver_contact(target, payload, t)
        elif roll < n_producers + len(self.susceptible):
            # The model's ρ draw is consumed to mirror its sequence, but
            # never decides the outcome: at ρ = 1 every delivered hijack
            # genuinely lands, and in the emergent regime the target's
            # executed layout collision decides.
            rng.random()
            target = self.susceptible[
                self.detail.randrange(len(self.susceptible))]
            first_contact = target.contacts == 0
            payload, from_halo = self._worm_payload()
            self._count_boundary(from_halo, to_halo=False)
            owned = self._deliver_contact(target, payload, t)
            if not owned:
                if target.immune_at is not None:
                    self.contacts_blocked += 1
                else:
                    # Emergent layout defense: the address guess missed
                    # and the consumer faulted clean.
                    self.contacts_faulted += 1
            if first_contact and target.cohort is not None and \
                    (owned or target.immune_at is None):
                # One estimator trial per node: its first worm contact,
                # delivered before any antibody reached it.  Layouts are
                # frozen at boot, so re-contacts replay the same outcome
                # and are not independent evidence.
                cohort = self.cohorts[target.cohort]
                cohort.trials += 1
                if owned:
                    cohort.hits += 1
        elif halo is not None and roll < n_producers \
                + len(self.susceptible) + halo.susceptible:
            # A modeled susceptible host.  Same draws as the executed
            # susceptible branch — one ρ draw, one attacker-identity
            # draw — so the combined process is one Gillespie
            # realization whichever tier the roll lands in; here the ρ
            # draw *decides* (there is no layout to collide with), and
            # community immunity blocks exactly as it freezes the core.
            draw = rng.random()
            from_halo, _ = self._draw_attacker()
            self._count_boundary(from_halo, to_halo=True)
            avail = self.bus.first_available_time(
                self.config.vulnerable_app)
            halo.contact(draw, immune=avail is not None and t >= avail)
        else:
            # Contact on an already-infected host (either tier): wasted,
            # like the model's "else" bucket.  Not delivered — the
            # process there is the worm now, not the server.
            self.contacts_wasted += 1
        self._assert_conservation()
        if self.contacts < self.config.max_contacts:
            gap = rng.expovariate(self.config.beta * self._infected_total())
            if t + gap <= self._cutoff():
                self._push(t + gap, _KIND_CONTACT, -1)

    # -- main loop ----------------------------------------------------------

    def run(self) -> FleetResult:
        try:
            return self._run()
        finally:
            if self.pool is not None:
                self.pool.close()

    def _run(self) -> FleetResult:
        config = self.config
        wall_start = time.perf_counter()

        if config.benign_rate > 0:
            # Batch-scheduled: one heapify per shard, not N heap pushes.
            self.queue.extend(
                (node.arrivals.expovariate(config.benign_rate),
                 _KIND_BENIGN, node.index) for node in self.nodes)

        # Patient zero (t = 0): an external attacker owns one consumer —
        # the model's single initially-infected host.  In the emergent
        # regime the attacker's foothold is necessarily a host whose
        # layout its exploit defeats, so patient zero is drawn from the
        # colliding stratum (its forced contact never counts as a trial:
        # trials are tallied only for scheduler-delivered contacts).
        attacker = ExploitStream(config.worm_exploit,
                                 seed=config.seed * 5_000_011 - 1)
        candidates = self.v_consumers
        if self.emergent:
            candidates = [n for n in self.v_consumers if n.collides]
            if not candidates:
                raise FleetDivergence(
                    f"no susceptible consumer drew the colliding layout "
                    f"(entropy_bits={config.entropy_bits}, "
                    f"{len(self.cohorts)} {config.layout_sampling} "
                    f"cohorts): patient zero cannot exist — stratified "
                    f"sampling populates stratum 0 by construction")
        patient = candidates[self.detail.randrange(len(candidates))]
        if not self._deliver_contact(patient, attacker.next_payload(), 0.0):
            raise FleetDivergence(
                f"patient-zero exploit failed to own {patient.name}")
        # First contact gap, exactly as the Gillespie loop draws it.
        gap = self.rng_contacts.expovariate(config.beta * len(self.infected))
        if gap <= self._cutoff():
            self._push(gap, _KIND_CONTACT, -1)

        while True:
            event = self.queue.pop()
            if event is None:
                break
            t, kind, idx = event
            if t > self._cutoff():
                break
            if kind == _KIND_BENIGN:
                self._handle_benign(self.nodes[idx], t)
            else:
                self._handle_contact(t)

        return self._result(time.perf_counter() - wall_start)

    # -- results ------------------------------------------------------------

    def _boot_clock_for(self, node: FleetNode) -> tuple[float, int] | None:
        """(virtual clock, guest cycles) an untouched ``node`` would show
        after boot.

        Boot statistics are layout-independent, so *any* golden image of
        the node's app under the same checkpoint config serves — an
        untouched randomized-layout producer reads its numbers off the
        consumer image instead of booting."""
        golden = self.golden.boot_stats(
            self.images[node.app], node.config.checkpoint_interval_ms,
            node.config.max_checkpoints)
        if golden is None:
            return None
        return golden.boot_clock_delta, golden.boot_cycles

    def _node_report(self, node: FleetNode) -> tuple[dict, int]:
        """(report dict, guest cycles) — synthesizing the boot stub for
        untouched nodes once any sibling image exists, materializing
        (boot state only, identical to eager) at most once per app."""
        if node.sweeper is None:
            boot = self._boot_clock_for(node)
            if boot is not None:
                return node.boot_stub_report(boot[0]), boot[1]
            self._sweeper(node)
        return node.report(), node.sweeper.process.cpu.cycles

    def _rho_report(self) -> dict | None:
        """The emergent-ρ measurement: per-stratum tallies plus the
        reweighted estimator.

        ``rho_measured`` is the raw executed hijack ratio over trials —
        under proportional (round-robin, equal-size cohort) allocation
        it estimates ρ directly.  ``rho_estimate`` reweights per-stratum
        rates by the strata's true probabilities, which is what makes
        the importance-split design unbiased when the colliding stratum
        is deliberately over-allocated: ρ̂ = w₀·ĥ₀ + (1-w₀)·ĥ_rest with
        w₀ = 2^-b, and the stated variance is the per-stratum binomial
        sum.  ``iid`` sampling has no design weights: estimate ==
        measured, variance p̂(1-p̂)/T.
        """
        if not self.emergent:
            return None
        config = self.config
        w0 = self.rho
        trials = sum(c.trials for c in self.cohorts)
        hits = sum(c.hits for c in self.cohorts)
        colliding = [c for c in self.cohorts if c.collides]
        rest = [c for c in self.cohorts if not c.collides]
        n0 = sum(c.trials for c in colliding)
        h0_hits = sum(c.hits for c in colliding)
        nr = sum(c.trials for c in rest)
        hr_hits = sum(c.hits for c in rest)
        measured = hits / trials if trials else None
        estimate = variance = None
        if config.layout_sampling == "stratified":
            if n0:
                h0 = h0_hits / n0
                hr = hr_hits / nr if nr else 0.0
                estimate = w0 * h0 + (1.0 - w0) * hr
                variance = w0 ** 2 * h0 * (1.0 - h0) / n0
                if nr:
                    variance += (1.0 - w0) ** 2 * hr * (1.0 - hr) / nr
        elif trials:
            estimate = measured
            variance = measured * (1.0 - measured) / trials
        return {
            "entropy_bits": config.entropy_bits,
            "sampling": config.layout_sampling,
            "cohorts": len(self.cohorts),
            "critical_region":
                EXPLOITS[config.worm_exploit].hijack_region,
            "colliding_nodes": sum(c.nodes for c in colliding),
            "trials": trials,
            "hits": hits,
            "rho_analytic": w0,
            "rho_measured": measured,
            "rho_estimate": estimate,
            "rho_stddev": (math.sqrt(variance)
                           if variance is not None else None),
            "per_cohort": [c.report() for c in self.cohorts],
        }

    def _verification_report(self) -> dict | None:
        """Fleet-wide sandbox verification tallies (delivery path)."""
        if self.verifier is None:
            return None
        verified = rejected = deferred = 0
        for node in self.nodes:
            if node.sweeper is None:
                continue
            for outcome in node.sweeper.bundle_log:
                if outcome.verified is True:
                    verified += 1
                elif outcome.verified is False:
                    rejected += 1
                else:
                    deferred += 1
        return {"bundles_verified": verified,
                "bundles_rejected": rejected,
                "bundles_applied_unverified": deferred,
                "sandbox": self.verifier.stats()}

    def _memory_stats(self) -> dict:
        """Fleet-wide page sharing: bytes held per node summed (what N
        private copies would cost) vs bytes held once across the fleet
        (what COW golden forking actually costs)."""
        fleet_pages: set[int] = set()
        per_node_sum = 0
        for node in self.nodes:
            if node.sweeper is None:
                continue
            node_pages = node.sweeper.memory_page_identities()
            per_node_sum += len(node_pages)
            fleet_pages |= node_pages
        return {
            "page_bytes_unique": len(fleet_pages) * PAGE_SIZE,
            "page_bytes_per_node_sum": per_node_sum * PAGE_SIZE,
            "sharing_factor": (per_node_sum / len(fleet_pages)
                               if fleet_pages else 1.0),
        }

    def _halo_report(self) -> dict | None:
        if self.halo is None:
            return None
        core = len(self.v_producers) + len(self.susceptible) \
            + len(self.infected)
        halo_sum = self.halo.susceptible + self.halo.infected
        return {**self.halo.report(),
                "core_population": self.population,
                "core_infected": len(self.infected),
                "boundary": dict(self.boundary),
                "conservation": {
                    "core": core, "halo": halo_sum,
                    "total": self.total_population,
                    "ok": core == self.population
                    and halo_sum == self.halo.hosts}}

    def _result(self, wall_seconds: float) -> FleetResult:
        config = self.config
        availability = self.bus.first_available_time(config.vulnerable_app)
        gamma = (availability - self.t0
                 if availability is not None and self.t0 is not None
                 else None)
        if self.pool is not None:
            # Guest state lives in the workers: one finalize round-trip
            # per worker collects node reports, cycle counts, memory
            # identity sets and the per-worker accounting; golden and
            # verification stats come from the coordinator's logical
            # replay of the sequential pattern (see parallel.py).
            summary = self.pool.collect()
            gamma1 = summary["gamma1"]
            memory = summary["memory"]
            materialized = summary["materialized"]
            golden_stats = summary["golden"]
            verification = summary["verification"]
            reports = summary["reports"]
            total_cycles = summary["total_cycles"]
            self.benign_responses = summary["benign_responses"]
            workers_stats = summary["workers"]
        else:
            gamma1 = None
            for node in self.v_producers:
                if node.sweeper is not None and node.sweeper.attacks:
                    record = node.sweeper.attacks[0]
                    if record.first_vsef_at is not None:
                        gamma1 = record.first_vsef_at - record.detected_at
                    break
            # Accounting snapshots *before* report synthesis, which may
            # materialize golden-less untouched nodes just to read their
            # boot state.
            memory = self._memory_stats()
            materialized = self.materialized
            golden_stats = self.golden.stats()
            verification = self._verification_report()
            workers_stats = None
            reports = []
            total_cycles = 0
            for node in self.nodes:
                report, cycles = self._node_report(node)
                reports.append(report)
                total_cycles += cycles
        infected_core = len(self.infected)
        infected_final = infected_core + \
            (self.halo.infected if self.halo is not None else 0)
        result = FleetResult(
            population=self.total_population,
            producers=len(self.v_producers),
            producer_ratio=len(self.v_producers) / self.total_population,
            beta=config.beta, rho=self.rho, seed=config.seed,
            total_nodes=len(self.nodes),
            t0=self.t0, availability=availability, gamma_measured=gamma,
            gamma1_first_vsef=gamma1,
            infected_final=infected_final,
            infection_ratio=infected_final / self.total_population,
            contacts=self.contacts,
            contacts_to_producers=self.contacts_to_producers,
            contacts_blocked=self.contacts_blocked,
            contacts_wasted=self.contacts_wasted,
            contacts_faulted=self.contacts_faulted,
            benign_sent=self.benign_sent,
            benign_responses=self.benign_responses,
            bundles_published=len(self.bus.published),
            total_guest_cycles=total_cycles,
            wall_seconds=wall_seconds,
            aggregate_insns_per_second=total_cycles / wall_seconds
            if wall_seconds > 0 else 0.0,
            nodes_materialized=materialized,
            golden=golden_stats,
            memory=memory,
            layout=self._rho_report(),
            verification=verification,
            halo=self._halo_report(),
            workers=workers_stats,
            nodes=reports)
        self._cross_validate(result)
        return result

    def _cross_validate(self, result: FleetResult):
        """Replay the same epidemic in the aggregate models with the
        *measured* γ plugged in."""
        if result.gamma_measured is None:
            return
        config = self.config
        sim = simulate_outbreak(
            beta=config.beta, population=result.population,
            producer_ratio=result.producer_ratio,
            gamma=result.gamma_measured, rho=self.rho, seed=config.seed)
        result.gillespie = {
            "t0": sim.t0,
            "final_infected": sim.final_infected,
            "infection_ratio": sim.infection_ratio,
        }
        try:
            from repro.worm.si_model import WormParams, solve_outbreak
        except ImportError:             # scipy not available: skip the ODE
            return
        ode = solve_outbreak(WormParams(
            beta=config.beta, population=result.population,
            producer_ratio=result.producer_ratio,
            gamma=result.gamma_measured, rho=self.rho))
        result.model = {
            "t0": ode.t0,
            "infection_ratio": ode.infection_ratio,
        }


def run_fleet(config: FleetConfig | None = None) -> FleetResult:
    """Boot the fleet, run the outbreak, measure, cross-validate."""
    return _FleetRun(config or FleetConfig()).run()
