"""Multi-core fleet execution: shard workers, bit-identical trajectory.

The fleet's costs split cleanly in two.  The *epidemic process* — rng
draws, event scheduling, infected/susceptible rosters — is cheap and
inherently sequential: every contact outcome feeds the very next draw.
The *guest execution* — booting Sweeper stacks, serving benign
requests, running detection/analysis — is >95% of the wall clock and
embarrassingly parallel across nodes.  So the coordinator (the
:class:`~repro.worm.fleet._FleetRun` that owns the epidemic rng and the
:class:`~repro.worm.fleet.ShardedEventQueue`) keeps every draw and
every pop, and ships guest execution to ``config.workers`` forked
processes, each hosting the nodes with ``index % workers == worker_id``.

**Why the trajectory is bit-identical at any worker count.**  The
coordinator pops events in global push-counter order and consumes the
epidemic rng exactly as the sequential fleet does — workers are handed
*decided* events, never decisions.  A worker's guest execution is
deterministic given (a) the roster, which it rebuilds from the pickled
config alone (:func:`~repro.worm.fleet.build_roster` is a pure function
of it), (b) the sequence of events delivered to its nodes, which
arrives FIFO in global event order, and (c) the sequence of published
bundles, which the coordinator broadcasts to every worker in bus-publish
order.  Contacts are synchronous round-trips (infection state feeds the
next ``expovariate`` rate); benign events are fire-and-forget — that
asymmetry is the entire speedup, and it is safe precisely because
nothing downstream reads a benign response before finalize.

**Producer publishes round-trip through the coordinator.**  A worker
hosts its producers against a :class:`_RecordingBus`; bundles captured
during a contact come back in the reply, the coordinator publishes them
to the *real* :class:`~repro.antibody.distribution.CommunityBus` (which
assigns ``ab-N`` ids in recorded order, exactly the sequential id
sequence) and broadcasts the wire form to every worker's replica bus.
Replica buses preserve the assigned id (``publish`` only stamps a falsy
one), so every process agrees on bundle identity and availability.

**Fleet-shared statistics are reconstructed, not summed.**  Golden-image
and sandbox-verifier caches are per-process; summing per-worker stats
would report a topology-dependent pattern (W donors per layout instead
of one).  The coordinator instead *logically replays* the sequential
cache traffic it can derive exactly: one golden get per first-touched
node (its boot layout is a pure function of config), one per extra boot
(restarts re-draw from ``seed + 1``), and one verifier trial per
(app, bundle) delivery that passes the byte checks.  Both replays assume
boots are forkable — true for every shipped app image — and the real
per-worker stats are reported alongside under ``workers`` (excluded
from trajectory comparisons, like ``memory``).
"""

from __future__ import annotations

import multiprocessing
import resource
import traceback

from repro.antibody.audit import StaticAuditor
from repro.antibody.distribution import AntibodyBundle, CommunityBus
from repro.antibody.verify import SandboxVerifier
from repro.errors import ReproError
from repro.machine.memory import PAGE_SIZE
from repro.runtime.golden import GoldenImageCache, layout_key
from repro.runtime.sweeper import boot_layout
from repro.spec.invariants import SpecViolation
from repro.spec.trace import assert_replicas_linearize
from repro.worm.fleet import (FleetDivergence, NodeHost, _INFECTION_MARKER,
                              build_roster)

#: Message kinds the coordinator waits on; only these may carry an
#: error reply (answering an async message would race ahead of the
#: coordinator's recv and jam the pipe).
_SYNC_KINDS = frozenset({"contact", "materialize", "finalize"})


class _RecordingBus:
    """A producer-facing bus stand-in inside a worker: captures
    publishes so the contact reply can ship them to the coordinator,
    which owns the real bus (and the ``ab-N`` id counter)."""

    def __init__(self):
        self.pending: list[AntibodyBundle] = []

    def publish(self, bundle: AntibodyBundle) -> AntibodyBundle:
        self.pending.append(bundle)
        return bundle

    def drain(self) -> list[dict]:
        batch = [bundle.to_dict() for bundle in self.pending]
        self.pending.clear()
        return batch


class _LogicalGoldenCache:
    """Coordinator-side replay of the sequential fleet's golden-cache
    traffic.  Keys are ``(app, layout_key, interval, max_checkpoints)``
    — the value-equality of the real cache's ``(id(image), …)`` keys,
    derivable without holding any image.  First get per key is the
    donor boot (miss); every later get forks (hit).  Matches
    :meth:`~repro.runtime.golden.GoldenImageCache.stats` exactly as
    long as boots are forkable (no entropy consumed — true for all
    shipped apps; an unforkable image would miss on every get)."""

    def __init__(self):
        self._keys: set[tuple] = set()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        if key in self._keys:
            self.hits += 1
        else:
            self.misses += 1
            self._keys.add(key)

    def stats(self) -> dict:
        return {"images": len(self._keys),
                "layouts": len({key[1] for key in self._keys}),
                "hits": self.hits, "misses": self.misses,
                "forks": self.hits}


class _LogicalVerifierReplay:
    """Coordinator-side replay of the sequential
    :class:`~repro.antibody.verify.SandboxVerifier` counters.  The
    sequential fleet hands every consumer the *same* bundle object, so
    its memo key ``(id(image), id(bundle))`` collapses to one trial per
    (app, bundle_id) — which the coordinator can count exactly, byte
    checks included, from the real bundles on its own bus."""

    def __init__(self):
        self._booted: set[str] = set()
        self._tried: set[tuple[str, str]] = set()
        self.trials = 0
        self.cache_hits = 0
        #: The static audit is deterministic on (image, bundle) content,
        #: so the coordinator runs the *real* auditor on its own copies
        #: and lands on the sequential screen/reject counts exactly.
        self.auditor = StaticAuditor()
        self.audit_screens = 0
        self.audit_rejects = 0

    def replay(self, app: str, image, bundle: AntibodyBundle):
        if bundle.exploit_input is None:
            return                      # deferred: uncounted, like verify()
        if any(not sig.matches(bundle.exploit_input)
               for sig in bundle.signatures):
            return                      # rejected before memo/boot
        self.audit_screens += 1
        if not self.auditor.audit(image, bundle).ok:
            self.audit_rejects += 1     # rejected before memo/boot
            return
        key = (app, bundle.bundle_id)
        if key in self._tried:
            self.cache_hits += 1
            return
        self._tried.add(key)
        self._booted.add(app)
        self.trials += 1

    def stats(self) -> dict:
        return {"boots": len(self._booted), "trials": self.trials,
                "cache_hits": self.cache_hits,
                "audit_screens": self.audit_screens,
                "audit_rejects": self.audit_rejects}


class _WorkerHarness(NodeHost):
    """One worker process's node-hosting state.

    Rebuilds the full roster from the config (cheap, deterministic) and
    hosts the slice ``index % workers == worker_id``: those nodes'
    Sweeper stacks, a replica :class:`CommunityBus` fed by coordinator
    broadcasts, a private golden cache, and a private sandbox verifier.
    Delivery semantics are inherited verbatim from :class:`NodeHost` —
    the same code path the sequential fleet runs."""

    def __init__(self, config, worker_id: int):
        self.config = config
        self.worker_id = worker_id
        self.bus = CommunityBus(dissemination_latency=config.gamma2)
        self.recorder = _RecordingBus()
        self.golden = GoldenImageCache()
        self.verifier = (SandboxVerifier() if config.verify_bundles
                         else None)
        self.materialized = 0
        self.events_benign = 0
        self.events_contact = 0
        nodes, self.images, _ = build_roster(config)
        self.own = {node.index: node for node in nodes
                    if node.index % config.workers == worker_id}
        for node in self.own.values():     # index order (dict is ordered)
            self.bus.subscribe(node.name)

    def _node_bus(self, node):
        # Producers publish into the recording buffer; the coordinator
        # owns the real bus and the bundle-id counter.
        return self.recorder if node.role == "producer" else None

    def handle(self, msg: tuple):
        kind = msg[0]
        if kind == "benign":
            _, idx, t = msg
            node = self.own[idx]
            responses = self._deliver(node, node.traffic.next_request(), t)
            node.requests += 1
            node.responses += len(responses)
            self.events_benign += 1
            if self.recorder.pending:
                raise ReproError(
                    f"node {node.name} published during a benign event — "
                    f"publishes must ride a synchronous contact reply")
            return None
        if kind == "contact":
            _, idx, t, payload = msg
            node = self.own[idx]
            responses = self._deliver(node, payload, t)
            node.contacts += 1
            owned = any(_INFECTION_MARKER in r for r in responses)
            if owned and not node.infected:
                node.infected = True
                node.infected_at = t
            self.events_contact += 1
            return ("contact", owned, node.immune_at, self.recorder.drain())
        if kind == "bundle":
            # Broadcast from the coordinator: id already assigned, and
            # publish() preserves a non-empty one, so replica buses
            # agree with the real bus on identity and availability.
            self.bus.publish(AntibodyBundle.from_dict(msg[1]))
            return None
        if kind == "materialize":
            node = self.own[msg[1]]
            sweeper = self._sweeper(node)
            return ("materialized", node.report(),
                    sweeper.process.cpu.cycles, self._boot_stats())
        if kind == "finalize":
            return ("finalize", self._finalize())
        raise ReproError(f"unknown worker message kind {kind!r}")

    def _boot_stats(self) -> dict:
        """Per-app layout-independent boot statistics from this worker's
        golden cache — lets the coordinator synthesize untouched nodes'
        reports without a round-trip per node."""
        stats: dict[str, dict] = {}
        for node in self.own.values():
            if node.sweeper is None or node.app in stats:
                continue
            golden = self.golden.boot_stats(
                self.images[node.app], node.config.checkpoint_interval_ms,
                node.config.max_checkpoints)
            if golden is not None:
                stats[node.app] = golden.boot_stats_payload()
        return stats

    def _finalize(self) -> dict:
        finals: dict[int, dict] = {}
        unique_pages: set[int] = set()
        per_node_page_sum = 0
        for idx in sorted(self.own):
            node = self.own[idx]
            if node.sweeper is None:
                continue
            sweeper = node.sweeper
            pages = sweeper.memory_page_identities()
            unique_pages |= pages
            per_node_page_sum += len(pages)
            finals[idx] = {
                "report": node.report(),
                "cycles": sweeper.process.cpu.cycles,
                "boots": sweeper.boot_count,
                "bundles": sweeper.bundle_outcome_counts(),
                "attack": sweeper.first_attack_latency(),
            }
        return {
            "worker": self.worker_id,
            "nodes_owned": len(self.own),
            "nodes": finals,
            "boot_stats": self._boot_stats(),
            "events_benign": self.events_benign,
            "events_contact": self.events_contact,
            "materialized": self.materialized,
            "golden": self.golden.stats(),
            "sandbox": (self.verifier.stats()
                        if self.verifier is not None else None),
            "unique_pages": len(unique_pages),
            "per_node_page_sum": per_node_page_sum,
            "peak_rss_bytes":
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024,
            # The replica bus's observed history, for the coordinator's
            # cross-shard linearization check (repro.spec.trace).
            "bus_log": self.bus.log_entries(),
        }


def _worker_main(config, worker_id: int, in_q, out_q):
    """Worker process entry: build the harness, then serve messages.

    A failure (during build or any event) is latched and reported on
    the *next synchronous* message — replying to fire-and-forget benign
    events would race the coordinator's recv discipline."""
    failure = None
    harness = None
    try:
        harness = _WorkerHarness(config, worker_id)
    except BaseException:
        failure = traceback.format_exc()
    while True:
        msg = in_q.get()
        kind = msg[0]
        if kind == "stop":
            return
        if failure is None:
            try:
                reply = harness.handle(msg)
            except BaseException:
                failure = traceback.format_exc()
            else:
                if reply is not None:
                    out_q.put(reply)
                continue
        if kind in _SYNC_KINDS:
            out_q.put(("error", failure))


class FleetWorkerPool:
    """The coordinator's handle on its forked shard workers.

    Created *before* the coordinator builds its own roster so the
    children fork from a near-empty image; bound to the
    :class:`~repro.worm.fleet._FleetRun` afterwards.  All methods run on
    the coordinator."""

    def __init__(self, config):
        self.config = config
        self.workers = config.workers
        ctx = multiprocessing.get_context("fork")
        self._in = []
        self._out = []
        self._procs = []
        for worker_id in range(config.workers):
            in_q, out_q = ctx.SimpleQueue(), ctx.SimpleQueue()
            proc = ctx.Process(
                target=_worker_main,
                args=(config, worker_id, in_q, out_q),
                name=f"fleet-worker-{worker_id}", daemon=True)
            proc.start()
            self._in.append(in_q)
            self._out.append(out_q)
            self._procs.append(proc)
        self.run = None
        self._touched: set[int] = set()
        self._initial_keys: dict[int, tuple] = {}
        self.logical_golden = _LogicalGoldenCache()
        self.logical_verifier = (_LogicalVerifierReplay()
                                 if config.verify_bundles else None)
        self._closed = False

    def bind(self, run):
        self.run = run

    def _owner(self, node) -> int:
        return node.index % self.workers

    def _logical_key(self, node, restart: bool = False) -> tuple:
        layout = (boot_layout(node.config, node.config.seed + 1)
                  if restart else boot_layout(node.config))
        return (node.app, layout_key(layout),
                node.config.checkpoint_interval_ms,
                node.config.max_checkpoints)

    def _mirror_deliver(self, node, t: float):
        """The coordinator's shadow of one delivery: count the
        materialization and golden get on first touch, and replay the
        node's bus poll (the coordinator's bus carries the same
        publishes at the same times, so the poll sequence — and with it
        the verifier traffic — is the sequential one exactly)."""
        if node.index not in self._touched:
            self._touched.add(node.index)
            self.run.materialized += 1
            key = self._initial_keys.get(node.index)
            if key is None:
                key = self._initial_keys[node.index] = \
                    self._logical_key(node)
            self.logical_golden.get(key)
        for bundle in self.run.bus.poll(node.name, t):
            if bundle.app != node.app:
                continue
            if self.logical_verifier is not None:
                self.logical_verifier.replay(
                    node.app, self.run.images[node.app], bundle)

    def _recv(self, worker_id: int):
        reply = self._out[worker_id].get()
        if reply[0] == "error":
            raise FleetDivergence(
                f"fleet worker {worker_id} failed:\n{reply[1]}")
        return reply

    # -- dispatch ------------------------------------------------------------

    def dispatch_benign(self, node, t: float):
        self._mirror_deliver(node, t)
        self._in[self._owner(node)].put(("benign", node.index, t))

    def dispatch_contact(self, node, payload: bytes, t: float) -> bool:
        self._mirror_deliver(node, t)
        owner = self._owner(node)
        self._in[owner].put(("contact", node.index, t, payload))
        _, owned, immune_at, publishes = self._recv(owner)
        for data in publishes:
            bundle = AntibodyBundle.from_dict(data)
            self.run.bus.publish(bundle)      # assigns the ab-N id
            wire = bundle.to_dict()           # now id-stamped
            for queue in self._in:
                queue.put(("bundle", wire))
        node.immune_at = immune_at
        return owned

    # -- finalize ------------------------------------------------------------

    def collect(self) -> dict:
        """One finalize round-trip per worker, merged into exactly what
        the sequential ``_result`` computes locally."""
        run = self.run
        materialized = run.materialized
        for queue in self._in:
            queue.put(("finalize",))
        payloads = [self._recv(w)[1] for w in range(self.workers)]
        # Specification check before any merging: every replica bus
        # observed the one history the real bus defines, and that
        # history is model-legal (repro.spec) — the formal backing for
        # the bit-identical guarantee.
        try:
            assert_replicas_linearize(
                run.bus.log_entries(),
                {f"worker-{p['worker']}": p["bus_log"] for p in payloads},
                latency=run.bus.dissemination_latency)
        except SpecViolation as violation:
            raise FleetDivergence(
                f"replica bus histories failed the spec's linearization "
                f"check: {violation}") from violation
        finals: dict[int, dict] = {}
        boot_stats: dict[str, dict] = {}
        for payload in payloads:
            finals.update(payload["nodes"])
            for app, stats in payload["boot_stats"].items():
                boot_stats.setdefault(app, stats)
        # Restart boots re-enter the golden cache with the seed+1
        # layout; replay them now (order-independent: each node's
        # restart key is either its own cohort-pinned initial key or a
        # per-node layout no other get can touch).
        for idx in sorted(finals):
            for _ in range(finals[idx]["boots"] - 1):
                self.logical_golden.get(
                    self._logical_key(run.nodes[idx], restart=True))
        golden_stats = self.logical_golden.stats()
        # Reports in node order: executed nodes verbatim, untouched
        # nodes synthesized from any sibling image's boot stats, with a
        # materialize round-trip only when no sibling ever booted
        # (sequential does the same, after its stats snapshot).
        reports = []
        total_cycles = 0
        benign_responses = 0
        for node in run.nodes:
            fin = finals.get(node.index)
            if fin is not None:
                report, cycles = fin["report"], fin["cycles"]
            elif node.app in boot_stats:
                stats = boot_stats[node.app]
                report = node.boot_stub_report(stats["boot_clock_delta"])
                cycles = stats["boot_cycles"]
            else:
                owner = self._owner(node)
                self._in[owner].put(("materialize", node.index))
                _, report, cycles, fresh = self._recv(owner)
                for app, stats in fresh.items():
                    boot_stats.setdefault(app, stats)
            reports.append(report)
            total_cycles += cycles
            benign_responses += report["benign_responses"]
        gamma1 = None
        for node in run.v_producers:
            fin = finals.get(node.index)
            if fin is not None and fin["attack"] is not None:
                detected_at, first_vsef_at = fin["attack"]
                if first_vsef_at is not None:
                    gamma1 = first_vsef_at - detected_at
                break
        if self.logical_verifier is not None:
            verified = sum(f["bundles"][0] for f in finals.values())
            rejected = sum(f["bundles"][1] for f in finals.values())
            deferred = sum(f["bundles"][2] for f in finals.values())
            verification = {"bundles_verified": verified,
                            "bundles_rejected": rejected,
                            "bundles_applied_unverified": deferred,
                            "sandbox": self.logical_verifier.stats()}
        else:
            verification = None
        # Workers share nothing across processes, so fleet-unique pages
        # are the sum of per-worker-unique counts.
        unique = sum(p["unique_pages"] for p in payloads)
        per_node = sum(p["per_node_page_sum"] for p in payloads)
        memory = {"page_bytes_unique": unique * PAGE_SIZE,
                  "page_bytes_per_node_sum": per_node * PAGE_SIZE,
                  "sharing_factor": per_node / unique if unique else 1.0}
        workers = {"count": self.workers, "per_worker": [
            {"worker": p["worker"], "nodes_owned": p["nodes_owned"],
             "nodes_materialized": p["materialized"],
             "events_benign": p["events_benign"],
             "events_contact": p["events_contact"],
             "golden": p["golden"], "sandbox": p["sandbox"],
             "page_bytes_unique": p["unique_pages"] * PAGE_SIZE,
             "peak_rss_bytes": p["peak_rss_bytes"]}
            for p in payloads]}
        return {"gamma1": gamma1, "memory": memory,
                "materialized": materialized, "golden": golden_stats,
                "verification": verification, "reports": reports,
                "total_cycles": total_cycles,
                "benign_responses": benign_responses, "workers": workers}

    def close(self):
        if self._closed:
            return
        self._closed = True
        for queue in self._in:
            try:
                queue.put(("stop",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for queue in (*self._in, *self._out):
            queue.close()
