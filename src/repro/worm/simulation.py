"""Discrete-event stochastic worm simulator (cross-validates the ODEs).

A Gillespie-style simulation of the same process the SI model describes:
infected hosts contact uniformly random vulnerable hosts at rate β;
contacts on unprotected consumers succeed with probability ρ; the first
contact on a Producer stamps ``T0``; at ``T0 + γ`` every host is immune.

Used by tests and the Figure 6-8 benches to confirm the ODE solutions
are not artifacts of the continuum approximation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class SimulationResult:
    t0: float
    final_infected: int
    infection_ratio: float
    contained: bool


def simulate_outbreak(beta: float, population: int, producer_ratio: float,
                      gamma: float, rho: float = 1.0,
                      seed: int = 0, max_events: int = 5_000_000
                      ) -> SimulationResult:
    """Simulate one outbreak; returns the realized infection ratio.

    State is aggregated (counts, not per-host objects), which keeps the
    event loop exact for uniform mixing while scaling to N = 100 000.
    """
    rng = random.Random(seed)
    producers = int(round(producer_ratio * population))
    consumers = population - producers
    infected = 1
    susceptible = consumers - 1       # patient zero is a consumer
    contacted_producers = 0
    t = 0.0
    t0 = math.inf

    for _ in range(max_events):
        if infected <= 0:
            break
        deadline = t0 + gamma
        if t >= deadline:
            break
        # Aggregate contact rate: each infected host contacts vulnerable
        # hosts at rate beta.
        total_rate = beta * infected
        t += rng.expovariate(total_rate)
        if t >= deadline:
            t = deadline
            break
        # Pick the contact target uniformly among the N vulnerable hosts.
        roll = rng.random() * population
        if roll < producers:
            if contacted_producers < producers:
                contacted_producers += 1
                if contacted_producers == 1:
                    t0 = t
        elif roll < producers + susceptible:
            if rng.random() < rho:
                susceptible -= 1
                infected += 1
        # else: contact hit an already-infected (or immune) consumer.
    ratio = (infected / population) if population else 0.0
    return SimulationResult(t0=t0 if math.isfinite(t0) else math.inf,
                            final_infected=infected,
                            infection_ratio=ratio,
                            contained=math.isfinite(t0))


class GillespieHalo:
    """The modeled tier of a hybrid outbreak: aggregate Gillespie state
    for hosts that surround an executed core.

    The executed fleet embeds its N real nodes in a population of
    ``hosts`` modeled ones — same epidemic process, aggregate counts
    instead of booted guests, which is what carries the community claim
    from hundreds of executed nodes to the paper's 10⁵–10⁶-host Fig. 6–8
    regimes.  The halo deliberately has **no rng of its own**: the
    caller owns the epidemic rng and consumes it in exactly
    :func:`simulate_outbreak`'s sequence (bucket roll, then one ρ draw
    per susceptible contact), handing the ρ draw to :meth:`contact`.
    With matched seeds the hybrid (core + halo) is therefore the same
    stochastic realization as ``simulate_outbreak`` over the *combined*
    population — the core executes its slice of the draws, the halo
    tallies the rest.

    Conservation is the correctness obligation hybrid tiers must check:
    every modeled host is susceptible or infected, never both and never
    a core host, so ``susceptible + infected == hosts`` at all times and
    the combined population partitions exactly (see the fleet's
    per-contact conservation assert).
    """

    def __init__(self, hosts: int, rho: float):
        if hosts < 0:
            raise ValueError("halo hosts must be >= 0")
        self.hosts = hosts
        self.rho = rho
        self.susceptible = hosts
        self.infected = 0
        self.contacts = 0
        self.infections = 0
        #: Contacts on a modeled susceptible host after community
        #: immunity: the halo's share of blocked contacts.
        self.blocked = 0
        #: ρ draws that failed: the modeled analogue of an executed
        #: layout-collision miss.
        self.resisted = 0

    def contact(self, draw: float, immune: bool) -> bool:
        """One worm contact landing on a modeled susceptible host.

        ``draw`` is the epidemic rng's ρ draw, consumed by the caller in
        the model's sequence; ``immune`` says whether community immunity
        (bundle availability) has already reached this virtual time.
        Returns True when the host was infected."""
        self.contacts += 1
        if immune:
            self.blocked += 1
            return False
        if draw < self.rho:
            self.susceptible -= 1
            self.infected += 1
            self.infections += 1
            return True
        self.resisted += 1
        return False

    def report(self) -> dict:
        return {"hosts": self.hosts, "susceptible_final": self.susceptible,
                "infected_final": self.infected, "contacts": self.contacts,
                "infections": self.infections, "blocked": self.blocked,
                "resisted": self.resisted}
