"""Discrete-event stochastic worm simulator (cross-validates the ODEs).

A Gillespie-style simulation of the same process the SI model describes:
infected hosts contact uniformly random vulnerable hosts at rate β;
contacts on unprotected consumers succeed with probability ρ; the first
contact on a Producer stamps ``T0``; at ``T0 + γ`` every host is immune.

Used by tests and the Figure 6-8 benches to confirm the ODE solutions
are not artifacts of the continuum approximation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class SimulationResult:
    t0: float
    final_infected: int
    infection_ratio: float
    contained: bool


def simulate_outbreak(beta: float, population: int, producer_ratio: float,
                      gamma: float, rho: float = 1.0,
                      seed: int = 0, max_events: int = 5_000_000
                      ) -> SimulationResult:
    """Simulate one outbreak; returns the realized infection ratio.

    State is aggregated (counts, not per-host objects), which keeps the
    event loop exact for uniform mixing while scaling to N = 100 000.
    """
    rng = random.Random(seed)
    producers = int(round(producer_ratio * population))
    consumers = population - producers
    infected = 1
    susceptible = consumers - 1       # patient zero is a consumer
    contacted_producers = 0
    t = 0.0
    t0 = math.inf

    for _ in range(max_events):
        if infected <= 0:
            break
        deadline = t0 + gamma
        if t >= deadline:
            break
        # Aggregate contact rate: each infected host contacts vulnerable
        # hosts at rate beta.
        total_rate = beta * infected
        t += rng.expovariate(total_rate)
        if t >= deadline:
            t = deadline
            break
        # Pick the contact target uniformly among the N vulnerable hosts.
        roll = rng.random() * population
        if roll < producers:
            if contacted_producers < producers:
                contacted_producers += 1
                if contacted_producers == 1:
                    t0 = t
        elif roll < producers + susceptible:
            if rng.random() < rho:
                susceptible -= 1
                infected += 1
        # else: contact hit an already-infected (or immune) consumer.
    ratio = (infected / population) if population else 0.0
    return SimulationResult(t0=t0 if math.isfinite(t0) else math.inf,
                            final_infected=infected,
                            infection_ratio=ratio,
                            contained=math.isfinite(t0))
