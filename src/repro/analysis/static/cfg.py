"""Control-flow-graph recovery over guest binaries.

Two front ends share one graph builder:

- :func:`recover_image_cfg` works on an assembled
  :class:`~repro.isa.assembler.Image` in *offset space* (text offsets,
  before loading).  Branch/call immediates are resolved through the
  image's relocation records rather than raw operand bytes, so the graph
  is exact regardless of where the loader will place the sections, and
  native calls are recognized by name.  Disassembly is recursive
  descent: a worklist seeded at the entry point, every text symbol and
  every address-taken text location (text-targeted relocations — jump
  tables, ``mov r, label``) decodes instructions and follows static
  control transfers, so section padding and embedded data are never
  misdecoded the way a linear sweep can.

- :func:`cfg_from_stream` works on a CPU predecode stream (absolute
  addresses, relocations already patched into the immediates).  The
  fusion pipeline uses it to extend superblock traces through
  unconditional jumps and into single-entry call targets.

Blocks are maximal straight-line instruction runs: a *leader* (root,
branch/call target, post-call return address, or the fall-through of a
conditional branch) starts a block and the block runs to the next
leader or control transfer.  Successor edges cover fall-through, branch
targets (both arms of a conditional), and calls — a guest call edge
goes to the callee *and* to the return address, so reachability
naturally follows the interprocedural paths the antibody audit needs;
indirect transfers (``jmp r``, ``call r``, ``ret``) contribute no
static target edges.  Dominators are computed by the standard iterative
set-intersection dataflow; the graphs here are a few hundred blocks at
most.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EncodingError
from repro.isa.encoding import Insn, decode_bytes
from repro.isa.opcodes import COND_BRANCHES, OP_SIGNATURES, Op

#: Control transfers with a statically encoded target ("i" operand).
_STATIC_TRANSFERS = frozenset(COND_BRANCHES) | {Op.JMPI, Op.CALLI}

#: Instructions execution cannot fall through.
_NO_FALLTHROUGH = frozenset({Op.JMPI, Op.JMPR, Op.RET, Op.HALT})

#: Instructions that end a basic block.
_TERMINATORS = _NO_FALLTHROUGH | _STATIC_TRANSFERS | {Op.CALLR}


def imm_field_offset(op: Op) -> int | None:
    """Byte offset of the 32-bit immediate field within an encoding of
    ``op`` (opcode byte included), or None when the signature carries no
    immediate.  This is where the assembler's relocations point."""
    offset = 1
    for kind in OP_SIGNATURES[op]:
        if kind == "i":
            return offset
        offset += 1          # "r" and "b" operands are one byte each
    return None


@dataclass(frozen=True)
class BasicBlock:
    """One basic block: a maximal straight-line run of instructions."""

    start: int
    pcs: tuple[int, ...]              # member instruction addresses, sorted
    end: int                          # address just past the last insn

    @property
    def last(self) -> int:
        return self.pcs[-1]


@dataclass
class CFG:
    """A recovered control-flow graph.

    ``insns`` doubles as the instruction-boundary oracle: an address is
    a real instruction boundary iff it is a key.  ``succs``/``preds``
    are block-level edges keyed by block start.  ``imm_targets`` maps an
    instruction to the *semantic* target of its immediate operand as a
    ``(space, value)`` pair — ``("text", offset)``, ``("data", offset)``
    or ``("native", name)`` — resolved through relocations by the image
    front end (absent for raw streams, whose immediates are already
    absolute).
    """

    insns: dict[int, Insn]
    blocks: dict[int, BasicBlock]
    succs: dict[int, tuple[int, ...]]
    preds: dict[int, tuple[int, ...]]
    owner: dict[int, int]             # instruction pc -> its block start
    roots: tuple[int, ...]
    #: CALLI site pc -> static guest target (absent: native/unknown).
    call_sites: dict[int, int] = field(default_factory=dict)
    #: Call site pc -> native name (image front end only).
    native_calls: dict[int, str] = field(default_factory=dict)
    #: SYS site pc -> syscall number.
    syscalls: dict[int, int] = field(default_factory=dict)
    #: Code addresses whose value is materialized by a non-transfer
    #: instruction or a data word (function pointers, jump tables).
    address_taken: frozenset[int] = frozenset()
    #: Addresses control can statically reach that fail to decode,
    #: mapped to a short reason (asmlint's fall-through-into-data).
    undecodable: dict[int, str] = field(default_factory=dict)
    #: Instruction pc -> (space, value) for its immediate operand.
    imm_targets: dict[int, tuple[str, int | str]] = field(default_factory=dict)

    # -- queries -----------------------------------------------------------

    def boundary(self, pc: int) -> bool:
        """Is ``pc`` a recovered instruction boundary?"""
        return pc in self.insns

    def block_at(self, pc: int) -> BasicBlock | None:
        """The block containing the instruction at ``pc``."""
        start = self.owner.get(pc)
        return None if start is None else self.blocks[start]

    def reachable_from(self, starts) -> set[int]:
        """Block starts reachable from the given block starts (closed
        over successor edges, including call and return-address edges)."""
        seen: set[int] = set()
        work = [s for s in starts if s in self.blocks]
        while work:
            block = work.pop()
            if block in seen:
                continue
            seen.add(block)
            work.extend(s for s in self.succs.get(block, ())
                        if s not in seen)
        return seen

    def dominators(self, root: int) -> dict[int, frozenset[int]]:
        """Block start -> its dominator set, over blocks reachable from
        ``root``.  Iterative dataflow: dom(b) = {b} ∪ ⋂ dom(preds)."""
        reachable = self.reachable_from([root])
        if not reachable:
            return {}
        everything = frozenset(reachable)
        dom = {b: everything for b in reachable}
        dom[root] = frozenset([root])
        order = sorted(reachable)
        changed = True
        while changed:
            changed = False
            for block in order:
                if block == root:
                    continue
                preds = [p for p in self.preds.get(block, ())
                         if p in reachable]
                new = everything
                for pred in preds:
                    new = new & dom[pred]
                new = new | {block}
                if new != dom[block]:
                    dom[block] = new
                    changed = True
        return dom


# ---------------------------------------------------------------------------
# Graph construction (shared by both front ends)
# ---------------------------------------------------------------------------

def build_cfg(insns: dict[int, Insn], roots, target_of, **extra) -> CFG:
    """Partition decoded ``insns`` into basic blocks and wire the edges.

    ``target_of(pc, insn)`` resolves the static target of a control
    transfer with an immediate operand (or returns None when the target
    is not guest code).  ``extra`` passes through the optional CFG
    fields (``native_calls``, ``syscalls``, ``address_taken``,
    ``undecodable``, ``imm_targets``).
    """
    roots = tuple(sorted({r for r in roots if r in insns}))
    leaders: set[int] = set(roots)
    call_sites: dict[int, int] = {}
    for pc, insn in insns.items():
        op = insn.op
        if op in _STATIC_TRANSFERS:
            target = target_of(pc, insn)
            if target is not None and target in insns:
                leaders.add(target)
                if op is Op.CALLI:
                    call_sites[pc] = target
        if op is Op.CALLI or op is Op.CALLR or op in COND_BRANCHES:
            fall = pc + insn.length
            if fall in insns:
                leaders.add(fall)

    blocks: dict[int, BasicBlock] = {}
    owner: dict[int, int] = {}
    run: list[int] = []
    prev_end: int | None = None
    for pc in sorted(insns):
        insn = insns[pc]
        if run and (pc in leaders or pc != prev_end):
            _close_block(blocks, owner, run, insns)
            run = []
        run.append(pc)
        prev_end = pc + insn.length
        if insn.op in _TERMINATORS:
            _close_block(blocks, owner, run, insns)
            run = []
    _close_block(blocks, owner, run, insns)

    succs: dict[int, tuple[int, ...]] = {}
    preds: dict[int, list[int]] = {start: [] for start in blocks}
    for start, block in blocks.items():
        last = block.last
        insn = insns[last]
        op = insn.op
        out: list[int] = []
        target = target_of(last, insn) if op in _STATIC_TRANSFERS else None
        if target is not None and target in owner:
            out.append(owner[target])
        if op not in _NO_FALLTHROUGH:
            fall = last + insn.length
            if fall in owner:
                out.append(owner[fall])
        # De-duplicate while preserving order (self-loops included once).
        seen: set[int] = set()
        ordered = tuple(s for s in out if not (s in seen or seen.add(s)))
        succs[start] = ordered
        for s in ordered:
            preds[s].append(start)
    return CFG(insns=insns, blocks=blocks, succs=succs,
               preds={k: tuple(v) for k, v in preds.items()},
               owner=owner, roots=roots, call_sites=call_sites, **extra)


def _close_block(blocks, owner, run, insns):
    if not run:
        return
    start = run[0]
    last = run[-1]
    block = BasicBlock(start=start, pcs=tuple(run),
                       end=last + insns[last].length)
    blocks[start] = block
    for pc in run:
        owner[pc] = start


# ---------------------------------------------------------------------------
# Front end: CPU predecode streams (absolute addresses)
# ---------------------------------------------------------------------------

def _stream_target(pc: int, insn: Insn):
    return insn.operands[0]


def cfg_from_stream(stream: dict[int, Insn]) -> CFG:
    """A CFG over a predecoded instruction stream.

    Immediates were patched by the loader, so a transfer's operand *is*
    its absolute target; targets outside the stream (natives, other
    regions) simply contribute no edge.  Roots are the stream start plus
    every static transfer target, so every block control can enter at is
    a block start.  Address-taken detection covers immediates of
    non-transfer instructions (``mov r, label`` / ``push label``) that
    land on a stream instruction — the fusion policy treats those as
    extra entries when judging whether a call target is single-entry.
    """
    if not stream:
        return build_cfg({}, (), _stream_target)
    roots = {min(stream)}
    taken: set[int] = set()
    for pc, insn in stream.items():
        op = insn.op
        if op in _STATIC_TRANSFERS:
            target = insn.operands[0]
            if target in stream:
                roots.add(target)
        elif op is Op.CALLR or op is Op.CALLI:
            pass
        elif "i" in OP_SIGNATURES[op]:
            imm = insn.operands[OP_SIGNATURES[op].index("i")]
            if imm in stream:
                taken.add(imm)
        if op is Op.CALLI or op is Op.CALLR:
            fall = pc + insn.length
            if fall in stream:
                roots.add(fall)
    return build_cfg(stream, roots, _stream_target,
                     address_taken=frozenset(taken))


# ---------------------------------------------------------------------------
# Front end: assembled images (offset space, relocation-aware)
# ---------------------------------------------------------------------------

def recover_image_cfg(image) -> CFG:
    """Recursive-descent CFG recovery over ``image`` in offset space.

    Roots: the entry symbol, every text symbol and every address-taken
    text offset (the semantic target of any text-targeted relocation
    whose site is *not* a control transfer's immediate — data words
    holding code addresses, ``mov r, label``).  Control-transfer targets
    are resolved through the relocation attached to the instruction's
    immediate field, never through the raw operand bytes, so the graph
    is loader-independent.
    """
    text = image.text
    reloc_at = {r.offset: r for r in image.relocations
                if r.section == "text"}

    # First pass over relocations: semantic targets of text-targeted
    # relocations, used both as extra roots and (later, per decoded
    # instruction) to resolve transfer targets.
    text_symbol_offsets = {offset for section, offset in
                           image.symbols.values() if section == "text"}
    roots: set[int] = set(text_symbol_offsets)
    entry = image.symbols.get(image.entry)
    if entry is not None and entry[0] == "text":
        roots.add(entry[1])
    roots.update(int(r.value) + r.addend
                 for r in image.relocations if r.target == "text")

    insns: dict[int, Insn] = {}
    undecodable: dict[int, str] = {}
    imm_targets: dict[int, tuple[str, int | str]] = {}
    native_calls: dict[int, str] = {}
    syscalls: dict[int, int] = {}

    def resolve_imm(pc: int, insn: Insn):
        """(space, value) for the instruction's immediate, via relocs."""
        offset = imm_field_offset(insn.op)
        if offset is None:
            return None
        reloc = reloc_at.get(pc + offset)
        if reloc is None:
            return None
        if reloc.target == "native":
            return ("native", str(reloc.value))
        return (reloc.target, int(reloc.value) + reloc.addend)

    work = sorted(roots, reverse=True)
    while work:
        pc = work.pop()
        while 0 <= pc < len(text) and pc not in insns:
            try:
                insn = decode_bytes(text, pc)
            except EncodingError as err:
                undecodable[pc] = str(err)
                break
            insns[pc] = insn
            resolved = resolve_imm(pc, insn)
            if resolved is not None:
                imm_targets[pc] = resolved
            op = insn.op
            if op is Op.SYS:
                syscalls[pc] = insn.operands[0]
            if op in _STATIC_TRANSFERS:
                if resolved is not None and resolved[0] == "text":
                    work.append(resolved[1])
                elif resolved is not None and resolved[0] == "native" \
                        and op is Op.CALLI:
                    native_calls[pc] = resolved[1]
            if op in _NO_FALLTHROUGH:
                break
            pc += insn.length

    # Address-taken: text targets materialized outside transfer
    # immediates (decoded or not — a data word pointing at code counts).
    transfer_imm_sites = set()
    for pc, insn in insns.items():
        if insn.op in _STATIC_TRANSFERS:
            offset = imm_field_offset(insn.op)
            if offset is not None:
                transfer_imm_sites.add(pc + offset)
    taken = set()
    for r in image.relocations:
        if r.target != "text":
            continue
        target = int(r.value) + r.addend
        if r.section != "text" or r.offset not in transfer_imm_sites:
            taken.add(target)

    def target_of(pc: int, insn: Insn):
        resolved = imm_targets.get(pc)
        if resolved is not None and resolved[0] == "text":
            return resolved[1]
        return None

    roots.update(taken)
    return build_cfg(insns, roots, target_of,
                     native_calls=native_calls, syscalls=syscalls,
                     address_taken=frozenset(taken),
                     undecodable=undecodable, imm_targets=imm_targets)
