"""Dataflow over recovered CFGs: reaching definitions and static taint.

Both passes are forward, block-level, meet-is-union fixpoints over the
graphs produced by :mod:`repro.analysis.static.cfg`.  They are
deliberately conservative: any call (guest, native or indirect) clobbers
every register to an unknown definition, indirect control flow
contributes no edges, and memory is modelled as a single "has tainted
bytes" bit rather than per-address.  Conservatism errs toward *more*
definitions and *more* taint, which is the safe direction for the two
consumers — the antibody audit only rejects a ``CodeLoc`` when it is
provably outside any input-reachable path, and asmlint only reports a
store-to-code when the address provably comes from a code-pointer
constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.static.cfg import CFG
from repro.isa.opcodes import ALU_OPS, NUM_REGS, OP_SIGNATURES, Op

#: Syscall numbers whose return materializes external input in r0 and
#: guest memory (``recv`` writes the payload into the supplied buffer).
INPUT_SYSCALLS = frozenset({1})      # SYSCALL_NAMES["recv"]

_LOADS = frozenset({Op.LDW, Op.LDB})
_CALLS = frozenset({Op.CALLI, Op.CALLR})

#: Sentinel definition site for values of unknown provenance
#: (function entry, post-call clobbers).
UNKNOWN = -1


def defined_reg(insn) -> int | None:
    """The register ``insn`` writes, or None.

    Calls and SYS are handled separately by the transfer functions
    (they clobber more than one architectural destination).  ALU ops
    are two-address — ``rd <- rd OP src`` — so the destination is also
    a source; callers that care (taint) consult the signature.
    """
    op = insn.op
    if op in ALU_OPS or op in _LOADS:
        return insn.operands[0]
    if op is Op.MOVRR or op is Op.MOVRI or op is Op.POPR:
        return insn.operands[0]
    return None


@dataclass
class ReachingDefs:
    """Reaching definitions at *instruction entry*.

    ``at(pc)`` maps each register to the set of definition-site pcs that
    may reach the instruction at ``pc`` before it executes;
    :data:`UNKNOWN` marks values the analysis cannot attribute (function
    entry, call clobbers, syscall returns).
    """

    cfg: CFG
    block_in: dict[int, tuple[frozenset[int], ...]]

    def at(self, pc: int) -> tuple[frozenset[int], ...] | None:
        """Per-register reaching-def sets on entry to ``pc``."""
        block = self.cfg.block_at(pc)
        if block is None:
            return None
        state = list(self.block_in[block.start])
        for member in block.pcs:
            if member == pc:
                return tuple(state)
            _rd_transfer(state, member, self.cfg.insns[member])
        return None

    def sole_def(self, pc: int, reg: int):
        """The unique defining instruction of ``reg`` at ``pc`` as a
        ``(def_pc, insn)`` pair, or None when the definition is merged,
        unknown, or absent."""
        state = self.at(pc)
        if state is None:
            return None
        defs = state[reg]
        if len(defs) != 1:
            return None
        (site,) = defs
        if site == UNKNOWN:
            return None
        return site, self.cfg.insns[site]


def _rd_transfer(state: list, pc: int, insn) -> None:
    op = insn.op
    if op in _CALLS:
        # Any call may clobber every register (guest callees are not
        # summarized; natives write results into r0 and scratch regs).
        for reg in range(len(state)):
            state[reg] = frozenset([UNKNOWN])
        return
    if op is Op.SYS:
        state[0] = frozenset([UNKNOWN])
        return
    reg = defined_reg(insn)
    if reg is not None:
        state[reg] = frozenset([pc])


def reaching_definitions(cfg: CFG) -> ReachingDefs:
    """Block-level reaching definitions over ``cfg``.

    Roots (and blocks with no predecessors) start with every register
    bound to :data:`UNKNOWN` — arguments and caller state.
    """
    unknown = tuple(frozenset([UNKNOWN]) for _ in range(NUM_REGS))
    empty = tuple(frozenset() for _ in range(NUM_REGS))
    block_in: dict[int, tuple[frozenset[int], ...]] = {}
    for start in cfg.blocks:
        preds = cfg.preds.get(start, ())
        block_in[start] = unknown if (start in cfg.roots or not preds) \
            else empty

    def flow(start: int) -> tuple[frozenset[int], ...]:
        state = list(block_in[start])
        for pc in cfg.blocks[start].pcs:
            _rd_transfer(state, pc, cfg.insns[pc])
        return tuple(state)

    changed = True
    order = sorted(cfg.blocks)
    while changed:
        changed = False
        for start in order:
            out = flow(start)
            for succ in cfg.succs.get(start, ()):
                merged = tuple(a | b for a, b in zip(block_in[succ], out))
                if merged != block_in[succ]:
                    block_in[succ] = merged
                    changed = True
    return ReachingDefs(cfg=cfg, block_in=block_in)


# ---------------------------------------------------------------------------
# Static taint
# ---------------------------------------------------------------------------

@dataclass
class TaintResult:
    """Which code a guest's external input can statically influence.

    ``reg_in`` maps a block start to the registers that may hold
    input-derived values on entry; ``mem_in`` says whether guest memory
    may already contain input bytes there (one bit — ``recv`` writes
    through a pointer the pass does not track, so after the first
    reaching receive every load may observe input).  ``input_reachable``
    is the set of blocks on some path from an input-receiving syscall —
    the audit's notion of "reachable from input dispatch".
    """

    cfg: CFG
    reg_in: dict[int, frozenset[int]]
    mem_in: dict[int, bool]
    seed_blocks: frozenset[int]
    input_reachable: frozenset[int]

    def reaches(self, pc: int) -> bool:
        """May the instruction at ``pc`` execute downstream of input?"""
        block = self.cfg.block_at(pc)
        return block is not None and block.start in self.input_reachable


def _taint_transfer(regs: set[int], mem: bool, pc: int, insn,
                    seeds: frozenset[int]) -> bool:
    op = insn.op
    if op is Op.SYS:
        if pc in seeds:
            # recv: return value (byte count) and the target buffer.
            regs.add(0)
            return True
        regs.discard(0)
        return mem
    if op in _CALLS:
        # Callee effects are unknown; the one monotone fact is that a
        # callee can read tainted memory into its return register.
        regs.clear()
        if mem:
            regs.add(0)
        return mem
    if op in _LOADS or op is Op.POPR:
        if mem:
            regs.add(insn.operands[0])
        else:
            regs.discard(insn.operands[0])
        return mem
    if op is Op.MOVRR:
        if insn.operands[1] in regs:
            regs.add(insn.operands[0])
        else:
            regs.discard(insn.operands[0])
        return mem
    if op in ALU_OPS:
        # Two-address: rd <- rd OP src; for the "rr" form the source is
        # a register, for "ri" it is an immediate.
        rd = insn.operands[0]
        tainted = rd in regs
        if OP_SIGNATURES[op] == "rr" and insn.operands[1] in regs:
            tainted = True
        if tainted:
            regs.add(rd)
        else:
            regs.discard(rd)
        return mem
    if op is Op.MOVRI:
        regs.discard(insn.operands[0])
        return mem
    if op is Op.STW or op is Op.STB:
        # "rir": base, displacement, source value.
        if insn.operands[2] in regs:
            return True
        return mem
    if op is Op.PUSHR:
        if insn.operands[0] in regs:
            return True
        return mem
    return mem


def static_taint(cfg: CFG, seed_pcs=None) -> TaintResult:
    """Propagate taint from input-reading syscalls through ``cfg``.

    ``seed_pcs`` defaults to every ``SYS`` site whose number is in
    :data:`INPUT_SYSCALLS`.  Returns per-block entry states plus the
    reachability closure the antibody audit consumes.
    """
    if seed_pcs is None:
        seeds = frozenset(pc for pc, num in cfg.syscalls.items()
                          if num in INPUT_SYSCALLS)
    else:
        seeds = frozenset(seed_pcs)

    reg_in: dict[int, frozenset[int]] = {s: frozenset() for s in cfg.blocks}
    mem_in: dict[int, bool] = {s: False for s in cfg.blocks}

    def flow(start: int) -> tuple[frozenset[int], bool]:
        regs = set(reg_in[start])
        mem = mem_in[start]
        for pc in cfg.blocks[start].pcs:
            mem = _taint_transfer(regs, mem, pc, cfg.insns[pc], seeds)
        return frozenset(regs), mem

    changed = True
    order = sorted(cfg.blocks)
    while changed:
        changed = False
        for start in order:
            regs_out, mem_out = flow(start)
            for succ in cfg.succs.get(start, ()):
                merged = reg_in[succ] | regs_out
                mem_merged = mem_in[succ] or mem_out
                if merged != reg_in[succ] or mem_merged != mem_in[succ]:
                    reg_in[succ] = merged
                    mem_in[succ] = mem_merged
                    changed = True

    seed_blocks = frozenset(cfg.owner[pc] for pc in seeds
                            if pc in cfg.owner)
    input_reachable = frozenset(cfg.reachable_from(seed_blocks))
    return TaintResult(cfg=cfg, reg_in=reg_in, mem_in=mem_in,
                       seed_blocks=seed_blocks,
                       input_reachable=input_reachable)
