"""Static guest-binary analysis: CFG recovery and dataflow.

The paper's analysis pipeline is dynamic (taint, slicing, replayed
trials); this package adds the *static* counterpart over assembled
images and predecoded instruction streams:

- :mod:`repro.analysis.static.cfg` — recursive-descent disassembly,
  basic-block control-flow graphs with successor/predecessor edges and
  dominator trees, over either an :class:`~repro.isa.assembler.Image`
  (offset space, relocation-aware) or a CPU predecode stream (absolute
  addresses, relocations already patched);
- :mod:`repro.analysis.static.dataflow` — reaching definitions and a
  conservative static-taint pass seeded at input-reading syscalls.

Consumers: the static antibody audit (:mod:`repro.antibody.audit`),
CFG-driven superblock fusion (:meth:`repro.machine.cpu.CPU.predecode`),
and the guest linter (``tools/asmlint.py``).
"""

from repro.analysis.static.cfg import (CFG, BasicBlock, build_cfg,
                                       cfg_from_stream, imm_field_offset,
                                       recover_image_cfg)
from repro.analysis.static.dataflow import (ReachingDefs, TaintResult,
                                            reaching_definitions,
                                            static_taint)

__all__ = [
    "CFG", "BasicBlock", "build_cfg", "cfg_from_stream",
    "imm_field_offset", "recover_image_cfg",
    "ReachingDefs", "TaintResult", "reaching_definitions", "static_taint",
]
