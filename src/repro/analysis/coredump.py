"""Static memory-state (core dump) analysis — analysis step #1 (§3.2).

Looks only at the post-fault memory image: classify the faulting
instruction, walk the stack checking frame consistency, walk the heap
checking allocator metadata.  Runs in milliseconds and yields the
*initial* VSEF — available "within only 40 ms of the first sign of
trouble" in the paper — which is weaker than later results but has no
false positives and is immediately shareable.

Crash attribution uses the CPU's control-event ring (the reproduction's
hardware LBR): a wild-PC fault is traced back to the ``ret`` or indirect
jump that launched it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.antibody.vsef import VSEF, CodeLoc, loc_for_address
from repro.errors import (FAULT_BADPC, FAULT_ILLEGAL, FAULT_NULL, VMFault)
from repro.isa.disasm import preceded_by_call
from repro.isa.encoding import decode
from repro.isa.opcodes import FP, Op

_COREDUMP_VIRTUAL_SECONDS = 0.04   # the paper's ~40-60ms to initial VSEF


@dataclass
class StackWalk:
    """Result of walking the frame-pointer chain."""

    frames: list[dict] = field(default_factory=list)
    consistent: bool = True
    problem: str = ""


@dataclass
class CoreDumpReport:
    """Everything the static analysis learned."""

    fault_kind: str
    fault_pc: int
    fault_addr: int | None
    crash_site: str                  # human-readable, paper style
    crash_function: str | None
    stack: StackWalk = field(default_factory=StackWalk)
    heap_problems: list[str] = field(default_factory=list)
    classification: str = ""         # e.g. "stack smashing (wild return)"
    vsefs: list[VSEF] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    virtual_seconds: float = _COREDUMP_VIRTUAL_SECONDS

    @property
    def stack_consistent(self) -> bool:
        return self.stack.consistent

    @property
    def heap_consistent(self) -> bool:
        return not self.heap_problems

    def summary(self) -> str:
        state = []
        if not self.stack_consistent:
            state.append("stack inconsistent")
        if not self.heap_consistent:
            state.append("heap inconsistent")
        suffix = f"; {', '.join(state)}" if state else ""
        return f"Crash at {self.crash_site}{suffix}"


class CoreDumpAnalyzer:
    """Analyzes the memory state of a faulted process."""

    def __init__(self, process):
        self.process = process

    # -- stack -------------------------------------------------------------

    def walk_stack(self) -> StackWalk:
        """Validate the frame-pointer chain and each saved return address."""
        process = self.process
        memory = process.memory
        stack = memory.region_named("stack")
        walk = StackWalk()
        fp = process.cpu.regs[FP]
        hops = 0
        while hops < 128:
            if not (stack.start <= fp < stack.end - 8):
                if hops == 0 and fp == process.layout.stack_top - 16:
                    break  # initial frame; nothing pushed yet
                walk.consistent = False
                walk.problem = f"frame pointer {fp:#010x} outside stack"
                break
            try:
                saved_fp = memory.read_word(fp)
                ret_addr = memory.read_word(fp + 4)
            except VMFault:
                walk.consistent = False
                walk.problem = f"unreadable frame at {fp:#010x}"
                break
            frame = {"fp": fp, "saved_fp": saved_fp, "ret_addr": ret_addr,
                     "function": process.function_at(ret_addr)}
            walk.frames.append(frame)
            code = memory.region_named("code")
            is_code = code.start <= ret_addr < code.end
            if not is_code or not preceded_by_call(
                    self._safe_fetch, ret_addr, cfg=self._text_cfg(),
                    code_base=process.layout.code_base):
                walk.consistent = False
                walk.problem = (f"return address {ret_addr:#010x} at "
                                f"[{fp + 4:#010x}] is not a call site")
                break
            if saved_fp == process.layout.stack_top - 16:
                break  # outermost frame: main's sentinel
            fp = saved_fp
            hops += 1
        return walk

    def _safe_fetch(self, addr: int, size: int) -> bytes:
        return self.process.memory.read(addr, size)

    def _text_cfg(self):
        """The image's recovered CFG, making the return-address check
        exact at recovered boundaries (cached per analyzer)."""
        if not hasattr(self, "_cfg"):
            # Deferred import: the static submodule is standalone, but
            # naming it at module import time would initialise
            # repro.analysis mid-cycle.
            from repro.analysis.static.cfg import recover_image_cfg
            self._cfg = recover_image_cfg(self.process.image)
        return self._cfg

    # -- heap ----------------------------------------------------------------

    def check_heap(self) -> list[str]:
        return self.process.allocator.check_consistency()

    # -- main entry -------------------------------------------------------------

    def analyze(self, fault: VMFault) -> CoreDumpReport:
        process = self.process
        crash_function = process.function_at(fault.pc)
        report = CoreDumpReport(
            fault_kind=fault.kind,
            fault_pc=fault.pc,
            fault_addr=fault.addr,
            crash_site=process.describe_address(fault.pc),
            crash_function=crash_function,
            stack=self.walk_stack(),
            heap_problems=self.check_heap())
        self._classify(fault, report)
        return report

    def _classify(self, fault: VMFault, report: CoreDumpReport):
        process = self.process
        native = self._native_name(fault.pc)

        if fault.kind == FAULT_NULL and native is None:
            report.classification = "NULL pointer dereference"
            reg = self._faulting_base_register(fault)
            loc = loc_for_address(process, fault.pc)
            if loc is not None and reg is not None:
                report.vsefs.append(VSEF(
                    kind="null_check", params={"pc": loc, "reg": reg},
                    provenance="memory_state",
                    note=f"check for NULL pointer at {report.crash_site}"))
            return

        if fault.kind in (FAULT_BADPC, FAULT_ILLEGAL):
            # Wild control transfer: find the launching event in the ring.
            launcher = self._launching_event(fault)
            if launcher is not None and launcher.kind == "ret":
                report.classification = "stack smashing (wild return)"
                # Report the crash the way the paper does: at the function
                # whose ret was hijacked, not at the garbage target.
                report.crash_site = process.describe_address(launcher.pc)
                report.crash_function = process.function_at(launcher.pc)
                victim = self._smashed_function(launcher)
                if victim is not None:
                    name, entry = victim
                    report.vsefs.append(VSEF(
                        kind="ret_guard",
                        params={"entry": CodeLoc(
                            "code", entry - process.layout.code_base),
                            "function": name},
                        provenance="memory_state",
                        note=f"use a side return-address stack for {name}"))
                return
            if launcher is not None and launcher.kind == "branch":
                report.classification = "wild indirect jump"
                loc = loc_for_address(process, launcher.pc)
                if loc is not None:
                    report.vsefs.append(VSEF(
                        kind="taint_subset",
                        params={"pcs": [], "sinks": [loc]},
                        provenance="memory_state",
                        note="validate indirect jump target"))
                return
            report.classification = "wild program counter"
            return

        if native is not None:
            caller_loc = self._caller_loc(fault)
            if native == "free" or (not report.heap_consistent
                                    and native in ("malloc", "calloc",
                                                   "realloc")):
                report.classification = "heap inconsistency in allocator" \
                    if native != "free" else "double free / corrupt free"
                report.vsefs.append(VSEF(
                    kind="double_free", params={"caller": caller_loc},
                    provenance="memory_state",
                    note="check for double frees"))
                return
            if native in ("strcat", "strcpy", "strncpy", "strncat",
                          "memcpy", "memset"):
                report.classification = f"overflow in lib. {native}"
                report.vsefs.append(VSEF(
                    kind="heap_bounds",
                    params={"native": native, "caller": caller_loc},
                    provenance="memory_state",
                    note=(f"heap bounds-check {native} when called by "
                          f"{self._caller_name(fault)}")))
                return
            report.classification = f"fault inside lib. {native}"
            return

        report.classification = f"data fault ({fault.kind})"
        loc = loc_for_address(process, fault.pc)
        reg = self._faulting_base_register(fault)
        if loc is not None and reg is not None:
            report.vsefs.append(VSEF(
                kind="store_guard", params={"pc": loc},
                provenance="memory_state",
                note=f"guard memory access at {report.crash_site}"))

    # -- helpers --------------------------------------------------------------

    def _native_name(self, pc: int) -> str | None:
        for name, addr in self.process.native_addresses.items():
            if addr == pc:
                return name
        return None

    def _caller_loc(self, fault: VMFault) -> CodeLoc | None:
        if fault.source_pc is None:
            return None
        # source_pc is the return address in the application; report the
        # enclosing function's location.
        return loc_for_address(self.process, fault.source_pc)

    def _caller_name(self, fault: VMFault) -> str:
        if fault.source_pc is None:
            return "(unknown)"
        name = self.process.function_at(fault.source_pc)
        return f"{fault.source_pc:#010x} ({name})" if name \
            else f"{fault.source_pc:#010x}"

    def _launching_event(self, fault: VMFault):
        ring = self.process.cpu.control_ring
        for event in reversed(ring):
            if event.target == fault.pc and event.kind in ("ret", "branch",
                                                           "call"):
                return event
        return ring[-1] if ring else None

    def _smashed_function(self, launcher) -> tuple[str, int] | None:
        """The function whose RET launched the wild transfer."""
        process = self.process
        name = process.function_at(launcher.pc)
        if name is None:
            return None
        return name, process.symbols[name]

    def _faulting_base_register(self, fault: VMFault) -> int | None:
        """Decode the faulting instruction to find its base register."""
        try:
            insn = decode(self.process.memory.read, fault.pc)
        except Exception:
            return None
        if insn.op in (Op.LDW, Op.LDB):
            return insn.operands[1]
        if insn.op in (Op.STW, Op.STB):
            return insn.operands[0]
        return None
