"""Dynamic memory-bug detection — analysis step #2 (§3.2).

A Purify/Valgrind-class detector implemented as an instrumentation tool
that can attach *mid-execution* during sandboxed replay, which is the
paper's key trick: full memory monitoring at 20-100x cost is affordable
because it only runs over the few hundred milliseconds since the last
checkpoint.

Detects the paper's three bug classes plus dangling pointers:

- **stack smashing** — every live return-address slot is watched for
  writes; pre-existing frames are inferred from the frame-pointer chain
  at attach time (the paper's ``ebp`` inference);
- **heap overflow** — red zones from the allocator's own inline
  metadata; blocks allocated before the checkpoint are inferred from the
  memory image; writes outside any live payload are flagged;
- **double free** — ``free`` of a block that is not live;
- **dangling pointer** — reads/writes of freed payloads.

Each finding carries the precise blamed instruction (application PC or
native + application caller), from which the improved VSEF is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.antibody.vsef import VSEF, CodeLoc, loc_for_address
from repro.instrument.hooks import Tool
from repro.isa.opcodes import FP, SP


@dataclass(frozen=True)
class MemBugReport:
    """One detected memory bug."""

    kind: str            # "stack_smash" | "heap_overflow" | "double_free"
                         # | "dangling_read" | "dangling_write"
    pc: int              # blamed instruction (app pc or native address)
    caller_pc: int | None  # application caller when pc is a native
    addr: int            # memory address involved
    detail: str = ""
    function: str | None = None

    def describe(self, process) -> str:
        where = process.describe_address(self.pc)
        text = f"{self.kind.replace('_', ' ')} by {where}"
        if self.caller_pc is not None:
            text += f" called by {process.describe_address(self.caller_pc)}"
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class _LiveBlock:
    payload: int
    size: int

    @property
    def end(self) -> int:
        return self.payload + self.size


class MemoryBugDetector(Tool):
    """The attachable memory-bug detection tool."""

    name = "membug"
    #: The paper puts full memory-bug detection at up to 100x; our model
    #: charges 20x (its Table 3 component times correspond to roughly
    #: this multiple over the replay window).
    overhead_factor = 20.0

    def __init__(self, max_reports: int = 64):
        self.max_reports = max_reports
        self.reports: list[MemBugReport] = []
        self.process = None
        self._live: dict[int, _LiveBlock] = {}
        self._freed: dict[int, _LiveBlock] = {}
        self._ret_slots: dict[int, tuple[int, str | None]] = {}
        self._call_stack: list[tuple[int, int]] = []   # (call_pc, target)
        self._heap_region = None
        self._stack_region = None
        self._lib_addrs: set[int] = set()

    # -- attach: infer pre-existing state from the memory image -------------

    def on_attach(self, process):
        if process is None:
            return
        self.process = process
        self._heap_region = process.memory.region_named("heap")
        self._stack_region = process.memory.region_named("stack")
        self._lib_addrs = set(process.native_addresses.values())
        self._live = {block.payload: _LiveBlock(block.payload, block.size)
                      for block in process.allocator.live_blocks()}
        self._seed_stack_frames(process)

    def _seed_stack_frames(self, process):
        """Infer live frames from the frame-pointer chain (the paper's
        'pre-existing stack frames are inferred from ebp').

        Frame ownership: the innermost frame belongs to the function
        executing now; each outer frame belongs to the function the
        previous frame returns into.
        """
        fp = process.cpu.regs[FP]
        stack = self._stack_region
        owner = process.function_at(process.cpu.pc)
        hops = 0
        while stack.start <= fp < stack.end - 8 and hops < 128:
            ret_addr = process.memory.read_word(fp + 4)
            self._ret_slots[fp + 4] = (ret_addr, owner)
            owner = process.function_at(ret_addr)
            fp = process.memory.read_word(fp)
            hops += 1

    # -- call/ret maintain the protected-slot map ---------------------------

    def on_call(self, pc, target, return_addr):
        # The CALL has already pushed the return address; its slot is the
        # current stack pointer.
        slot = self.process.cpu.regs[SP]
        function = self.process.function_at(target) \
            if target not in self._lib_addrs else None
        self._ret_slots[slot] = (return_addr, function)
        self._call_stack.append((pc, target))

    def on_ret(self, pc, target, sp):
        self._ret_slots.pop(sp, None)
        if self._call_stack:
            self._call_stack.pop()

    # -- allocator events ------------------------------------------------------

    def on_malloc(self, pc, payload, size):
        if payload:
            self._freed.pop(payload, None)
            self._live[payload] = _LiveBlock(payload, size)

    def on_free(self, pc, payload):
        if payload == 0:
            return
        block = self._live.pop(payload, None)
        if block is None:
            self._report("double_free", pc, payload,
                         detail="free() of a block that is not live")
        else:
            self._freed[payload] = block

    # -- memory accesses ----------------------------------------------------------

    def on_mem_write(self, pc, addr, size, data):
        self._check_write(pc, addr, size)

    def on_mem_copy(self, pc, dst, src, size):
        self._check_write(pc, dst, size)
        self._check_read(pc, src, size)

    def on_mem_read(self, pc, addr, size):
        self._check_read(pc, addr, size)

    def _in_heap(self, addr) -> bool:
        # The heap (and mmap'd blocks) grow during replay, so the region
        # table must be consulted live, not cached at attach time.
        region = self.process.memory.region_at(addr)
        return region is not None and (
            region.name == "heap" or region.name.startswith("mmap_"))

    def _check_write(self, pc, addr, size):
        stack = self._stack_region
        if stack.start <= addr < stack.end:
            for slot, (ret_addr, function) in self._ret_slots.items():
                if addr <= slot < addr + size or addr <= slot + 3 < addr + size:
                    self._report(
                        "stack_smash", pc, slot,
                        detail=f"overwrites return address of "
                               f"{function or 'a live frame'}",
                        function=function)
            return
        if self._in_heap(addr):
            if self._heap_region.start <= addr < self._heap_region.start + 16:
                return  # arena header is allocator-private
            block = self._block_covering(addr, size, self._live)
            if block is not None:
                if addr + size > block.end:
                    self._report("heap_overflow", pc, addr,
                                 detail=f"write past block "
                                        f"[{block.payload:#x},{block.end:#x})")
                return
            freed = self._block_covering(addr, size, self._freed)
            if freed is not None:
                self._report("dangling_write", pc, addr,
                             detail="write to freed block")
                return
            self._report("heap_overflow", pc, addr,
                         detail="write outside any live block "
                                "(red zone / metadata)")

    def _check_read(self, pc, addr, size):
        if not self._in_heap(addr):
            return
        if self._block_covering(addr, size, self._live) is not None:
            return
        if self._block_covering(addr, size, self._freed) is not None:
            self._report("dangling_read", pc, addr,
                         detail="read from freed block")

    def _block_covering(self, addr, size, table) -> _LiveBlock | None:
        for block in table.values():
            if block.payload <= addr and addr + size <= block.end:
                return block
            if block.payload <= addr < block.end:
                return block    # starts inside: overflow checks use end
        return None

    # -- reporting ----------------------------------------------------------------

    def _caller(self, pc) -> int | None:
        if pc in self._lib_addrs and self._call_stack:
            call_pc, target = self._call_stack[-1]
            if target == pc:
                return call_pc
        return None

    def _report(self, kind, pc, addr, detail="", function=None):
        if len(self.reports) >= self.max_reports:
            return
        report = MemBugReport(kind=kind, pc=pc, caller_pc=self._caller(pc),
                              addr=addr, detail=detail, function=function)
        # Collapse repeats of the same (kind, pc) — a long overflow is one
        # bug, not one bug per byte.
        for existing in self.reports:
            if existing.kind == kind and existing.pc == pc:
                return
        self.reports.append(report)

    # -- VSEF derivation --------------------------------------------------------

    def derive_vsefs(self, process) -> list[VSEF]:
        """Build the improved VSEFs from the findings (§3.3)."""
        vsefs = []
        for report in self.reports:
            loc = loc_for_address(process, report.pc)
            if loc is None:
                continue
            caller_loc = (loc_for_address(process, report.caller_pc)
                          if report.caller_pc is not None else None)
            if report.kind == "stack_smash":
                if loc.space == "lib":
                    vsefs.append(VSEF(
                        kind="heap_bounds",
                        params={"native": loc.value, "caller": caller_loc},
                        provenance="memory_bug",
                        note=f"{loc.value} must not smash the stack"))
                else:
                    vsefs.append(VSEF(
                        kind="store_guard", params={"pc": loc},
                        provenance="memory_bug",
                        note=f"{loc} should not overflow a stack buffer"))
            elif report.kind in ("heap_overflow", "dangling_write"):
                if loc.space == "lib":
                    vsefs.append(VSEF(
                        kind="heap_bounds",
                        params={"native": loc.value, "caller": caller_loc},
                        provenance="memory_bug",
                        note=f"heap bounds-check {loc.value}"))
                else:
                    vsefs.append(VSEF(
                        kind="store_guard", params={"pc": loc},
                        provenance="memory_bug",
                        note=f"{loc} should stay within its heap block"))
            elif report.kind == "double_free":
                vsefs.append(VSEF(
                    kind="double_free", params={"caller": caller_loc},
                    provenance="memory_bug",
                    note=(f"{caller_loc or loc} should not double-free")))
        return vsefs
