"""Dynamic taint analysis — analysis step #3 (a TaintCheck [41] port).

Byte-granular shadow state over memory and registers.  Network input is
the taint source: every byte received is labeled ``(msg_id, offset)``.
Taint propagates through data movement and arithmetic (including native
libc copies) and is *checked at sinks*: a tainted return address at
``ret``, or a tainted target at an indirect jump/call, raises
:class:`TaintViolation` on the spot.

Each shadow cell also remembers the recent instructions that moved it
(a bounded writer chain), which is exactly what a taint-derived VSEF
needs: "a list of instructions which propagated the taint, and the
instruction which incorrectly consumed tainted data" (§3.3).

Deliberate fidelity to TaintCheck's blind spots: comparisons do not
taint the flags and control dependences are not tracked — the paper's
``z=x`` example explains why backward slicing (step #4) still matters.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.antibody.vsef import VSEF, CodeLoc, loc_for_address
from repro.errors import ReproError
from repro.instrument.hooks import Tool
from repro.isa.opcodes import ALU_OPS, SP, Op, to_signed, to_unsigned
from repro.machine.syscalls import SYS_RECV

_MAX_WRITERS = 24
_RECENT_TAINTED_OPS = 32

Label = tuple[int, int]          # (msg_id, byte offset within message)


@dataclass(frozen=True)
class TaintCell:
    """Shadow state for one byte or register: labels + writer chain."""

    labels: frozenset[Label]
    writers: tuple[int, ...] = ()

    def with_writer(self, pc: int) -> "TaintCell":
        if self.writers and self.writers[-1] == pc:
            return self
        writers = (self.writers + (pc,))[-_MAX_WRITERS:]
        return TaintCell(self.labels, writers)


def _union(cells: list[TaintCell | None]) -> TaintCell | None:
    present = [cell for cell in cells if cell is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    labels = frozenset().union(*(cell.labels for cell in present))
    writers: tuple[int, ...] = ()
    for cell in present:
        writers += cell.writers
    return TaintCell(labels, writers[-_MAX_WRITERS:])


class TaintViolation(ReproError):
    """Tainted data reached a sensitive sink; replay stops here."""

    def __init__(self, kind: str, pc: int, cell: TaintCell):
        self.kind = kind
        self.pc = pc
        self.cell = cell
        msgs = sorted({label[0] for label in cell.labels})
        super().__init__(f"{kind} at pc={pc:#010x} from message(s) {msgs}")


@dataclass
class TaintReport:
    """What taint analysis concluded."""

    violation: TaintViolation | None
    malicious_msg_ids: list[int]
    tainted_offsets: dict[int, list[int]]   # msg_id -> offsets involved
    propagation_pcs: list[int]
    sink_pc: int | None
    pointer_taint_events: list[tuple[int, int]] = field(default_factory=list)

    def derive_vsef(self, process) -> VSEF | None:
        """The taint-subset VSEF: propagation instructions + sink (§3.3)."""
        if self.sink_pc is None:
            return None
        sink = loc_for_address(process, self.sink_pc)
        if sink is None:
            return None
        pcs = []
        for pc in self.propagation_pcs:
            loc = loc_for_address(process, pc)
            if loc is not None and loc not in pcs:
                pcs.append(loc)
        return VSEF(kind="taint_subset",
                    params={"pcs": pcs, "sinks": [sink]},
                    provenance="taint",
                    note="taint-tracking over the propagation slice only")


class TaintTracker(Tool):
    """The attachable dynamic taint analysis tool."""

    name = "taint"
    #: TaintCheck's 20-40x; LIFT reduces it to 2-4x but we model the
    #: paper's PIN reimplementation.
    overhead_factor = 20.0

    def __init__(self, raise_on_violation: bool = True):
        self.raise_on_violation = raise_on_violation
        self.shadow_mem: dict[int, TaintCell] = {}
        self.shadow_reg: list[TaintCell | None] = [None] * 10
        self.violations: list[TaintViolation] = []
        self.pointer_taint_events: list[tuple[int, int]] = []
        self.recent_tainted: deque = deque(maxlen=_RECENT_TAINTED_OPS)
        self._pending_store: TaintCell | None = None
        self._pending_addr: int | None = None
        self.process = None

    def on_attach(self, process):
        self.process = process

    # -- sources ---------------------------------------------------------------

    def on_syscall(self, pc, number, args, result):
        if number == SYS_RECV and isinstance(result, dict):
            buf = result["buf"]
            msg_id = result["msg_id"]
            # New request: fault attribution should reflect taint moved
            # while *this* request is being served, not remnants of the
            # previous one still sitting in the ring.
            self.recent_tainted.clear()
            for offset in range(len(result["data"])):
                self.shadow_mem[buf + offset] = TaintCell(
                    frozenset({(msg_id, offset)}))

    # -- native copies -------------------------------------------------------------

    def on_mem_copy(self, pc, dst, src, size):
        for offset in range(size):
            cell = self.shadow_mem.get(src + offset)
            if cell is None:
                self.shadow_mem.pop(dst + offset, None)
            else:
                moved = cell.with_writer(pc)
                self.shadow_mem[dst + offset] = moved
                self.recent_tainted.append((pc, moved))

    def on_mem_write(self, pc, addr, size, data):
        if self._pending_addr == addr and self._pending_store is not None:
            cell = self._pending_store.with_writer(pc)
            for offset in range(size):
                self.shadow_mem[addr + offset] = cell
            self.recent_tainted.append((pc, cell))
        else:
            for offset in range(size):
                self.shadow_mem.pop(addr + offset, None)
        self._pending_store = None
        self._pending_addr = None

    # -- instruction semantics --------------------------------------------------------

    def on_ins(self, pc, insn, cpu):
        op = insn.op
        regs = self.shadow_reg
        self._pending_store = None
        self._pending_addr = None

        if op == Op.MOVRR:
            rd, rs = insn.operands
            regs[rd] = regs[rs].with_writer(pc) if regs[rs] else None
        elif op == Op.MOVRI:
            regs[insn.operands[0]] = None
        elif op in ALU_OPS:
            rd = insn.operands[0]
            if insn.signature == "rr":
                merged = _union([regs[rd], regs[insn.operands[1]]])
            else:
                merged = regs[rd]
            regs[rd] = merged.with_writer(pc) if merged else None
        elif op in (Op.LDW, Op.LDB):
            rd, base, disp = insn.operands
            addr = to_unsigned(cpu.regs[base] + to_signed(disp))
            size = 4 if op == Op.LDW else 1
            if regs[base] is not None:
                self.pointer_taint_events.append((pc, addr))
            merged = _union([self.shadow_mem.get(addr + i)
                             for i in range(size)])
            regs[rd] = merged.with_writer(pc) if merged else None
            if merged:
                self.recent_tainted.append((pc, merged))
        elif op in (Op.STW, Op.STB):
            base, disp, rs = insn.operands
            addr = to_unsigned(cpu.regs[base] + to_signed(disp))
            self._pending_store = regs[rs]
            self._pending_addr = addr
        elif op == Op.PUSHR:
            rs = insn.operands[0]
            self._pending_store = regs[rs]
            self._pending_addr = to_unsigned(cpu.regs[SP] - 4)
        elif op == Op.POPR:
            rd = insn.operands[0]
            sp = cpu.regs[SP]
            merged = _union([self.shadow_mem.get(sp + i) for i in range(4)])
            regs[rd] = merged.with_writer(pc) if merged else None
        elif op in (Op.JMPR, Op.CALLR):
            cell = regs[insn.operands[0]]
            if cell is not None:
                self._violate("tainted indirect control transfer", pc, cell)
        elif op == Op.RET:
            sp = cpu.regs[SP]
            cell = _union([self.shadow_mem.get(sp + i) for i in range(4)])
            if cell is not None:
                self._violate("tainted return address", pc, cell)

    def _violate(self, kind: str, pc: int, cell: TaintCell):
        violation = TaintViolation(kind, pc, cell)
        self.violations.append(violation)
        if self.raise_on_violation:
            raise violation

    # -- reporting ---------------------------------------------------------------------

    def _labels_near_fault(self) -> TaintCell | None:
        return _union([cell for _pc, cell in self.recent_tainted])

    def report(self, fault=None) -> TaintReport:
        """Summarize: prefer a hard violation; otherwise attribute the
        fault to the taint that was moving when it happened."""
        violation = self.violations[-1] if self.violations else None
        if violation is not None:
            cell = violation.cell
            sink = violation.pc
        else:
            cell = self._labels_near_fault()
            sink = fault.pc if fault is not None and cell is not None else None
        if cell is None:
            msg_ids: list[int] = []
            offsets: dict[int, list[int]] = {}
            pcs: list[int] = []
        else:
            msg_ids = sorted({label[0] for label in cell.labels})
            offsets = {}
            for msg_id, offset in sorted(cell.labels):
                offsets.setdefault(msg_id, []).append(offset)
            pcs = list(dict.fromkeys(cell.writers))
        return TaintReport(violation=violation,
                           malicious_msg_ids=msg_ids,
                           tainted_offsets=offsets,
                           propagation_pcs=pcs,
                           sink_pc=sink,
                           pointer_taint_events=list(
                               self.pointer_taint_events))
