"""The analysis module (Fig. 1): four increasingly heavy tools.

Run order and roles, exactly as §2.2/§3.2 describe:

1. :mod:`repro.analysis.coredump` — static look at the post-fault memory
   image; milliseconds; yields the *initial* VSEF.
2. :mod:`repro.analysis.membug` — replay with red-zone/return-address/
   double-free monitoring; yields the *improved* VSEF.
3. :mod:`repro.analysis.taint` — replay with dynamic taint tracking;
   isolates the responsible input for signature generation and recovery.
4. :mod:`repro.analysis.slicing` — replay with full dependence tracking;
   sanity-checks every earlier result against the backward slice.

:mod:`repro.analysis.pipeline` sequences them over rollback/replay and
produces the per-step timing/result records behind Tables 2 and 3.
"""

from repro.analysis.coredump import CoreDumpAnalyzer, CoreDumpReport
from repro.analysis.membug import MemoryBugDetector, MemBugReport
from repro.analysis.taint import TaintTracker, TaintViolation, TaintReport
from repro.analysis.slicing import BackwardSlicer, SliceReport
from repro.analysis.pipeline import AnalysisPipeline, AnalysisOutcome, StepResult

__all__ = [
    "CoreDumpAnalyzer", "CoreDumpReport",
    "MemoryBugDetector", "MemBugReport",
    "TaintTracker", "TaintViolation", "TaintReport",
    "BackwardSlicer", "SliceReport",
    "AnalysisPipeline", "AnalysisOutcome", "StepResult",
]
