"""Dynamic backward slicing — analysis step #4 (§3.2, after [61, 65]).

Records the full dynamic dependence graph of the replayed window: for
every executed instruction, edges to the last writers of each register
and memory byte it reads, to the last flags-setter (for conditional
branches), and to the last taken control transfer (control dependence).
Unlike taint analysis, this captures *all* influences — including the
``j``/``w`` control and index dependences of the paper's example that
taint misses.

The slice is the paper's sanity check: any instruction a previous step
blamed must appear in the backward slice from the crash; "if they
identify an issue which is not in the slice, then they are incorrect."

Cost is 100-1000x, which is precisely why it is only ever run over the
short replay window; the tool enforces a node budget as a backstop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.instrument.hooks import Tool
from repro.isa.opcodes import ALU_OPS, SP, Op, to_signed, to_unsigned
from repro.machine.syscalls import SYS_RECV

_DEFAULT_NODE_BUDGET = 4_000_000


@dataclass(frozen=True)
class SliceNode:
    """One dynamic instruction instance in the dependence graph."""

    index: int
    pc: int
    kind: str      # opcode name, native name, or "input"


@dataclass
class SliceReport:
    """A computed backward slice."""

    criterion: int                     # node index sliced from
    node_indices: set[int]
    pcs: set[int]
    input_labels: set[tuple[int, int]]  # (msg_id, offset) sources reached
    total_nodes: int

    @property
    def malicious_msg_ids(self) -> list[int]:
        return sorted({msg_id for msg_id, _ in self.input_labels})

    def contains_pc(self, pc: int) -> bool:
        return pc in self.pcs

    def verifies(self, pcs: list[int]) -> bool:
        """The paper's cross-check: every blamed pc must be in the slice."""
        return all(pc in self.pcs for pc in pcs)


class BackwardSlicer(Tool):
    """The attachable dependence-graph recorder."""

    name = "slicing"
    #: "our implementation imposes 100x to 1000x overhead" (§3.2).
    overhead_factor = 300.0

    def __init__(self, node_budget: int = _DEFAULT_NODE_BUDGET,
                 control_deps: bool = True):
        self.node_budget = node_budget
        self.control_deps = control_deps
        self.nodes: list[SliceNode] = []
        self.deps: list[tuple[int, ...]] = []
        self.node_labels: dict[int, tuple[int, int]] = {}  # input nodes
        self._last_reg: list[int | None] = [None] * 10
        self._last_mem: dict[int, int] = {}
        self._last_flags: int | None = None
        self._last_control: int | None = None
        self._native_reads: list[int] = []
        self._in_native: int | None = None
        self._pending_store: tuple[int, int, tuple[int, ...]] | None = None
        self.truncated = False

    # -- node plumbing ----------------------------------------------------------

    def _add_node(self, pc: int, kind: str, deps: tuple[int, ...]) -> int:
        if len(self.nodes) >= self.node_budget:
            self.truncated = True
            raise ReproError("slice node budget exhausted")
        index = len(self.nodes)
        self.nodes.append(SliceNode(index=index, pc=pc, kind=kind))
        self.deps.append(deps)
        return index

    def _mem_deps(self, addr: int, size: int) -> tuple[int, ...]:
        out = []
        for offset in range(size):
            writer = self._last_mem.get(addr + offset)
            if writer is not None:
                out.append(writer)
        return tuple(dict.fromkeys(out))

    def _define_mem(self, addr: int, size: int, node: int):
        for offset in range(size):
            self._last_mem[addr + offset] = node

    def _control_dep(self) -> tuple[int, ...]:
        if self.control_deps and self._last_control is not None:
            return (self._last_control,)
        return ()

    # -- sources -----------------------------------------------------------------

    def on_syscall(self, pc, number, args, result):
        if number == SYS_RECV and isinstance(result, dict):
            buf, msg_id = result["buf"], result["msg_id"]
            for offset in range(len(result["data"])):
                node = self._add_node(pc, "input", ())
                self.node_labels[node] = (msg_id, offset)
                self._last_mem[buf + offset] = node

    # -- natives -------------------------------------------------------------------

    def on_native(self, pc, name, args):
        self._in_native = pc
        self._native_reads = []

    def on_free(self, pc, payload):
        # free() consumes the block's free-list link word; recording the
        # dependence puts the free (and, transitively, whoever wrote those
        # bytes — e.g. a use-after-free strcpy) into the slice.
        deps = self._mem_deps(payload, 4) + self._control_dep()
        self._add_node(pc, "free", deps)

    def on_malloc(self, pc, payload, size):
        if payload:
            self._add_node(pc, "malloc", self._control_dep())

    def on_mem_read(self, pc, addr, size):
        if self._in_native == pc:
            self._native_reads.extend(self._mem_deps(addr, size))

    def on_mem_copy(self, pc, dst, src, size):
        deps = self._mem_deps(src, size) + self._control_dep()
        node = self._add_node(pc, "copy", deps)
        self._define_mem(dst, size, node)

    def on_mem_write(self, pc, addr, size, data):
        if self._pending_store is not None:
            store_addr, store_size, deps = self._pending_store
            self._pending_store = None
            if store_addr == addr:
                node = self._add_node(pc, "store", deps)
                self._define_mem(addr, size, node)
                return
        deps = tuple(dict.fromkeys(self._native_reads)) \
            if self._in_native == pc else ()
        node = self._add_node(pc, "write", deps + self._control_dep())
        self._define_mem(addr, size, node)

    def on_reg_write(self, pc, reg, value):
        if self._in_native == pc:
            deps = tuple(dict.fromkeys(self._native_reads))
            node = self._add_node(pc, "native-result", deps)
            self._last_reg[reg] = node
            self._in_native = None

    # -- instruction semantics ----------------------------------------------------------

    def on_ins(self, pc, insn, cpu):
        self._in_native = None
        self._pending_store = None
        op = insn.op
        last_reg = self._last_reg

        def reg_dep(reg: int) -> tuple[int, ...]:
            writer = last_reg[reg]
            return (writer,) if writer is not None else ()

        if op == Op.MOVRR:
            rd, rs = insn.operands
            node = self._add_node(pc, op.name,
                                  reg_dep(rs) + self._control_dep())
            last_reg[rd] = node
        elif op == Op.MOVRI:
            node = self._add_node(pc, op.name, self._control_dep())
            last_reg[insn.operands[0]] = node
        elif op in ALU_OPS:
            rd = insn.operands[0]
            deps = reg_dep(rd)
            if insn.signature == "rr":
                deps += reg_dep(insn.operands[1])
            node = self._add_node(pc, op.name, deps + self._control_dep())
            last_reg[rd] = node
        elif op in (Op.LDW, Op.LDB):
            rd, base, disp = insn.operands
            addr = to_unsigned(cpu.regs[base] + to_signed(disp))
            size = 4 if op == Op.LDW else 1
            deps = (reg_dep(base) + self._mem_deps(addr, size)
                    + self._control_dep())
            node = self._add_node(pc, op.name, deps)
            last_reg[rd] = node
        elif op in (Op.STW, Op.STB):
            base, disp, rs = insn.operands
            addr = to_unsigned(cpu.regs[base] + to_signed(disp))
            size = 4 if op == Op.STW else 1
            deps = reg_dep(base) + reg_dep(rs) + self._control_dep()
            self._pending_store = (addr, size, deps)
        elif op in (Op.CMPRR, Op.CMPRI):
            deps = reg_dep(insn.operands[0])
            if op == Op.CMPRR:
                deps += reg_dep(insn.operands[1])
            self._last_flags = self._add_node(pc, op.name,
                                              deps + self._control_dep())
        elif op in (Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE, Op.JB,
                    Op.JAE):
            deps = ((self._last_flags,) if self._last_flags is not None
                    else ()) + self._control_dep()
            self._last_control = self._add_node(pc, op.name, deps)
        elif op in (Op.JMPR, Op.CALLR):
            deps = reg_dep(insn.operands[0]) + self._control_dep()
            self._last_control = self._add_node(pc, op.name, deps)
        elif op == Op.RET:
            sp = cpu.regs[SP]
            deps = self._mem_deps(sp, 4) + self._control_dep()
            self._last_control = self._add_node(pc, op.name, deps)
        elif op == Op.PUSHR:
            rs = insn.operands[0]
            addr = to_unsigned(cpu.regs[SP] - 4)
            self._pending_store = (addr, 4,
                                   reg_dep(rs) + self._control_dep())
        elif op == Op.PUSHI:
            addr = to_unsigned(cpu.regs[SP] - 4)
            self._pending_store = (addr, 4, self._control_dep())
        elif op == Op.POPR:
            rd = insn.operands[0]
            sp = cpu.regs[SP]
            node = self._add_node(pc, op.name,
                                  self._mem_deps(sp, 4) + self._control_dep())
            last_reg[rd] = node

    # -- slicing --------------------------------------------------------------------------

    def last_node_for_pc(self, pc: int) -> int | None:
        for node in reversed(self.nodes):
            if node.pc == pc:
                return node.index
        return None

    def backward_slice(self, criterion: int | None = None) -> SliceReport:
        """Walk the dependence graph backward from ``criterion``
        (default: the last recorded node, i.e. the crash site)."""
        if not self.nodes:
            return SliceReport(criterion=-1, node_indices=set(), pcs=set(),
                               input_labels=set(), total_nodes=0)
        if criterion is None:
            criterion = len(self.nodes) - 1
        visited: set[int] = set()
        frontier = [criterion]
        while frontier:
            index = frontier.pop()
            if index in visited:
                continue
            visited.add(index)
            frontier.extend(dep for dep in self.deps[index]
                            if dep not in visited)
        pcs = {self.nodes[index].pc for index in visited}
        labels = {self.node_labels[index] for index in visited
                  if index in self.node_labels}
        return SliceReport(criterion=criterion, node_indices=visited,
                           pcs=pcs, input_labels=labels,
                           total_nodes=len(self.nodes))

    def forward_slice(self, start: int) -> set[int]:
        """All nodes influenced by ``start`` (§3.2's forward slice)."""
        influenced: set[int] = {start}
        for index in range(start + 1, len(self.nodes)):
            if any(dep in influenced for dep in self.deps[index]):
                influenced.add(index)
        return influenced

    def forward_slice_from_input(self, msg_id: int) -> SliceReport:
        """Everything influenced by one input message.

        The paper notes this capability ("a forward slice from the
        exploit input would reveal all instructions and memory
        potentially tainted by it") but left it unimplemented; we
        implement it as the natural extension: seed the frontier with
        the message's input nodes and sweep forward once.
        """
        seeds = {index for index, label in self.node_labels.items()
                 if label[0] == msg_id}
        influenced: set[int] = set(seeds)
        if seeds:
            first = min(seeds)
            for index in range(first + 1, len(self.nodes)):
                if index in influenced:
                    continue
                if any(dep in influenced for dep in self.deps[index]):
                    influenced.add(index)
        pcs = {self.nodes[index].pc for index in influenced}
        labels = {self.node_labels[index] for index in influenced
                  if index in self.node_labels}
        return SliceReport(criterion=-1, node_indices=influenced,
                           pcs=pcs, input_labels=labels,
                           total_nodes=len(self.nodes))
