"""The rollback/replay analysis pipeline (Fig. 3).

After the lightweight monitor trips, the pipeline:

1. runs **memory-state analysis** on the crashed image (no rollback
   needed) — milliseconds, yields the initial VSEF;
2. finds the newest checkpoint from which the fault *reproduces* (plain
   replay, widening to older checkpoints if corruption predates one);
3. replays with the **memory-bug detector** attached — improved VSEFs;
4. replays with **taint analysis** attached — isolates the malicious
   input (with the paper's one-message-at-a-time replay as fallback,
   which their unintegrated taint port forced them to measure);
5. replays with the **backward slicer** attached — cross-checks that
   every blamed instruction lies in the slice from the crash.

Each step records wall time and modeled virtual time
(``window_cycles × tool overhead ÷ CPU_HZ``); cumulative virtual times
are exactly the quantities in Table 3 (time to first/best VSEF, initial
analysis time, total analysis time).

The pipeline leaves the process rolled back to the chosen checkpoint so
the recovery manager can re-execute the benign suffix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.coredump import CoreDumpAnalyzer, CoreDumpReport
from repro.analysis.membug import MemoryBugDetector
from repro.analysis.slicing import BackwardSlicer, SliceReport
from repro.analysis.taint import TaintReport, TaintTracker, TaintViolation
from repro.antibody.vsef import VSEF
from repro.errors import ReproError, VMFault
from repro.machine.cpu import CPU_HZ
from repro.machine.process import Process
from repro.runtime.checkpoint import Checkpoint, CheckpointManager
from repro.runtime.proxy import NetworkProxy

_REPLAY_STEP_BUDGET = 30_000_000
#: Virtual cost of a rollback: "nearly instantaneous, almost identical to
#: a context switch" — charge 1 ms.
ROLLBACK_VIRTUAL_SECONDS = 0.001
#: Virtual cost of the static core-dump walk (the paper reaches its
#: initial VSEF 40-60 ms after detection, dominated by this step).
COREDUMP_VIRTUAL_SECONDS = 0.04


@dataclass
class StepResult:
    """Timing + findings for one analysis step."""

    name: str
    wall_seconds: float
    virtual_seconds: float
    cumulative_virtual: float
    summary: str
    vsefs: list[VSEF] = field(default_factory=list)
    detail: object = None


@dataclass
class ReplayOutcome:
    fault: VMFault | None
    violation: TaintViolation | None
    window_cycles: int
    reason: str


@dataclass
class AnalysisOutcome:
    """Everything the pipeline learned about one attack."""

    detection_fault: VMFault
    steps: list[StepResult] = field(default_factory=list)
    coredump: CoreDumpReport | None = None
    membug_reports: list = field(default_factory=list)
    taint: TaintReport | None = None
    slice_report: SliceReport | None = None
    slice_verified: bool | None = None
    malicious_msg_ids: list[int] = field(default_factory=list)
    exploit_input: bytes | None = None
    checkpoint: Checkpoint | None = None
    reproduced: bool = False
    isolation_replays: int = 0

    @property
    def all_vsefs(self) -> list[VSEF]:
        out: list[VSEF] = []
        for step in self.steps:
            out.extend(step.vsefs)
        return out

    def step(self, name: str) -> StepResult | None:
        for step in self.steps:
            if step.name == name:
                return step
        return None

    # -- the Table 3 quantities -------------------------------------------

    @property
    def time_to_first_vsef(self) -> float | None:
        for step in self.steps:
            if step.vsefs:
                return step.cumulative_virtual
        return None

    @property
    def time_to_best_vsef(self) -> float | None:
        best = None
        for step in self.steps:
            if step.vsefs:
                best = step.cumulative_virtual
            if step.name == "memory_bug":
                break
        return best

    @property
    def initial_analysis_time(self) -> float | None:
        step = self.step("input_taint")
        return step.cumulative_virtual if step else None

    @property
    def total_analysis_time(self) -> float:
        return self.steps[-1].cumulative_virtual if self.steps else 0.0


class AnalysisPipeline:
    """Runs the four analysis steps over rollback/replay."""

    def __init__(self, process: Process, checkpoints: CheckpointManager,
                 proxy: NetworkProxy, enable_membug: bool = True,
                 enable_taint: bool = True, enable_slicing: bool = True,
                 isolate_by_replay: bool = True):
        self.process = process
        self.checkpoints = checkpoints
        self.proxy = proxy
        self.enable_membug = enable_membug
        self.enable_taint = enable_taint
        self.enable_slicing = enable_slicing
        self.isolate_by_replay = isolate_by_replay

    # -- replay machinery ----------------------------------------------------

    def _replay(self, checkpoint: Checkpoint, tools=(),
                only_msg_ids: set[int] | None = None) -> ReplayOutcome:
        """Restore ``checkpoint`` and re-feed the delivered suffix with
        ``tools`` attached; side effects are sandboxed and dropped."""
        process = self.process
        process.restore_full(checkpoint.snapshot, keep_log=True)
        process.replay_mode = True
        process.sandboxed = True
        sent_before = len(process.sent)
        for tool in tools:
            process.hooks.attach(tool, process)
        fault = violation = None
        reason = "idle"
        try:
            feed = self.proxy.delivered_since(checkpoint.msg_cursor)
            if only_msg_ids is not None:
                feed = [m for m in feed if m.msg_id in only_msg_ids]
            for message in feed:
                process.feed(message.data, msg_id=message.msg_id)
                result = process.run(max_steps=_REPLAY_STEP_BUDGET)
                reason = result.reason
                if result.reason == "exit":
                    break
        except VMFault as caught:
            fault = caught
            reason = "fault"
        except TaintViolation as caught:
            violation = caught
            reason = "taint"
        except ReproError as caught:   # e.g. slice node budget
            reason = f"aborted: {caught}"
        finally:
            for tool in tools:
                process.hooks.detach(tool, process)
            process.replay_mode = False
            process.sandboxed = False
            del process.sent[sent_before:]   # sandbox: drop side effects
        window = process.cpu.cycles - checkpoint.taken_at_cycles
        return ReplayOutcome(fault=fault, violation=violation,
                             window_cycles=window, reason=reason)

    def _find_reproducing_checkpoint(
            self) -> tuple[Checkpoint | None, ReplayOutcome | None]:
        """Newest checkpoint from which plain replay re-triggers the
        fault; widen backward if corruption predates a checkpoint."""
        checkpoint = self.checkpoints.latest()
        while checkpoint is not None:
            outcome = self._replay(checkpoint)
            if outcome.fault is not None:
                return checkpoint, outcome
            checkpoint = self.checkpoints.older_than(checkpoint)
        return None, None

    # -- the pipeline ----------------------------------------------------------

    def analyze(self, fault: VMFault) -> AnalysisOutcome:
        process = self.process
        outcome = AnalysisOutcome(detection_fault=fault)
        cumulative = 0.0

        # Step 1: memory-state analysis on the crashed image (§3.2).
        wall_start = time.perf_counter()
        coredump = CoreDumpAnalyzer(process).analyze(fault)
        wall = time.perf_counter() - wall_start
        cumulative += COREDUMP_VIRTUAL_SECONDS
        outcome.coredump = coredump
        outcome.steps.append(StepResult(
            name="memory_state", wall_seconds=wall,
            virtual_seconds=COREDUMP_VIRTUAL_SECONDS,
            cumulative_virtual=cumulative,
            summary=coredump.summary() + f"; {coredump.classification}",
            vsefs=list(coredump.vsefs), detail=coredump))

        # Locate the replay window.
        wall_start = time.perf_counter()
        checkpoint, repro = self._find_reproducing_checkpoint()
        wall = time.perf_counter() - wall_start
        outcome.checkpoint = checkpoint
        if checkpoint is None:
            # Nothing reproduces (e.g. no checkpoints yet): static results
            # are all we have.
            outcome.reproduced = False
            return outcome
        outcome.reproduced = True
        window_seconds = repro.window_cycles / CPU_HZ
        virtual = ROLLBACK_VIRTUAL_SECONDS + window_seconds
        cumulative += virtual
        outcome.steps.append(StepResult(
            name="reproduce", wall_seconds=wall, virtual_seconds=virtual,
            cumulative_virtual=cumulative,
            summary=(f"fault reproduced from checkpoint #{checkpoint.seq} "
                     f"(window {window_seconds * 1000:.1f} ms)")))

        # Step 2: memory bug detection during instrumented replay.
        if self.enable_membug:
            detector = MemoryBugDetector()
            wall_start = time.perf_counter()
            replay = self._replay(checkpoint, tools=(detector,))
            wall = time.perf_counter() - wall_start
            virtual = (ROLLBACK_VIRTUAL_SECONDS + replay.window_cycles
                       / CPU_HZ * detector.overhead_factor)
            cumulative += virtual
            vsefs = detector.derive_vsefs(process)
            outcome.membug_reports = detector.reports
            summary = "; ".join(r.describe(process)
                                for r in detector.reports) or \
                "no memory bug detected"
            outcome.steps.append(StepResult(
                name="memory_bug", wall_seconds=wall,
                virtual_seconds=virtual, cumulative_virtual=cumulative,
                summary=summary, vsefs=vsefs, detail=detector.reports))

        # Step 3: isolate the malicious input — taint analysis when
        # enabled, one-message-at-a-time replay as the fallback (the
        # paper measured the latter in lieu of its unintegrated taint
        # port; we support both).
        if self.enable_taint or self.isolate_by_replay:
            report = None
            taint_vsef = None
            malicious: list[int] = []
            virtual = 0.0
            wall_start = time.perf_counter()
            if self.enable_taint:
                tracker = TaintTracker()
                replay = self._replay(checkpoint, tools=(tracker,))
                report = tracker.report(fault=replay.fault)
                virtual += (ROLLBACK_VIRTUAL_SECONDS + replay.window_cycles
                            / CPU_HZ * tracker.overhead_factor)
                malicious = list(report.malicious_msg_ids)
                taint_vsef = report.derive_vsef(process)
            if not malicious and self.isolate_by_replay:
                isolated, extra_virtual, replays = \
                    self._isolate_by_replay(checkpoint)
                outcome.isolation_replays = replays
                virtual += extra_virtual
                malicious = isolated
            wall = time.perf_counter() - wall_start
            cumulative += virtual
            outcome.taint = report
            outcome.malicious_msg_ids = malicious
            summary = (f"malicious input: message(s) {malicious}"
                       if malicious else "input not isolated")
            if report is not None and report.violation is not None:
                summary = f"{report.violation.kind}; " + summary
            if not self.enable_taint and malicious:
                summary += f" (isolated by {outcome.isolation_replays} " \
                           f"one-at-a-time replays)"
            outcome.steps.append(StepResult(
                name="input_taint", wall_seconds=wall,
                virtual_seconds=virtual, cumulative_virtual=cumulative,
                summary=summary,
                vsefs=[taint_vsef] if taint_vsef else [], detail=report))
            if malicious:
                first = malicious[0]
                if 0 <= first < len(self.proxy.log):
                    outcome.exploit_input = self.proxy.log[first].data

        # Step 4: backward slicing — the cross-check.
        if self.enable_slicing:
            slicer = BackwardSlicer()
            wall_start = time.perf_counter()
            replay = self._replay(checkpoint, tools=(slicer,))
            wall = time.perf_counter() - wall_start
            slice_report = slicer.backward_slice()
            virtual = (ROLLBACK_VIRTUAL_SECONDS + replay.window_cycles
                       / CPU_HZ * slicer.overhead_factor)
            cumulative += virtual
            outcome.slice_report = slice_report
            blamed = self._blamed_pcs(outcome)
            verified = slice_report.verifies(blamed) if blamed else True
            outcome.slice_verified = verified
            outcome.steps.append(StepResult(
                name="slicing", wall_seconds=wall, virtual_seconds=virtual,
                cumulative_virtual=cumulative,
                summary=("verifies results" if verified else
                         "DISAGREES with earlier steps"),
                detail=slice_report))
            if not outcome.malicious_msg_ids and slice_report.input_labels:
                outcome.malicious_msg_ids = slice_report.malicious_msg_ids

        # Leave the process at the checkpoint for recovery.
        process.restore_full(checkpoint.snapshot, keep_log=True)
        return outcome

    def _isolate_by_replay(self, checkpoint: Checkpoint
                           ) -> tuple[list[int], float, int]:
        """The paper's fallback: replay suspicious messages one at a time
        until one faults (they measured this in lieu of taint timing)."""
        suspects = self.proxy.delivered_since(checkpoint.msg_cursor)
        virtual = 0.0
        replays = 0
        for message in reversed(suspects):   # most recent first
            replays += 1
            outcome = self._replay(checkpoint,
                                   only_msg_ids={message.msg_id})
            virtual += ROLLBACK_VIRTUAL_SECONDS + \
                outcome.window_cycles / CPU_HZ
            if outcome.fault is not None:
                return [message.msg_id], virtual, replays
        return [], virtual, replays

    def _blamed_pcs(self, outcome: AnalysisOutcome) -> list[int]:
        """Instruction addresses earlier steps blamed (for slice check)."""
        blamed = []
        for report in outcome.membug_reports:
            blamed.append(report.pc)
        if outcome.taint is not None and outcome.taint.sink_pc is not None:
            blamed.append(outcome.taint.sink_pc)
        return blamed
