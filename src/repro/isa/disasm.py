"""Disassembler.

Used for human-readable traces, and by the core-dump analyzer's stack walk
to verify that a candidate return address is immediately preceded by a
CALL instruction (the same heuristic real stack unwinders use).
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.encoding import Insn, decode, insn_length
from repro.isa.opcodes import OP_SIGNATURES, Op, REG_NAMES


def format_insn(insn: Insn, addr: int | None = None,
                symbols: dict[int, str] | None = None) -> str:
    """Render a decoded instruction as assembly-like text."""
    parts = []
    signature = OP_SIGNATURES[insn.op]
    for kind, value in zip(signature, insn.operands):
        if kind == "r":
            parts.append(REG_NAMES[value])
        elif kind == "i":
            name = symbols.get(value) if symbols else None
            parts.append(f"{value:#x}<{name}>" if name else f"{value:#x}")
        else:
            parts.append(str(value))
    text = insn.op.name.lower()
    if parts:
        text += " " + ", ".join(parts)
    if addr is not None:
        text = f"{addr:#010x}: {text}"
    return text


def disassemble(fetch, addr: int, count: int = 1,
                symbols: dict[int, str] | None = None) -> list[str]:
    """Disassemble ``count`` instructions starting at ``addr``."""
    out = []
    for _ in range(count):
        try:
            insn = decode(fetch, addr)
        except EncodingError:
            out.append(f"{addr:#010x}: (bad)")
            break
        out.append(format_insn(insn, addr=addr, symbols=symbols))
        addr += insn.length
    return out


def preceded_by_call(fetch, ret_addr: int, max_back: int = 16,
                     cfg=None, code_base: int = 0) -> bool:
    """Heuristic: is ``ret_addr`` plausibly a return address?

    Byte scan: checks whether some CALL instruction ends exactly at
    ``ret_addr``.  CALLI and CALLR have fixed lengths, so only two
    offsets need checking; ``max_back`` is retained for API symmetry
    with real unwinders.

    Given a recovered ``cfg`` (see
    :func:`repro.analysis.static.recover_image_cfg`) and the
    ``code_base`` its image is loaded at, the answer is exact wherever
    the CFG has coverage: the preceding call must sit at a *recovered
    instruction boundary*, so a call opcode that merely appears inside
    another instruction's immediate bytes no longer qualifies.
    Addresses outside the recovered view (self-patched or writable
    code) keep the byte-scan fallback.
    """
    if cfg is not None and (ret_addr - code_base) in cfg.insns:
        offset = ret_addr - code_base
        for op in (Op.CALLI, Op.CALLR):
            insn = cfg.insns.get(offset - insn_length(op))
            if insn is not None and insn.op is op:
                return True
        return False
    for op in (Op.CALLI, Op.CALLR):
        length = insn_length(op)
        if length > max_back:
            continue
        start = ret_addr - length
        if start < 0:
            continue
        try:
            insn = decode(fetch, start)
        except Exception:
            continue
        if insn.op == op:
            return True
    return False
