"""Byte-level instruction encoding and decoding.

Instructions are variable length: one opcode byte followed by operand
bytes as dictated by :data:`repro.isa.opcodes.OP_SIGNATURES`.  Decoding
operates over any object supporting ``fetch(addr, n) -> bytes`` so the CPU
can decode straight out of guest memory and the disassembler out of a
``bytes`` buffer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import EncodingError
from repro.isa.opcodes import (COND_BRANCHES, FUSIBLE_OPS, NUM_REGS,
                               OP_SIGNATURES, Op)

_OPERAND_WIDTH = {"r": 1, "i": 4, "b": 1}


@dataclass(frozen=True)
class Insn:
    """A decoded instruction.

    ``operands`` is a tuple matching the opcode's signature: register
    numbers for ``r`` slots, unsigned 32-bit values for ``i`` slots and
    unsigned bytes for ``b`` slots.  ``length`` is the encoded size in
    bytes, needed to advance the program counter.
    """

    op: Op
    operands: tuple[int, ...]
    length: int

    @property
    def signature(self) -> str:
        return OP_SIGNATURES[self.op]

    @property
    def fusible(self) -> bool:
        """Whether this instruction may live inside a fused trace (it is
        straight-line and never re-enters the runtime)."""
        return self.op in FUSIBLE_OPS


#: Precomputed encoded length per opcode (1 opcode byte + operand bytes).
OP_LENGTHS: dict[Op, int] = {
    op: 1 + sum(_OPERAND_WIDTH[kind] for kind in signature)
    for op, signature in OP_SIGNATURES.items()
}


def insn_length(op: Op) -> int:
    """Encoded length in bytes of an instruction with opcode ``op``."""
    return OP_LENGTHS[op]


def encode(op: Op, *operands: int) -> bytes:
    """Encode one instruction to bytes.

    Immediate operands may be given as signed or unsigned Python ints;
    they are wrapped to 32 bits.
    """
    signature = OP_SIGNATURES.get(op)
    if signature is None:
        raise EncodingError(f"unknown opcode {op!r}")
    if len(operands) != len(signature):
        raise EncodingError(
            f"{op.name} expects {len(signature)} operands, got {len(operands)}")
    out = bytearray([int(op)])
    for kind, value in zip(signature, operands):
        if kind == "r":
            if not 0 <= value < NUM_REGS:
                raise EncodingError(f"{op.name}: bad register number {value}")
            out.append(value)
        elif kind == "i":
            out += struct.pack("<I", value & 0xFFFFFFFF)
        elif kind == "b":
            if not 0 <= value <= 0xFF:
                raise EncodingError(f"{op.name}: byte operand {value} out of range")
            out.append(value)
    return bytes(out)


def decode(fetch, addr: int) -> Insn:
    """Decode the instruction at ``addr``.

    ``fetch(addr, n)`` must return ``n`` bytes; it may raise (e.g. a VM
    fault for an unmapped fetch) and that exception propagates.  Raises
    :class:`EncodingError` for an undecodable opcode byte — the CPU maps
    that to an ILLEGAL_OPCODE fault.
    """
    opcode_byte = fetch(addr, 1)[0]
    try:
        op = Op(opcode_byte)
    except ValueError:
        raise EncodingError(f"illegal opcode byte {opcode_byte:#04x} at {addr:#010x}")
    signature = OP_SIGNATURES[op]
    operands = []
    offset = 1
    for kind in signature:
        width = _OPERAND_WIDTH[kind]
        raw = fetch(addr + offset, width)
        if kind == "i":
            operands.append(struct.unpack("<I", raw)[0])
        else:
            value = raw[0]
            if kind == "r" and value >= NUM_REGS:
                raise EncodingError(
                    f"bad register number {value} at {addr:#010x}")
            operands.append(value)
        offset += width
    return Insn(op=op, operands=tuple(operands), length=offset)


def decode_range(fetch, start: int, end: int) -> dict[int, Insn]:
    """Linear-sweep decode of ``[start, end)`` into an instruction stream.

    Returns a mapping from instruction address to decoded :class:`Insn`
    for every instruction reachable by falling through from ``start``.
    The sweep stops quietly at the first undecodable byte or failed fetch
    (section padding, embedded data, the zero-fill tail of the final code
    page): those addresses simply stay un-predecoded, and an execution
    that actually reaches one faults through the normal decode path with
    full blame attribution.
    """
    stream: dict[int, Insn] = {}
    addr = start
    while addr < end:
        try:
            insn = decode(fetch, addr)
        except Exception:
            break
        if addr + insn.length > end:
            break
        stream[addr] = insn
        addr += insn.length
    return stream


def block_leaders(stream: dict[int, Insn]) -> set[int]:
    """Basic-block leaders of a decoded instruction ``stream``.

    A leader is any address control can enter other than by falling
    through mid-block: the start of the stream, every statically known
    branch/call target inside the stream, and the return address after
    every call (a ``ret`` lands there).  Indirect transfers (``jmp r``,
    ``call r``, ``ret``) have unknowable targets; entering a fused trace
    mid-way through one of them is handled by the per-cell fallback, not
    by leader analysis.
    """
    leaders: set[int] = set()
    if not stream:
        return leaders
    leaders.add(min(stream))
    for pc, insn in stream.items():
        op = insn.op
        if op is Op.JMPI or op is Op.CALLI or op in COND_BRANCHES:
            target = insn.operands[0]
            if target in stream:
                leaders.add(target)
        if op is Op.CALLI or op is Op.CALLR:
            leaders.add(pc + insn.length)
    return leaders


def decode_bytes(blob: bytes, offset: int = 0) -> Insn:
    """Decode one instruction from a bytes buffer (no VM involved)."""

    def fetch(addr: int, n: int) -> bytes:
        chunk = blob[addr:addr + n]
        if len(chunk) != n:
            raise EncodingError(f"truncated instruction at offset {addr}")
        return chunk

    return decode(fetch, offset)
