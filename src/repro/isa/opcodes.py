"""Opcode and register definitions.

Each opcode has a fixed operand signature described by a format string:

- ``r`` — a register operand, encoded as one byte.
- ``i`` — a 32-bit little-endian immediate (value, absolute address, or
  branch target).
- ``b`` — an 8-bit immediate (syscall number).

Memory operands are expressed as a base register plus a signed 32-bit
displacement, so ``LDW`` has signature ``rri``: destination register, base
register, displacement.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Opcode numbers.  The integer value is the encoding byte."""

    # 0x00 is deliberately NOT a valid opcode: zero-filled memory must not
    # decode as a NOP sled, so wild control transfers fault immediately.
    NOP = 0x2F
    HALT = 0x01

    MOVRR = 0x02    # rd <- rs
    MOVRI = 0x03    # rd <- imm32

    LDW = 0x04      # rd <- mem32[rs + imm32]
    LDB = 0x05      # rd <- zext(mem8[rs + imm32])
    STW = 0x06      # mem32[rd + imm32] <- rs
    STB = 0x07      # mem8[rd + imm32] <- low8(rs)

    ADDRR = 0x08
    ADDRI = 0x09
    SUBRR = 0x0A
    SUBRI = 0x0B
    MULRR = 0x0C
    MULRI = 0x0D
    DIVRR = 0x0E
    DIVRI = 0x0F
    MODRR = 0x10
    MODRI = 0x11
    ANDRR = 0x12
    ANDRI = 0x13
    ORRR = 0x14
    ORRI = 0x15
    XORRR = 0x16
    XORRI = 0x17
    SHLRR = 0x18
    SHLRI = 0x19
    SHRRR = 0x1A
    SHRRI = 0x1B

    CMPRR = 0x1C    # set flags from rs1 - rs2
    CMPRI = 0x1D

    JMPI = 0x1E     # pc <- imm32
    JMPR = 0x1F     # pc <- rd          (indirect jump; taint sink)
    JE = 0x20
    JNE = 0x21
    JL = 0x22       # signed <
    JLE = 0x23
    JG = 0x24
    JGE = 0x25
    JB = 0x26       # unsigned <
    JAE = 0x27      # unsigned >=

    CALLI = 0x28    # push return addr; pc <- imm32
    CALLR = 0x29    # push return addr; pc <- rd   (taint sink)
    RET = 0x2A      # pc <- pop()                  (taint sink)

    PUSHR = 0x2B
    PUSHI = 0x2C
    POPR = 0x2D

    SYS = 0x2E      # syscall, number in imm8; args r0-r3, result r0


#: Operand signature for every opcode (see module docstring).
OP_SIGNATURES: dict[Op, str] = {
    Op.NOP: "",
    Op.HALT: "",
    Op.MOVRR: "rr",
    Op.MOVRI: "ri",
    Op.LDW: "rri",
    Op.LDB: "rri",
    Op.STW: "rir",
    Op.STB: "rir",
    Op.ADDRR: "rr",
    Op.ADDRI: "ri",
    Op.SUBRR: "rr",
    Op.SUBRI: "ri",
    Op.MULRR: "rr",
    Op.MULRI: "ri",
    Op.DIVRR: "rr",
    Op.DIVRI: "ri",
    Op.MODRR: "rr",
    Op.MODRI: "ri",
    Op.ANDRR: "rr",
    Op.ANDRI: "ri",
    Op.ORRR: "rr",
    Op.ORRI: "ri",
    Op.XORRR: "rr",
    Op.XORRI: "ri",
    Op.SHLRR: "rr",
    Op.SHLRI: "ri",
    Op.SHRRR: "rr",
    Op.SHRRI: "ri",
    Op.CMPRR: "rr",
    Op.CMPRI: "ri",
    Op.JMPI: "i",
    Op.JMPR: "r",
    Op.JE: "i",
    Op.JNE: "i",
    Op.JL: "i",
    Op.JLE: "i",
    Op.JG: "i",
    Op.JGE: "i",
    Op.JB: "i",
    Op.JAE: "i",
    Op.CALLI: "i",
    Op.CALLR: "r",
    Op.RET: "",
    Op.PUSHR: "r",
    Op.PUSHI: "i",
    Op.POPR: "r",
    Op.SYS: "b",
}

#: ALU opcodes mapped to their Python semantics name, used by the CPU and
#: by the taint tool's transfer functions.
ALU_OPS: dict[Op, str] = {
    Op.ADDRR: "add", Op.ADDRI: "add",
    Op.SUBRR: "sub", Op.SUBRI: "sub",
    Op.MULRR: "mul", Op.MULRI: "mul",
    Op.DIVRR: "div", Op.DIVRI: "div",
    Op.MODRR: "mod", Op.MODRI: "mod",
    Op.ANDRR: "and", Op.ANDRI: "and",
    Op.ORRR: "or", Op.ORRI: "or",
    Op.XORRR: "xor", Op.XORRI: "xor",
    Op.SHLRR: "shl", Op.SHLRI: "shl",
    Op.SHRRR: "shr", Op.SHRRI: "shr",
}

#: Conditional branch opcodes and their predicate over (zf, sf, cf) flags.
#: zf = "result zero", sf = "signed less", cf = "unsigned less".
BRANCH_PREDICATES: dict[Op, str] = {
    Op.JE: "zf",
    Op.JNE: "not zf",
    Op.JL: "sf",
    Op.JLE: "sf or zf",
    Op.JG: "not (sf or zf)",
    Op.JGE: "not sf",
    Op.JB: "cf",
    Op.JAE: "not cf",
}

#: The same predicates as callables over ``(zf, sf, cf)``; the execution
#: core binds these into its dispatch tables instead of re-deriving the
#: condition with an if/elif ladder per branch.
PREDICATE_FUNCS: dict[Op, "object"] = {
    Op.JE: lambda zf, sf, cf: zf,
    Op.JNE: lambda zf, sf, cf: not zf,
    Op.JL: lambda zf, sf, cf: sf,
    Op.JLE: lambda zf, sf, cf: sf or zf,
    Op.JG: lambda zf, sf, cf: not (sf or zf),
    Op.JGE: lambda zf, sf, cf: not sf,
    Op.JB: lambda zf, sf, cf: cf,
    Op.JAE: lambda zf, sf, cf: not cf,
}

COND_BRANCHES = frozenset(BRANCH_PREDICATES)

#: Opcodes that transfer control (or may): every one of these ends a
#: basic block, so no fused trace may extend past one.
CONTROL_TRANSFER_OPS = frozenset({
    Op.JMPI, Op.JMPR, Op.CALLI, Op.CALLR, Op.RET, *BRANCH_PREDICATES,
})

#: Opcodes that re-enter the runtime (syscall dispatch, process exit) and
#: therefore never compile to executable cells, let alone fuse.
RUNTIME_OPS = frozenset({Op.SYS, Op.HALT})

#: Fusibility metadata: opcodes whose cells may be merged into a single
#: fused supercell.  An opcode is fusible iff it is straight-line (falls
#: through to ``pc + length``), touches no instrumentation state beyond
#: registers/flags/data memory, and never re-enters the runtime.  Control
#: transfers, SYS and HALT terminate traces; everything else — data
#: movement, ALU, compares, loads/stores and stack traffic — fuses.
FUSIBLE_OPS = frozenset(
    op for op in Op if op not in CONTROL_TRANSFER_OPS and op not in RUNTIME_OPS)

#: ALU semantics as callables over unsigned 32-bit operands.  Results may
#: exceed 32 bits (callers mask) and division by zero raises Python's
#: ``ZeroDivisionError`` (callers map it to a DIV_ZERO fault); keeping the
#: raw operations branch-free is what lets the predecoded fast path bind
#: one function per opcode.
ALU_FUNCS: dict[str, "object"] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b,
    "mod": lambda a, b: a % b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "shr": lambda a, b: a >> (b & 31),
}

# ---------------------------------------------------------------------------
# Registers
# ---------------------------------------------------------------------------

NUM_REGS = 10
SP = 8   # stack pointer
FP = 9   # frame pointer

REG_NAMES = {i: f"r{i}" for i in range(8)}
REG_NAMES[SP] = "sp"
REG_NAMES[FP] = "fp"

REG_NUMBERS = {name: num for num, name in REG_NAMES.items()}

WORD_MASK = 0xFFFFFFFF
WORD_SIZE = 4


def to_signed(value: int) -> int:
    """Interpret a 32-bit unsigned word as a signed integer."""
    value &= WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


def to_unsigned(value: int) -> int:
    """Wrap a Python integer into a 32-bit unsigned word."""
    return value & WORD_MASK
