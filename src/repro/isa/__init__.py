"""Instruction set architecture for the Sweeper reproduction VM.

The ISA is a small 32-bit register machine whose instructions are encoded
as bytes and fetched from VM memory, so injected input ("shellcode") is
genuinely executable and control-flow hijacks behave as they do on x86.

Public surface:

- :mod:`repro.isa.opcodes` — the opcode table and register names.
- :mod:`repro.isa.encoding` — byte encode/decode of single instructions.
- :mod:`repro.isa.assembler` — two-pass assembler producing relocatable
  :class:`~repro.isa.assembler.Image` objects.
- :mod:`repro.isa.disasm` — disassembler for debugging and stack-walk
  validation.
"""

from repro.isa.opcodes import Op, REG_NAMES, REG_NUMBERS, NUM_REGS, SP, FP
from repro.isa.encoding import Insn, encode, decode, insn_length
from repro.isa.assembler import assemble, Image, Relocation
from repro.isa.disasm import disassemble, format_insn

__all__ = [
    "Op", "REG_NAMES", "REG_NUMBERS", "NUM_REGS", "SP", "FP",
    "Insn", "encode", "decode", "insn_length",
    "assemble", "Image", "Relocation",
    "disassemble", "format_insn",
]
