"""Two-pass assembler producing relocatable program images.

The assembler understands two sections (``.text`` and ``.data``), labels,
data directives, symbolic constants and native-library imports.  Because
the Sweeper runtime randomizes the load address of every region (that is
its lightweight attack monitor), images are *relocatable*: every absolute
reference is recorded as a :class:`Relocation` and patched by the loader
once the randomized bases are known.

Syntax overview::

    .equ BUFSZ 64
    .text
    main:
        push fp
        mov fp, sp
        sub sp, BUFSZ
        mov r0, buf          ; label reference -> data relocation
        call @strcpy         ; native library import
        ld r1, [r0+4]
        st [r0], r1
        cmp r1, 0
        je done
        jmp main
    done:
        sys exit
    .data
    buf: .space 64
    msg: .asciiz "hello\\n"
    tbl: .word 1, 2, main

Comments start with ``;`` or ``#``.  ``sys`` accepts either a number or a
symbolic syscall name from :data:`repro.machine.syscalls.SYSCALL_NUMBERS`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.isa.encoding import encode, insn_length
from repro.isa.opcodes import Op, REG_NUMBERS

# Syscall names are defined here (rather than imported from the machine
# package) to keep the ISA layer dependency-free; the machine asserts the
# two tables agree.
SYSCALL_NAMES = {
    "exit": 0, "recv": 1, "send": 2, "time": 3, "rand": 4,
    "log": 5, "getpid": 6,
}

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class Relocation:
    """An absolute reference to be patched at load time.

    ``section``/``offset`` locate the 32-bit immediate field to patch;
    ``target`` is ``"text"``, ``"data"`` or ``"native"``; ``value`` is the
    target-section offset (or the native symbol name) and ``addend`` is
    added to the resolved address.
    """

    section: str
    offset: int
    target: str
    value: int | str
    addend: int = 0


@dataclass
class Image:
    """A relocatable program: section blobs, relocations and symbols."""

    text: bytes = b""
    data: bytes = b""
    relocations: list[Relocation] = field(default_factory=list)
    symbols: dict[str, tuple[str, int]] = field(default_factory=dict)
    entry: str = "main"

    def symbol_offset(self, name: str) -> tuple[str, int]:
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblerError(f"undefined symbol {name!r}")


@dataclass
class _Operand:
    kind: str                    # "reg" | "imm" | "mem"
    reg: int | None = None       # register number (reg/mem)
    value: int = 0               # immediate or displacement
    reloc_target: str | None = None   # "text"/"data"/"native" when symbolic
    reloc_value: int | str = 0
    reloc_addend: int = 0


class _Assembler:
    """Internal two-pass assembler state."""

    def __init__(self, source: str):
        self.source = source
        self.equs: dict[str, int] = {}
        self.symbols: dict[str, tuple[str, int]] = {}
        self.relocations: list[Relocation] = []
        self.sections: dict[str, bytearray] = {"text": bytearray(),
                                               "data": bytearray()}
        self.current = "text"
        self.line_no = 0

    # -- helpers ----------------------------------------------------------

    def error(self, message: str) -> AssemblerError:
        return AssemblerError(message, line=self.line_no)

    def _strip(self, line: str) -> str:
        out = []
        in_string = False
        for ch in line:
            if ch == '"':
                in_string = not in_string
            if not in_string and ch in ";#":
                break
            out.append(ch)
        return "".join(out).strip()

    def _parse_int(self, token: str) -> int | None:
        token = token.strip()
        neg = token.startswith("-")
        if neg:
            token = token[1:].strip()
        value = None
        if re.fullmatch(r"0[xX][0-9a-fA-F]+", token):
            value = int(token, 16)
        elif re.fullmatch(r"[0-9]+", token):
            value = int(token)
        elif len(token) == 3 and token[0] == "'" and token[2] == "'":
            value = ord(token[1])
        elif token in self.equs:
            value = self.equs[token]
        if value is None:
            return None
        return -value if neg else value

    def _parse_value(self, token: str) -> _Operand:
        """Parse an immediate expression: int, label, label+int, @native."""
        token = token.strip()
        as_int = self._parse_int(token)
        if as_int is not None:
            return _Operand(kind="imm", value=as_int)
        addend = 0
        base = token
        match = re.fullmatch(r"(.+?)\s*([+-])\s*(\S+)", token)
        if match and self._parse_int(match.group(3)) is not None:
            base = match.group(1).strip()
            addend = self._parse_int(match.group(3))
            if match.group(2) == "-":
                addend = -addend
        if base.startswith("@"):
            return _Operand(kind="imm", reloc_target="native",
                            reloc_value=base[1:], reloc_addend=addend)
        if _LABEL_RE.fullmatch(base):
            # Section resolved in pass 2 (labels may be forward references).
            return _Operand(kind="imm", reloc_target="label",
                            reloc_value=base, reloc_addend=addend)
        raise self.error(f"cannot parse value {token!r}")

    def _parse_operand(self, token: str) -> _Operand:
        token = token.strip()
        if token in REG_NUMBERS:
            return _Operand(kind="reg", reg=REG_NUMBERS[token])
        if token.startswith("["):
            if not token.endswith("]"):
                raise self.error(f"unterminated memory operand {token!r}")
            inner = token[1:-1].strip()
            match = re.fullmatch(r"(\w+)\s*(?:([+-])\s*(.+))?", inner)
            if not match or match.group(1) not in REG_NUMBERS:
                raise self.error(f"memory operand must be [reg+disp]: {token!r}")
            reg = REG_NUMBERS[match.group(1)]
            disp = 0
            if match.group(3) is not None:
                disp = self._parse_int(match.group(3))
                if disp is None:
                    raise self.error(f"bad displacement in {token!r}")
                if match.group(2) == "-":
                    disp = -disp
            return _Operand(kind="mem", reg=reg, value=disp)
        return self._parse_value(token)

    def _split_operands(self, rest: str) -> list[str]:
        out, depth, current = [], 0, []
        in_string = False
        for ch in rest:
            if ch == '"':
                in_string = not in_string
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            if ch == "," and depth == 0 and not in_string:
                out.append("".join(current))
                current = []
            else:
                current.append(ch)
        if current:
            out.append("".join(current))
        return [tok.strip() for tok in out if tok.strip()]

    # -- instruction selection -------------------------------------------

    _ALU = {"add", "sub", "mul", "div", "mod", "and", "or", "xor",
            "shl", "shr"}
    _JCC = {"je": Op.JE, "jne": Op.JNE, "jl": Op.JL, "jle": Op.JLE,
            "jg": Op.JG, "jge": Op.JGE, "jb": Op.JB, "jae": Op.JAE}

    def _select(self, mnemonic: str,
                operands: list[_Operand]) -> tuple[Op, list[_Operand]]:
        m = mnemonic.lower()

        def need(n: int):
            if len(operands) != n:
                raise self.error(f"{m} expects {n} operands, got {len(operands)}")

        if m == "nop":
            need(0)
            return Op.NOP, []
        if m == "halt":
            need(0)
            return Op.HALT, []
        if m == "ret":
            need(0)
            return Op.RET, []
        if m == "mov":
            need(2)
            if operands[0].kind != "reg":
                raise self.error("mov destination must be a register")
            if operands[1].kind == "reg":
                return Op.MOVRR, operands
            if operands[1].kind == "imm":
                return Op.MOVRI, operands
            raise self.error("mov source must be register or immediate")
        if m in self._ALU:
            need(2)
            if operands[0].kind != "reg":
                raise self.error(f"{m} destination must be a register")
            table = {"add": (Op.ADDRR, Op.ADDRI), "sub": (Op.SUBRR, Op.SUBRI),
                     "mul": (Op.MULRR, Op.MULRI), "div": (Op.DIVRR, Op.DIVRI),
                     "mod": (Op.MODRR, Op.MODRI), "and": (Op.ANDRR, Op.ANDRI),
                     "or": (Op.ORRR, Op.ORRI), "xor": (Op.XORRR, Op.XORRI),
                     "shl": (Op.SHLRR, Op.SHLRI), "shr": (Op.SHRRR, Op.SHRRI)}
            rr, ri = table[m]
            if operands[1].kind == "reg":
                return rr, operands
            if operands[1].kind == "imm":
                return ri, operands
            raise self.error(f"{m} source must be register or immediate")
        if m == "cmp":
            need(2)
            if operands[0].kind != "reg":
                raise self.error("cmp first operand must be a register")
            if operands[1].kind == "reg":
                return Op.CMPRR, operands
            if operands[1].kind == "imm":
                return Op.CMPRI, operands
            raise self.error("cmp second operand must be register or immediate")
        if m in ("ld", "ldw", "ldb"):
            need(2)
            if operands[0].kind != "reg" or operands[1].kind != "mem":
                raise self.error(f"{m} expects: {m} rd, [rs+disp]")
            op = Op.LDB if m == "ldb" else Op.LDW
            mem = operands[1]
            return op, [operands[0], _Operand(kind="reg", reg=mem.reg),
                        _Operand(kind="imm", value=mem.value)]
        if m in ("st", "stw", "stb"):
            need(2)
            if operands[0].kind != "mem" or operands[1].kind != "reg":
                raise self.error(f"{m} expects: {m} [rd+disp], rs")
            op = Op.STB if m == "stb" else Op.STW
            mem = operands[0]
            return op, [_Operand(kind="reg", reg=mem.reg),
                        _Operand(kind="imm", value=mem.value), operands[1]]
        if m == "jmp":
            need(1)
            if operands[0].kind == "reg":
                return Op.JMPR, operands
            return Op.JMPI, operands
        if m in self._JCC:
            need(1)
            if operands[0].kind != "imm":
                raise self.error(f"{m} target must be a label or address")
            return self._JCC[m], operands
        if m == "call":
            need(1)
            if operands[0].kind == "reg":
                return Op.CALLR, operands
            return Op.CALLI, operands
        if m == "push":
            need(1)
            if operands[0].kind == "reg":
                return Op.PUSHR, operands
            return Op.PUSHI, operands
        if m == "pop":
            need(1)
            if operands[0].kind != "reg":
                raise self.error("pop destination must be a register")
            return Op.POPR, operands
        if m == "sys":
            need(1)
            arg = operands[0]
            if arg.kind != "imm" or arg.reloc_target not in (None, "label"):
                raise self.error("sys expects a syscall number or name")
            if arg.reloc_target == "label":
                name = str(arg.reloc_value)
                if name not in SYSCALL_NAMES:
                    raise self.error(f"unknown syscall name {name!r}")
                arg = _Operand(kind="imm", value=SYSCALL_NAMES[name])
            return Op.SYS, [arg]
        raise self.error(f"unknown mnemonic {mnemonic!r}")

    # -- passes ------------------------------------------------------------

    def _lines(self):
        for number, raw in enumerate(self.source.splitlines(), start=1):
            self.line_no = number
            line = self._strip(raw)
            if line:
                yield line

    def _emit_data_directive(self, directive: str, rest: str,
                             section: bytearray, emit: bool):
        if directive == ".space":
            size = self._parse_int(rest)
            if size is None or size < 0:
                raise self.error(f"bad .space size {rest!r}")
            section += b"\x00" * size
        elif directive == ".byte":
            for token in self._split_operands(rest):
                value = self._parse_int(token)
                if value is None:
                    raise self.error(f"bad .byte value {token!r}")
                section.append(value & 0xFF)
        elif directive == ".word":
            for token in self._split_operands(rest):
                operand = self._parse_value(token)
                if operand.reloc_target is not None:
                    if emit:
                        self._note_reloc(self.current, len(section), operand)
                    section += (operand.reloc_addend & 0xFFFFFFFF).to_bytes(
                        4, "little")
                else:
                    section += (operand.value & 0xFFFFFFFF).to_bytes(4, "little")
        elif directive in (".asciiz", ".ascii"):
            match = re.fullmatch(r'"(.*)"', rest.strip())
            if not match:
                raise self.error(f"{directive} expects a quoted string")
            payload = (match.group(1)
                       .encode("latin-1")
                       .decode("unicode_escape")
                       .encode("latin-1"))
            section += payload
            if directive == ".asciiz":
                section.append(0)
        else:
            raise self.error(f"unknown directive {directive!r}")

    def _note_reloc(self, section: str, offset: int, operand: _Operand):
        target = operand.reloc_target
        value: int | str
        if target == "native":
            value = operand.reloc_value
        else:  # label
            name = str(operand.reloc_value)
            if name not in self.symbols:
                raise self.error(f"undefined label {name!r}")
            target, value = self.symbols[name]
        self.relocations.append(Relocation(
            section=section, offset=offset, target=target, value=value,
            addend=operand.reloc_addend))

    def run(self) -> Image:
        for emit in (False, True):
            self.current = "text"
            self.sections = {"text": bytearray(), "data": bytearray()}
            if emit:
                self.relocations = []
            for line in self._lines():
                self._process_line(line, emit)
        image = Image(text=bytes(self.sections["text"]),
                      data=bytes(self.sections["data"]),
                      relocations=self.relocations,
                      symbols=dict(self.symbols))
        return image

    def _process_line(self, line: str, emit: bool):
        while True:
            match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$", line)
            if not match:
                break
            label, line = match.group(1), match.group(2)
            offset = len(self.sections[self.current])
            if not emit:
                if label in self.symbols:
                    raise self.error(f"duplicate label {label!r}")
                self.symbols[label] = (self.current, offset)
            if not line:
                return
        if line.startswith("."):
            parts = line.split(None, 1)
            directive = parts[0]
            rest = parts[1] if len(parts) > 1 else ""
            if directive == ".text":
                self.current = "text"
            elif directive == ".data":
                self.current = "data"
            elif directive == ".equ":
                bits = rest.split(None, 1)
                if len(bits) != 2:
                    raise self.error(".equ expects: .equ NAME value")
                value = self._parse_int(bits[1])
                if value is None:
                    raise self.error(f"bad .equ value {bits[1]!r}")
                self.equs[bits[0]] = value
            else:
                self._emit_data_directive(directive, rest,
                                          self.sections[self.current], emit)
            return
        if self.current != "text":
            raise self.error("instructions are only allowed in .text")
        parts = line.split(None, 1)
        mnemonic = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        raw_operands = [self._parse_operand(tok)
                        for tok in self._split_operands(rest)]
        op, operands = self._select(mnemonic, raw_operands)
        if not emit:
            # Pass 1 only needs the length, which is operand-count invariant.
            self.sections["text"] += b"\x00" * insn_length(op)
            return
        section = self.sections["text"]
        values = []
        cursor = len(section) + 1  # skip opcode byte
        for operand in operands:
            if operand.kind == "reg":
                values.append(operand.reg)
                cursor += 1
            else:
                if operand.reloc_target is not None:
                    self._note_reloc("text", cursor, operand)
                    values.append(operand.reloc_addend)
                else:
                    values.append(operand.value)
                cursor += 4
        section += encode(op, *values)


def assemble(source: str, entry: str = "main") -> Image:
    """Assemble ``source`` into a relocatable :class:`Image`.

    ``entry`` names the symbol where execution starts; it must be defined
    in the text section.
    """
    image = _Assembler(source).run()
    image.entry = entry
    if entry not in image.symbols:
        raise AssemblerError(f"entry symbol {entry!r} not defined")
    section, _offset = image.symbols[entry]
    if section != "text":
        raise AssemblerError(f"entry symbol {entry!r} is not in .text")
    return image
