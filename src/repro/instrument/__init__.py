"""Dynamic instrumentation framework (the reproduction's PIN [35]).

Tools subclass :class:`~repro.instrument.hooks.Tool` and override only the
callbacks they need.  Tools can be attached to and detached from a
*running* process — Sweeper's whole premise is that heavyweight analysis
is added on demand during replay, never during normal execution.  When no
tool is attached the CPU takes a fast path that skips every callback.
"""

from repro.instrument.hooks import HookManager, Tool
from repro.instrument.tracer import ExecutionTracer

__all__ = ["HookManager", "Tool", "ExecutionTracer"]
