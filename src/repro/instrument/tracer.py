"""Execution tracer: a debugging tool built on the instrumentation API.

Not part of the paper's system, but indispensable when writing guest
programs: attach an :class:`ExecutionTracer` to a process and get a
symbolized instruction/call/syscall trace, bounded to the last N events.
While detached the tracer costs nothing: the hook manager swaps in the
null event sink and the batched CPU loop runs predecoded cells with no
instrumentation calls at all.

Example::

    tracer = ExecutionTracer(limit=2000)
    process.hooks.attach(tracer, process)
    process.run(max_steps=...)
    print(tracer.render())
"""

from __future__ import annotations

from collections import deque

from repro.instrument.hooks import Tool
from repro.isa.disasm import format_insn


class ExecutionTracer(Tool):
    """Records a bounded, symbolized execution trace."""

    name = "tracer"
    overhead_factor = 1.0

    def __init__(self, limit: int = 10_000, trace_memory: bool = False):
        self.limit = limit
        self.trace_memory = trace_memory
        self.events: deque[str] = deque(maxlen=limit)
        self.instruction_count = 0
        #: Per-event-kind tallies (calls, rets, natives, syscalls, ...);
        #: cheap run-shape observability even when the ring overflowed.
        self.counts: dict[str, int] = {}
        self._symbols: dict[int, str] = {}
        self.process = None

    def on_attach(self, process):
        if process is None:
            return
        self.process = process
        self._symbols = {addr: name
                         for name, addr in process.symbols.items()}
        for name, addr in process.native_addresses.items():
            self._symbols[addr] = f"@{name}"

    def _where(self, addr: int) -> str:
        name = self._symbols.get(addr)
        if name is not None:
            return f"{addr:#010x} <{name}>"
        if self.process is not None:
            function = self.process.function_at(addr)
            if function is not None:
                return f"{addr:#010x} <{function}+?>"
        return f"{addr:#010x}"

    def _count(self, kind: str):
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def on_ins(self, pc, insn, cpu):
        self.instruction_count += 1
        self.events.append(
            f"  {format_insn(insn, addr=pc, symbols=self._symbols)}")

    def on_call(self, pc, target, return_addr):
        self._count("call")
        self.events.append(f"CALL {self._where(target)} "
                           f"(from {pc:#010x})")

    def on_ret(self, pc, target, sp):
        self._count("ret")
        self.events.append(f"RET  -> {self._where(target)}")

    def on_native(self, pc, name, args):
        self._count("native")
        rendered = ", ".join(f"{arg:#x}" for arg in args)
        self.events.append(f"NATIVE {name}({rendered})")

    def on_syscall(self, pc, number, args, result):
        self._count("syscall")
        self.events.append(f"SYS  #{number} args={args[:2]}")

    def on_mem_write(self, pc, addr, size, data):
        if self.trace_memory:
            self.events.append(f"  WRITE [{addr:#010x}]+{size}")

    def on_mem_read(self, pc, addr, size):
        if self.trace_memory:
            self.events.append(f"  READ  [{addr:#010x}]+{size}")

    def render(self, last: int | None = None) -> str:
        """The trace as text; ``last`` limits to the final N events."""
        events = list(self.events)
        if last is not None:
            events = events[-last:]
        header = (f"--- trace: {self.instruction_count} instructions, "
                  f"showing {len(events)} events ---")
        return "\n".join([header] + events)

    def summary(self) -> dict:
        """Instruction count plus per-kind event tallies."""
        return {"instructions": self.instruction_count, **self.counts}

    def clear(self):
        self.events.clear()
        self.instruction_count = 0
        self.counts.clear()
