"""Hook manager and tool base class.

Callback surface (mirroring PIN's instrumentation points):

- ``on_ins(pc, insn, cpu)`` — before each decoded instruction executes.
- ``on_mem_read(pc, addr, size)`` / ``on_mem_write(pc, addr, size, data)``
  — every data access, from regular instructions *and* native libc code.
- ``on_mem_copy(pc, dst, src, size)`` — a byte-preserving move performed
  by a native (strcpy/memcpy/...).  Taint tools propagate labels through
  it; memory-bug tools treat it as a write to ``dst``.
- ``on_call(pc, target, return_addr)`` / ``on_ret(pc, target, sp)`` —
  control transfers that create/destroy frames.
- ``on_branch(pc, target, taken)`` — conditional and indirect jumps.
- ``on_reg_write(pc, reg, value)`` — register updates (slicing needs it).
- ``on_malloc(pc, payload, size)`` / ``on_free(pc, payload)`` — allocator
  events (the allocator's own metadata writes are invisible, matching the
  paper's "not by malloc() or free()" red-zone rule).
- ``on_native(pc, name, args)`` — a native library routine is entered.
- ``on_syscall(pc, number, args, result)`` — after each syscall.

All ``pc`` values are absolute guest addresses; for natives they are the
native's library address, so crash/blame attribution points into "libc"
exactly as the paper's Table 2 does.
"""

from __future__ import annotations


class Tool:
    """Base class for analysis tools; override the callbacks you need."""

    name = "tool"

    #: Virtual-time slowdown factor this tool imposes while attached, used
    #: by the timing model (the paper quotes 20x-100x for memory bug
    #: detection/taint and 100x-1000x for slicing).
    overhead_factor = 1.0

    def on_attach(self, process) -> None:  # noqa: D102
        pass

    def on_detach(self, process) -> None:  # noqa: D102
        pass

    def on_ins(self, pc, insn, cpu) -> None:  # noqa: D102
        pass

    def on_mem_read(self, pc, addr, size) -> None:  # noqa: D102
        pass

    def on_mem_write(self, pc, addr, size, data) -> None:  # noqa: D102
        pass

    def on_mem_copy(self, pc, dst, src, size) -> None:  # noqa: D102
        pass

    def on_call(self, pc, target, return_addr) -> None:  # noqa: D102
        pass

    def on_ret(self, pc, target, sp) -> None:  # noqa: D102
        pass

    def on_branch(self, pc, target, taken) -> None:  # noqa: D102
        pass

    def on_reg_write(self, pc, reg, value) -> None:  # noqa: D102
        pass

    def on_malloc(self, pc, payload, size) -> None:  # noqa: D102
        pass

    def on_free(self, pc, payload) -> None:  # noqa: D102
        pass

    def on_native(self, pc, name, args) -> None:  # noqa: D102
        pass

    def on_syscall(self, pc, number, args, result) -> None:  # noqa: D102
        pass


_EVENTS = ("ins", "mem_read", "mem_write", "mem_copy", "call", "ret",
           "branch", "reg_write", "malloc", "free", "native", "syscall")


class NullSink:
    """The do-nothing event bus: every dispatcher is a no-op.

    The machine layer never tests ``hooks.active`` on its emit paths any
    more; it calls ``hooks.sink.<event>(...)`` unconditionally, and while
    no tool is attached that sink is this shared singleton.  The batched
    execution loop goes one step further and selects a *plain* inner loop
    (whose handlers contain no hook calls at all) once per run, so the
    uninstrumented per-instruction cost of the event bus is zero.
    """

    active = False

    def ins(self, pc, insn, cpu):
        pass

    def mem_read(self, pc, addr, size):
        pass

    def mem_write(self, pc, addr, size, data):
        pass

    def mem_copy(self, pc, dst, src, size):
        pass

    def call(self, pc, target, return_addr):
        pass

    def ret(self, pc, target, sp):
        pass

    def branch(self, pc, target, taken):
        pass

    def reg_write(self, pc, reg, value):
        pass

    def malloc(self, pc, payload, size):
        pass

    def free(self, pc, payload):
        pass

    def native(self, pc, name, args):
        pass

    def syscall(self, pc, number, args, result):
        pass


NULL_SINK = NullSink()


class HookManager:
    """Dispatches CPU events to attached tools.

    Keeps one pre-computed callback list per event so an attached tool
    that only hooks a few events stays cheap, and exposes ``sink`` — the
    manager itself while any listener is live, the shared
    :data:`NULL_SINK` otherwise — so emitters need no ``active`` branch.
    """

    def __init__(self):
        self.tools: list[Tool] = []
        self._listeners: dict[str, list] = {name: [] for name in _EVENTS}
        self.active = False
        #: Where the machine layer sends events: ``self`` when any tool
        #: listens, the shared null object when none does.
        self.sink: "HookManager | NullSink" = NULL_SINK

    def attach(self, tool: Tool, process=None):
        """Attach ``tool``; may happen mid-execution (PIN attach)."""
        self.tools.append(tool)
        self._rebuild()
        tool.on_attach(process)

    def detach(self, tool: Tool, process=None):
        self.tools.remove(tool)
        self._rebuild()
        tool.on_detach(process)

    def detach_all(self, process=None):
        for tool in list(self.tools):
            self.detach(tool, process)

    def _rebuild(self):
        base = Tool
        for event in _EVENTS:
            method = f"on_{event}"
            self._listeners[event] = [
                getattr(tool, method) for tool in self.tools
                if getattr(type(tool), method) is not getattr(base, method)]
        self.active = any(self._listeners[event] for event in _EVENTS)
        self.sink = self if self.active else NULL_SINK

    def overhead_factor(self) -> float:
        """Combined virtual-time slowdown of the attached tools."""
        factor = 1.0
        for tool in self.tools:
            factor *= max(tool.overhead_factor, 1.0)
        return factor

    # -- dispatchers (one per event, kept branch-free and minimal) ---------

    def ins(self, pc, insn, cpu):
        for fn in self._listeners["ins"]:
            fn(pc, insn, cpu)

    def mem_read(self, pc, addr, size):
        for fn in self._listeners["mem_read"]:
            fn(pc, addr, size)

    def mem_write(self, pc, addr, size, data):
        for fn in self._listeners["mem_write"]:
            fn(pc, addr, size, data)

    def mem_copy(self, pc, dst, src, size):
        for fn in self._listeners["mem_copy"]:
            fn(pc, dst, src, size)

    def call(self, pc, target, return_addr):
        for fn in self._listeners["call"]:
            fn(pc, target, return_addr)

    def ret(self, pc, target, sp):
        for fn in self._listeners["ret"]:
            fn(pc, target, sp)

    def branch(self, pc, target, taken):
        for fn in self._listeners["branch"]:
            fn(pc, target, taken)

    def reg_write(self, pc, reg, value):
        for fn in self._listeners["reg_write"]:
            fn(pc, reg, value)

    def malloc(self, pc, payload, size):
        for fn in self._listeners["malloc"]:
            fn(pc, payload, size)

    def free(self, pc, payload):
        for fn in self._listeners["free"]:
            fn(pc, payload)

    def native(self, pc, name, args):
        for fn in self._listeners["native"]:
            fn(pc, name, args)

    def syscall(self, pc, number, args, result):
        for fn in self._listeners["syscall"]:
            fn(pc, number, args, result)
