"""Exception hierarchy shared across the Sweeper reproduction.

Faults raised by the virtual machine are ordinary Python exceptions that
carry enough context (program counter, fault address, fault kind) for the
lightweight monitor to classify them, mirroring the information a SIGSEGV
siginfo carries on a real host.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class AssemblerError(ReproError):
    """Malformed assembly source (bad mnemonic, undefined label, ...)."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Instruction cannot be encoded or decoded."""


class LoaderError(ReproError):
    """Program image cannot be mapped into a process."""


class VMFault(ReproError):
    """A hardware-level fault inside the virtual machine.

    ``kind`` is one of the ``FAULT_*`` constants below.  ``pc`` is the
    address of the faulting instruction (for control-transfer faults this
    is the *target* that could not be fetched; ``source_pc`` then holds the
    transfer instruction).  ``addr`` is the data address involved, if any.
    """

    def __init__(self, kind: str, pc: int, addr: int | None = None,
                 source_pc: int | None = None, detail: str = ""):
        self.kind = kind
        self.pc = pc
        self.addr = addr
        self.source_pc = source_pc
        self.detail = detail
        where = f"pc={pc:#010x}"
        if addr is not None:
            where += f" addr={addr:#010x}"
        if source_pc is not None:
            where += f" source_pc={source_pc:#010x}"
        msg = f"{kind} at {where}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


FAULT_SEGV = "SEGV"                 # access to unmapped memory
FAULT_NULL = "NULL_DEREF"           # access below the null guard page
FAULT_BADPC = "BAD_PC"              # fetch from unmapped memory
FAULT_ILLEGAL = "ILLEGAL_OPCODE"    # undecodable instruction byte
FAULT_DIVZERO = "DIV_ZERO"          # integer division by zero
FAULT_PROT = "PROT"                 # write to read-only memory


class AttackDetected(ReproError):
    """Raised when a deployed antibody (VSEF or filter) blocks execution.

    Unlike :class:`VMFault`, this is a *clean* detection: the vulnerable
    action was stopped before corrupting state, so the request can simply
    be dropped without rollback.
    """

    def __init__(self, vsef_id: str, pc: int, reason: str):
        self.vsef_id = vsef_id
        self.pc = pc
        self.reason = reason
        super().__init__(f"VSEF {vsef_id} triggered at pc={pc:#010x}: {reason}")


class SandboxViolation(ReproError):
    """A replayed execution attempted a side effect the sandbox forbids."""


class RecoveryFailed(ReproError):
    """Re-execution diverged irreconcilably; caller should restart."""


class ProcessExited(ReproError):
    """The guest program executed the exit syscall (or HALT)."""

    def __init__(self, status: int = 0):
        self.status = status
        super().__init__(f"process exited with status {status}")
