"""The antibody module (Fig. 1): VSEFs, input signatures, distribution.

Antibodies are the shareable output of Sweeper's analysis:

- :mod:`repro.antibody.vsef` — vulnerability-specific execution filters,
  enforced through the CPU's per-PC check table (a handful of monitored
  instructions, hence ~1% overhead);
- :mod:`repro.antibody.signatures` — input signatures (exact-match first,
  token-conjunction for polymorphic variants) applied at the proxy;
- :mod:`repro.antibody.distribution` — the producer/consumer community
  bus with the γ₂ dissemination latency used by Section 6's model;
- :mod:`repro.antibody.verify` — sandboxed verification of received
  antibodies (replay the exploit input under heavyweight analysis).
"""

from repro.antibody.vsef import (VSEF, CodeLoc, InstalledVSEF, install_vsef,
                                 resolve_loc, loc_for_address)
from repro.antibody.signatures import (ExactSignature, TokenSignature,
                                       generate_exact, generate_token,
                                       SignatureSet)
from repro.antibody.distribution import AntibodyBundle, CommunityBus
from repro.antibody.verify import (SandboxVerifier, VerificationResult,
                                   verify_antibody)

__all__ = [
    "VSEF", "CodeLoc", "InstalledVSEF", "install_vsef", "resolve_loc",
    "loc_for_address",
    "ExactSignature", "TokenSignature", "generate_exact", "generate_token",
    "SignatureSet",
    "AntibodyBundle", "CommunityBus",
    "SandboxVerifier", "VerificationResult", "verify_antibody",
]
