"""Input signatures.

Sweeper starts with *exact-match* signatures — zero false positives and
immune to malicious training (§3.3) — because VSEFs already provide the
low-false-negative safety net.  For polymorphic worms it additionally
derives Polygraph-style *token-conjunction* signatures: the ordered
invariant substrings shared by multiple observed exploit payloads.

Signatures are applied by the network proxy before requests reach the
protected process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from difflib import SequenceMatcher

_ids = itertools.count(1)

DEFAULT_MIN_TOKEN = 4


@dataclass
class ExactSignature:
    """Matches a byte-for-byte identical request."""

    payload: bytes
    sig_id: str = field(default_factory=lambda: f"sig-exact-{next(_ids)}")

    def matches(self, data: bytes) -> bool:
        return data == self.payload

    def to_dict(self) -> dict:
        return {"type": "exact", "sig_id": self.sig_id,
                "payload": self.payload.hex()}

    @staticmethod
    def from_dict(data: dict) -> "ExactSignature":
        return ExactSignature(payload=bytes.fromhex(data["payload"]),
                              sig_id=data["sig_id"])


@dataclass
class TokenSignature:
    """Matches requests containing all tokens, in order (Polygraph [40])."""

    tokens: list[bytes]
    sig_id: str = field(default_factory=lambda: f"sig-token-{next(_ids)}")

    def matches(self, data: bytes) -> bool:
        cursor = 0
        for token in self.tokens:
            index = data.find(token, cursor)
            if index < 0:
                return False
            cursor = index + len(token)
        return True

    def to_dict(self) -> dict:
        return {"type": "token", "sig_id": self.sig_id,
                "tokens": [t.hex() for t in self.tokens]}

    @staticmethod
    def from_dict(data: dict) -> "TokenSignature":
        return TokenSignature(tokens=[bytes.fromhex(t)
                                      for t in data["tokens"]],
                              sig_id=data["sig_id"])


def generate_exact(payload: bytes) -> ExactSignature:
    """The immediate, zero-false-positive signature for one exploit."""
    return ExactSignature(payload=bytes(payload))


def _common_blocks(a: bytes, b: bytes, min_token: int) -> list[bytes]:
    matcher = SequenceMatcher(a=a, b=b, autojunk=False)
    return [a[block.a:block.a + block.size]
            for block in matcher.get_matching_blocks()
            if block.size >= min_token]


def generate_token(samples: list[bytes],
                   min_token: int = DEFAULT_MIN_TOKEN) -> TokenSignature:
    """Derive the ordered invariant tokens across exploit ``samples``.

    With a single sample this degenerates to one token (the whole
    payload); with polymorphic variants the invariant protocol framing
    and the non-mutable exploit structure survive as tokens.
    """
    if not samples:
        raise ValueError("need at least one sample")
    tokens = [bytes(samples[0])]
    for sample in samples[1:]:
        refined: list[bytes] = []
        cursor = 0
        for token in tokens:
            for block in _common_blocks(token, sample[cursor:], min_token):
                refined.append(block)
            index = sample.find(refined[-1], cursor) if refined else -1
            if index >= 0:
                cursor = index + len(refined[-1])
        tokens = refined or tokens
    # Drop duplicates while preserving order.
    seen: set[bytes] = set()
    unique = []
    for token in tokens:
        if token not in seen:
            seen.add(token)
            unique.append(token)
    return TokenSignature(tokens=unique)


@dataclass
class SignatureSet:
    """The proxy's active filter set."""

    exact: list[ExactSignature] = field(default_factory=list)
    token: list[TokenSignature] = field(default_factory=list)

    def add(self, signature):
        if isinstance(signature, ExactSignature):
            self.exact.append(signature)
        elif isinstance(signature, TokenSignature):
            self.token.append(signature)
        else:
            raise TypeError(f"not a signature: {signature!r}")

    def match(self, data: bytes):
        """The first signature matching ``data``, or None."""
        for signature in self.exact:
            if signature.matches(data):
                return signature
        for signature in self.token:
            if signature.matches(data):
                return signature
        return None

    def __len__(self) -> int:
        return len(self.exact) + len(self.token)
