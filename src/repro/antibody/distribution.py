"""Antibody distribution: the Sweeper community (§3.3 "Distribution", §6).

Producers publish antibodies *piecemeal, as each analysis step
completes* — the initial VSEF first (tens of milliseconds), the improved
VSEF and the input signature later — because applying a VSEF early and
verifying later only risks wasted cycles, never new behaviour.

:class:`CommunityBus` is a virtual-time event log: ``publish`` stamps
each bundle with the producer's availability time plus the dissemination
latency γ₂.  Consumers are *subscribers with cursors*: each ``poll``
returns only bundles the subscriber has not seen that have arrived by
its local clock, in a deterministic order — availability time first,
publish order as the tie-break — so a fleet of consumers polling off
one bus applies antibodies in a reproducible sequence regardless of
scheduling.  The stateless ``available`` view remains for one-shot
callers.  The worm model consumes the resulting end-to-end γ = γ₁ + γ₂.

Bundle ids are assigned *per bus* at publish time (``ab-1``, ``ab-2``,
…), so many buses in one process — one per fleet, one per test — never
interleave their counters and runs stay reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass
class AntibodyBundle:
    """What a producer shares: VSEFs, signatures, and the exploit input.

    Including the exploit-triggering input lets untrusting consumers
    regenerate or verify antibodies themselves (§2.1).
    """

    app: str
    vsefs: list = field(default_factory=list)          # list[VSEF]
    signatures: list = field(default_factory=list)     # Exact/TokenSignature
    exploit_input: bytes | None = None
    produced_at: float = 0.0       # producer-local virtual seconds
    stage: str = "initial"         # "initial" | "improved" | "final"
    #: Assigned by the first :meth:`CommunityBus.publish` (per-bus
    #: counter); empty for a bundle that was never published.
    bundle_id: str = ""

    def to_dict(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "app": self.app,
            "stage": self.stage,
            "produced_at": self.produced_at,
            "vsefs": [v.to_dict() for v in self.vsefs],
            "signatures": [s.to_dict() for s in self.signatures],
            "exploit_input": (self.exploit_input.hex()
                              if self.exploit_input is not None else None),
        }

    @staticmethod
    def from_dict(data: dict) -> "AntibodyBundle":
        """Revive a bundle from its wire form (inverse of to_dict)."""
        from repro.antibody.signatures import (ExactSignature,
                                               TokenSignature)
        from repro.antibody.vsef import VSEF

        signatures = []
        for entry in data.get("signatures", []):
            if entry["type"] == "exact":
                signatures.append(ExactSignature.from_dict(entry))
            else:
                signatures.append(TokenSignature.from_dict(entry))
        raw_input = data.get("exploit_input")
        return AntibodyBundle(
            app=data["app"],
            vsefs=[VSEF.from_dict(v) for v in data.get("vsefs", [])],
            signatures=signatures,
            exploit_input=bytes.fromhex(raw_input)
            if raw_input is not None else None,
            produced_at=data.get("produced_at", 0.0),
            stage=data.get("stage", "initial"),
            bundle_id=data["bundle_id"])


@dataclass
class _Delivery:
    bundle: AntibodyBundle
    available_at: float
    seq: int                       # publish order; the deterministic tie-break


class CommunityBus:
    """Virtual-time antibody dissemination with latency γ₂.

    The bus is an append-only log in publish order.  Each subscriber
    owns a cursor into that log plus a (normally empty) set of seqs it
    consumed *ahead* of the cursor — needed because availability is not
    monotone in publish order when producers' clocks differ: a slow
    producer can publish a bundle that becomes available earlier than
    one the subscriber already drained.  The cursor only advances past
    the contiguous consumed prefix, so nothing is ever skipped and
    nothing is delivered twice.
    """

    def __init__(self, dissemination_latency: float = 3.0):
        #: γ₂ — Vigilante measured < 3 s for initial alert dissemination;
        #: the paper adopts that figure (§6.3).
        self.dissemination_latency = dissemination_latency
        self._log: list[_Delivery] = []
        self._ids = itertools.count(1)
        self._cursors: dict[str, int] = {}
        self._consumed_ahead: dict[str, set[int]] = {}
        self.published: list[AntibodyBundle] = []

    def publish(self, bundle: AntibodyBundle) -> AntibodyBundle:
        if not bundle.bundle_id:
            bundle.bundle_id = f"ab-{next(self._ids)}"
        self.published.append(bundle)
        self._log.append(_Delivery(
            bundle=bundle,
            available_at=bundle.produced_at + self.dissemination_latency,
            seq=len(self._log)))
        return bundle

    # -- subscriber cursors --------------------------------------------------

    def subscribe(self, name: str) -> str:
        """Register (idempotently) a named subscriber; returns ``name``.

        A fresh subscriber starts at the head of the log: it will see
        every bundle, including ones already available — joining the
        community late must not lose antibodies.
        """
        self._cursors.setdefault(name, 0)
        self._consumed_ahead.setdefault(name, set())
        return name

    def poll(self, name: str, now: float) -> list[AntibodyBundle]:
        """New-to-``name`` bundles available by virtual time ``now``.

        Ordering is deterministic: by availability time, then by publish
        order for simultaneous arrivals.  The boundary is inclusive — a
        consumer polling exactly at γ₂ sees the bundle.
        """
        self.subscribe(name)
        cursor = self._cursors[name]
        ahead = self._consumed_ahead[name]
        batch = [d for d in self._log[cursor:]
                 if d.seq not in ahead and d.available_at <= now]
        ahead.update(d.seq for d in batch)
        log = self._log
        while cursor < len(log) and log[cursor].seq in ahead:
            ahead.discard(log[cursor].seq)
            cursor += 1
        self._cursors[name] = cursor
        batch.sort(key=lambda d: (d.available_at, d.seq))
        return [d.bundle for d in batch]

    # -- stateless views -----------------------------------------------------

    def available(self, now: float) -> list[AntibodyBundle]:
        """Bundles any consumer polling at virtual time ``now`` can see,
        in the same deterministic order ``poll`` uses."""
        ready = [d for d in self._log if d.available_at <= now]
        ready.sort(key=lambda d: (d.available_at, d.seq))
        return [d.bundle for d in ready]

    def first_available_time(self, app: str | None = None) -> float | None:
        """When the earliest (initial) antibody reaches consumers."""
        times = [d.available_at for d in self._log
                 if app is None or d.bundle.app == app]
        return min(times) if times else None

    def response_time(self, app: str | None = None) -> float | None:
        """γ = γ₁ + γ₂ for the earliest antibody, measured from attack."""
        return self.first_available_time(app)
