"""Antibody distribution: the Sweeper community (§3.3 "Distribution", §6).

Producers publish antibodies *piecemeal, as each analysis step
completes* — the initial VSEF first (tens of milliseconds), the improved
VSEF and the input signature later — because applying a VSEF early and
verifying later only risks wasted cycles, never new behaviour.

:class:`CommunityBus` is a virtual-time event log: ``publish`` stamps
each bundle with the producer's availability time plus the dissemination
latency γ₂.  Consumers are *subscribers with pending queues*: each
``poll`` returns only bundles the subscriber has not seen that have
arrived by its local clock, in a deterministic order — availability
time first, publish order as the tie-break — so a fleet of consumers
polling off one bus applies antibodies in a reproducible sequence
regardless of scheduling.  The stateless ``available`` view remains for
one-shot callers.  The worm model consumes the resulting end-to-end
γ = γ₁ + γ₂.

The bus is indexed for fleet scale.  ``_log`` stays append-only (seq ==
list index), but three structures keep every read path off it:

- an availability-sorted index (``bisect``-maintained) makes
  ``available(now)`` a binary search plus slice instead of a full scan;
- per-app running minima make ``first_available_time`` O(1) — it is
  called on every scheduler event to bound the epidemic horizon;
- per-subscriber *pending heaps*, fanned out at publish time, make
  ``poll`` O(delivered · log backlog): a subscriber pops exactly its
  unseen-and-available bundles, never rescanning the log.  A late
  subscriber's heap is seeded with the full backlog, so joining the
  community late never loses antibodies, and a popped entry is gone —
  exactly-once delivery by construction.

Subscriber clocks must be monotone: each subscriber has a high-water
mark and ``poll`` raises on a ``now`` earlier than its previous poll,
because answering would present an availability order inconsistent with
what ``available()`` showed between the two polls.

Bundle ids are assigned *per bus* at publish time (``ab-1``, ``ab-2``,
…), so many buses in one process — one per fleet, one per test — never
interleave their counters and runs stay reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import bisect_right, insort
from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass
class AntibodyBundle:
    """What a producer shares: VSEFs, signatures, and the exploit input.

    Including the exploit-triggering input lets untrusting consumers
    regenerate or verify antibodies themselves (§2.1).
    """

    app: str
    vsefs: list = field(default_factory=list)          # list[VSEF]
    signatures: list = field(default_factory=list)     # Exact/TokenSignature
    exploit_input: bytes | None = None
    produced_at: float = 0.0       # producer-local virtual seconds
    stage: str = "initial"         # "initial" | "improved" | "final"
    #: Assigned by the first :meth:`CommunityBus.publish` (per-bus
    #: counter); empty for a bundle that was never published.
    bundle_id: str = ""

    def to_dict(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "app": self.app,
            "stage": self.stage,
            "produced_at": self.produced_at,
            "vsefs": [v.to_dict() for v in self.vsefs],
            "signatures": [s.to_dict() for s in self.signatures],
            "exploit_input": (self.exploit_input.hex()
                              if self.exploit_input is not None else None),
        }

    @staticmethod
    def from_dict(data: dict) -> "AntibodyBundle":
        """Revive a bundle from its wire form (inverse of to_dict).

        A bundle serialized before it was ever published carries no
        ``bundle_id`` — it gets one from whichever bus publishes it
        next, so the key is optional on the wire.
        """
        from repro.antibody.signatures import (ExactSignature,
                                               TokenSignature)
        from repro.antibody.vsef import VSEF

        signatures = []
        for entry in data.get("signatures", []):
            if entry["type"] == "exact":
                signatures.append(ExactSignature.from_dict(entry))
            else:
                signatures.append(TokenSignature.from_dict(entry))
        raw_input = data.get("exploit_input")
        return AntibodyBundle(
            app=data["app"],
            vsefs=[VSEF.from_dict(v) for v in data.get("vsefs", [])],
            signatures=signatures,
            exploit_input=bytes.fromhex(raw_input)
            if raw_input is not None else None,
            produced_at=data.get("produced_at", 0.0),
            stage=data.get("stage", "initial"),
            bundle_id=data.get("bundle_id", ""))


@dataclass
class _Delivery:
    bundle: AntibodyBundle
    available_at: float
    seq: int                       # publish order; the deterministic tie-break


class CommunityBus:
    """Virtual-time antibody dissemination with latency γ₂.

    See the module docstring for the index structures.  Delivery
    semantics are unchanged from the cursor-based bus: each subscriber
    sees every bundle exactly once, in ``(available_at, seq)`` order,
    with an inclusive γ₂ boundary; a late-published bundle whose
    availability precedes already-drained ones is still delivered on
    the next poll, never skipped.
    """

    def __init__(self, dissemination_latency: float = 3.0):
        #: γ₂ — Vigilante measured < 3 s for initial alert dissemination;
        #: the paper adopts that figure (§6.3).
        self.dissemination_latency = dissemination_latency
        self._log: list[_Delivery] = []
        self._ids = itertools.count(1)
        #: Availability order: sorted list of (available_at, seq).
        self._avail_index: list[tuple[float, int]] = []
        #: Per-app (and global, key None) earliest availability.
        self._first_avail: dict[str | None, float] = {}
        #: Per-subscriber min-heaps of undelivered (available_at, seq).
        self._pending: dict[str, list[tuple[float, int]]] = {}
        #: Per-subscriber poll-clock high-water marks.
        self._high_water: dict[str, float] = {}
        self.published: list[AntibodyBundle] = []

    def publish(self, bundle: AntibodyBundle) -> AntibodyBundle:
        if not bundle.bundle_id:
            bundle.bundle_id = f"ab-{next(self._ids)}"
        self.published.append(bundle)
        delivery = _Delivery(
            bundle=bundle,
            available_at=bundle.produced_at + self.dissemination_latency,
            seq=len(self._log))
        self._log.append(delivery)
        entry = (delivery.available_at, delivery.seq)
        insort(self._avail_index, entry)
        for key in (None, bundle.app):
            first = self._first_avail.get(key)
            if first is None or delivery.available_at < first:
                self._first_avail[key] = delivery.available_at
        for pending in self._pending.values():
            heapq.heappush(pending, entry)
        return bundle

    # -- subscriber queues ---------------------------------------------------

    def subscribe(self, name: str) -> str:
        """Register (idempotently) a named subscriber; returns ``name``.

        A fresh subscriber starts with the full backlog pending: it will
        see every bundle, including ones already available — joining the
        community late must not lose antibodies.
        """
        if name not in self._pending:
            backlog = [(d.available_at, d.seq) for d in self._log]
            heapq.heapify(backlog)
            self._pending[name] = backlog
            self._high_water[name] = float("-inf")
        return name

    def poll(self, name: str, now: float) -> list[AntibodyBundle]:
        """New-to-``name`` bundles available by virtual time ``now``.

        Ordering is deterministic: by availability time, then by publish
        order for simultaneous arrivals.  The boundary is inclusive — a
        consumer polling exactly at γ₂ sees the bundle.  ``now`` must
        not precede the subscriber's previous poll (the high-water
        mark): a rewinding clock would observe an order inconsistent
        with :meth:`available`.
        """
        self.subscribe(name)
        if now < self._high_water[name]:
            raise ReproError(
                f"subscriber {name!r} polled at {now} after polling at "
                f"{self._high_water[name]}: poll clocks must be monotone")
        self._high_water[name] = now
        pending = self._pending[name]
        batch = []
        while pending and pending[0][0] <= now:
            _, seq = heapq.heappop(pending)
            batch.append(self._log[seq].bundle)
        return batch

    def subscriber_backlog(self, name: str) -> int:
        """Undelivered bundles currently queued for ``name`` (the
        pending heap compacts as the subscriber drains it)."""
        return len(self._pending.get(name, ()))

    # -- specification hooks -------------------------------------------------
    # Pure read-only views the executable spec (repro.spec) compares
    # against its reference model; nothing in the delivery path calls
    # them.

    def log_entries(self) -> list[tuple[int, str, str, float, float]]:
        """The append-only log as plain tuples
        ``(seq, bundle_id, app, produced_at, available_at)`` in publish
        order — the bus's canonical history, picklable so fleet workers
        can ship their replica's copy home for the cross-shard trace
        check."""
        return [(d.seq, d.bundle.bundle_id, d.bundle.app,
                 d.bundle.produced_at, d.available_at) for d in self._log]

    def subscribers(self) -> list[str]:
        """Registered subscriber names, in subscription order."""
        return list(self._pending)

    def high_water(self, name: str) -> float:
        """``name``'s lifetime poll-clock high-water mark."""
        return self._high_water[name]

    # -- stateless views -----------------------------------------------------

    def available(self, now: float) -> list[AntibodyBundle]:
        """Bundles any consumer polling at virtual time ``now`` can see,
        in the same deterministic order ``poll`` uses."""
        ready = bisect_right(self._avail_index, (now, len(self._log)))
        return [self._log[seq].bundle
                for _, seq in self._avail_index[:ready]]

    def first_available_time(self, app: str | None = None) -> float | None:
        """When the earliest (initial) antibody reaches consumers."""
        return self._first_avail.get(app)

    def response_time(self, app: str | None = None) -> float | None:
        """γ = γ₁ + γ₂ for the earliest antibody, measured from attack."""
        return self.first_available_time(app)
