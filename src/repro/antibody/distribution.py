"""Antibody distribution: the Sweeper community (§3.3 "Distribution", §6).

Producers publish antibodies *piecemeal, as each analysis step
completes* — the initial VSEF first (tens of milliseconds), the improved
VSEF and the input signature later — because applying a VSEF early and
verifying later only risks wasted cycles, never new behaviour.

:class:`CommunityBus` is a virtual-time event queue: ``publish`` stamps
each bundle with the producer's availability time plus the dissemination
latency γ₂, and consumers drain what has arrived by their local clock.
The worm model consumes the resulting end-to-end γ = γ₁ + γ₂.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_ids = itertools.count(1)


@dataclass
class AntibodyBundle:
    """What a producer shares: VSEFs, signatures, and the exploit input.

    Including the exploit-triggering input lets untrusting consumers
    regenerate or verify antibodies themselves (§2.1).
    """

    app: str
    vsefs: list = field(default_factory=list)          # list[VSEF]
    signatures: list = field(default_factory=list)     # Exact/TokenSignature
    exploit_input: bytes | None = None
    produced_at: float = 0.0       # producer-local virtual seconds
    stage: str = "initial"         # "initial" | "improved" | "final"
    bundle_id: str = field(default_factory=lambda: f"ab-{next(_ids)}")

    def to_dict(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "app": self.app,
            "stage": self.stage,
            "produced_at": self.produced_at,
            "vsefs": [v.to_dict() for v in self.vsefs],
            "signatures": [s.to_dict() for s in self.signatures],
            "exploit_input": (self.exploit_input.hex()
                              if self.exploit_input is not None else None),
        }

    @staticmethod
    def from_dict(data: dict) -> "AntibodyBundle":
        """Revive a bundle from its wire form (inverse of to_dict)."""
        from repro.antibody.signatures import (ExactSignature,
                                               TokenSignature)
        from repro.antibody.vsef import VSEF

        signatures = []
        for entry in data.get("signatures", []):
            if entry["type"] == "exact":
                signatures.append(ExactSignature.from_dict(entry))
            else:
                signatures.append(TokenSignature.from_dict(entry))
        raw_input = data.get("exploit_input")
        return AntibodyBundle(
            app=data["app"],
            vsefs=[VSEF.from_dict(v) for v in data.get("vsefs", [])],
            signatures=signatures,
            exploit_input=bytes.fromhex(raw_input)
            if raw_input is not None else None,
            produced_at=data.get("produced_at", 0.0),
            stage=data.get("stage", "initial"),
            bundle_id=data["bundle_id"])


@dataclass
class _Delivery:
    bundle: AntibodyBundle
    available_at: float


class CommunityBus:
    """Virtual-time antibody dissemination with latency γ₂."""

    def __init__(self, dissemination_latency: float = 3.0):
        #: γ₂ — Vigilante measured < 3 s for initial alert dissemination;
        #: the paper adopts that figure (§6.3).
        self.dissemination_latency = dissemination_latency
        self._deliveries: list[_Delivery] = []
        self.published: list[AntibodyBundle] = []

    def publish(self, bundle: AntibodyBundle):
        self.published.append(bundle)
        self._deliveries.append(_Delivery(
            bundle=bundle,
            available_at=bundle.produced_at + self.dissemination_latency))
        self._deliveries.sort(key=lambda d: d.available_at)

    def available(self, now: float) -> list[AntibodyBundle]:
        """Bundles a consumer polling at virtual time ``now`` can see."""
        return [d.bundle for d in self._deliveries if d.available_at <= now]

    def first_available_time(self, app: str | None = None) -> float | None:
        """When the earliest (initial) antibody reaches consumers."""
        times = [d.available_at for d in self._deliveries
                 if app is None or d.bundle.app == app]
        return min(times) if times else None

    def response_time(self, app: str | None = None) -> float | None:
        """γ = γ₁ + γ₂ for the earliest antibody, measured from attack."""
        return self.first_available_time(app)
