"""Sandboxed antibody verification (§3.3 "Distribution").

A consumer that does not trust a producer can verify a bundle itself:
spin up a sandboxed copy of the vulnerable program, apply the received
VSEFs, feed the included exploit input, and confirm that *something*
detects the attack — either a VSEF fires (clean detection) or the
lightweight monitor still crashes the sandbox (the VSEF was unnecessary
but harmless).  Verification is deliberately deferrable: hosts apply
VSEFs immediately and verify when convenient, because a bogus VSEF can
only waste cycles (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AttackDetected, VMFault
from repro.antibody.distribution import AntibodyBundle
from repro.antibody.vsef import install_vsef
from repro.machine.process import Process

_SANDBOX_STEP_BUDGET = 2_000_000


@dataclass
class VerificationResult:
    verified: bool
    detected_by: str          # "vsef" | "fault" | "none"
    detail: str = ""


def verify_antibody(image, bundle: AntibodyBundle,
                    seed: int = 1234) -> VerificationResult:
    """Verify ``bundle`` against the program ``image`` in a sandbox.

    Returns ``verified=True`` when the exploit input is detected with the
    bundle's VSEFs installed.  A bundle without an exploit input cannot
    be verified (the paper's piecemeal distribution means early bundles
    may not carry it yet) — callers treat that as "apply now, verify when
    the input arrives".
    """
    if bundle.exploit_input is None:
        return VerificationResult(False, "none",
                                  "bundle carries no exploit input yet")
    sandbox = Process(image, seed=seed, name="sandbox")
    installed = [install_vsef(vsef, sandbox) for vsef in bundle.vsefs]
    try:
        # Let the server initialize, then feed only the exploit.
        sandbox.run(max_steps=_SANDBOX_STEP_BUDGET)
        sandbox.feed(bundle.exploit_input)
        result = sandbox.run(max_steps=_SANDBOX_STEP_BUDGET)
    except AttackDetected as detected:
        return VerificationResult(True, "vsef", str(detected))
    except VMFault as fault:
        return VerificationResult(True, "fault", str(fault))
    finally:
        for binding in installed:
            binding.uninstall()
    return VerificationResult(False, "none",
                              f"exploit did not trigger ({result.reason})")
