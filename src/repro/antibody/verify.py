"""Sandboxed antibody verification (§3.3 "Distribution").

A consumer that does not trust a producer can verify a bundle itself:
spin up a sandboxed copy of the vulnerable program, apply the received
VSEFs, feed the included exploit input, and confirm that *something*
detects the attack — either a VSEF fires (clean detection) or the
lightweight monitor still crashes the sandbox (the VSEF was unnecessary
but harmless).  Verification is deliberately deferrable: hosts apply
VSEFs immediately and verify when convenient, because a bogus VSEF can
only waste cycles (§3.3).

Signatures face a stricter test than VSEFs, because a signature is a
*filter*: a forged one that happens to match benign traffic is a denial
of service, not wasted cycles.  Genuine signatures are derived from the
attack payload (exact-match is the payload itself, token signatures are
its invariant substrings), so every signature the bundle carries must
match the bundle's own exploit input.  One that does not match the very
attack it claims to block is unverifiable by construction — replaying
the attack says nothing about what else it filters — and the bundle is
rejected without booting a sandbox.

After the byte check, a **static audit** (:mod:`repro.antibody.audit`)
screens the bundle against the application's recovered CFG: VSEF code
locations must decode at real instruction boundaries on input-reachable
paths, and token filters must not be satisfiable by benign dispatch
literals alone.  Both forgeries the replay trial cannot expose — a
wasted-cycles patch offset and a censoring filter — die here, still
without booting a sandbox.

Two entry points share the same trial:

- :func:`verify_antibody` — one-shot: boot a fresh sandbox, run the
  trial, throw the sandbox away.
- :class:`SandboxVerifier` — the delivery-path form a fleet of
  consumers uses (:meth:`~repro.runtime.sweeper.Sweeper.apply_bundle`).
  It boots **one** sandbox per program image, snapshots the post-boot
  state, and replays each bundle against a copy-on-write restore of
  that snapshot — a sandboxed *fork*, so N consumers verifying the same
  bundle pay one boot plus one replay, not N boots.  Results are
  memoized per (image, bundle): verification is deterministic given
  both, so the cached verdict is exactly what a re-run would produce.

The sandbox loads its own fixed-seed layout, never the consumer's:
verification answers "is this input genuinely detected as an attack",
and must not depend on where the consumer's regions happen to sit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AttackDetected, VMFault
from repro.antibody.audit import StaticAuditor
from repro.antibody.distribution import AntibodyBundle
from repro.antibody.vsef import install_vsef
from repro.machine.process import Process

_SANDBOX_STEP_BUDGET = 2_000_000

#: One unverifiable-bundle result; callers treat it as "apply now,
#: verify when the exploit input arrives" (piecemeal distribution).
_NO_INPUT = ("none", "bundle carries no exploit input yet")


@dataclass
class VerificationResult:
    verified: bool
    detected_by: str          # "vsef" | "fault" | "none"
    detail: str = ""
    #: Which pipeline stage produced this verdict: "deferred" (no
    #: exploit input yet), "prescreen" (signature byte check),
    #: "audit" (static audit), or "trial" (sandbox replay ran).  The
    #: executable spec (:mod:`repro.spec.verifier`) classifies results
    #: by this field; it never changes which verdict is produced.
    stage: str = "trial"


def _unmatched_signature(bundle: AntibodyBundle):
    """The first bundle signature that does *not* match the bundle's
    own exploit input, or None when every signature does.

    A pure byte check, independent of the sandbox: genuine signatures
    are generated from the attack payload and must match it.  A
    mismatch is evidence of tampering (a filter smuggled alongside a
    real attack input), so callers reject before paying for a boot.
    """
    for signature in bundle.signatures:
        if not signature.matches(bundle.exploit_input):
            return signature
    return None


def _prescreen(bundle: AntibodyBundle) -> VerificationResult | None:
    """The sandbox-free gates both entry points share: deferral for a
    bundle without its exploit input, rejection for one whose
    signatures fail the byte check.  None means the bundle may proceed
    to the audit and trial."""
    if bundle.exploit_input is None:
        return VerificationResult(False, *_NO_INPUT, stage="deferred")
    bogus = _unmatched_signature(bundle)
    if bogus is not None:
        return VerificationResult(
            False, "none",
            f"signature {bogus.sig_id} does not match the bundle's own "
            f"exploit input — unverifiable filter, likely forged",
            stage="prescreen")
    return None


def _run_trial(sandbox: Process, bundle: AntibodyBundle
               ) -> VerificationResult:
    """Feed the bundle's exploit input to a booted sandbox with its
    VSEFs installed; verified iff something detects the attack."""
    installed = [install_vsef(vsef, sandbox) for vsef in bundle.vsefs]
    try:
        sandbox.feed(bundle.exploit_input)
        result = sandbox.run(max_steps=_SANDBOX_STEP_BUDGET)
    except AttackDetected as detected:
        return VerificationResult(True, "vsef", str(detected))
    except VMFault as fault:
        return VerificationResult(True, "fault", str(fault))
    finally:
        for binding in installed:
            binding.uninstall()
    return VerificationResult(False, "none",
                              f"exploit did not trigger ({result.reason})")


def verify_antibody(image, bundle: AntibodyBundle,
                    seed: int = 1234) -> VerificationResult:
    """Verify ``bundle`` against the program ``image`` in a sandbox.

    Returns ``verified=True`` when the exploit input is detected with the
    bundle's VSEFs installed.  A bundle without an exploit input cannot
    be verified (the paper's piecemeal distribution means early bundles
    may not carry it yet) — callers treat that as "apply now, verify when
    the input arrives".
    """
    screened = _prescreen(bundle)
    if screened is not None:
        return screened
    report = StaticAuditor().audit(image, bundle)
    if not report.ok:
        return VerificationResult(
            False, "none", f"static audit rejected bundle: {report.detail}",
            stage="audit")
    sandbox = Process(image, seed=seed, name="sandbox")
    # Let the server initialize, then feed only the exploit.
    sandbox.run(max_steps=_SANDBOX_STEP_BUDGET)
    return _run_trial(sandbox, bundle)


class SandboxVerifier:
    """Delivery-path verification with forked sandboxes and memoization.

    One verifier is shared by every consumer of a fleet (or by one
    consumer across many bundles).  Per program image it boots a single
    sandbox and snapshots the post-boot state; each trial restores that
    snapshot — restored pages arrive frozen and copy-on-write, exactly
    like checkpoint rollback, so a trial never pays boot again and
    trials cannot contaminate each other.  Verdicts are cached per
    (image, bundle) identity: the trial is deterministic given both
    (fixed sandbox seed), so the cache is semantics-free sharing.
    """

    def __init__(self, seed: int = 1234):
        self.seed = seed
        #: id(image) -> (image, sandbox process, post-boot snapshot);
        #: the image reference is retained so a recycled id can never
        #: alias (lookups identity-check it), mirroring GoldenImageCache.
        self._sandboxes: dict[int, tuple] = {}
        #: (id(image), id(bundle)) -> (image, bundle, result).
        self._verdicts: dict[tuple[int, int], tuple] = {}
        self.auditor = StaticAuditor()
        self.boots = 0
        self.trials = 0
        self.cache_hits = 0
        self.audit_screens = 0
        self.audit_rejects = 0

    def verify(self, image, bundle: AntibodyBundle) -> VerificationResult:
        screened = _prescreen(bundle)
        if screened is not None:
            return screened
        self.audit_screens += 1
        report = self.auditor.audit(image, bundle)
        if not report.ok:
            self.audit_rejects += 1
            return VerificationResult(
                False, "none",
                f"static audit rejected bundle: {report.detail}",
                stage="audit")
        key = (id(image), id(bundle))
        cached = self._verdicts.get(key)
        if cached is not None and cached[0] is image and cached[1] is bundle:
            self.cache_hits += 1
            return cached[2]
        sandbox, snapshot = self._sandbox(image)
        sandbox.restore_full(snapshot, keep_log=False)
        self.trials += 1
        result = _run_trial(sandbox, bundle)
        self._verdicts[key] = (image, bundle, result)
        return result

    def _sandbox(self, image) -> tuple[Process, object]:
        entry = self._sandboxes.get(id(image))
        if entry is not None and entry[0] is image:
            return entry[1], entry[2]
        sandbox = Process(image, seed=self.seed, name="sandbox")
        sandbox.run(max_steps=_SANDBOX_STEP_BUDGET)
        snapshot = sandbox.snapshot_full()
        self.boots += 1
        self._sandboxes[id(image)] = (image, sandbox, snapshot)
        return sandbox, snapshot

    def stats(self) -> dict:
        return {"boots": self.boots, "trials": self.trials,
                "cache_hits": self.cache_hits,
                "audit_screens": self.audit_screens,
                "audit_rejects": self.audit_rejects}
