"""Static antibody audit: screen bundles against the guest's CFG.

The sandbox trial answers one question — "does the bundle's exploit
input get detected with its VSEFs installed?" — by *running* the
attack.  Two forgeries slip past it at different costs:

- A **forged patch offset**: a bundle whose VSEF ``CodeLoc``\\ s point
  into the middle of instructions or at code no input can reach.  The
  trial still verifies (the genuine VSEFs or the crash monitor catch
  the replayed attack), but the bogus check burns cycles on every
  consumer that installs it — and the sandbox boot spent deciding
  "harmless" is pure waste.
- An **overly broad signature**: a genuine attack paired with a token
  filter that also matches benign traffic.  The byte check in
  :mod:`repro.antibody.verify` only asks that signatures match the
  bundle's own exploit input — a censoring filter does.  The replay
  cannot expose it either; only an argument about what *else* the
  filter shadows can.

This module makes both arguments statically, before any sandbox boot:
it recovers the application's CFG once per image
(:func:`repro.analysis.static.recover_image_cfg`), checks every VSEF
``CodeLoc`` decodes at a real instruction boundary on a path reachable
from input dispatch (the static-taint closure seeded at ``recv``), and
flags token signatures whose every token also matches a *benign
dispatch literal* — a data-section string the program itself compares
requests against on input-reachable paths that are not dominated by the
bundle's own guarded code.  Such a filter shadows benign-only traffic:
requests the program would dispatch normally, nowhere near the
vulnerability, still match the signature.

Exact-match signatures are never flagged — they match exactly one
payload, the bundle's own exploit input, which the byte check already
pins.  Genuine fleet bundles carry exact signatures (or tokens derived
from real polymorphic variants, which retain exploit structure no
dispatch literal contains), so the audit is a pure win: forged bundles
die without a boot, genuine ones pay one cached CFG lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.antibody.signatures import TokenSignature
from repro.antibody.vsef import CodeLoc
from repro.isa.opcodes import Op
from repro.machine.natives import NATIVE_OFFSETS

#: Native routines the apps use to dispatch on request content; a
#: data literal fed to one of these on an input-reachable path is a
#: string benign requests legitimately contain.
_COMPARE_NATIVES = frozenset({"strcmp", "strncmp", "strstr", "strchr"})


@dataclass(frozen=True)
class AuditFinding:
    """One reason a bundle failed (or was flagged by) the audit."""

    code: str        # "bad-boundary" | "unreachable" | "unknown-native"
                     # | "broad-signature"
    detail: str


@dataclass
class AuditReport:
    """Outcome of statically screening one bundle against one image."""

    ok: bool
    findings: list[AuditFinding] = field(default_factory=list)
    locs_checked: int = 0

    @property
    def detail(self) -> str:
        return "; ".join(f.detail for f in self.findings)


def _code_locs(vsef):
    """Every CodeLoc a VSEF's installer would resolve, as
    ``(param_name, CodeLoc)`` pairs — mirrors ``_INSTALLERS``."""
    params = vsef.params
    out = []
    for key in ("pc", "caller", "entry"):
        loc = params.get(key)
        if isinstance(loc, CodeLoc):
            out.append((key, loc))
    for key in ("pcs", "sinks"):
        for loc in params.get(key, ()):
            if isinstance(loc, CodeLoc):
                out.append((key, loc))
    return out


class _ImageAnalysis:
    """Per-image static facts the audit needs, computed once."""

    def __init__(self, image):
        # Imported here, not at module top: repro.analysis.__init__
        # pulls the dynamic pipeline, whose runtime imports circle back
        # into repro.antibody.  The static submodules themselves only
        # depend on isa/.
        from repro.analysis.static import recover_image_cfg, static_taint
        self.image = image
        self.cfg = recover_image_cfg(image)
        self.taint = static_taint(self.cfg)
        entry = image.symbols.get(image.entry)
        self.entry_block = None
        self.dominators: dict = {}
        if entry is not None and entry[1] in self.cfg.owner:
            self.entry_block = self.cfg.owner[entry[1]]
            self.dominators = self.cfg.dominators(self.entry_block)
        self.dispatch_literals = self._dispatch_literals()

    def _dispatch_literals(self):
        """(call-site block, literal) pairs: data-section strings the
        program compares input against on input-reachable paths."""
        from repro.analysis.static import reaching_definitions
        cfg = self.cfg
        rdefs = reaching_definitions(cfg)
        literals: list[tuple[int, bytes]] = []
        for pc, native in cfg.native_calls.items():
            if native not in _COMPARE_NATIVES:
                continue
            if not self.taint.reaches(pc):
                continue
            block = cfg.owner[pc]
            for reg in (0, 1):
                sole = rdefs.sole_def(pc, reg)
                if sole is None:
                    continue
                def_pc, insn = sole
                if insn.op is not Op.MOVRI:
                    continue
                target = cfg.imm_targets.get(def_pc)
                if target is None or target[0] != "data":
                    continue
                literal = self._cstring(int(target[1]))
                if literal:
                    literals.append((block, literal))
        return literals

    def _cstring(self, offset: int) -> bytes:
        data = self.image.data
        end = data.find(b"\x00", offset)
        if end < 0:
            end = len(data)
        return data[offset:end]


class StaticAuditor:
    """Audit bundles against per-image CFG analyses, with caching.

    Analyses are cached per image identity (the image reference is
    retained so a recycled ``id`` can never alias, mirroring
    ``SandboxVerifier``'s sandbox cache); audit verdicts are cached per
    (image, bundle) identity — both are deterministic, so the cache is
    semantics-free sharing.
    """

    def __init__(self):
        self._analyses: dict[int, tuple] = {}
        self._reports: dict[tuple[int, int], tuple] = {}

    def analysis(self, image) -> _ImageAnalysis:
        entry = self._analyses.get(id(image))
        if entry is not None and entry[0] is image:
            return entry[1]
        analysis = _ImageAnalysis(image)
        self._analyses[id(image)] = (image, analysis)
        return analysis

    def audit(self, image, bundle) -> AuditReport:
        key = (id(image), id(bundle))
        cached = self._reports.get(key)
        if cached is not None and cached[0] is image and cached[1] is bundle:
            return cached[2]
        report = self._audit(self.analysis(image), bundle)
        self._reports[key] = (image, bundle, report)
        return report

    def _audit(self, analysis: _ImageAnalysis, bundle) -> AuditReport:
        cfg = analysis.cfg
        taint = analysis.taint
        findings: list[AuditFinding] = []
        checked = 0
        vsef_blocks: set[int] = set()

        for vsef in bundle.vsefs:
            native = vsef.params.get("native")
            if native is not None and str(native) not in NATIVE_OFFSETS:
                findings.append(AuditFinding(
                    "unknown-native",
                    f"{vsef.vsef_id}: no native named {native!r}"))
            for name, loc in _code_locs(vsef):
                checked += 1
                if loc.space == "lib":
                    if str(loc.value) not in NATIVE_OFFSETS:
                        findings.append(AuditFinding(
                            "unknown-native",
                            f"{vsef.vsef_id}.{name}: no native named "
                            f"{loc.value!r}"))
                    continue
                offset = int(loc.value)
                if offset not in cfg.insns:
                    findings.append(AuditFinding(
                        "bad-boundary",
                        f"{vsef.vsef_id}.{name}: {loc} is not an "
                        f"instruction boundary — forged patch offset"))
                    continue
                if not taint.reaches(offset):
                    findings.append(AuditFinding(
                        "unreachable",
                        f"{vsef.vsef_id}.{name}: {loc} is unreachable "
                        f"from input dispatch — check can never fire"))
                    continue
                vsef_blocks.add(cfg.owner[offset])

        findings.extend(self._screen_signatures(analysis, bundle,
                                                vsef_blocks))
        return AuditReport(ok=not findings, findings=findings,
                           locs_checked=checked)

    def _screen_signatures(self, analysis: _ImageAnalysis, bundle,
                           vsef_blocks: set[int]):
        """Flag token signatures whose every token also matches a
        benign dispatch literal compared *outside* the bundle's own
        guarded region (call sites dominated by a VSEF block sit on the
        vulnerable path — literals there may legitimately share bytes
        with the exploit)."""
        benign = [literal for block, literal in analysis.dispatch_literals
                  if not (analysis.dominators.get(block, frozenset())
                          & vsef_blocks)]
        findings = []
        for signature in bundle.signatures:
            if not isinstance(signature, TokenSignature):
                continue
            if not signature.tokens:
                continue
            if all(any(token in literal for literal in benign)
                   for token in signature.tokens):
                findings.append(AuditFinding(
                    "broad-signature",
                    f"{signature.sig_id}: every token matches a benign "
                    f"dispatch literal — filter would censor legitimate "
                    f"traffic"))
        return findings
