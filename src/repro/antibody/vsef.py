"""Vulnerability-Specific Execution Filters (VSEFs) [38].

A VSEF applies the *same check a heavyweight detector would apply*, but
only at the handful of instructions involved in a known vulnerability.
Five kinds are produced by the analysis steps:

================  ===========================================  =============
kind              check                                        typical source
================  ===========================================  =============
``ret_guard``     side return-address stack for one function   memory-state
``null_check``    operand register non-NULL at one load/store  memory-state
``double_free``   block status at one ``free`` callsite        memory-state /
                                                               memory-bug
``heap_bounds``   destination fits its heap block, at one      memory-state /
                  native string/copy routine + caller          memory-bug
``store_guard``   one store must not hit a return-address      memory-bug
                  slot nor escape its heap block
``taint_subset``  taint tracking over only the propagation     taint
                  instructions + the sink
================  ===========================================  =============

**Shareability.** Hosts randomize their layouts independently, so a VSEF
never contains absolute addresses: every location is a :class:`CodeLoc`
(``code`` section offset, or native-library symbol) resolved against the
installing process's own layout.  This is what makes the paper's
"distribute VSEFs, apply before verifying — at worst they waste cycles"
argument hold: an unfounded check cannot introduce new behaviour.

**Enforcement.** Checks are registered in the CPU's ``pre_checks`` table
(one dict lookup on the fast path) and, for ``ret_guard``, as call/ret
hooks.  A firing check raises :class:`~repro.errors.AttackDetected`
*before* state is corrupted, which is what lets the runtime drop the
request without a rollback.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import AttackDetected, ReproError
from repro.instrument.hooks import Tool
from repro.isa.encoding import Insn
from repro.isa.opcodes import FP, SP, Op, to_signed, to_unsigned
from repro.machine.allocator import STATUS_FREE
from repro.machine.natives import NATIVE_OFFSETS

_ids = itertools.count(1)


@dataclass(frozen=True)
class CodeLoc:
    """A layout-independent code location.

    ``space`` is ``"code"`` (offset into the application text) or
    ``"lib"`` (a native symbol name).
    """

    space: str
    value: int | str

    def to_dict(self) -> dict:
        return {"space": self.space, "value": self.value}

    @staticmethod
    def from_dict(data: dict) -> "CodeLoc":
        return CodeLoc(space=data["space"], value=data["value"])

    def __str__(self) -> str:
        if self.space == "lib":
            return f"lib.{self.value}"
        return f"code+{self.value:#x}"


def loc_for_address(process, addr: int) -> CodeLoc | None:
    """Translate an absolute address in ``process`` into a :class:`CodeLoc`."""
    for name, native_addr in process.native_addresses.items():
        if native_addr == addr:
            return CodeLoc("lib", name)
    region = process.memory.region_at(addr)
    if region is not None and region.name == "code":
        return CodeLoc("code", addr - process.layout.code_base)
    return None


def resolve_loc(loc: CodeLoc, process) -> int:
    """Absolute address of ``loc`` under ``process``'s layout."""
    if loc.space == "lib":
        offset = NATIVE_OFFSETS.get(str(loc.value))
        if offset is None:
            raise ReproError(f"unknown native {loc.value!r}")
        return process.layout.lib_base + offset
    return process.layout.code_base + int(loc.value)


@dataclass
class VSEF:
    """One shareable execution filter."""

    kind: str
    params: dict
    provenance: str = ""
    app: str = ""
    note: str = ""
    vsef_id: str = field(default_factory=lambda: f"vsef-{next(_ids)}")

    def to_dict(self) -> dict:
        return {"vsef_id": self.vsef_id, "kind": self.kind,
                "params": _params_to_dict(self.params),
                "provenance": self.provenance, "app": self.app,
                "note": self.note}

    @staticmethod
    def from_dict(data: dict) -> "VSEF":
        return VSEF(kind=data["kind"],
                    params=_params_from_dict(data["params"]),
                    provenance=data.get("provenance", ""),
                    app=data.get("app", ""), note=data.get("note", ""),
                    vsef_id=data["vsef_id"])

    def describe(self) -> str:
        bits = [f"{self.kind}"]
        for key, value in self.params.items():
            bits.append(f"{key}={value}")
        return " ".join(bits)


def _params_to_dict(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, CodeLoc):
            out[key] = {"__codeloc__": value.to_dict()}
        elif isinstance(value, list) and value and isinstance(value[0], CodeLoc):
            out[key] = [{"__codeloc__": v.to_dict()} for v in value]
        else:
            out[key] = value
    return out


def _params_from_dict(params: dict) -> dict:
    def revive(value):
        if isinstance(value, dict) and "__codeloc__" in value:
            return CodeLoc.from_dict(value["__codeloc__"])
        if isinstance(value, list):
            return [revive(v) for v in value]
        return value

    return {key: revive(value) for key, value in params.items()}


# ---------------------------------------------------------------------------
# Enforcement
# ---------------------------------------------------------------------------

class InstalledVSEF:
    """Runtime binding of a VSEF to one process; supports uninstall."""

    def __init__(self, vsef: VSEF, process):
        self.vsef = vsef
        self.process = process
        self._pre_checks: list[tuple[int, object]] = []
        self._tool: Tool | None = None

    def _add_check(self, addr: int, check):
        table = self.process.cpu.pre_checks
        table.setdefault(addr, []).append(check)
        self._pre_checks.append((addr, check))

    def uninstall(self):
        table = self.process.cpu.pre_checks
        for addr, check in self._pre_checks:
            checks = table.get(addr, [])
            if check in checks:
                checks.remove(check)
            if not checks:
                table.pop(addr, None)
        self._pre_checks.clear()
        if self._tool is not None:
            self.process.hooks.detach(self._tool, self.process)
            self._tool = None


def install_vsef(vsef: VSEF, process) -> InstalledVSEF:
    """Install ``vsef`` into ``process``; returns the runtime binding."""
    installed = InstalledVSEF(vsef, process)
    installer = _INSTALLERS.get(vsef.kind)
    if installer is None:
        raise ReproError(f"unknown VSEF kind {vsef.kind!r}")
    installer(vsef, process, installed)
    return installed


def _caller_matches(expected: CodeLoc | None, process, cpu) -> bool:
    if expected is None:
        return True
    try:
        return_addr = process.memory.read_word(cpu.regs[SP])
    except ReproError:
        return False
    # The caller location is the CALL site; the recorded return address
    # is the instruction after it, so compare by enclosing function.
    expected_addr = resolve_loc(expected, process)
    return (process.function_at(return_addr) ==
            process.function_at(expected_addr))


def _install_null_check(vsef: VSEF, process, installed: InstalledVSEF):
    loc: CodeLoc = vsef.params["pc"]
    reg = int(vsef.params["reg"])
    addr = resolve_loc(loc, process)

    def check(cpu, insn: Insn | None):
        cpu.cycles += 2
        if cpu.regs[reg] < 0x1000:
            raise AttackDetected(vsef.vsef_id, addr,
                                 f"NULL pointer in {vsef.params['pc']}")

    installed._add_check(addr, check)


def _install_double_free(vsef: VSEF, process, installed: InstalledVSEF):
    caller: CodeLoc | None = vsef.params.get("caller")
    free_addr = resolve_loc(CodeLoc("lib", "free"), process)

    def check(cpu, insn):
        cpu.cycles += 4
        if not _caller_matches(caller, process, cpu):
            return
        payload = cpu.regs[0]
        if payload == 0:
            return
        try:
            block = process.allocator.read_block(payload - 12)
        except ReproError:
            return
        if block.status == STATUS_FREE:
            raise AttackDetected(vsef.vsef_id, free_addr,
                                 "double free blocked")

    installed._add_check(free_addr, check)


_NATIVE_NEED = {
    # destination arg index, how to compute required bytes
    "strcat": (0, "strcat"),
    "strcpy": (0, "strcpy"),
    "strncpy": (0, "n"),
    "strncat": (0, "strncat"),
    "memcpy": (0, "n"),
    "memset": (0, "n"),
}


def _install_heap_bounds(vsef: VSEF, process, installed: InstalledVSEF):
    native = str(vsef.params["native"])
    caller: CodeLoc | None = vsef.params.get("caller")
    if native not in _NATIVE_NEED:
        raise ReproError(f"heap_bounds cannot guard native {native!r}")
    dst_arg, mode = _NATIVE_NEED[native]
    native_addr = resolve_loc(CodeLoc("lib", native), process)

    def _cstrlen(addr: int, cap: int = 1 << 20) -> int:
        length = 0
        while length < cap:
            if process.memory.read(addr + length, 1) == b"\x00":
                return length
            length += 1
        return length

    def check(cpu, insn):
        if not _caller_matches(caller, process, cpu):
            cpu.cycles += 2
            return
        dst = cpu.regs[dst_arg]
        block = process.allocator.block_containing_any(dst)
        if block is None or not block.consistent:
            cpu.cycles += 4
            return  # not a heap destination; nothing to bound
        if mode == "strcat":
            need = _cstrlen(dst) + _cstrlen(cpu.regs[1]) + 1
        elif mode == "strcpy":
            need = _cstrlen(cpu.regs[1]) + 1
        elif mode == "strncat":
            need = _cstrlen(dst) + min(_cstrlen(cpu.regs[1]),
                                       cpu.regs[2]) + 1
        else:  # explicit length
            need = cpu.regs[2]
        cpu.cycles += need + 8  # the paper's ~1% malloc/strlen bookkeeping
        if dst + need > block.end:
            raise AttackDetected(
                vsef.vsef_id, native_addr,
                f"{native} would overflow heap block by "
                f"{dst + need - block.end} bytes")

    installed._add_check(native_addr, check)


def _effective_store_addr(cpu, insn: Insn) -> tuple[int, int] | None:
    if insn is None or insn.op not in (Op.STW, Op.STB):
        return None
    base, disp, _rs = insn.operands
    addr = to_unsigned(cpu.regs[base] + to_signed(disp))
    return addr, 4 if insn.op == Op.STW else 1


def _install_store_guard(vsef: VSEF, process, installed: InstalledVSEF):
    loc: CodeLoc = vsef.params["pc"]
    addr_at = resolve_loc(loc, process)
    stack_region = process.memory.region_named("stack")

    def protected_slots(cpu) -> set[int]:
        slots = set()
        fp = cpu.regs[FP]
        hops = 0
        while stack_region.start <= fp < stack_region.end and hops < 64:
            slots.add(fp)        # saved frame pointer
            slots.add(fp + 4)    # return address
            try:
                fp = process.memory.read_word(fp)
            except ReproError:
                break
            hops += 1
        return slots

    def check(cpu, insn):
        cpu.cycles += 6
        target = _effective_store_addr(cpu, insn)
        if target is None:
            return
        addr, size = target
        if stack_region.start <= addr < stack_region.end:
            slots = protected_slots(cpu)
            if any(addr <= slot < addr + size for slot in slots):
                raise AttackDetected(vsef.vsef_id, addr_at,
                                     "store would smash a return "
                                     "address / saved frame pointer")
        else:
            block = process.allocator.block_containing(addr)
            if block is not None and block.consistent and \
                    not (block.payload <= addr and addr + size <= block.end):
                raise AttackDetected(vsef.vsef_id, addr_at,
                                     "store escapes its heap block")

    installed._add_check(addr_at, check)


class _RetGuardTool(Tool):
    """Side return-address stack for one function (hook-based)."""

    name = "ret-guard"
    overhead_factor = 1.001

    def __init__(self, vsef: VSEF, process, entry_addr: int):
        self.vsef = vsef
        self.process = process
        self.entry_addr = entry_addr
        self.side_stack: list[tuple[int, int]] = []   # (slot, return_addr)

    def on_call(self, pc, target, return_addr):
        if target == self.entry_addr:
            slot = self.process.cpu.regs[SP]
            self.side_stack.append((slot, return_addr))

    def on_ret(self, pc, target, sp):
        if not self.side_stack:
            return
        slot, saved = self.side_stack[-1]
        if sp == slot:
            self.side_stack.pop()
            if target != saved:
                raise AttackDetected(
                    self.vsef.vsef_id, pc,
                    f"return address of {self.vsef.params['function']} "
                    f"was overwritten ({target:#x} != {saved:#x})")


def _install_ret_guard(vsef: VSEF, process, installed: InstalledVSEF):
    loc: CodeLoc = vsef.params["entry"]
    entry_addr = resolve_loc(loc, process)
    tool = _RetGuardTool(vsef, process, entry_addr)
    process.hooks.attach(tool, process)
    installed._tool = tool


class _TaintSubsetTool(Tool):
    """Taint tracking restricted to the propagation set + sink [38].

    Only the listed instructions update shadow state, so per-instruction
    cost is one set lookup — "ordinary dynamic taint analysis
    instrumentation applied for those instructions only" (§3.3).
    """

    name = "taint-subset"
    overhead_factor = 1.02

    def __init__(self, vsef: VSEF, process, pcs: set[int], sinks: set[int]):
        self.vsef = vsef
        self.process = process
        self.pcs = pcs
        self.sinks = sinks
        self.shadow_mem: set[int] = set()
        self.shadow_reg: set[int] = set()

    def on_syscall(self, pc, number, args, result):
        if isinstance(result, dict) and "buf" in result:
            buf, data = result["buf"], result["data"]
            self.shadow_mem.update(range(buf, buf + len(data)))

    def on_mem_copy(self, pc, dst, src, size):
        if pc not in self.pcs:
            return
        for offset in range(size):
            if src + offset in self.shadow_mem:
                self.shadow_mem.add(dst + offset)
            else:
                self.shadow_mem.discard(dst + offset)

    def on_ins(self, pc, insn, cpu):
        interesting = pc in self.pcs or pc in self.sinks
        if not interesting:
            return
        op = insn.op
        if op in (Op.LDW, Op.LDB):
            rd, base, disp = insn.operands
            addr = to_unsigned(cpu.regs[base] + to_signed(disp))
            size = 4 if op == Op.LDW else 1
            if any(addr + i in self.shadow_mem for i in range(size)):
                self.shadow_reg.add(rd)
            else:
                self.shadow_reg.discard(rd)
        elif op in (Op.STW, Op.STB):
            base, disp, rs = insn.operands
            addr = to_unsigned(cpu.regs[base] + to_signed(disp))
            size = 4 if op == Op.STW else 1
            if rs in self.shadow_reg:
                self.shadow_mem.update(range(addr, addr + size))
            else:
                for i in range(size):
                    self.shadow_mem.discard(addr + i)
        elif op == Op.MOVRR:
            rd, rs = insn.operands
            if rs in self.shadow_reg:
                self.shadow_reg.add(rd)
            else:
                self.shadow_reg.discard(rd)
        if pc in self.sinks:
            if op in (Op.JMPR, Op.CALLR) and \
                    insn.operands[0] in self.shadow_reg:
                raise AttackDetected(self.vsef.vsef_id, pc,
                                     "tainted indirect control transfer")
            if op == Op.RET:
                sp = cpu.regs[SP]
                if any(sp + i in self.shadow_mem for i in range(4)):
                    raise AttackDetected(self.vsef.vsef_id, pc,
                                         "tainted return address")


def _install_taint_subset(vsef: VSEF, process, installed: InstalledVSEF):
    pcs = {resolve_loc(loc, process) for loc in vsef.params.get("pcs", [])}
    sinks = {resolve_loc(loc, process) for loc in vsef.params.get("sinks", [])}
    tool = _TaintSubsetTool(vsef, process, pcs, sinks)
    process.hooks.attach(tool, process)
    installed._tool = tool


_INSTALLERS = {
    "null_check": _install_null_check,
    "double_free": _install_double_free,
    "heap_bounds": _install_heap_bounds,
    "store_guard": _install_store_guard,
    "ret_guard": _install_ret_guard,
    "taint_subset": _install_taint_subset,
}

VSEF_KINDS = tuple(_INSTALLERS)
