"""Guest process: loader, syscall layer, run loop, state snapshot.

A :class:`Process` bundles one CPU, one paged memory, the allocator, the
native map and the syscall layer.  The Sweeper runtime drives it through
three verbs:

- ``run()`` — execute until the process blocks on input ("idle"), exits,
  exhausts a cycle budget, or faults (faults propagate to the monitor);
- ``snapshot_full()`` / ``restore_full()`` — the checkpoint primitive;
- ``feed()`` / collected ``sent`` — message-level I/O, normally wired to
  the network proxy.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.errors import LoaderError, ProcessExited, ReproError, VMFault
from repro.instrument.hooks import HookManager
from repro.isa.assembler import Image
from repro.isa.opcodes import FP, SP
from repro.machine.allocator import Allocator
from repro.machine.cpu import CPU, ControlEvent
from repro.machine.layout import (AddressSpaceLayout, STACK_SIZE,
                                  randomized_layout)
from repro.machine.memory import MemorySnapshot, PagedMemory
from repro.machine.natives import NATIVE_OFFSETS, NATIVES, NativeContext
from repro.machine.syscalls import (SYS_EXIT, SYS_GETPID, SYS_LOG, SYS_RAND,
                                    SYS_RECV, SYS_SEND, SYS_TIME,
                                    SyscallLog, SyscallRecord)


class _WouldBlock(ReproError):
    """Internal: recv had no message available."""


@dataclass
class RunResult:
    """Why ``Process.run`` returned."""

    reason: str            # "idle" | "exit" | "cycles" | "steps"
    cycles: int            # cycles executed during this run call
    exit_status: int | None = None


@dataclass
class ProcessSnapshot:
    """Everything needed to roll a process back: the Rx checkpoint."""

    memory: MemorySnapshot
    cpu_state: dict
    rng_state: object
    syscall_log_len: int
    current_msg_id: int | None
    msg_cursor: int
    taken_at_cycles: int = 0

    def __post_init__(self):
        self.taken_at_cycles = self.cpu_state["cycles"]


@dataclass
class SentMessage:
    """An outbound message attributed to the request being served."""

    msg_id: int | None
    data: bytes


@dataclass
class Message:
    """An inbound message (one request)."""

    msg_id: int
    data: bytes
    arrival_cycles: int = 0


class Process:
    """One protected guest process."""

    def __init__(self, image: Image, layout: AddressSpaceLayout | None = None,
                 seed: int = 0, name: str = "guest",
                 hooks: HookManager | None = None):
        self.image = image
        self.name = name
        self.layout = layout or randomized_layout(random.Random(seed))
        self.hooks = hooks or HookManager()
        self.memory = PagedMemory()
        self.cpu = CPU(self.memory, self.hooks)
        self.allocator = Allocator(self.memory, self.layout.heap_base)
        self.rng = random.Random(seed ^ 0x5EED)
        self.syscall_log = SyscallLog()
        self.replay_mode = False
        self.sandboxed = False
        self.exited = False
        self.pid = 1000 + (seed % 1000)
        self.debug_log: list[bytes] = []
        #: How many times the guest asked for its pid.  The pid is
        #: seed-derived, so a boot that reads it cannot donate a shared
        #: golden image (see :mod:`repro.runtime.golden`).
        self.getpid_calls = 0

        # Message-level I/O.  The runtime proxy swaps these for its own.
        self.input_queue: deque[Message] = deque()
        self.sent: list[SentMessage] = []
        self.current_msg_id: int | None = None
        self.msg_cursor = 0       # count of messages consumed (proxy replay)

        self.symbols: dict[str, int] = {}
        self._text_symbols: list[tuple[int, str]] = []
        self.native_addresses: dict[str, int] = {}
        self._sys_pc = 0

        # Checkpoint-path caches.  A take over a quiet interval (only
        # modeled cycles charged, no instruction executed) reuses the
        # previous take's frozen cpu-state dict and rng state instead of
        # re-copying them; ``cpu.state_version`` guards the former, rand
        # draws and restores invalidate the latter.
        self._cpu_state_cache: tuple[int, dict] | None = None
        self._rng_state_cache: object | None = None

        self._load()
        self.cpu.syscall_handler = self._syscall

    # -- loading ---------------------------------------------------------------

    def _load(self):
        image, layout = self.image, self.layout
        memory = self.memory
        memory.map_region("code", layout.code_base,
                          max(len(image.text), 1), writable=False)
        memory.map_region("data", layout.data_base, max(len(image.data), 1))
        memory.map_region("heap", layout.heap_base, 4096)
        memory.map_region("stack", layout.stack_base, STACK_SIZE)
        memory.write_unchecked(layout.code_base, image.text)
        memory.write_unchecked(layout.data_base, image.data)
        self._apply_relocations()
        # Relocations are patched; compile the (immutable) text section
        # into the executable-form stream the batched loop runs.
        self.cpu.predecode(layout.code_base, layout.code_base + len(image.text))
        self.allocator.initialize()

        for name, (section, offset) in image.symbols.items():
            base = layout.code_base if section == "text" else layout.data_base
            self.symbols[name] = base + offset
            if section == "text":
                self._text_symbols.append((base + offset, name))
        self._text_symbols.sort()

        for name, offset in NATIVE_OFFSETS.items():
            addr = layout.lib_base + offset
            self.native_addresses[name] = addr
            self.cpu.native_entries[addr] = self._make_native_handler(name)

        entry = self.symbols[image.entry]
        self.cpu.pc = entry
        self.cpu.regs[SP] = layout.stack_top - 16
        self.cpu.regs[FP] = self.cpu.regs[SP]

    def _apply_relocations(self):
        layout = self.layout
        for reloc in self.image.relocations:
            if reloc.target == "text":
                value = layout.code_base + int(reloc.value) + reloc.addend
            elif reloc.target == "data":
                value = layout.data_base + int(reloc.value) + reloc.addend
            elif reloc.target == "native":
                offset = NATIVE_OFFSETS.get(str(reloc.value))
                if offset is None:
                    raise LoaderError(f"unknown native {reloc.value!r}")
                value = layout.lib_base + offset + reloc.addend
            else:
                raise LoaderError(f"bad relocation target {reloc.target!r}")
            base = (layout.code_base if reloc.section == "text"
                    else layout.data_base)
            self.memory.write_unchecked(
                base + reloc.offset, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    # -- symbols ------------------------------------------------------------------

    def function_at(self, addr: int) -> str | None:
        """The enclosing function's name.

        Prefers the nearest preceding text symbol that has actually been
        observed as a CALL target (or is the entry point), so local jump
        labels inside a function do not shadow its name; falls back to
        the nearest symbol when nothing qualifies.
        """
        entries = self.cpu.known_call_targets
        entry_addr = self.symbols.get(self.image.entry)
        best = best_any = None
        for sym_addr, name in self._text_symbols:
            if sym_addr > addr:
                break
            best_any = name
            if sym_addr in entries or sym_addr == entry_addr:
                best = name
        return best or best_any

    def describe_address(self, addr: int) -> str:
        """Human-readable location, in the paper's reporting style."""
        for name, native_addr in self.native_addresses.items():
            if native_addr == addr:
                return f"{addr:#010x} (lib. {name})"
        region = self.memory.region_at(addr)
        if region and region.name == "code":
            function = self.function_at(addr)
            if function:
                return f"{addr:#010x} ({function})"
        return f"{addr:#010x}"

    # -- natives --------------------------------------------------------------------

    def _make_native_handler(self, name: str):
        fn = NATIVES[name]

        def handler(cpu: CPU, pc: int):
            if cpu.pre_checks:
                checks = cpu.pre_checks.get(pc)
                if checks:
                    for check in checks:
                        check(cpu, None)
            hk = self.hooks.sink
            hk.native(pc, name, tuple(cpu.regs[:4]))
            ctx = NativeContext(self, pc, name)
            try:
                result = fn(ctx)
            except VMFault as fault:
                if fault.pc in (-1, None):
                    raise VMFault(fault.kind, pc=pc, addr=fault.addr,
                                  source_pc=ctx.caller,
                                  detail=fault.detail or f"in {name}")
                raise
            cpu.regs[0] = result & 0xFFFFFFFF
            hk.reg_write(pc, 0, cpu.regs[0])
            sp_before = cpu.regs[SP]
            target = cpu.pop(pc)
            cpu.control_ring.append(ControlEvent("ret", pc, target))
            hk.ret(pc, target, sp_before)
            cpu.cycles += 4
            cpu.pc = target

        return handler

    # -- syscalls ---------------------------------------------------------------------

    def feed(self, data: bytes, msg_id: int | None = None) -> int:
        """Queue one inbound message; returns its id."""
        if msg_id is None:
            msg_id = self.msg_cursor + len(self.input_queue)
        self.input_queue.append(Message(msg_id=msg_id, data=data,
                                        arrival_cycles=self.cpu.cycles))
        return msg_id

    def _syscall(self, number: int, pc: int):
        self._sys_pc = pc
        cpu = self.cpu
        args = tuple(cpu.regs[:4])
        if number == SYS_EXIT:
            raise ProcessExited(args[0])
        if number == SYS_RECV:
            result = self._sys_recv(args[0], args[1], pc)
        elif number == SYS_SEND:
            result = self._sys_send(args[0], args[1])
        elif number == SYS_TIME:
            result = self._replayable(SYS_TIME,
                                      lambda: int(cpu.virtual_time() * 1000))
        elif number == SYS_RAND:
            result = self._replayable(SYS_RAND, self._rand_draw)
        elif number == SYS_LOG:
            data = self.memory.read(args[0], args[1])
            self.debug_log.append(data)
            result = args[1]
        elif number == SYS_GETPID:
            self.getpid_calls += 1
            result = self.pid
        else:
            raise VMFault("ILLEGAL_OPCODE", pc=pc,
                          detail=f"unknown syscall {number}")
        cpu.regs[0] = result & 0xFFFFFFFF
        hk = self.hooks.sink
        hk.reg_write(pc, 0, cpu.regs[0])
        hk.syscall(pc, number, args, result)
        cpu.cycles += 8

    def _rand_draw(self) -> int:
        """Draw guest entropy, invalidating the cached rng state."""
        self._rng_state_cache = None
        return self.rng.getrandbits(32)

    def set_rng_state(self, state):
        """Install an rng state (rollback/golden fork), keeping the
        checkpoint-path cache coherent.  All rng mutations outside the
        SYS_RAND draw must go through here."""
        self.rng.setstate(state)
        self._rng_state_cache = state

    def _replayable(self, number: int, live_fn):
        if self.replay_mode:
            record = self.syscall_log.next_matching(number)
            if record is not None:
                return record.result
            # Diverged from the log (e.g. a dropped message changed the
            # syscall sequence); fall back to live values.
        result = live_fn()
        if not self.replay_mode:
            self.syscall_log.append(SyscallRecord(number=number, result=result))
        return result

    def _sys_recv(self, buf: int, max_len: int, pc: int) -> int:
        if not self.input_queue:
            raise _WouldBlock()
        message = self.input_queue.popleft()
        self.msg_cursor += 1
        data = message.data[:max_len]
        self.memory.write(buf, data)
        self.current_msg_id = message.msg_id
        hk = self.hooks.sink
        hk.mem_write(pc, buf, len(data), data)
        hk.syscall(pc, SYS_RECV, (buf, max_len, 0, 0),
                   {"msg_id": message.msg_id, "data": data, "buf": buf})
        if not self.replay_mode:
            self.syscall_log.append(SyscallRecord(
                number=SYS_RECV, result=len(data),
                msg_id=message.msg_id, payload=data))
        return len(data)

    def _sys_send(self, buf: int, length: int) -> int:
        data = self.memory.read(buf, length)
        self.hooks.sink.mem_read(self._sys_pc, buf, length)
        self.sent.append(SentMessage(msg_id=self.current_msg_id, data=data))
        if not self.replay_mode:
            self.syscall_log.append(SyscallRecord(
                number=SYS_SEND, result=length,
                msg_id=self.current_msg_id, payload=data))
        return length

    # -- execution -----------------------------------------------------------------------

    def run(self, max_cycles: int | None = None,
            max_steps: int | None = None) -> RunResult:
        """Run until idle/exit/budget; faults propagate to the caller.

        Execution is batched: the CPU selects the cheapest inner loop
        the current deployment allows (plain predecoded cells when no
        tool or VSEF is live) and runs it until a budget trips or the
        guest blocks/exits/faults.
        """
        start = self.cpu.cycles
        try:
            reason = self.cpu.run(max_steps=max_steps, max_cycles=max_cycles)
            return RunResult(reason, self.cpu.cycles - start)
        except _WouldBlock:
            self.cpu.pc = self._sys_pc
            return RunResult("idle", self.cpu.cycles - start)
        except ProcessExited as exited:
            self.exited = True
            return RunResult("exit", self.cpu.cycles - start,
                             exit_status=exited.status)

    # -- checkpoint / rollback ------------------------------------------------------------

    def _checkpoint_cpu_state(self) -> dict:
        """The cpu-state dict a checkpoint records, cached across quiet
        intervals.  When no instruction ran since the last take (the
        ``state_version`` guard) only the cycle counter can differ, so
        the frozen register file and control ring are shared and at most
        a small dict is rebuilt; consumers never mutate these dicts
        (rollback copies contents out in place)."""
        cpu = self.cpu
        version = cpu.state_version
        cached = self._cpu_state_cache
        if cached is not None and cached[0] == version:
            state = cached[1]
            if state["cycles"] != cpu.cycles:
                state = {**state, "cycles": cpu.cycles}
                self._cpu_state_cache = (version, state)
            return state
        state = cpu.snapshot_state()
        self._cpu_state_cache = (version, state)
        return state

    def snapshot_ingredients(self) -> tuple:
        """The raw makings of a :class:`ProcessSnapshot`, captured now.

        This is the cheap checkpoint-path primitive: the memory delta
        snapshot *is* taken (pages must freeze at take time), but the
        ``ProcessSnapshot`` wrapper itself can be assembled lazily —
        see :class:`repro.runtime.checkpoint.Checkpoint`.
        """
        rng_state = self._rng_state_cache
        if rng_state is None:
            rng_state = self.rng.getstate()
            self._rng_state_cache = rng_state
        return (self.memory.snapshot(), self._checkpoint_cpu_state(),
                rng_state, len(self.syscall_log), self.current_msg_id,
                self.msg_cursor)

    def snapshot_full(self) -> ProcessSnapshot:
        memory, cpu_state, rng_state, log_len, msg_id, cursor = \
            self.snapshot_ingredients()
        return ProcessSnapshot(
            memory=memory,
            cpu_state=cpu_state,
            rng_state=rng_state,
            syscall_log_len=log_len,
            current_msg_id=msg_id,
            msg_cursor=cursor)

    def restore_full(self, snap: ProcessSnapshot, keep_log: bool = True):
        """Roll back to ``snap``.

        ``keep_log=True`` keeps syscall records past the snapshot for
        deterministic replay (rollback-for-analysis); ``False`` discards
        them (rollback-for-recovery re-executes live).

        A rollback that crosses a code-change epoch drops every
        predecoded cell and fused trace (they may describe bytes that no
        longer exist on this timeline); the text section is re-predecoded
        from the restored bytes so the fast path — including trace
        fusion — is rebuilt rather than decaying to lazy per-pc decode.
        """
        epoch_crossed = snap.memory.code_epoch != self.memory.code_epoch
        self.memory.restore(snap.memory)
        self.cpu.restore_state(snap.cpu_state)
        # The restored state *is* the snapshot's: seed the checkpoint
        # caches so an immediately following quiet take shares it.
        self._cpu_state_cache = (self.cpu.state_version, snap.cpu_state)
        self.set_rng_state(snap.rng_state)
        self.current_msg_id = snap.current_msg_id
        self.msg_cursor = snap.msg_cursor
        self.input_queue.clear()
        self.exited = False
        if keep_log:
            self.syscall_log.cursor = snap.syscall_log_len
        else:
            self.syscall_log.truncate(snap.syscall_log_len)
        if epoch_crossed:
            self.cpu.predecode(self.layout.code_base,
                               self.layout.code_base + len(self.image.text))


def load_program(source: str, entry: str = "main", seed: int = 0,
                 layout: AddressSpaceLayout | None = None,
                 name: str = "guest") -> Process:
    """Assemble ``source`` and load it into a fresh process."""
    from repro.isa.assembler import assemble

    return Process(assemble(source, entry=entry), layout=layout, seed=seed,
                   name=name)
