"""The CPU: fetch/decode/execute with faults, hooks and VSEF checks.

Design notes tied to the paper:

- **Fault model** — data accesses to unmapped memory raise SEGV, accesses
  under the NULL guard page raise NULL_DEREF, fetches from unmapped
  memory raise BAD_PC (carrying the *source* control transfer for blame),
  and undecodable bytes raise ILLEGAL_OPCODE.  These faults are the
  lightweight monitor's trigger.

- **Control-event ring** — the CPU always records the last 64 control
  transfers (calls/rets/branches), standing in for a hardware LBR.  The
  core-dump analyzer uses it to attribute a wild-PC crash to the ``ret``
  (or indirect jump) that launched it.  Its cost is a deque append on
  control transfers only, consistent with "lightweight".

- **Two-speed execution** — the paper's whole bargain is that the common
  case (no deployed analysis) is nearly free while full analysis may be
  20-1000x.  The CPU therefore has a batched :meth:`run` that selects an
  inner loop *once* per batch: a **plain** loop over predecoded
  executable cells (no hook calls, no pre-check probes, no per-step
  decode), a **checked** loop that adds only the per-PC VSEF probe, or
  the fully instrumented :meth:`step` loop when any tool is attached.
  All three produce bit-identical guest-visible state and cycle counts.

- **VSEF fast path** — deployed vulnerability-specific execution filters
  register per-PC pre-execution checks in ``pre_checks``.  The common
  case is a single dict lookup per instruction, and zero per-instruction
  work when no VSEF is deployed; this is why VSEF overhead is ~1% while
  full analysis is 20-1000x (§5.3).

- **Virtual clock** — one cycle per instruction, plus per-byte costs in
  natives.  ``CPU_HZ`` converts cycles to the virtual seconds used by all
  timing experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, NamedTuple

from repro.errors import (FAULT_BADPC, FAULT_DIVZERO, FAULT_ILLEGAL,
                          EncodingError, ProcessExited, VMFault)
from repro.isa.encoding import (OP_LENGTHS, Insn, block_leaders, decode,
                                decode_range)
from repro.isa.opcodes import (ALU_FUNCS, ALU_OPS, CONTROL_TRANSFER_OPS, FP,
                               OP_SIGNATURES, PREDICATE_FUNCS, SP, Op,
                               to_signed, to_unsigned)
from repro.machine.execcore import (compile_cell, compile_instrumented_cell,
                                    compile_trace)
from repro.machine.memory import PagedMemory

#: Virtual CPU frequency: cycles per virtual second.  2 MHz is chosen so
#: that (a) checkpoint cost vs. interval reproduces Figure 4's overhead
#: band (~5% at 30 ms, <1% at 200 ms), and (b) instrumented-replay
#: analysis times land in the same order of magnitude as Table 3 (tens
#: of seconds for slicing) while experiments stay fast in wall time.
CPU_HZ = 2_000_000

CONTROL_RING_SIZE = 64

#: Widest encodable instruction (opcode + operand bytes); invalidation
#: uses it to catch instructions whose operand bytes straddle a changed
#: code range.
MAX_INSN_LENGTH = max(OP_LENGTHS.values())

#: Longest straight-line run fused into one supercell.  Bounds generated
#: code size and how often a step budget smaller than a trace forces the
#: per-cell tail path.
FUSION_LIMIT = 32


class ControlEvent(NamedTuple):
    """One control transfer: kind is 'call', 'ret', 'branch' or 'native'.

    A named tuple rather than a dataclass: the ring append is on the
    fast path of every taken branch/call/ret, and tuple construction is
    about twice as cheap as a frozen dataclass ``__init__``.
    """

    kind: str
    pc: int
    target: int


class CPU:
    """A single-threaded 32-bit CPU bound to one guest memory."""

    #: Execution cells reach the event class through the instance to
    #: avoid a circular import with the execcore module.
    CONTROL_EVENT = ControlEvent

    def __init__(self, memory: PagedMemory, hooks):
        self.memory = memory
        self.hooks = hooks
        self.regs = [0] * 10
        self.pc = 0
        self.zf = False
        self.sf = False
        self.cf = False
        self.cycles = 0
        #: Monotone counter bumped whenever architectural state (regs,
        #: pc, flags, ring — anything but the cycle counter) may have
        #: changed: at every ``run``/``step`` entry and on every
        #: ``restore_state``.  Pure cycle charging (modeled busy work)
        #: does not bump it, which lets checkpoint takes over quiet
        #: intervals share one frozen cpu-state dict instead of
        #: re-copying the register file and control ring each time.
        self.state_version = 0
        self.control_ring: deque[ControlEvent] = deque(maxlen=CONTROL_RING_SIZE)
        #: Every address ever observed as a CALL target; used to tell
        #: function entries apart from local jump labels when symbolizing.
        self.known_call_targets: set[int] = set()
        #: pc -> list of callables(cpu, insn); the VSEF check table.
        self.pre_checks: dict[int, list[Callable]] = {}
        #: Native dispatch: absolute address -> handler(cpu, pc).
        self.native_entries: dict[int, Callable] = {}
        #: Syscall dispatch, set by the owning Process.
        self.syscall_handler: Callable[[int, int], int] | None = None
        #: Decoded-instruction cache for read-only (code) regions.  Safe
        #: because those pages cannot change after load; instructions
        #: fetched from writable memory (injected shellcode) are decoded
        #: fresh every time.
        self._decode_cache: dict[int, Insn] = {}
        #: Executable-form cells for the same addresses: pc -> closure.
        self._cells: dict[int, Callable] = {}
        #: Instrumented-form cells, compiled lazily by the analysis-mode
        #: loop (:meth:`_run_instrumented`): pc -> closure replicating
        #: the full ``step()`` event contract with the per-step lookups
        #: hoisted.  Invalidated together with ``_decode_cache``.
        self._icells: dict[int, Callable] = {}
        #: Fused traces: head pc -> (supercell, insn count, end address,
        #: member (pc, insn) tuple).  Members are kept so invalidation
        #: can re-split a partially stale trace.
        self._traces: dict[int, tuple] = {}
        #: The fused loop's dispatch table: pc -> (fn, insn count).
        #: Every cell appears with count 1; trace heads are overridden
        #: by their supercell.
        self._hot: dict[int, tuple] = {}
        #: Tier switch: False forces the plain per-cell loop even with
        #: traces built (differential testing, debugging).
        self.fusion_enabled = True
        #: Set by a faulting supercell: (faulting pc, uncharged cycles).
        self._trace_fault: tuple[int, int] | None = None
        #: Bound-method dispatch table for the general execute path.
        self._dispatch: dict[Op, Callable] = {
            op: getattr(self, name) for op, name in _DISPATCH_NAMES.items()}
        memory.add_code_listener(self.invalidate_code)

    # -- helpers ------------------------------------------------------------

    def fetch(self, addr: int, size: int) -> bytes:
        try:
            return self.memory.read(addr, size)
        except VMFault as fault:
            source = self.control_ring[-1].pc if self.control_ring else None
            raise VMFault(FAULT_BADPC, pc=addr, addr=addr, source_pc=source,
                          detail="instruction fetch from unmapped memory") \
                from fault

    def _data_fault(self, fault: VMFault, pc: int) -> VMFault:
        return VMFault(fault.kind, pc=pc, addr=fault.addr, detail=fault.detail)

    def virtual_time(self) -> float:
        """Virtual seconds elapsed since process start."""
        return self.cycles / CPU_HZ

    def snapshot_state(self) -> dict:
        return {"regs": list(self.regs), "pc": self.pc, "zf": self.zf,
                "sf": self.sf, "cf": self.cf, "cycles": self.cycles,
                "control_ring": list(self.control_ring)}

    def restore_state(self, state: dict):
        # In place: execution cells capture the register file and the
        # control ring by identity, so those objects must survive a
        # rollback (only their contents rewind).
        self.state_version += 1
        self.regs[:] = state["regs"]
        self.pc = state["pc"]
        self.zf = state["zf"]
        self.sf = state["sf"]
        self.cf = state["cf"]
        self.cycles = state["cycles"]
        self.control_ring.clear()
        self.control_ring.extend(state["control_ring"])

    # -- predecode ----------------------------------------------------------

    @property
    def predecoded_count(self) -> int:
        """How many instructions currently have executable cells."""
        return len(self._cells)

    @property
    def fused_trace_count(self) -> int:
        """How many supercells (fused straight-line traces) are live."""
        return len(self._traces)

    def predecode(self, start: int, end: int):
        """Predecode the read-only range ``[start, end)`` into executable
        cells (linear sweep; stops quietly at undecodable padding), then
        fuse straight-line runs within basic blocks into supercells."""
        region = self.memory.region_at(start)
        if region is None or region.writable:
            return
        stream = decode_range(self.fetch, start, end)
        for pc, insn in stream.items():
            self._decode_cache[pc] = insn
            cell = compile_cell(self, pc, insn)
            if cell is not None:
                self._cells[pc] = cell
                if pc not in self._traces:
                    self._hot[pc] = (cell, 1)
        self._fuse_stream(stream)

    def _fuse_stream(self, stream: dict[int, Insn]):
        """Merge maximal straight-line runs of fusible instructions —
        each closed by its block's terminating control transfer, when
        present — into supercells.  A run ends at any block leader
        (branch/call target, post-call return address), at any control
        transfer (which joins the trace as its tail), at SYS/HALT
        (which never compile), and at ``FUSION_LIMIT``; runs shorter
        than 2 stay per-cell.  Collected runs are then extended along
        the recovered CFG (:meth:`_extend_runs`) before installation."""
        if not stream:
            return
        leaders = block_leaders(stream)
        runs: list[list[tuple[int, Insn]]] = []
        run: list[tuple[int, Insn]] = []
        for pc in sorted(stream):
            insn = stream[pc]
            if run and (pc in leaders or pc != run[-1][0] + run[-1][1].length):
                runs.append(run)
                run = []
            if insn.fusible:
                run.append((pc, insn))
            elif insn.op in CONTROL_TRANSFER_OPS:
                run.append((pc, insn))
                runs.append(run)
                run = []
            else:                         # SYS/HALT: runtime re-entry
                runs.append(run)
                run = []
        runs.append(run)
        runs = [r for r in runs if r]
        self._extend_runs(stream, runs)
        for run in runs:
            self._install_traces(run)

    def _extend_runs(self, stream: dict[int, Insn],
                     runs: list[list[tuple[int, Insn]]]):
        """CFG-driven trace extension: splice a run's control-flow
        successor into the run when the successor is statically unique.

        A run ending in an unconditional immediate jump always
        continues into the jump target's run (the target is the only
        possible successor).  A run ending in a direct call continues
        into the callee when the stream CFG proves the callee
        single-entry — it heads its own block, has exactly one
        predecessor edge, and its address is never taken — so inlining
        it cannot duplicate code another caller reaches.  Extension
        fills up to ``FUSION_LIMIT`` (partial target slices allowed:
        the trace then falls off mid-run onto the target's cells);
        target runs keep their own standalone traces for entries that
        bypass the extended head.
        """
        # Lazy import: repro.analysis pulls the dynamic-analysis
        # pipeline whose runtime imports circle back into machine/.
        # By predecode time every module is fully initialised.
        from repro.analysis.static.cfg import cfg_from_stream
        cfg = cfg_from_stream(stream)
        by_head = {run[0][0]: run for run in runs}
        for run in runs:
            visited = {run[0][0]}
            while len(run) < FUSION_LIMIT:
                last_insn = run[-1][1]
                op = last_insn.op
                if op is Op.JMPI:
                    target = last_insn.operands[0]
                elif op is Op.CALLI:
                    target = last_insn.operands[0]
                    if (cfg.owner.get(target) != target
                            or len(cfg.preds.get(target, ())) != 1
                            or target in cfg.address_taken):
                        break
                else:
                    break
                nxt = by_head.get(target)
                if nxt is None or target in visited:
                    break
                visited.add(target)
                run.extend(nxt[:FUSION_LIMIT - len(run)])

    def _install_traces(self, run: list[tuple[int, Insn]]):
        for base in range(0, len(run), FUSION_LIMIT):
            items = run[base:base + FUSION_LIMIT]
            if len(items) < 2:
                continue
            fn = compile_trace(self, items)
            if fn is None:
                continue
            head = items[0][0]
            last_pc, last_insn = items[-1]
            self._traces[head] = (fn, len(items),
                                  last_pc + last_insn.length, tuple(items))
            self._hot[head] = (fn, len(items))

    def invalidate_code(self, start: int | None = None,
                        end: int | None = None):
        """Forget predecoded instructions overlapping ``[start, end)``
        (everything when no range is given).  Called when a code region
        is unmapped/remapped or patched, so stale decodings can never
        execute.  Fused traces overlapping the range are *re-split*: the
        trace is dropped and its still-valid prefix and suffix runs are
        re-fused, so no supercell can replay stale bytes while untouched
        instructions keep their fast path."""
        if start is None or end is None:
            self._decode_cache.clear()
            self._cells.clear()
            self._icells.clear()
            self._traces.clear()
            self._hot.clear()
            return
        low = start - MAX_INSN_LENGTH
        stale = [pc for pc in self._decode_cache if low < pc < end]
        for pc in stale:
            self._decode_cache.pop(pc, None)
            self._cells.pop(pc, None)
            self._icells.pop(pc, None)
            self._hot.pop(pc, None)
        for head in [h for h, t in self._traces.items()
                     if any(m_pc < end and m_pc + m_insn.length > start
                            for m_pc, m_insn in t[3])]:
            members = self._traces.pop(head)[3]
            self._hot.pop(head, None)
            cell = self._cells.get(head)
            if cell is not None:
                self._hot[head] = (cell, 1)
            # Re-split into maximal still-valid chains: members whose
            # cells survived, linked either by address contiguity or by
            # a jump/call whose immediate target is the next member (a
            # CFG-extended splice).  For a contiguous trace this is
            # exactly the classic prefix + suffix around the patch.
            chain: list[tuple[int, Insn]] = []
            for m_pc, m_insn in members:
                alive = m_pc in self._cells
                prev = chain[-1] if chain else None
                linked = (prev is None
                          or prev[0] + prev[1].length == m_pc
                          or (prev[1].op in (Op.JMPI, Op.CALLI)
                              and prev[1].operands[0] == m_pc))
                if alive and linked:
                    chain.append((m_pc, m_insn))
                else:
                    self._install_traces(chain)
                    chain = [(m_pc, m_insn)] if alive else []
            self._install_traces(chain)

    def adopt_decoded(self, pcs):
        """Decode (and compile) every pc in ``pcs`` not yet decoded.

        Used when forking a golden boot image: the donor's boot run may
        have lazily decoded instructions past the linear-sweep horizon
        (code after padding reached through jumps), and a forked node
        must start with the identical decoded set so introspection and
        fast-path selection match an eagerly booted sibling exactly.
        """
        for pc in pcs:
            if pc not in self._decode_cache:
                self._decode_at(pc)

    def _decode_at(self, pc: int) -> Insn:
        """Decode at ``pc``; cache (and compile) read-only instructions."""
        try:
            insn = decode(self.fetch, pc)
        except EncodingError as err:
            source = self.control_ring[-1].pc if self.control_ring else None
            raise VMFault(FAULT_ILLEGAL, pc=pc, source_pc=source,
                          detail=str(err)) from None
        region = self.memory.region_at(pc)
        if region is not None and not region.writable:
            self._decode_cache[pc] = insn
            cell = compile_cell(self, pc, insn)
            if cell is not None:
                self._cells[pc] = cell
                if pc not in self._traces:
                    self._hot[pc] = (cell, 1)
        return insn

    # -- stack -----------------------------------------------------------------

    def push(self, value: int, pc: int):
        self.regs[SP] = to_unsigned(self.regs[SP] - 4)
        try:
            self.memory.write_word(self.regs[SP], value)
        except VMFault as fault:
            raise self._data_fault(fault, pc)
        self.hooks.sink.mem_write(pc, self.regs[SP], 4,
                                  (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def pop(self, pc: int) -> int:
        addr = self.regs[SP]
        try:
            value = self.memory.read_word(addr)
        except VMFault as fault:
            raise self._data_fault(fault, pc)
        self.hooks.sink.mem_read(pc, addr, 4)
        self.regs[SP] = to_unsigned(addr + 4)
        return value

    # -- execution ---------------------------------------------------------------

    def step(self):
        """Execute one instruction (or one native call at a native entry).

        This is the general path: it probes the VSEF table, emits every
        instrumentation event through the hook sink, and dispatches
        through the bound-method table.  The batched :meth:`run` only
        falls back here for natives, syscalls, HALT, writable-memory
        code, or while a tool is attached.
        """
        self.state_version += 1
        pc = self.pc
        native = self.native_entries.get(pc)
        if native is not None:
            native(self, pc)
            return
        insn = self._decode_cache.get(pc)
        if insn is None:
            insn = self._decode_at(pc)
        if self.pre_checks:
            checks = self.pre_checks.get(pc)
            if checks:
                for check in checks:
                    check(self, insn)
        hk = self.hooks.sink
        hk.ins(pc, insn, self)
        self.cycles += 1
        self._dispatch[insn.op](pc, insn, hk)

    def run(self, max_steps: int | None = None,
            max_cycles: int | None = None) -> str:
        """Batched execution until a budget is exhausted.

        Selects the cheapest inner loop the current deployment allows —
        fused supercells, plain cells, cells + VSEF probes, or
        instrumented step() — and re-selects whenever a fallback step
        changes the deployment.  Armed VSEF checks disable the fused
        tier entirely: every probe PC must be probed per instruction, so
        execution falls back to per-cell until the filters are removed.
        Returns ``"steps"`` or ``"cycles"`` (which budget tripped);
        faults, syscall blocking and process exit propagate as
        exceptions.  With no budgets it runs until one of those.
        """
        self.state_version += 1
        steps_left = max_steps
        cycle_cap = self.cycles + max_cycles if max_cycles is not None \
            else None
        while True:
            if self.hooks.active:
                return self._run_instrumented(steps_left, cycle_cap)
            if self.pre_checks:
                done, reason = self._run_fast(steps_left, cycle_cap, True)
            elif self.fusion_enabled and self._traces:
                done, reason = self._run_fused(steps_left, cycle_cap)
            else:
                done, reason = self._run_fast(steps_left, cycle_cap, False)
            if reason is not None:
                return reason
            if steps_left is not None:
                steps_left -= done

    def _run_instrumented(self, steps_left: int | None,
                          cycle_cap: int | None) -> str:
        """The analysis-mode loop: every event reaches the tools.

        Instead of paying the full ``step()`` per instruction (native
        probe, decode probe, dispatch-table lookup, hook-sink fetch),
        decode-cached read-only code runs through lazily compiled
        *instrumented cells* (:func:`compile_instrumented_cell`) that
        hoist those lookups while emitting the identical event stream —
        so an analysis-mode guest costs closer to the fast tier than to
        the interpreter.  Natives and writable-memory code still take
        ``step()``, which is also what first decodes a pc into the
        cache so its icell can be built on the next visit.
        """
        icells_get = self._icells.get
        icells = self._icells
        decode_get = self._decode_cache.get
        native_entries = self.native_entries
        step = self.step
        done = 0
        while True:
            if cycle_cap is not None and self.cycles >= cycle_cap:
                return "cycles"
            if steps_left is not None and done >= steps_left:
                return "steps"
            pc = self.pc
            cell = icells_get(pc)
            if cell is not None:
                cell(self)
            else:
                insn = decode_get(pc)
                if insn is not None and pc not in native_entries:
                    cell = compile_instrumented_cell(self, pc, insn)
                    icells[pc] = cell
                    cell(self)
                else:
                    step()
            done += 1

    def _run_fused(self, steps_left: int | None,
                   cycle_cap: int | None) -> tuple[int, str | None]:
        """The fused hot loop: supercells where traces exist, plain
        cells everywhere else, no VSEF probes, no hook dispatch.

        ``_hot`` maps every predecoded pc to ``(fn, k)``; one dict probe
        dispatches either a single cell (k=1) or a whole straight-line
        trace (k instructions in one call).  Budgets stay exact: a trace
        larger than the remaining chunk is executed per-cell instead, so
        a budget can pause execution mid-trace and resume (possibly on a
        different tier) from any member pc.  A faulting supercell
        reports the faulting pc and its uncharged tail cycles through
        ``_trace_fault``; the ``finally`` below settles both, keeping
        fault-time state bit-identical to per-cell execution.
        """
        hot_get = self._hot.get
        cells_get = self._cells.get
        hooks = self.hooks
        prechecks = self.pre_checks
        pc = self.pc
        done = 0
        n = 0          # instructions executed since the last flush
        try:
            while True:
                chunk = _BIG if steps_left is None else steps_left - done
                if cycle_cap is not None:
                    room = cycle_cap - self.cycles
                    if room < chunk:
                        chunk = room
                        if chunk <= 0:
                            return done, "cycles"
                if chunk <= 0:
                    return done, "steps"
                n = 0
                while n < chunk:
                    entry = hot_get(pc)
                    if entry is None:
                        break
                    fn, k = entry
                    m = n + k
                    if m > chunk:
                        # The whole trace does not fit the budget: take
                        # one member cell (k=1 never lands here).
                        n += 1
                        pc = cells_get(pc)(self)
                        continue
                    n = m
                    pc = fn(self)
                else:
                    # Chunk exhausted without a miss: flush, re-derive.
                    self.cycles += n
                    done += n
                    n = 0
                    continue
                # Hot miss: native entry, SYS/HALT, writable-memory or
                # unmapped code.  Flush and take the general path.
                self.pc = pc
                self.cycles += n
                done += n
                n = 0
                self.step()
                pc = self.pc
                done += 1
                if hooks.active or prechecks:
                    return done, None
        finally:
            fault = self._trace_fault
            if fault is None:
                self.pc = pc
                self.cycles += n
            else:
                self._trace_fault = None
                self.pc = fault[0]
                self.cycles += n - fault[1]

    def _run_fast(self, steps_left: int | None, cycle_cap: int | None,
                  checked: bool) -> tuple[int, str | None]:
        """The batched hot loop over executable cells.

        Invariant hoisting: no hook dispatch (no tool is attached), and
        when ``checked`` is false no VSEF probe either.  Cells cost
        exactly one cycle each, so the cycle budget converts into a pure
        instruction count per chunk; anything that charges irregular
        cycles (natives, syscalls, VSEF checks) flushes the chunk and
        re-derives it.  Returns ``(steps_executed, reason)`` where a
        ``None`` reason means the caller must re-select loops because a
        fallback changed the deployment (e.g. a syscall attached a tool).
        """
        cells_get = self._cells.get
        prechecks = self.pre_checks
        decode_cache = self._decode_cache
        hooks = self.hooks
        pc = self.pc
        done = 0
        n = 0          # cells executed since the last flush: == cycles owed
        try:
            while True:
                # Derive the largest chunk of 1-cycle cells both budgets
                # allow; outside the chunk, budgets are exact.
                chunk = _BIG if steps_left is None else steps_left - done
                if cycle_cap is not None:
                    room = cycle_cap - self.cycles
                    if room < chunk:
                        chunk = room
                        if chunk <= 0:
                            return done, "cycles"
                if chunk <= 0:
                    return done, "steps"
                n = 0
                while n < chunk:
                    cell = cells_get(pc)
                    if cell is None:
                        break
                    if checked:
                        checks = prechecks.get(pc)
                        if checks:
                            self.pc = pc
                            self.cycles += n
                            done += n
                            n = 0
                            insn = decode_cache.get(pc)
                            for check in checks:
                                check(self, insn)
                            if hooks.active:
                                # A check attached a tool mid-run (PIN
                                # attach): finish this instruction on
                                # the instrumented path — the checks
                                # already ran — then re-select loops.
                                hk = hooks.sink
                                hk.ins(pc, insn, self)
                                self.cycles += 1
                                self._dispatch[insn.op](pc, insn, hk)
                                pc = self.pc
                                done += 1
                                return done, None
                            # Checks charge cycles; re-derive the chunk.
                            chunk = 0
                            # fall through to execute this cell below
                    n += 1
                    pc = cell(self)
                else:
                    # Chunk exhausted without a miss: flush and re-derive.
                    self.cycles += n
                    done += n
                    n = 0
                    continue
                # Cell miss: native entry, SYS/HALT, writable-memory or
                # unmapped code.  Flush and take the general path.
                self.pc = pc
                self.cycles += n
                done += n
                n = 0
                self.step()
                pc = self.pc
                done += 1
                if hooks.active or bool(prechecks) != checked:
                    return done, None
        finally:
            self.pc = pc
            self.cycles += n

    # -- general-path opcode handlers (bound-method dispatch) ----------------

    def _op_alu_rr(self, pc: int, insn: Insn, hk):
        rd, rs = insn.operands
        regs = self.regs
        try:
            value = _ALU_BY_OP[insn.op](regs[rd], regs[rs]) & 0xFFFFFFFF
        except ZeroDivisionError:
            raise VMFault(FAULT_DIVZERO, pc=pc) from None
        regs[rd] = value
        hk.reg_write(pc, rd, value)
        self.pc = pc + insn.length

    def _op_alu_ri(self, pc: int, insn: Insn, hk):
        rd, imm = insn.operands
        regs = self.regs
        try:
            value = _ALU_BY_OP[insn.op](regs[rd], imm) & 0xFFFFFFFF
        except ZeroDivisionError:
            raise VMFault(FAULT_DIVZERO, pc=pc) from None
        regs[rd] = value
        hk.reg_write(pc, rd, value)
        self.pc = pc + insn.length

    def _op_movrr(self, pc: int, insn: Insn, hk):
        rd, rs = insn.operands
        value = self.regs[rs]
        self.regs[rd] = value
        hk.reg_write(pc, rd, value)
        self.pc = pc + insn.length

    def _op_movri(self, pc: int, insn: Insn, hk):
        rd, imm = insn.operands
        self.regs[rd] = imm
        hk.reg_write(pc, rd, imm)
        self.pc = pc + insn.length

    def _op_load(self, pc: int, insn: Insn, hk):
        rd, base, disp = insn.operands
        addr = to_unsigned(self.regs[base] + to_signed(disp))
        size = 4 if insn.op == Op.LDW else 1
        try:
            raw = self.memory.read(addr, size)
        except VMFault as fault:
            raise self._data_fault(fault, pc)
        hk.mem_read(pc, addr, size)
        value = int.from_bytes(raw, "little")
        self.regs[rd] = value
        hk.reg_write(pc, rd, value)
        self.pc = pc + insn.length

    def _op_store(self, pc: int, insn: Insn, hk):
        base, disp, rs = insn.operands
        addr = to_unsigned(self.regs[base] + to_signed(disp))
        size = 4 if insn.op == Op.STW else 1
        data = (self.regs[rs] & (0xFFFFFFFF if size == 4 else 0xFF)
                ).to_bytes(size, "little")
        try:
            self.memory.write(addr, data)
        except VMFault as fault:
            raise self._data_fault(fault, pc)
        hk.mem_write(pc, addr, size, data)
        self.pc = pc + insn.length

    def _op_cmp(self, pc: int, insn: Insn, hk):
        a = self.regs[insn.operands[0]]
        b = self.regs[insn.operands[1]] if insn.op == Op.CMPRR \
            else insn.operands[1]
        self.zf = a == b
        self.sf = to_signed(a) < to_signed(b)
        self.cf = a < b
        self.pc = pc + insn.length

    def _op_jmp(self, pc: int, insn: Insn, hk):
        target = insn.operands[0] if insn.op == Op.JMPI \
            else self.regs[insn.operands[0]]
        self.control_ring.append(ControlEvent("branch", pc, target))
        hk.branch(pc, target, True)
        self.pc = target

    def _op_cond_branch(self, pc: int, insn: Insn, hk):
        taken = PREDICATE_FUNCS[insn.op](self.zf, self.sf, self.cf)
        target = insn.operands[0]
        hk.branch(pc, target, taken)
        if taken:
            self.control_ring.append(ControlEvent("branch", pc, target))
            self.pc = target
        else:
            self.pc = pc + insn.length

    def _op_call(self, pc: int, insn: Insn, hk):
        next_pc = pc + insn.length
        target = insn.operands[0] if insn.op == Op.CALLI \
            else self.regs[insn.operands[0]]
        self.push(next_pc, pc)
        self.known_call_targets.add(target)
        self.control_ring.append(ControlEvent("call", pc, target))
        hk.call(pc, target, next_pc)
        self.pc = target

    def _op_ret(self, pc: int, insn: Insn, hk):
        sp_before = self.regs[SP]
        target = self.pop(pc)
        self.control_ring.append(ControlEvent("ret", pc, target))
        hk.ret(pc, target, sp_before)
        self.pc = target

    def _op_push(self, pc: int, insn: Insn, hk):
        value = self.regs[insn.operands[0]] if insn.op == Op.PUSHR \
            else insn.operands[0]
        self.push(value, pc)
        self.pc = pc + insn.length

    def _op_pop(self, pc: int, insn: Insn, hk):
        value = self.pop(pc)
        rd = insn.operands[0]
        self.regs[rd] = value
        hk.reg_write(pc, rd, value)
        self.pc = pc + insn.length

    def _op_sys(self, pc: int, insn: Insn, hk):
        if self.syscall_handler is None:
            raise VMFault(FAULT_ILLEGAL, pc=pc, detail="no syscall handler")
        # The handler may raise _WouldBlock; the Process rewinds pc to
        # re-execute the SYS on resume, so update pc first.
        self.pc = pc + insn.length
        self.syscall_handler(insn.operands[0], pc)

    def _op_nop(self, pc: int, insn: Insn, hk):
        self.pc = pc + insn.length

    def _op_halt(self, pc: int, insn: Insn, hk):
        raise ProcessExited(self.regs[0])


#: ALU opcode -> semantic callable (shared with the execution cells).
_ALU_BY_OP = {op: ALU_FUNCS[name] for op, name in ALU_OPS.items()}

_BIG = 1 << 62

#: Opcode -> general-path handler method name; instances bind these into
#: their dispatch table.  Replaces the monolithic if/elif execute ladder.
_DISPATCH_NAMES: dict[Op, str] = {}
for _op in ALU_OPS:
    _DISPATCH_NAMES[_op] = ("_op_alu_rr" if OP_SIGNATURES[_op] == "rr"
                            else "_op_alu_ri")
for _op in PREDICATE_FUNCS:
    _DISPATCH_NAMES[_op] = "_op_cond_branch"
_DISPATCH_NAMES.update({
    Op.MOVRR: "_op_movrr",
    Op.MOVRI: "_op_movri",
    Op.LDW: "_op_load",
    Op.LDB: "_op_load",
    Op.STW: "_op_store",
    Op.STB: "_op_store",
    Op.CMPRR: "_op_cmp",
    Op.CMPRI: "_op_cmp",
    Op.JMPI: "_op_jmp",
    Op.JMPR: "_op_jmp",
    Op.CALLI: "_op_call",
    Op.CALLR: "_op_call",
    Op.RET: "_op_ret",
    Op.PUSHR: "_op_push",
    Op.PUSHI: "_op_push",
    Op.POPR: "_op_pop",
    Op.SYS: "_op_sys",
    Op.NOP: "_op_nop",
    Op.HALT: "_op_halt",
})
assert set(_DISPATCH_NAMES) == set(OP_SIGNATURES), "dispatch table incomplete"


# Re-export register aliases for convenience of callers.
REG_SP = SP
REG_FP = FP
