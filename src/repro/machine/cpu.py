"""The CPU: fetch/decode/execute with faults, hooks and VSEF checks.

Design notes tied to the paper:

- **Fault model** — data accesses to unmapped memory raise SEGV, accesses
  under the NULL guard page raise NULL_DEREF, fetches from unmapped
  memory raise BAD_PC (carrying the *source* control transfer for blame),
  and undecodable bytes raise ILLEGAL_OPCODE.  These faults are the
  lightweight monitor's trigger.

- **Control-event ring** — the CPU always records the last 64 control
  transfers (calls/rets/branches), standing in for a hardware LBR.  The
  core-dump analyzer uses it to attribute a wild-PC crash to the ``ret``
  (or indirect jump) that launched it.  Its cost is a deque append on
  control transfers only, consistent with "lightweight".

- **VSEF fast path** — deployed vulnerability-specific execution filters
  register per-PC pre-execution checks in ``pre_checks``.  The common
  case is a single dict lookup per instruction, and zero per-instruction
  work when no VSEF is deployed; this is why VSEF overhead is ~1% while
  full analysis is 20-1000x (§5.3).

- **Virtual clock** — one cycle per instruction, plus per-byte costs in
  natives.  ``CPU_HZ`` converts cycles to the virtual seconds used by all
  timing experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import (FAULT_BADPC, FAULT_DIVZERO, FAULT_ILLEGAL,
                          EncodingError, ProcessExited, VMFault)
from repro.isa.encoding import Insn, decode
from repro.isa.opcodes import (ALU_OPS, FP, SP, Op, to_signed, to_unsigned)
from repro.machine.memory import PagedMemory

#: Virtual CPU frequency: cycles per virtual second.  2 MHz is chosen so
#: that (a) checkpoint cost vs. interval reproduces Figure 4's overhead
#: band (~5% at 30 ms, <1% at 200 ms), and (b) instrumented-replay
#: analysis times land in the same order of magnitude as Table 3 (tens
#: of seconds for slicing) while experiments stay fast in wall time.
CPU_HZ = 2_000_000

CONTROL_RING_SIZE = 64


@dataclass(frozen=True)
class ControlEvent:
    """One control transfer: kind is 'call', 'ret', 'branch' or 'native'."""

    kind: str
    pc: int
    target: int


class CPU:
    """A single-threaded 32-bit CPU bound to one guest memory."""

    def __init__(self, memory: PagedMemory, hooks):
        self.memory = memory
        self.hooks = hooks
        self.regs = [0] * 10
        self.pc = 0
        self.zf = False
        self.sf = False
        self.cf = False
        self.cycles = 0
        self.control_ring: deque[ControlEvent] = deque(maxlen=CONTROL_RING_SIZE)
        #: Every address ever observed as a CALL target; used to tell
        #: function entries apart from local jump labels when symbolizing.
        self.known_call_targets: set[int] = set()
        #: pc -> list of callables(cpu, insn); the VSEF check table.
        self.pre_checks: dict[int, list[Callable]] = {}
        #: Native dispatch: absolute address -> handler(cpu, pc).
        self.native_entries: dict[int, Callable] = {}
        #: Syscall dispatch, set by the owning Process.
        self.syscall_handler: Callable[[int, int], int] | None = None
        #: Decoded-instruction cache for read-only (code) regions.  Safe
        #: because those pages cannot change after load; instructions
        #: fetched from writable memory (injected shellcode) are decoded
        #: fresh every time.
        self._decode_cache: dict[int, "Insn"] = {}

    # -- helpers ------------------------------------------------------------

    def fetch(self, addr: int, size: int) -> bytes:
        try:
            return self.memory.read(addr, size)
        except VMFault as fault:
            source = self.control_ring[-1].pc if self.control_ring else None
            raise VMFault(FAULT_BADPC, pc=addr, addr=addr, source_pc=source,
                          detail="instruction fetch from unmapped memory") \
                from fault

    def _data_fault(self, fault: VMFault, pc: int) -> VMFault:
        return VMFault(fault.kind, pc=pc, addr=fault.addr, detail=fault.detail)

    def virtual_time(self) -> float:
        """Virtual seconds elapsed since process start."""
        return self.cycles / CPU_HZ

    def snapshot_state(self) -> dict:
        return {"regs": list(self.regs), "pc": self.pc, "zf": self.zf,
                "sf": self.sf, "cf": self.cf, "cycles": self.cycles,
                "control_ring": list(self.control_ring)}

    def restore_state(self, state: dict):
        self.regs = list(state["regs"])
        self.pc = state["pc"]
        self.zf = state["zf"]
        self.sf = state["sf"]
        self.cf = state["cf"]
        self.cycles = state["cycles"]
        self.control_ring = deque(state["control_ring"],
                                  maxlen=CONTROL_RING_SIZE)

    # -- stack -----------------------------------------------------------------

    def push(self, value: int, pc: int):
        self.regs[SP] = to_unsigned(self.regs[SP] - 4)
        try:
            self.memory.write_word(self.regs[SP], value)
        except VMFault as fault:
            raise self._data_fault(fault, pc)
        if self.hooks.active:
            self.hooks.mem_write(pc, self.regs[SP], 4,
                                 (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def pop(self, pc: int) -> int:
        addr = self.regs[SP]
        try:
            value = self.memory.read_word(addr)
        except VMFault as fault:
            raise self._data_fault(fault, pc)
        if self.hooks.active:
            self.hooks.mem_read(pc, addr, 4)
        self.regs[SP] = to_unsigned(addr + 4)
        return value

    # -- execution ---------------------------------------------------------------

    def step(self):
        """Execute one instruction (or one native call at a native entry)."""
        pc = self.pc
        native = self.native_entries.get(pc)
        if native is not None:
            native(self, pc)
            return
        insn = self._decode_cache.get(pc)
        if insn is None:
            try:
                insn = decode(self.fetch, pc)
            except EncodingError as err:
                source = self.control_ring[-1].pc if self.control_ring \
                    else None
                raise VMFault(FAULT_ILLEGAL, pc=pc, source_pc=source,
                              detail=str(err))
            region = self.memory.region_at(pc)
            if region is not None and not region.writable:
                self._decode_cache[pc] = insn
        if self.pre_checks:
            checks = self.pre_checks.get(pc)
            if checks:
                for check in checks:
                    check(self, insn)
        if self.hooks.active:
            self.hooks.ins(pc, insn, self)
        self.cycles += 1
        self._execute(pc, insn)

    def _set_reg(self, pc: int, reg: int, value: int):
        value = to_unsigned(value)
        self.regs[reg] = value
        if self.hooks.active:
            self.hooks.reg_write(pc, reg, value)

    def _alu(self, name: str, a: int, b: int, pc: int) -> int:
        if name == "add":
            return a + b
        if name == "sub":
            return a - b
        if name == "mul":
            return a * b
        if name in ("div", "mod"):
            if b == 0:
                raise VMFault(FAULT_DIVZERO, pc=pc)
            return a // b if name == "div" else a % b
        if name == "and":
            return a & b
        if name == "or":
            return a | b
        if name == "xor":
            return a ^ b
        if name == "shl":
            return a << (b & 31)
        if name == "shr":
            return a >> (b & 31)
        raise AssertionError(name)

    def _execute(self, pc: int, insn: Insn):
        op = insn.op
        ops = insn.operands
        next_pc = pc + insn.length
        hooks = self.hooks if self.hooks.active else None

        if op in ALU_OPS:
            rd = ops[0]
            rhs = self.regs[ops[1]] if insn.signature == "rr" else ops[1]
            result = self._alu(ALU_OPS[op], self.regs[rd], rhs, pc)
            self._set_reg(pc, rd, result)
        elif op == Op.MOVRR:
            self._set_reg(pc, ops[0], self.regs[ops[1]])
        elif op == Op.MOVRI:
            self._set_reg(pc, ops[0], ops[1])
        elif op in (Op.LDW, Op.LDB):
            rd, base, disp = ops
            addr = to_unsigned(self.regs[base] + to_signed(disp))
            size = 4 if op == Op.LDW else 1
            try:
                raw = self.memory.read(addr, size)
            except VMFault as fault:
                raise self._data_fault(fault, pc)
            if hooks:
                hooks.mem_read(pc, addr, size)
            self._set_reg(pc, rd, int.from_bytes(raw, "little"))
        elif op in (Op.STW, Op.STB):
            base, disp, rs = ops
            addr = to_unsigned(self.regs[base] + to_signed(disp))
            size = 4 if op == Op.STW else 1
            data = (self.regs[rs] & (0xFFFFFFFF if size == 4 else 0xFF)
                    ).to_bytes(size, "little")
            try:
                self.memory.write(addr, data)
            except VMFault as fault:
                raise self._data_fault(fault, pc)
            if hooks:
                hooks.mem_write(pc, addr, size, data)
        elif op in (Op.CMPRR, Op.CMPRI):
            a = self.regs[ops[0]]
            b = self.regs[ops[1]] if op == Op.CMPRR else ops[1]
            self.zf = a == b
            self.sf = to_signed(a) < to_signed(b)
            self.cf = a < b
        elif op == Op.JMPI:
            target = ops[0]
            self.control_ring.append(ControlEvent("branch", pc, target))
            if hooks:
                hooks.branch(pc, target, True)
            self.pc = target
            return
        elif op == Op.JMPR:
            target = self.regs[ops[0]]
            self.control_ring.append(ControlEvent("branch", pc, target))
            if hooks:
                hooks.branch(pc, target, True)
            self.pc = target
            return
        elif op in (Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE, Op.JB,
                    Op.JAE):
            taken = self._predicate(op)
            target = ops[0]
            if hooks:
                hooks.branch(pc, target, taken)
            if taken:
                self.control_ring.append(ControlEvent("branch", pc, target))
                self.pc = target
                return
        elif op == Op.CALLI or op == Op.CALLR:
            target = ops[0] if op == Op.CALLI else self.regs[ops[0]]
            self.push(next_pc, pc)
            self.known_call_targets.add(target)
            self.control_ring.append(ControlEvent("call", pc, target))
            if hooks:
                hooks.call(pc, target, next_pc)
            self.pc = target
            return
        elif op == Op.RET:
            sp_before = self.regs[SP]
            target = self.pop(pc)
            self.control_ring.append(ControlEvent("ret", pc, target))
            if hooks:
                hooks.ret(pc, target, sp_before)
            self.pc = target
            return
        elif op == Op.PUSHR:
            self.push(self.regs[ops[0]], pc)
        elif op == Op.PUSHI:
            self.push(ops[0], pc)
        elif op == Op.POPR:
            self._set_reg(pc, ops[0], self.pop(pc))
        elif op == Op.SYS:
            if self.syscall_handler is None:
                raise VMFault(FAULT_ILLEGAL, pc=pc, detail="no syscall handler")
            # The handler may raise _WouldBlock; the Process rewinds pc to
            # re-execute the SYS on resume, so update pc first.
            self.pc = next_pc
            self.syscall_handler(ops[0], pc)
            return
        elif op == Op.NOP:
            pass
        elif op == Op.HALT:
            raise ProcessExited(self.regs[0])
        else:  # pragma: no cover - the decoder rejects unknown opcodes
            raise VMFault(FAULT_ILLEGAL, pc=pc, detail=f"unhandled {op!r}")
        self.pc = next_pc

    def _predicate(self, op: Op) -> bool:
        if op == Op.JE:
            return self.zf
        if op == Op.JNE:
            return not self.zf
        if op == Op.JL:
            return self.sf
        if op == Op.JLE:
            return self.sf or self.zf
        if op == Op.JG:
            return not (self.sf or self.zf)
        if op == Op.JGE:
            return not self.sf
        if op == Op.JB:
            return self.cf
        return not self.cf  # JAE


# Re-export register aliases for convenience of callers.
REG_SP = SP
REG_FP = FP
