"""Executable-form instruction cells: the predecoded fast path.

The batched CPU loop executes read-only code through *cells*: one
closure per instruction address, compiled once when the instruction is
first decoded.  A cell has its operands unpacked, its ALU/predicate
function bound, its signed displacement pre-converted and its fall-through
address precomputed, so executing it is a single call that returns the
next program counter.  Cells contain **no** instrumentation calls, no
pre-check probes and no cycle bookkeeping — the batched loop accounts one
cycle per cell call and only runs cells while no tool or VSEF needs the
slow path.  This is how the common case ("no deployed analysis") gets
paper-grade (~0%) instrumentation cost without losing any of it when a
tool attaches.

Semantics are bit-for-bit those of :meth:`repro.machine.cpu.CPU.step`:
identical register/flag/memory updates, identical fault kinds and fault
PCs, identical control-ring events and identical cycle counts.  The
differential tests in ``tests/test_fastpath_differential.py`` hold the
two paths to that contract.

``SYS`` and ``HALT`` are deliberately *not* compiled: they re-enter the
runtime (syscall dispatch, process exit) and fall back to the general
``step()`` path, as does any address that is not read-only code.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import FAULT_DIVZERO, VMFault
from repro.isa.encoding import Insn
from repro.isa.opcodes import (ALU_FUNCS, ALU_OPS, CONTROL_TRANSFER_OPS,
                               OP_SIGNATURES, PREDICATE_FUNCS, SP, Op,
                               to_signed)
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE, u32_get, u32_put

WORD_MASK = 0xFFFFFFFF
_SIGN_BIT = 0x80000000

#: ``fn(cpu) -> next_pc``; raises the same exceptions ``step()`` would.
Cell = Callable[["object"], int]

_FACTORIES: dict[Op, Callable] = {}


def _factory(*ops: Op):
    def register(fn):
        for op in ops:
            _FACTORIES[op] = fn
        return fn
    return register


def compile_cell(cpu, pc: int, insn: Insn) -> Cell | None:
    """Compile ``insn`` at ``pc`` into an executable cell for ``cpu``.

    Returns ``None`` for opcodes that must take the general path.  The
    closure captures stable per-process objects (the register file, the
    bound memory accessors, the control ring), which is why
    ``CPU.restore_state`` mutates those objects in place rather than
    replacing them.
    """
    factory = _FACTORIES.get(insn.op)
    if factory is None:
        return None
    return factory(cpu, pc, insn)


# ---------------------------------------------------------------------------
# Data movement and ALU
# ---------------------------------------------------------------------------

def _alu_factory(cpu, pc: int, insn: Insn):
    fn = ALU_FUNCS[ALU_OPS[insn.op]]
    regs = cpu.regs
    next_pc = pc + insn.length
    rd = insn.operands[0]
    if OP_SIGNATURES[insn.op] == "rr":
        rs = insn.operands[1]

        def run(cpu):
            try:
                regs[rd] = fn(regs[rd], regs[rs]) & WORD_MASK
            except ZeroDivisionError:
                raise VMFault(FAULT_DIVZERO, pc=pc) from None
            return next_pc
    else:
        imm = insn.operands[1]

        def run(cpu):
            try:
                regs[rd] = fn(regs[rd], imm) & WORD_MASK
            except ZeroDivisionError:
                raise VMFault(FAULT_DIVZERO, pc=pc) from None
            return next_pc
    return run


for _op in ALU_OPS:
    _FACTORIES[_op] = _alu_factory


@_factory(Op.MOVRR)
def _movrr(cpu, pc, insn):
    regs = cpu.regs
    rd, rs = insn.operands
    next_pc = pc + insn.length

    def run(cpu):
        regs[rd] = regs[rs]
        return next_pc
    return run


@_factory(Op.MOVRI)
def _movri(cpu, pc, insn):
    regs = cpu.regs
    rd, imm = insn.operands
    next_pc = pc + insn.length

    def run(cpu):
        regs[rd] = imm
        return next_pc
    return run


@_factory(Op.NOP)
def _nop(cpu, pc, insn):
    next_pc = pc + insn.length

    def run(cpu):
        return next_pc
    return run


# ---------------------------------------------------------------------------
# Memory access
#
# Loads/stores (and the stack traffic of CALL/RET/PUSH/POP below) inline
# the single-page access path: one shift/mask for the page index, one
# dict probe for the owning region, one dirty-bitmap probe for writes.
# Anything irregular — page-straddling access, unmapped/NULL/read-only
# target, first write to a frozen page — drops to the PagedMemory slow
# path, which re-runs full checking and raises the canonical faults.
# The captured containers (page table, page-region index, dirty bitmap)
# are mutated in place by snapshot/restore, never replaced.
# ---------------------------------------------------------------------------

_PAGE_SHIFT = PAGE_SHIFT
_PAGE_MASK = PAGE_SIZE - 1
_WORD_FIT = PAGE_SIZE - 4



def _reraise_data_fault(fault: VMFault, pc: int):
    raise VMFault(fault.kind, pc=pc, addr=fault.addr,
                  detail=fault.detail) from None


@_factory(Op.LDW)
def _ldw(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    read_word = memory.read_word
    rd, base, disp = insn.operands
    disp = to_signed(disp)
    next_pc = pc + insn.length

    def run(cpu):
        addr = (regs[base] + disp) & WORD_MASK
        offset = addr & _PAGE_MASK
        index = addr >> _PAGE_SHIFT
        if offset <= _WORD_FIT and index in page_region:
            page = pages.get(index)
            regs[rd] = 0 if page is None else u32_get(page, offset)[0]
            return next_pc
        try:
            regs[rd] = read_word(addr)
        except VMFault as fault:
            _reraise_data_fault(fault, pc)
        return next_pc
    return run


@_factory(Op.LDB)
def _ldb(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    read = memory.read
    rd, base, disp = insn.operands
    disp = to_signed(disp)
    next_pc = pc + insn.length

    def run(cpu):
        addr = (regs[base] + disp) & WORD_MASK
        index = addr >> _PAGE_SHIFT
        if index in page_region:
            page = pages.get(index)
            regs[rd] = 0 if page is None else page[addr & _PAGE_MASK]
            return next_pc
        try:
            regs[rd] = read(addr, 1)[0]
        except VMFault as fault:
            _reraise_data_fault(fault, pc)
        return next_pc
    return run


@_factory(Op.STW)
def _stw(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    dirty = memory._dirty
    page_for_write = memory._page_for_write
    write_word = memory.write_word
    base, disp, rs = insn.operands
    disp = to_signed(disp)
    next_pc = pc + insn.length

    def run(cpu):
        addr = (regs[base] + disp) & WORD_MASK
        offset = addr & _PAGE_MASK
        index = addr >> _PAGE_SHIFT
        if offset <= _WORD_FIT:
            region = page_region.get(index)
            if region is not None and region.writable:
                page = pages[index] if index in dirty else \
                    page_for_write(index)
                u32_put(page, offset, regs[rs] & WORD_MASK)
                return next_pc
        try:
            write_word(addr, regs[rs])
        except VMFault as fault:
            _reraise_data_fault(fault, pc)
        return next_pc
    return run


@_factory(Op.STB)
def _stb(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    dirty = memory._dirty
    page_for_write = memory._page_for_write
    write = memory.write
    base, disp, rs = insn.operands
    disp = to_signed(disp)
    next_pc = pc + insn.length

    def run(cpu):
        addr = (regs[base] + disp) & WORD_MASK
        index = addr >> _PAGE_SHIFT
        region = page_region.get(index)
        if region is not None and region.writable:
            page = pages[index] if index in dirty else page_for_write(index)
            page[addr & _PAGE_MASK] = regs[rs] & 0xFF
            return next_pc
        try:
            write(addr, bytes([regs[rs] & 0xFF]))
        except VMFault as fault:
            _reraise_data_fault(fault, pc)
        return next_pc
    return run


# ---------------------------------------------------------------------------
# Flags and control transfer
# ---------------------------------------------------------------------------

@_factory(Op.CMPRR)
def _cmprr(cpu, pc, insn):
    regs = cpu.regs
    r1, r2 = insn.operands
    next_pc = pc + insn.length

    def run(cpu):
        a = regs[r1]
        b = regs[r2]
        cpu.zf = a == b
        # Biased compare == signed compare for 32-bit two's complement.
        cpu.sf = (a ^ _SIGN_BIT) < (b ^ _SIGN_BIT)
        cpu.cf = a < b
        return next_pc
    return run


@_factory(Op.CMPRI)
def _cmpri(cpu, pc, insn):
    regs = cpu.regs
    r1, imm = insn.operands
    biased_imm = imm ^ _SIGN_BIT
    next_pc = pc + insn.length

    def run(cpu):
        a = regs[r1]
        cpu.zf = a == imm
        cpu.sf = (a ^ _SIGN_BIT) < biased_imm
        cpu.cf = a < imm
        return next_pc
    return run


@_factory(Op.JMPI)
def _jmpi(cpu, pc, insn):
    ring = cpu.control_ring
    event_cls = type(cpu).CONTROL_EVENT
    target = insn.operands[0]

    def run(cpu):
        ring.append(event_cls("branch", pc, target))
        return target
    return run


@_factory(Op.JMPR)
def _jmpr(cpu, pc, insn):
    regs = cpu.regs
    ring = cpu.control_ring
    event_cls = type(cpu).CONTROL_EVENT
    rs = insn.operands[0]

    def run(cpu):
        target = regs[rs]
        ring.append(event_cls("branch", pc, target))
        return target
    return run


def _cond_factory(cpu, pc: int, insn: Insn):
    pred = PREDICATE_FUNCS[insn.op]
    ring = cpu.control_ring
    event_cls = type(cpu).CONTROL_EVENT
    target = insn.operands[0]
    next_pc = pc + insn.length

    def run(cpu):
        if pred(cpu.zf, cpu.sf, cpu.cf):
            ring.append(event_cls("branch", pc, target))
            return target
        return next_pc
    return run


for _op in PREDICATE_FUNCS:
    _FACTORIES[_op] = _cond_factory


def _call_factory(cpu, pc: int, insn: Insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    dirty = memory._dirty
    page_for_write = memory._page_for_write
    write_word = memory.write_word
    ring = cpu.control_ring
    event_cls = type(cpu).CONTROL_EVENT
    known = cpu.known_call_targets
    indirect = insn.op == Op.CALLR
    operand = insn.operands[0]
    next_pc = pc + insn.length

    def run(cpu):
        target = regs[operand] if indirect else operand
        sp = (regs[SP] - 4) & WORD_MASK
        regs[SP] = sp
        offset = sp & _PAGE_MASK
        index = sp >> _PAGE_SHIFT
        region = page_region.get(index)
        if offset <= _WORD_FIT and region is not None and region.writable:
            page = pages[index] if index in dirty else page_for_write(index)
            u32_put(page, offset, next_pc)
        else:
            try:
                write_word(sp, next_pc)
            except VMFault as fault:
                _reraise_data_fault(fault, pc)
        known.add(target)
        ring.append(event_cls("call", pc, target))
        return target
    return run


_FACTORIES[Op.CALLI] = _call_factory
_FACTORIES[Op.CALLR] = _call_factory


@_factory(Op.RET)
def _ret(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    read_word = memory.read_word
    ring = cpu.control_ring
    event_cls = type(cpu).CONTROL_EVENT

    def run(cpu):
        sp = regs[SP]
        offset = sp & _PAGE_MASK
        index = sp >> _PAGE_SHIFT
        if offset <= _WORD_FIT and index in page_region:
            page = pages.get(index)
            target = 0 if page is None else u32_get(page, offset)[0]
        else:
            try:
                target = read_word(sp)
            except VMFault as fault:
                _reraise_data_fault(fault, pc)
        regs[SP] = (sp + 4) & WORD_MASK
        ring.append(event_cls("ret", pc, target))
        return target
    return run


@_factory(Op.PUSHR, Op.PUSHI)
def _push(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    dirty = memory._dirty
    page_for_write = memory._page_for_write
    write_word = memory.write_word
    from_reg = insn.op == Op.PUSHR
    operand = insn.operands[0]
    next_pc = pc + insn.length

    def run(cpu):
        value = regs[operand] if from_reg else operand
        sp = (regs[SP] - 4) & WORD_MASK
        regs[SP] = sp
        offset = sp & _PAGE_MASK
        index = sp >> _PAGE_SHIFT
        region = page_region.get(index)
        if offset <= _WORD_FIT and region is not None and region.writable:
            page = pages[index] if index in dirty else page_for_write(index)
            u32_put(page, offset, value & WORD_MASK)
        else:
            try:
                write_word(sp, value)
            except VMFault as fault:
                _reraise_data_fault(fault, pc)
        return next_pc
    return run


@_factory(Op.POPR)
def _popr(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    read_word = memory.read_word
    rd = insn.operands[0]
    next_pc = pc + insn.length

    def run(cpu):
        sp = regs[SP]
        offset = sp & _PAGE_MASK
        index = sp >> _PAGE_SHIFT
        if offset <= _WORD_FIT and index in page_region:
            page = pages.get(index)
            value = 0 if page is None else u32_get(page, offset)[0]
        else:
            try:
                value = read_word(sp)
            except VMFault as fault:
                _reraise_data_fault(fault, pc)
        # Order matters when rd is SP itself: the increment happens
        # first, then the popped value lands, exactly as step() does.
        regs[SP] = (sp + 4) & WORD_MASK
        regs[rd] = value
        return next_pc
    return run


#: Opcodes that compile to cells (everything except SYS/HALT).
COMPILABLE_OPS = frozenset(_FACTORIES)


def compile_instrumented_cell(cpu, pc: int, insn: Insn):
    """Compile the *instrumented* form of ``insn`` at ``pc``.

    The analysis-mode counterpart of :func:`compile_cell`: where plain
    cells strip every hook call, an instrumented cell keeps the full
    ``step()`` event contract — the VSEF pre-check probe, the ``ins``
    event, the one-cycle charge and the general-path dispatch (whose
    handlers emit the per-operand ``mem_*``/``reg_write``/control
    events) — but hoists the per-step lookups ``step()`` repeats every
    instruction: the native-entry probe (instrumented cells exist only
    for decode-cached read-only code, which native entries never are),
    the decode-cache probe and the dispatch-table lookup.  Tools
    observe a bit-identical event stream; only the per-instruction
    dispatch overhead shrinks.

    The closure captures the hook *manager* and the pre-check table by
    identity and re-reads ``hooks.sink``/the pc's check list every
    execution, so tools attaching or detaching and filters arming or
    disarming mid-run behave exactly as on the step() path.  Unlike
    plain cells, SYS and HALT compile too — their general-path handlers
    re-enter the runtime just as step() would.
    """
    dispatch = cpu._dispatch[insn.op]
    hooks = cpu.hooks
    prechecks = cpu.pre_checks

    def run(cpu):
        if prechecks:
            checks = prechecks.get(pc)
            if checks:
                for check in checks:
                    check(cpu, insn)
        hk = hooks.sink
        hk.ins(pc, insn, cpu)
        cpu.cycles += 1
        dispatch(pc, insn, hk)

    return run


# ---------------------------------------------------------------------------
# Trace fusion: supercells
#
# A *supercell* is one generated Python function that executes a whole
# straight-line run of fusible instructions (see
# :data:`repro.isa.opcodes.FUSIBLE_OPS`), optionally closed by the basic
# block's terminating control transfer: operands are unpacked at compile
# time, guest registers and flags are coalesced into Python locals
# (loaded on first read, flushed once at the end), ALU semantics are
# inlined as operators, loads/stores inline the same single-page fast
# path the per-instruction cells use, and the run ends in a single PC
# return — the fall-through address, or the terminator's (possibly
# conditional) target.  The batched loop charges the trace's full
# instruction count in one add, so cycle accounting stays bit-identical
# to per-cell execution.
#
# Faults mid-trace must look exactly like per-cell faults: architectural
# state reflects every instruction before the faulting one, the faulting
# instruction's own partial effects match step() (e.g. PUSH leaves SP
# decremented), the fault carries the faulting instruction's PC, and
# only the executed prefix is charged cycles.  Each potentially faulting
# site therefore gets its own handler that flushes the registers written
# so far and reports, through ``cpu._trace_fault``, the faulting PC and
# how many of the trace's pre-charged cycles were *not* earned; the
# fused run loop consumes that to settle ``pc`` and ``cycles``.
# ---------------------------------------------------------------------------

_M = "0xFFFFFFFF"

#: ALU semantics as inline expression templates over already-masked
#: 32-bit operands.  ``and/or/xor/shr`` cannot overflow 32 bits, so they
#: skip the re-mask; div/mod are handled separately (fault path).
_ALU_EXPR = {
    "add": "({a} + {b}) & " + _M,
    "sub": "({a} - {b}) & " + _M,
    "mul": "({a} * {b}) & " + _M,
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "shl": "({a} << ({b} & 31)) & " + _M,
    "shr": "{a} >> ({b} & 31)",
}


def _fused_data_fault(cpu, fault, pc, shortfall):
    """Re-raise a data fault from inside a supercell.

    ``shortfall`` is the number of the trace's pre-charged cycles that
    were not executed (instructions past the faulting one); the fused
    run loop subtracts it and rewinds ``cpu.pc`` to ``pc``.
    """
    cpu._trace_fault = (pc, shortfall)
    raise VMFault(fault.kind, pc=pc, addr=fault.addr,
                  detail=fault.detail) from None


def _fused_div_fault(cpu, pc, shortfall):
    cpu._trace_fault = (pc, shortfall)
    raise VMFault(FAULT_DIVZERO, pc=pc) from None


#: Branch predicates as expression templates over the flag value names
#: (mirrors :data:`repro.isa.opcodes.PREDICATE_FUNCS`).
_PRED_EXPR = {
    Op.JE: "{zf}",
    Op.JNE: "not {zf}",
    Op.JL: "{sf}",
    Op.JLE: "({sf} or {zf})",
    Op.JG: "not ({sf} or {zf})",
    Op.JGE: "not {sf}",
    Op.JB: "{cf}",
    Op.JAE: "not {cf}",
}


class _TraceCompiler:
    """Emits the Python source of one supercell."""

    def __init__(self, items: list[tuple[int, Insn]]):
        self.items = items
        self.k = len(items)
        self.lines: list[str] = []
        self._bound: set[int] = set()     # guest regs with a live local
        self._written: set[int] = set()   # locals differing from _regs
        self._flags_local = False         # a CMP put flags in locals
        # Page-probe CSE: cache the last written (writable, dirty) page
        # in `_wi`/`_wp` locals so repeated traffic to the same page —
        # stack pushes, struct fills — skips the region probe and the
        # dirty-bitmap check.  Only worth the init + compare when the
        # trace has enough memory traffic for a second access to hit.
        writes = reads = 0
        for _pc, insn in items:
            op = insn.op
            if op in (Op.STW, Op.STB, Op.PUSHR, Op.PUSHI,
                      Op.CALLI, Op.CALLR):
                writes += 1
            elif op in (Op.LDW, Op.LDB, Op.POPR, Op.RET):
                reads += 1
        self.cse = writes >= 2 or (writes >= 1 and reads >= 1)

    # -- register locals ---------------------------------------------------

    def use(self, reg: int) -> str:
        """Local name for a register read (loads it on first touch)."""
        if reg not in self._bound:
            self.lines.append(f"    r{reg} = _regs[{reg}]")
            self._bound.add(reg)
        return f"r{reg}"

    def define(self, reg: int) -> str:
        """Mark a register as written; its local is flushed at the end
        (and by any later fault handler)."""
        self._bound.add(reg)
        self._written.add(reg)
        return f"r{reg}"

    def flag(self, name: str) -> str:
        """Where the current value of flag ``name`` lives: a local once
        any CMP in this trace has written it, ``cpu.<name>`` before."""
        return f"_{name}" if self._flags_local else f"cpu.{name}"

    # -- state flushes and fault handlers ----------------------------------

    def _flush_lines(self, indent: str) -> list[str]:
        """Statements writing every dirty local (registers, flags) back
        to the architectural state."""
        out = [f"{indent}_regs[{reg}] = r{reg}"
               for reg in sorted(self._written)]
        if self._flags_local:
            out.append(f"{indent}cpu.zf = _zf")
            out.append(f"{indent}cpu.sf = _sf")
            out.append(f"{indent}cpu.cf = _cf")
        return out

    def _handler(self, indent: str, catch: str, raise_stmt: str):
        """An except block flushing the state written *so far*."""
        self.lines.append(f"{indent}except {catch}:")
        self.lines.extend(self._flush_lines(indent + "    "))
        self.lines.append(f"{indent}    {raise_stmt}")

    def data_handler(self, indent: str, pc: int, j: int):
        self._handler(indent, "VMFault as _f",
                      f"_fault(cpu, _f, {pc}, {self.k - j - 1})")

    def div_handler(self, indent: str, pc: int, j: int):
        self._handler(indent, "ZeroDivisionError",
                      f"_divfault(cpu, {pc}, {self.k - j - 1})")

    # -- addressing --------------------------------------------------------

    def addr_expr(self, base: int, disp: int) -> str:
        """Local or temp holding ``(regs[base] + signed(disp)) & mask``.

        With a zero displacement the (invariantly masked) register local
        is used directly; the emitters only read the address before any
        register local could be reassigned, so the alias is safe.
        """
        sdisp = to_signed(disp)
        name = self.use(base)
        if sdisp == 0:
            return name
        self.lines.append(f"    _a = ({name} + {sdisp}) & {_M}")
        return "_a"

    # -- per-opcode emitters ----------------------------------------------

    def emit(self, j: int, pc: int, insn: Insn):
        op = insn.op
        if op is Op.NOP:
            return
        if op is Op.MOVRR:
            rd, rs = insn.operands
            src = self.use(rs)
            self.lines.append(f"    {self.define(rd)} = {src}")
        elif op is Op.MOVRI:
            rd, imm = insn.operands
            self.lines.append(f"    {self.define(rd)} = {imm}")
        elif op in ALU_OPS:
            self._emit_alu(j, pc, insn)
        elif op is Op.CMPRR:
            a = self.use(insn.operands[0])
            b = self.use(insn.operands[1])
            self.lines.append(f"    _zf = {a} == {b}")
            self.lines.append(
                f"    _sf = ({a} ^ 0x80000000) < ({b} ^ 0x80000000)")
            self.lines.append(f"    _cf = {a} < {b}")
            self._flags_local = True
        elif op is Op.CMPRI:
            a = self.use(insn.operands[0])
            imm = insn.operands[1]
            self.lines.append(f"    _zf = {a} == {imm}")
            self.lines.append(
                f"    _sf = ({a} ^ 0x80000000) < {imm ^ 0x80000000}")
            self.lines.append(f"    _cf = {a} < {imm}")
            self._flags_local = True
        elif op is Op.LDW:
            self._emit_ldw(j, pc, insn)
        elif op is Op.LDB:
            self._emit_ldb(j, pc, insn)
        elif op is Op.STW:
            self._emit_stw(j, pc, insn)
        elif op is Op.STB:
            self._emit_stb(j, pc, insn)
        elif op is Op.PUSHR or op is Op.PUSHI:
            self._emit_push(j, pc, insn)
        elif op is Op.POPR:
            self._emit_pop(j, pc, insn)
        else:                                      # pragma: no cover
            raise AssertionError(f"unfusible opcode {op!r} in trace")

    def _emit_alu(self, j: int, pc: int, insn: Insn):
        name = ALU_OPS[insn.op]
        rd = insn.operands[0]
        if OP_SIGNATURES[insn.op] == "rr":
            a = self.use(rd)
            b = self.use(insn.operands[1])
            if name in ("div", "mod"):
                oper = "//" if name == "div" else "%"
                self.lines.append("    try:")
                self.lines.append(f"        r{rd} = {a} {oper} {b}")
                self.div_handler("    ", pc, j)
                self.define(rd)
                return
            expr = _ALU_EXPR[name].format(a=a, b=b)
        else:
            a = self.use(rd)
            imm = insn.operands[1]
            if name in ("div", "mod"):
                if imm == 0:
                    # Constant division by zero: always faults, exactly
                    # as the cell/step paths would.
                    self.lines.extend(self._flush_lines("    "))
                    self.lines.append(
                        f"    _divfault(cpu, {pc}, {self.k - j - 1})")
                    return
                oper = "//" if name == "div" else "%"
                expr = f"{a} {oper} {imm}"
            elif name == "shl":
                expr = f"({a} << {imm & 31}) & {_M}"
            elif name == "shr":
                expr = f"{a} >> {imm & 31}"
            else:
                expr = _ALU_EXPR[name].format(a=a, b=imm)
        self.lines.append(f"    {self.define(rd)} = {expr}")

    def _emit_ldw(self, j: int, pc: int, insn: Insn):
        rd, base, disp = insn.operands
        addr = self.addr_expr(base, disp)
        L = self.lines
        L.append(f"    _i = {addr} >> 12")
        L.append(f"    _o = {addr} & 4095")
        if self.cse:
            L.append("    if _i == _wi and _o <= 4092:")
            L.append(f"        r{rd} = _up(_wp, _o)[0]")
            L.append("    elif _o <= 4092 and _i in _pr:")
        else:
            L.append("    if _o <= 4092 and _i in _pr:")
        L.append("        _p = _pages.get(_i)")
        L.append(f"        r{rd} = 0 if _p is None else _up(_p, _o)[0]")
        L.append("    else:")
        L.append("        try:")
        L.append(f"            r{rd} = _rw({addr})")
        self.data_handler("        ", pc, j)
        self.define(rd)

    def _emit_ldb(self, j: int, pc: int, insn: Insn):
        rd, base, disp = insn.operands
        addr = self.addr_expr(base, disp)
        L = self.lines
        L.append(f"    _i = {addr} >> 12")
        if self.cse:
            L.append("    if _i == _wi:")
            L.append(f"        r{rd} = _wp[{addr} & 4095]")
            L.append("    elif _i in _pr:")
        else:
            L.append("    if _i in _pr:")
        L.append("        _p = _pages.get(_i)")
        L.append(f"        r{rd} = 0 if _p is None else _p[{addr} & 4095]")
        L.append("    else:")
        L.append("        try:")
        L.append(f"            r{rd} = _rdm({addr}, 1)[0]")
        self.data_handler("        ", pc, j)
        self.define(rd)

    def _word_store(self, j: int, pc: int, addr: str, fast_val: str,
                    slow_stmt: str):
        """The probed word store ``mem32[addr] <- val``; ``_i``/``_o``
        must already hold the page index and offset.  With CSE on, a
        store to the cached page skips probe and dirty check; a probe
        miss that lands on a writable page (re)fills the cache — the
        page object is dirty from that point on, so the cached
        reference stays the live page for the rest of the trace."""
        L = self.lines
        if self.cse:
            L.append("    if _i == _wi and _o <= 4092:")
            L.append(f"        _pk(_wp, _o, {fast_val})")
            L.append("    else:")
            L.append("        _rg = _pr.get(_i) if _o <= 4092 else None")
            L.append("        if _rg is not None and _rg.writable:")
            L.append("            _wp = _pages[_i] if _i in _dirty "
                     "else _pfw(_i)")
            L.append("            _wi = _i")
            L.append(f"            _pk(_wp, _o, {fast_val})")
            L.append("        else:")
            L.append("            try:")
            L.append(f"                {slow_stmt}")
            self.data_handler("            ", pc, j)
        else:
            L.append("    _rg = _pr.get(_i) if _o <= 4092 else None")
            L.append("    if _rg is not None and _rg.writable:")
            L.append("        _p = _pages[_i] if _i in _dirty else _pfw(_i)")
            L.append(f"        _pk(_p, _o, {fast_val})")
            L.append("    else:")
            L.append("        try:")
            L.append(f"            {slow_stmt}")
            self.data_handler("        ", pc, j)

    def _emit_stw(self, j: int, pc: int, insn: Insn):
        base, disp, rs = insn.operands
        val = self.use(rs)
        addr = self.addr_expr(base, disp)
        self.lines.append(f"    _i = {addr} >> 12")
        self.lines.append(f"    _o = {addr} & 4095")
        self._word_store(j, pc, addr, f"{val} & {_M}", f"_ww({addr}, {val})")

    def _emit_stb(self, j: int, pc: int, insn: Insn):
        base, disp, rs = insn.operands
        val = self.use(rs)
        addr = self.addr_expr(base, disp)
        L = self.lines
        L.append(f"    _i = {addr} >> 12")
        if self.cse:
            L.append("    if _i == _wi:")
            L.append(f"        _wp[{addr} & 4095] = {val} & 0xFF")
            L.append("    else:")
            L.append("        _rg = _pr.get(_i)")
            L.append("        if _rg is not None and _rg.writable:")
            L.append("            _wp = _pages[_i] if _i in _dirty "
                     "else _pfw(_i)")
            L.append("            _wi = _i")
            L.append(f"            _wp[{addr} & 4095] = {val} & 0xFF")
            L.append("        else:")
            L.append("            try:")
            L.append(f"                _wrm({addr}, bytes(({val} & 0xFF,)))")
            self.data_handler("            ", pc, j)
        else:
            L.append("    _rg = _pr.get(_i)")
            L.append("    if _rg is not None and _rg.writable:")
            L.append("        _p = _pages[_i] if _i in _dirty else _pfw(_i)")
            L.append(f"        _p[{addr} & 4095] = {val} & 0xFF")
            L.append("    else:")
            L.append("        try:")
            L.append(f"            _wrm({addr}, bytes(({val} & 0xFF,)))")
            self.data_handler("        ", pc, j)

    def _emit_push(self, j: int, pc: int, insn: Insn):
        if insn.op is Op.PUSHR:
            rs = insn.operands[0]
            val = self.use(rs)
            if rs == SP:
                # The pushed value is SP *before* the decrement.
                self.lines.append(f"    _v = {val}")
                val = "_v"
        else:
            val = str(insn.operands[0])
        sp = self.use(SP)
        self.lines.append(f"    {self.define(SP)} = ({sp} - 4) & {_M}")
        self.lines.append(f"    _i = r{SP} >> 12")
        self.lines.append(f"    _o = r{SP} & 4095")
        # SP is already in the written set: a faulting PUSH leaves it
        # decremented, exactly like step().
        self._word_store(j, pc, f"r{SP}", f"{val} & {_M}",
                         f"_ww(r{SP}, {val})")

    def _emit_pop(self, j: int, pc: int, insn: Insn):
        rd = insn.operands[0]
        sp = self.use(SP)
        L = self.lines
        L.append(f"    _i = {sp} >> 12")
        L.append(f"    _o = {sp} & 4095")
        if self.cse:
            L.append("    if _i == _wi and _o <= 4092:")
            L.append("        _v = _up(_wp, _o)[0]")
            L.append("    elif _o <= 4092 and _i in _pr:")
        else:
            L.append("    if _o <= 4092 and _i in _pr:")
        L.append("        _p = _pages.get(_i)")
        L.append("        _v = 0 if _p is None else _up(_p, _o)[0]")
        L.append("    else:")
        L.append("        try:")
        L.append(f"            _v = _rw({sp})")
        self.data_handler("        ", pc, j)            # SP untouched yet
        # Increment first, then land the value: bit-exact with step()
        # (and the cell) when rd is SP itself.
        self.lines.append(f"    {self.define(SP)} = ({sp} + 4) & {_M}")
        self.lines.append(f"    {self.define(rd)} = _v")

    # -- block terminators -------------------------------------------------
    #
    # A trace may close with its basic block's control transfer.  The
    # terminator computes the outgoing PC, appends the same control-ring
    # event the per-instruction cell would, and returns — so a whole
    # block is one call.  Flushes happen before the return on every
    # path; ring/call-target bookkeeping only after any stack access
    # succeeded, exactly like the cells.

    def emit_terminator(self, j: int, pc: int, insn: Insn):
        op = insn.op
        if op in _PRED_EXPR:
            target = insn.operands[0]
            pred = _PRED_EXPR[op].format(zf=self.flag("zf"),
                                         sf=self.flag("sf"),
                                         cf=self.flag("cf"))
            self.lines.extend(self._flush_lines("    "))
            self.lines.append(f"    if {pred}:")
            self.lines.append(
                f"        _ring(_EV('branch', {pc}, {target}))")
            self.lines.append(f"        return {target}")
            self.lines.append(f"    return {pc + insn.length}")
        elif op is Op.JMPI:
            target = insn.operands[0]
            self.lines.extend(self._flush_lines("    "))
            self.lines.append(f"    _ring(_EV('branch', {pc}, {target}))")
            self.lines.append(f"    return {target}")
        elif op is Op.JMPR:
            target = self.use(insn.operands[0])
            self.lines.extend(self._flush_lines("    "))
            self.lines.append(f"    _ring(_EV('branch', {pc}, {target}))")
            self.lines.append(f"    return {target}")
        elif op is Op.CALLI or op is Op.CALLR:
            self._emit_call(j, pc, insn)
        elif op is Op.RET:
            self._emit_ret(j, pc, insn)
        else:                                      # pragma: no cover
            raise AssertionError(f"bad terminator {op!r}")

    def _emit_call(self, j: int, pc: int, insn: Insn):
        next_pc = pc + insn.length
        if insn.op is Op.CALLR:
            target = self.use(insn.operands[0])
            if insn.operands[0] == SP:
                self.lines.append(f"    _t = {target}")
                target = "_t"
        else:
            target = str(insn.operands[0])
        sp = self.use(SP)
        self.lines.append(f"    {self.define(SP)} = ({sp} - 4) & {_M}")
        self.lines.append(f"    _i = r{SP} >> 12")
        self.lines.append(f"    _o = r{SP} & 4095")
        # SP stays decremented on a faulting stack store.
        self._word_store(j, pc, f"r{SP}", str(next_pc),
                         f"_ww(r{SP}, {next_pc})")
        self.lines.extend(self._flush_lines("    "))
        self.lines.append(f"    _known({target})")
        self.lines.append(f"    _ring(_EV('call', {pc}, {target}))")
        self.lines.append(f"    return {target}")

    def emit_mid_transfer(self, j: int, pc: int, insn: Insn):
        """A control transfer *inside* an extended trace.

        CFG-driven extension only fuses through transfers whose target
        is statically known to be the next member — immediate jumps and
        direct calls into single-entry functions — so no outgoing PC is
        computed or returned.  Only the architectural side effects
        happen, in cell order: for a jump the ring event; for a call
        the return-address push (SP stays decremented on a faulting
        store, like step()), then known-target bookkeeping and the ring
        event once the store succeeded.
        """
        op = insn.op
        if op is Op.JMPI:
            target = insn.operands[0]
            self.lines.append(f"    _ring(_EV('branch', {pc}, {target}))")
        elif op is Op.CALLI:
            target = insn.operands[0]
            next_pc = pc + insn.length
            sp = self.use(SP)
            self.lines.append(f"    {self.define(SP)} = ({sp} - 4) & {_M}")
            self.lines.append(f"    _i = r{SP} >> 12")
            self.lines.append(f"    _o = r{SP} & 4095")
            self._word_store(j, pc, f"r{SP}", str(next_pc),
                             f"_ww(r{SP}, {next_pc})")
            self.lines.append(f"    _known({target})")
            self.lines.append(f"    _ring(_EV('call', {pc}, {target}))")
        else:                                      # pragma: no cover
            raise AssertionError(f"unfusible mid-trace transfer {op!r}")

    def _emit_ret(self, j: int, pc: int, insn: Insn):
        sp = self.use(SP)
        L = self.lines
        L.append(f"    _i = {sp} >> 12")
        L.append(f"    _o = {sp} & 4095")
        if self.cse:
            L.append("    if _i == _wi and _o <= 4092:")
            L.append("        _t = _up(_wp, _o)[0]")
            L.append("    elif _o <= 4092 and _i in _pr:")
        else:
            L.append("    if _o <= 4092 and _i in _pr:")
        L.append("        _p = _pages.get(_i)")
        L.append("        _t = 0 if _p is None else _up(_p, _o)[0]")
        L.append("    else:")
        L.append("        try:")
        L.append(f"            _t = _rw({sp})")
        self.data_handler("        ", pc, j)       # SP untouched yet
        self.lines.append(f"    {self.define(SP)} = ({sp} + 4) & {_M}")
        self.lines.extend(self._flush_lines("    "))
        self.lines.append(f"    _ring(_EV('ret', {pc}, _t))")
        self.lines.append("    return _t")

    # -- assembly ----------------------------------------------------------

    def source(self) -> str:
        if self.cse:
            self.lines.append("    _wi = -1")
        last_j = self.k - 1
        last_pc, last_insn = self.items[last_j]
        terminated = last_insn.op in CONTROL_TRANSFER_OPS
        straight = self.items[:-1] if terminated else self.items
        for j, (pc, insn) in enumerate(straight):
            if insn.op in CONTROL_TRANSFER_OPS:
                self.emit_mid_transfer(j, pc, insn)
            else:
                self.emit(j, pc, insn)
        if terminated:
            self.emit_terminator(last_j, last_pc, last_insn)
        else:
            self.lines.extend(self._flush_lines("    "))
            self.lines.append(f"    return {last_pc + last_insn.length}")
        header = ("def _trace(cpu, _regs=_REGS, _pages=_PAGES, _pr=_PR, "
                  "_dirty=_DIRTY, _pfw=_PFW, _rw=_RW, _ww=_WW, _rdm=_RDM, "
                  "_wrm=_WRM, _ring=_RING, _known=_KNOWN, _EV=_EVC, "
                  "_up=_UP, _pk=_PK):")
        return header + "\n" + "\n".join(self.lines)


def compile_trace(cpu, items: list[tuple[int, Insn]]) -> Cell | None:
    """Compile a run of predecoded instructions into one supercell:
    ``fn(cpu) -> next_pc`` executing the whole run.

    ``items`` is the ordered ``(pc, insn)`` list: fusible
    (straight-line) opcodes, optionally closed by the block's control
    transfer as the final item.  A run need not be address-contiguous:
    CFG-driven extension may splice in an immediate jump or a direct
    call whose *next member is its static target* (unconditional
    ``JMPI``, ``CALLI`` into a single-entry function) — those mid-trace
    transfers emit their architectural side effects and fall through
    into the inlined target.  Like cells, the generated function
    captures the per-process containers (register file, page table,
    page-region index, dirty bitmap, control ring) by identity, so
    snapshot/restore keeps it valid; code *content* changes must drop
    it (see ``CPU.invalidate_code``).
    """
    if len(items) < 2:
        return None
    memory = cpu.memory
    namespace = {
        "_REGS": cpu.regs,
        "_PAGES": memory._pages,
        "_PR": memory._page_region,
        "_DIRTY": memory._dirty,
        "_PFW": memory._page_for_write,
        "_RW": memory.read_word,
        "_WW": memory.write_word,
        "_RDM": memory.read,
        "_WRM": memory.write,
        "_RING": cpu.control_ring.append,
        "_KNOWN": cpu.known_call_targets.add,
        "_EVC": type(cpu).CONTROL_EVENT,
        "_UP": u32_get,
        "_PK": u32_put,
        "VMFault": VMFault,
        "_fault": _fused_data_fault,
        "_divfault": _fused_div_fault,
    }
    exec(_TraceCompiler(items).source(), namespace)
    return namespace["_trace"]
