"""Executable-form instruction cells: the predecoded fast path.

The batched CPU loop executes read-only code through *cells*: one
closure per instruction address, compiled once when the instruction is
first decoded.  A cell has its operands unpacked, its ALU/predicate
function bound, its signed displacement pre-converted and its fall-through
address precomputed, so executing it is a single call that returns the
next program counter.  Cells contain **no** instrumentation calls, no
pre-check probes and no cycle bookkeeping — the batched loop accounts one
cycle per cell call and only runs cells while no tool or VSEF needs the
slow path.  This is how the common case ("no deployed analysis") gets
paper-grade (~0%) instrumentation cost without losing any of it when a
tool attaches.

Semantics are bit-for-bit those of :meth:`repro.machine.cpu.CPU.step`:
identical register/flag/memory updates, identical fault kinds and fault
PCs, identical control-ring events and identical cycle counts.  The
differential tests in ``tests/test_fastpath_differential.py`` hold the
two paths to that contract.

``SYS`` and ``HALT`` are deliberately *not* compiled: they re-enter the
runtime (syscall dispatch, process exit) and fall back to the general
``step()`` path, as does any address that is not read-only code.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import FAULT_DIVZERO, VMFault
from repro.isa.encoding import Insn
from repro.isa.opcodes import (ALU_FUNCS, ALU_OPS, OP_SIGNATURES,
                               PREDICATE_FUNCS, SP, Op, to_signed)
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE

WORD_MASK = 0xFFFFFFFF
_SIGN_BIT = 0x80000000

#: ``fn(cpu) -> next_pc``; raises the same exceptions ``step()`` would.
Cell = Callable[["object"], int]

_FACTORIES: dict[Op, Callable] = {}


def _factory(*ops: Op):
    def register(fn):
        for op in ops:
            _FACTORIES[op] = fn
        return fn
    return register


def compile_cell(cpu, pc: int, insn: Insn) -> Cell | None:
    """Compile ``insn`` at ``pc`` into an executable cell for ``cpu``.

    Returns ``None`` for opcodes that must take the general path.  The
    closure captures stable per-process objects (the register file, the
    bound memory accessors, the control ring), which is why
    ``CPU.restore_state`` mutates those objects in place rather than
    replacing them.
    """
    factory = _FACTORIES.get(insn.op)
    if factory is None:
        return None
    return factory(cpu, pc, insn)


# ---------------------------------------------------------------------------
# Data movement and ALU
# ---------------------------------------------------------------------------

def _alu_factory(cpu, pc: int, insn: Insn):
    fn = ALU_FUNCS[ALU_OPS[insn.op]]
    regs = cpu.regs
    next_pc = pc + insn.length
    rd = insn.operands[0]
    if OP_SIGNATURES[insn.op] == "rr":
        rs = insn.operands[1]

        def run(cpu):
            try:
                regs[rd] = fn(regs[rd], regs[rs]) & WORD_MASK
            except ZeroDivisionError:
                raise VMFault(FAULT_DIVZERO, pc=pc) from None
            return next_pc
    else:
        imm = insn.operands[1]

        def run(cpu):
            try:
                regs[rd] = fn(regs[rd], imm) & WORD_MASK
            except ZeroDivisionError:
                raise VMFault(FAULT_DIVZERO, pc=pc) from None
            return next_pc
    return run


for _op in ALU_OPS:
    _FACTORIES[_op] = _alu_factory


@_factory(Op.MOVRR)
def _movrr(cpu, pc, insn):
    regs = cpu.regs
    rd, rs = insn.operands
    next_pc = pc + insn.length

    def run(cpu):
        regs[rd] = regs[rs]
        return next_pc
    return run


@_factory(Op.MOVRI)
def _movri(cpu, pc, insn):
    regs = cpu.regs
    rd, imm = insn.operands
    next_pc = pc + insn.length

    def run(cpu):
        regs[rd] = imm
        return next_pc
    return run


@_factory(Op.NOP)
def _nop(cpu, pc, insn):
    next_pc = pc + insn.length

    def run(cpu):
        return next_pc
    return run


# ---------------------------------------------------------------------------
# Memory access
#
# Loads/stores (and the stack traffic of CALL/RET/PUSH/POP below) inline
# the single-page access path: one shift/mask for the page index, one
# dict probe for the owning region, one dirty-bitmap probe for writes.
# Anything irregular — page-straddling access, unmapped/NULL/read-only
# target, first write to a frozen page — drops to the PagedMemory slow
# path, which re-runs full checking and raises the canonical faults.
# The captured containers (page table, page-region index, dirty bitmap)
# are mutated in place by snapshot/restore, never replaced.
# ---------------------------------------------------------------------------

_PAGE_SHIFT = PAGE_SHIFT
_PAGE_MASK = PAGE_SIZE - 1
_WORD_FIT = PAGE_SIZE - 4


def _reraise_data_fault(fault: VMFault, pc: int):
    raise VMFault(fault.kind, pc=pc, addr=fault.addr,
                  detail=fault.detail) from None


@_factory(Op.LDW)
def _ldw(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    read_word = memory.read_word
    rd, base, disp = insn.operands
    disp = to_signed(disp)
    next_pc = pc + insn.length

    def run(cpu):
        addr = (regs[base] + disp) & WORD_MASK
        offset = addr & _PAGE_MASK
        index = addr >> _PAGE_SHIFT
        if offset <= _WORD_FIT and index in page_region:
            page = pages.get(index)
            regs[rd] = 0 if page is None else \
                int.from_bytes(page[offset:offset + 4], "little")
            return next_pc
        try:
            regs[rd] = read_word(addr)
        except VMFault as fault:
            _reraise_data_fault(fault, pc)
        return next_pc
    return run


@_factory(Op.LDB)
def _ldb(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    read = memory.read
    rd, base, disp = insn.operands
    disp = to_signed(disp)
    next_pc = pc + insn.length

    def run(cpu):
        addr = (regs[base] + disp) & WORD_MASK
        index = addr >> _PAGE_SHIFT
        if index in page_region:
            page = pages.get(index)
            regs[rd] = 0 if page is None else page[addr & _PAGE_MASK]
            return next_pc
        try:
            regs[rd] = read(addr, 1)[0]
        except VMFault as fault:
            _reraise_data_fault(fault, pc)
        return next_pc
    return run


@_factory(Op.STW)
def _stw(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    dirty = memory._dirty
    page_for_write = memory._page_for_write
    write_word = memory.write_word
    base, disp, rs = insn.operands
    disp = to_signed(disp)
    next_pc = pc + insn.length

    def run(cpu):
        addr = (regs[base] + disp) & WORD_MASK
        offset = addr & _PAGE_MASK
        index = addr >> _PAGE_SHIFT
        if offset <= _WORD_FIT:
            region = page_region.get(index)
            if region is not None and region.writable:
                page = pages[index] if index in dirty else \
                    page_for_write(index)
                page[offset:offset + 4] = \
                    (regs[rs] & WORD_MASK).to_bytes(4, "little")
                return next_pc
        try:
            write_word(addr, regs[rs])
        except VMFault as fault:
            _reraise_data_fault(fault, pc)
        return next_pc
    return run


@_factory(Op.STB)
def _stb(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    dirty = memory._dirty
    page_for_write = memory._page_for_write
    write = memory.write
    base, disp, rs = insn.operands
    disp = to_signed(disp)
    next_pc = pc + insn.length

    def run(cpu):
        addr = (regs[base] + disp) & WORD_MASK
        index = addr >> _PAGE_SHIFT
        region = page_region.get(index)
        if region is not None and region.writable:
            page = pages[index] if index in dirty else page_for_write(index)
            page[addr & _PAGE_MASK] = regs[rs] & 0xFF
            return next_pc
        try:
            write(addr, bytes([regs[rs] & 0xFF]))
        except VMFault as fault:
            _reraise_data_fault(fault, pc)
        return next_pc
    return run


# ---------------------------------------------------------------------------
# Flags and control transfer
# ---------------------------------------------------------------------------

@_factory(Op.CMPRR)
def _cmprr(cpu, pc, insn):
    regs = cpu.regs
    r1, r2 = insn.operands
    next_pc = pc + insn.length

    def run(cpu):
        a = regs[r1]
        b = regs[r2]
        cpu.zf = a == b
        # Biased compare == signed compare for 32-bit two's complement.
        cpu.sf = (a ^ _SIGN_BIT) < (b ^ _SIGN_BIT)
        cpu.cf = a < b
        return next_pc
    return run


@_factory(Op.CMPRI)
def _cmpri(cpu, pc, insn):
    regs = cpu.regs
    r1, imm = insn.operands
    biased_imm = imm ^ _SIGN_BIT
    next_pc = pc + insn.length

    def run(cpu):
        a = regs[r1]
        cpu.zf = a == imm
        cpu.sf = (a ^ _SIGN_BIT) < biased_imm
        cpu.cf = a < imm
        return next_pc
    return run


@_factory(Op.JMPI)
def _jmpi(cpu, pc, insn):
    ring = cpu.control_ring
    event_cls = type(cpu).CONTROL_EVENT
    target = insn.operands[0]

    def run(cpu):
        ring.append(event_cls("branch", pc, target))
        return target
    return run


@_factory(Op.JMPR)
def _jmpr(cpu, pc, insn):
    regs = cpu.regs
    ring = cpu.control_ring
    event_cls = type(cpu).CONTROL_EVENT
    rs = insn.operands[0]

    def run(cpu):
        target = regs[rs]
        ring.append(event_cls("branch", pc, target))
        return target
    return run


def _cond_factory(cpu, pc: int, insn: Insn):
    pred = PREDICATE_FUNCS[insn.op]
    ring = cpu.control_ring
    event_cls = type(cpu).CONTROL_EVENT
    target = insn.operands[0]
    next_pc = pc + insn.length

    def run(cpu):
        if pred(cpu.zf, cpu.sf, cpu.cf):
            ring.append(event_cls("branch", pc, target))
            return target
        return next_pc
    return run


for _op in PREDICATE_FUNCS:
    _FACTORIES[_op] = _cond_factory


def _call_factory(cpu, pc: int, insn: Insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    dirty = memory._dirty
    page_for_write = memory._page_for_write
    write_word = memory.write_word
    ring = cpu.control_ring
    event_cls = type(cpu).CONTROL_EVENT
    known = cpu.known_call_targets
    indirect = insn.op == Op.CALLR
    operand = insn.operands[0]
    next_pc = pc + insn.length
    return_bytes = next_pc.to_bytes(4, "little")

    def run(cpu):
        target = regs[operand] if indirect else operand
        sp = (regs[SP] - 4) & WORD_MASK
        regs[SP] = sp
        offset = sp & _PAGE_MASK
        index = sp >> _PAGE_SHIFT
        region = page_region.get(index)
        if offset <= _WORD_FIT and region is not None and region.writable:
            page = pages[index] if index in dirty else page_for_write(index)
            page[offset:offset + 4] = return_bytes
        else:
            try:
                write_word(sp, next_pc)
            except VMFault as fault:
                _reraise_data_fault(fault, pc)
        known.add(target)
        ring.append(event_cls("call", pc, target))
        return target
    return run


_FACTORIES[Op.CALLI] = _call_factory
_FACTORIES[Op.CALLR] = _call_factory


@_factory(Op.RET)
def _ret(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    read_word = memory.read_word
    ring = cpu.control_ring
    event_cls = type(cpu).CONTROL_EVENT

    def run(cpu):
        sp = regs[SP]
        offset = sp & _PAGE_MASK
        index = sp >> _PAGE_SHIFT
        if offset <= _WORD_FIT and index in page_region:
            page = pages.get(index)
            target = 0 if page is None else \
                int.from_bytes(page[offset:offset + 4], "little")
        else:
            try:
                target = read_word(sp)
            except VMFault as fault:
                _reraise_data_fault(fault, pc)
        regs[SP] = (sp + 4) & WORD_MASK
        ring.append(event_cls("ret", pc, target))
        return target
    return run


@_factory(Op.PUSHR, Op.PUSHI)
def _push(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    dirty = memory._dirty
    page_for_write = memory._page_for_write
    write_word = memory.write_word
    from_reg = insn.op == Op.PUSHR
    operand = insn.operands[0]
    next_pc = pc + insn.length

    def run(cpu):
        value = regs[operand] if from_reg else operand
        sp = (regs[SP] - 4) & WORD_MASK
        regs[SP] = sp
        offset = sp & _PAGE_MASK
        index = sp >> _PAGE_SHIFT
        region = page_region.get(index)
        if offset <= _WORD_FIT and region is not None and region.writable:
            page = pages[index] if index in dirty else page_for_write(index)
            page[offset:offset + 4] = (value & WORD_MASK).to_bytes(4, "little")
        else:
            try:
                write_word(sp, value)
            except VMFault as fault:
                _reraise_data_fault(fault, pc)
        return next_pc
    return run


@_factory(Op.POPR)
def _popr(cpu, pc, insn):
    regs = cpu.regs
    memory = cpu.memory
    pages = memory._pages
    page_region = memory._page_region
    read_word = memory.read_word
    rd = insn.operands[0]
    next_pc = pc + insn.length

    def run(cpu):
        sp = regs[SP]
        offset = sp & _PAGE_MASK
        index = sp >> _PAGE_SHIFT
        if offset <= _WORD_FIT and index in page_region:
            page = pages.get(index)
            value = 0 if page is None else \
                int.from_bytes(page[offset:offset + 4], "little")
        else:
            try:
                value = read_word(sp)
            except VMFault as fault:
                _reraise_data_fault(fault, pc)
        # Order matters when rd is SP itself: the increment happens
        # first, then the popped value lands, exactly as step() does.
        regs[SP] = (sp + 4) & WORD_MASK
        regs[rd] = value
        return next_pc
    return run


#: Opcodes that compile to cells (everything except SYS/HALT).
COMPILABLE_OPS = frozenset(_FACTORIES)
