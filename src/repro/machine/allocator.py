"""Boundary-tagged heap allocator with **in-memory** metadata.

The paper's memory-bug detector deliberately reuses "malloc()'s own inline
data structures" as red zones (§3.2), and its double-free crash manifests
*inside* ``free`` with an inconsistent heap (Table 2, CVS row).  To make
both behaviours faithful, the allocator here keeps every piece of state —
brk pointer, free list head, block headers — inside guest memory:

- rollback to a memory snapshot restores the heap with no extra work;
- heap-overflow exploits physically clobber the next block's header, so a
  later ``malloc``/``free`` faults with "heap inconsistent";
- a double ``free`` follows the (attacker-controlled) free-list link in
  the payload, modelling the glibc unlink dereference, and usually SEGVs
  right inside ``free``;
- the core-dump analyzer and the membug detector can walk the heap from
  a bare memory image, which is what lets them start *mid-execution*.

Layout within the heap region::

    heap_base + 0   brk          (absolute address of first unused byte)
    heap_base + 4   free head    (header address of first free block, 0=none)
    heap_base + 8   init magic
    heap_base + 12  mmap bump    (next address for large "mmap" allocations)
    heap_base + 16  first block header

Block: ``[magic:4][size:4][status:4]`` then ``size`` payload bytes.
A free block's first payload word is the next-free link.

Like glibc, requests of ``MMAP_THRESHOLD`` bytes or more are satisfied
from separately mapped regions far above the main arena, with a guard
gap between them.  This matters for fidelity: in the Squid exploit the
huge escape buffer is mmap'd away, so the overflowing ``strcat`` runs
off the end of the *main arena's* mapping and faults right inside
``strcat`` — the paper's observed crash site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import FAULT_SEGV, VMFault
from repro.machine.memory import PagedMemory

HEADER_SIZE = 12
BLOCK_MAGIC = 0x5AFEB10C
STATUS_ALLOCATED = 0xA110C8ED
STATUS_FREE = 0xF9EEF9EE
INIT_MAGIC = 0x48454150  # "HEAP"
_ARENA_HEADER = 16
_MIN_SPLIT = 16
#: Allocations at or above this size come from separate mappings (glibc's
#: M_MMAP_THRESHOLD behaviour, scaled to our small pages).
MMAP_THRESHOLD = 4096
#: Distance from the arena base to the first mmap'd allocation.
_MMAP_AREA_OFFSET = 0x01000000
_MMAP_GUARD = 4096


@dataclass(frozen=True)
class Block:
    """A decoded block header."""

    header: int          # address of the header
    size: int            # payload size in bytes
    status: int          # STATUS_ALLOCATED / STATUS_FREE / garbage
    magic: int

    @property
    def payload(self) -> int:
        return self.header + HEADER_SIZE

    @property
    def end(self) -> int:
        return self.payload + self.size

    @property
    def consistent(self) -> bool:
        return self.magic == BLOCK_MAGIC and self.status in (
            STATUS_ALLOCATED, STATUS_FREE)


class HeapCorruption(VMFault):
    """Heap metadata found corrupt while ``malloc``/``free`` walked it.

    This is the "crash inside the library with an inconsistent heap" that
    the paper's lightweight monitor observes for heap-overflow and
    double-free exploits.
    """

    def __init__(self, addr: int, detail: str):
        super().__init__(FAULT_SEGV, pc=-1, addr=addr, detail=detail)


class Allocator:
    """First-fit free-list allocator operating on guest memory.

    The class itself is stateless between calls; everything lives in the
    ``heap`` region of ``memory``.
    """

    def __init__(self, memory: PagedMemory, heap_base: int):
        self.memory = memory
        self.heap_base = heap_base

    # -- metadata accessors --------------------------------------------------

    @property
    def brk(self) -> int:
        return self.memory.read_word(self.heap_base)

    @brk.setter
    def brk(self, value: int):
        self.memory.write_word(self.heap_base, value)

    @property
    def free_head(self) -> int:
        return self.memory.read_word(self.heap_base + 4)

    @free_head.setter
    def free_head(self, value: int):
        self.memory.write_word(self.heap_base + 4, value)

    @property
    def initialized(self) -> bool:
        return self.memory.read_word(self.heap_base + 8) == INIT_MAGIC

    def initialize(self):
        """Set up an empty arena (called once by the loader)."""
        self.brk = self.heap_base + _ARENA_HEADER
        self.free_head = 0
        self.memory.write_word(self.heap_base + 8, INIT_MAGIC)
        self.memory.write_word(self.heap_base + 12,
                               self.heap_base + _MMAP_AREA_OFFSET)

    def read_block(self, header: int) -> Block:
        return Block(header=header,
                     magic=self.memory.read_word(header),
                     size=self.memory.read_word(header + 4),
                     status=self.memory.read_word(header + 8))

    def _write_block(self, header: int, size: int, status: int):
        self.memory.write_word(header, BLOCK_MAGIC)
        self.memory.write_word(header + 4, size)
        self.memory.write_word(header + 8, status)

    # -- allocation -----------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the payload address (0 for 0)."""
        if size <= 0:
            return 0
        size = (size + 3) & ~3
        if size >= MMAP_THRESHOLD:
            return self._mmap_alloc(size)
        payload = self._take_from_free_list(size)
        if payload:
            return payload
        header = self.brk
        needed_end = header + HEADER_SIZE + size
        heap_region = self.memory.region_named("heap")
        if needed_end > heap_region.end:
            self.memory.extend_region("heap", needed_end)
        self._write_block(header, size, STATUS_ALLOCATED)
        self.brk = needed_end
        return header + HEADER_SIZE

    def _mmap_alloc(self, size: int) -> int:
        """Satisfy a large request from its own mapping (glibc mmap path)."""
        bump = self.memory.read_word(self.heap_base + 12)
        total = HEADER_SIZE + size
        region_name = f"mmap_{bump:#x}"
        self.memory.map_region(region_name, bump, total)
        self._write_block(bump, size, STATUS_ALLOCATED)
        next_bump = bump + _round_to_page(total) + _MMAP_GUARD
        self.memory.write_word(self.heap_base + 12, next_bump)
        return bump + HEADER_SIZE

    def _take_from_free_list(self, size: int) -> int:
        previous = 0
        cursor = self.free_head
        hops = 0
        while cursor:
            hops += 1
            if hops > 1_000_000:
                raise HeapCorruption(cursor, "free list cycle")
            block = self.read_block(cursor)
            if block.magic != BLOCK_MAGIC:
                raise HeapCorruption(
                    cursor, f"bad magic {block.magic:#x} on free list")
            next_free = self.memory.read_word(block.payload)
            if block.size >= size:
                self._unlink(previous, next_free)
                self._maybe_split(block, size)
                self.memory.write_word(block.header + 8, STATUS_ALLOCATED)
                return block.payload
            previous = cursor
            cursor = next_free
        return 0

    def _unlink(self, previous: int, next_free: int):
        if previous:
            self.memory.write_word(previous + HEADER_SIZE, next_free)
        else:
            self.free_head = next_free

    def _maybe_split(self, block: Block, size: int):
        remainder = block.size - size
        if remainder < HEADER_SIZE + _MIN_SPLIT:
            return
        tail_header = block.payload + size
        self._write_block(tail_header, remainder - HEADER_SIZE, STATUS_FREE)
        self.memory.write_word(tail_header + HEADER_SIZE, self.free_head)
        self.free_head = tail_header
        self.memory.write_word(block.header + 4, size)

    def free(self, payload: int):
        """Free a payload pointer.

        Faithfully dangerous: corrupted headers raise
        :class:`HeapCorruption` (crash inside ``free``), and freeing an
        already-free block dereferences the attacker-controlled free-list
        link in the payload — the glibc-unlink behaviour double-free
        exploits rely on — before corrupting the free list.
        """
        if payload == 0:
            return
        header = payload - HEADER_SIZE
        block = self.read_block(header)
        if block.magic != BLOCK_MAGIC:
            raise HeapCorruption(
                header, f"free() of block with bad magic {block.magic:#x}")
        if block.status == STATUS_FREE:
            # Double free: treat the payload as a free-list node and chase
            # its link, as glibc's unlink would.  With an attacker-supplied
            # payload this is a wild dereference -> SEGV inside free().
            stale_link = self.memory.read_word(payload)
            self.memory.read_word(stale_link)    # likely faults (SEGV)
            # If the wild read happened to hit mapped memory, fall through
            # and corrupt the free list exactly like the real bug would.
        elif block.status != STATUS_ALLOCATED:
            raise HeapCorruption(
                header, f"free() of block with bad status {block.status:#x}")
        self.memory.write_word(header + 8, STATUS_FREE)
        if self._is_mmap_block(header):
            # glibc would munmap; keeping the (now FREE) mapping around
            # preserves snapshot simplicity while still catching double
            # frees through the status check above.
            return
        self.memory.write_word(payload, self.free_head)
        self.free_head = header

    # -- introspection (used by the analysis tools) ----------------------------

    def walk(self) -> Iterator[Block]:
        """Iterate blocks from the arena start; stops at the first
        inconsistent header (the caller decides what that means)."""
        cursor = self.heap_base + _ARENA_HEADER
        brk = self.brk
        while cursor < brk:
            block = self.read_block(cursor)
            yield block
            if not block.consistent or block.size > brk - cursor:
                return
            cursor = block.end

    def check_consistency(self) -> list[str]:
        """Return a list of problems found walking the heap (empty = ok).

        Checks both the linear arena walk (clobbered headers from
        overflows) and the free list (stale/planted links from
        use-after-free writes, the CVS-style corruption).
        """
        problems = []
        last_end = self.heap_base + _ARENA_HEADER
        for block in self.walk():
            if block.magic != BLOCK_MAGIC:
                problems.append(
                    f"bad magic {block.magic:#x} at {block.header:#010x}")
                return problems
            if block.status not in (STATUS_ALLOCATED, STATUS_FREE):
                problems.append(
                    f"bad status {block.status:#x} at {block.header:#010x}")
                return problems
            last_end = block.end
        if last_end != self.brk:
            problems.append(
                f"arena ends at {last_end:#010x} but brk={self.brk:#010x}")
        problems.extend(self._check_free_list())
        return problems

    def _check_free_list(self) -> list[str]:
        cursor = self.free_head
        seen: set[int] = set()
        while cursor:
            if cursor in seen:
                return [f"free list cycle through {cursor:#010x}"]
            seen.add(cursor)
            try:
                block = self.read_block(cursor)
                link = self.memory.read_word(block.payload)
            except VMFault:
                return [f"free list link {cursor:#010x} is unmapped"]
            if block.magic != BLOCK_MAGIC or block.status != STATUS_FREE:
                return [f"free list node {cursor:#010x} is not a free "
                        f"block (status {block.status:#x})"]
            cursor = link
        return []

    def live_blocks(self) -> list[Block]:
        """Allocated blocks inferred from the memory image alone.

        This is how the membug detector seeds its red zones when attached
        mid-execution ("buffers allocated prior to the checkpoint are
        inferred from the memory image", §3.2).
        """
        return [b for b in self.walk()
                if b.consistent and b.status == STATUS_ALLOCATED]

    def block_containing(self, addr: int) -> Block | None:
        """The block whose payload (or header) covers ``addr``, if any."""
        for block in self.walk():
            if not block.consistent:
                return None
            if block.header <= addr < block.end:
                return block
        return None

    def block_containing_any(self, addr: int) -> Block | None:
        """Like :meth:`block_containing`, but also resolves blocks that
        live in their own mmap regions (large allocations)."""
        region = self.memory.region_at(addr)
        if region is not None and region.name.startswith("mmap_"):
            block = self.read_block(region.start)
            if block.consistent and block.header <= addr < block.end:
                return block
            return None
        return self.block_containing(addr)

    def _is_mmap_block(self, header: int) -> bool:
        return header >= self.heap_base + _MMAP_AREA_OFFSET


def _round_to_page(size: int) -> int:
    return (size + 4095) & ~4095
