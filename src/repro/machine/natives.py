"""Native "libc" routines mapped into the guest's library region.

The protected servers call these the way real servers call glibc.  Each
native executes with the guest's program counter set to its own library
address, performs its work through byte-granular guest-memory operations
that fire instrumentation hooks, and charges virtual cycles proportional
to the bytes it touches.  Consequences that matter for fidelity:

- an overflowing ``strcat`` writes real bytes until it runs off the
  mapped heap, faulting *at strcat's library address* with the partial
  overflow already in memory (Table 2's Squid row);
- a double ``free`` chases the stale free-list link and faults *at free's
  library address* with an inconsistent heap (Table 2's CVS row);
- the memory-bug and taint tools observe every byte a native moves, so
  analysis attributes blame to the library callsite plus the application
  caller, exactly like the paper's ``strcat called by ftpBuildTitleUrl``.

The two addresses quoted in the paper are preserved at reference layout:
``strcat = 0x4f0f0907`` and ``free = 0x4f0eaaa0``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import VMFault
from repro.machine.allocator import Allocator

#: Library-region offsets for every native.  Stable across runs; the
#: loader adds the (randomized) lib base.
NATIVE_OFFSETS: dict[str, int] = {
    "malloc": 0xEA100,
    "calloc": 0xEA300,
    "realloc": 0xEA500,
    "free": 0xEAAA0,     # paper: 0x4f0eaaa0 at reference layout
    "strlen": 0xF0100,
    "strcpy": 0xF0200,
    "strncpy": 0xF0300,
    "strncat": 0xF0500,
    "memcpy": 0xF0600,
    "memset": 0xF0700,
    "strcmp": 0xF0800,
    "strcat": 0xF0907,   # paper: 0x4f0f0907 at reference layout
    "strncmp": 0xF0A00,
    "strchr": 0xF0B00,
    "atoi": 0xF0C00,
    "itoa": 0xF0D00,
    "strstr": 0xF0E00,
}

_MAX_CSTR = 1 << 20


class NativeContext:
    """Execution context handed to a native routine.

    Wraps guest memory so that every access fires hooks with the native's
    own library address as the reporting PC, and exposes the application
    caller's return address for blame attribution.
    """

    def __init__(self, process, pc: int, name: str):
        self.process = process
        self.cpu = process.cpu
        self.memory = process.memory
        self.allocator: Allocator = process.allocator
        self.pc = pc
        self.name = name
        self.hooks = process.hooks
        #: Return address of the application call into this native.
        self.caller = self.memory.read_word(self.cpu.regs[8])  # [sp]

    def arg(self, index: int) -> int:
        return self.cpu.regs[index]

    def cycles(self, amount: int):
        self.cpu.cycles += amount

    # -- hooked memory operations ------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        data = self.memory.read(addr, size)
        self.hooks.sink.mem_read(self.pc, addr, size)
        return data

    def write(self, addr: int, data: bytes):
        """A write of constant / computed bytes (not a byte-copy)."""
        self.memory.write(addr, data)
        self.hooks.sink.mem_write(self.pc, addr, len(data), data)

    def copy_byte(self, dst: int, src: int):
        """Copy one byte preserving provenance (taint flows through it)."""
        value = self.memory.read(src, 1)
        sink = self.hooks.sink
        sink.mem_read(self.pc, src, 1)
        sink.mem_copy(self.pc, dst, src, 1)
        self.memory.write(dst, value)

    def cstrlen(self, addr: int) -> int:
        """Length of the NUL-terminated string at ``addr`` (hooked reads)."""
        length = 0
        while length < _MAX_CSTR:
            byte = self.memory.read(addr + length, 1)[0]
            self.hooks.sink.mem_read(self.pc, addr + length, 1)
            if byte == 0:
                return length
            length += 1
        raise VMFault("SEGV", pc=self.pc, addr=addr,
                      detail="unterminated string")


NativeFn = Callable[[NativeContext], int]
NATIVES: dict[str, NativeFn] = {}


def native(name: str):
    def register(fn: NativeFn) -> NativeFn:
        NATIVES[name] = fn
        return fn
    return register


# ---------------------------------------------------------------------------
# String routines
# ---------------------------------------------------------------------------

@native("strlen")
def _strlen(ctx: NativeContext) -> int:
    length = ctx.cstrlen(ctx.arg(0))
    ctx.cycles(length + 1)
    return length


@native("strcpy")
def _strcpy(ctx: NativeContext) -> int:
    dst, src = ctx.arg(0), ctx.arg(1)
    offset = 0
    while True:
        byte = ctx.memory.read(src + offset, 1)[0]
        ctx.copy_byte(dst + offset, src + offset)
        if byte == 0:
            break
        offset += 1
    ctx.cycles(offset + 1)
    return dst


@native("strncpy")
def _strncpy(ctx: NativeContext) -> int:
    dst, src, limit = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    offset = 0
    terminated = False
    while offset < limit:
        if not terminated:
            byte = ctx.memory.read(src + offset, 1)[0]
            ctx.copy_byte(dst + offset, src + offset)
            if byte == 0:
                terminated = True
        else:
            ctx.write(dst + offset, b"\x00")
        offset += 1
    ctx.cycles(limit + 1)
    return dst


@native("strcat")
def _strcat(ctx: NativeContext) -> int:
    """The unbounded strcat the Squid exploit (CVE-2002-0068) abuses."""
    dst, src = ctx.arg(0), ctx.arg(1)
    dst_len = ctx.cstrlen(dst)
    offset = 0
    while True:
        byte = ctx.memory.read(src + offset, 1)[0]
        ctx.copy_byte(dst + dst_len + offset, src + offset)
        if byte == 0:
            break
        offset += 1
    ctx.cycles(dst_len + offset + 2)
    return dst


@native("strncat")
def _strncat(ctx: NativeContext) -> int:
    dst, src, limit = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    dst_len = ctx.cstrlen(dst)
    offset = 0
    while offset < limit:
        byte = ctx.memory.read(src + offset, 1)[0]
        if byte == 0:
            break
        ctx.copy_byte(dst + dst_len + offset, src + offset)
        offset += 1
    ctx.write(dst + dst_len + offset, b"\x00")
    ctx.cycles(dst_len + offset + 2)
    return dst


@native("memcpy")
def _memcpy(ctx: NativeContext) -> int:
    dst, src, size = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    for offset in range(size):
        ctx.copy_byte(dst + offset, src + offset)
    ctx.cycles(size + 1)
    return dst


@native("memset")
def _memset(ctx: NativeContext) -> int:
    dst, value, size = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    if size:
        ctx.write(dst, bytes([value & 0xFF]) * size)
    ctx.cycles(size + 1)
    return dst


@native("strcmp")
def _strcmp(ctx: NativeContext) -> int:
    return _compare(ctx, ctx.arg(0), ctx.arg(1), None)


@native("strncmp")
def _strncmp(ctx: NativeContext) -> int:
    return _compare(ctx, ctx.arg(0), ctx.arg(1), ctx.arg(2))


def _compare(ctx: NativeContext, a: int, b: int, limit: int | None) -> int:
    offset = 0
    while limit is None or offset < limit:
        byte_a = ctx.read(a + offset, 1)[0]
        byte_b = ctx.read(b + offset, 1)[0]
        if byte_a != byte_b:
            ctx.cycles(offset + 1)
            return 1 if byte_a > byte_b else 0xFFFFFFFF
        if byte_a == 0:
            break
        offset += 1
    ctx.cycles(offset + 1)
    return 0


@native("strchr")
def _strchr(ctx: NativeContext) -> int:
    addr, wanted = ctx.arg(0), ctx.arg(1) & 0xFF
    offset = 0
    while True:
        byte = ctx.read(addr + offset, 1)[0]
        if byte == wanted:
            ctx.cycles(offset + 1)
            return addr + offset
        if byte == 0:
            ctx.cycles(offset + 1)
            return 0
        offset += 1


@native("strstr")
def _strstr(ctx: NativeContext) -> int:
    haystack, needle = ctx.arg(0), ctx.arg(1)
    needle_len = ctx.cstrlen(needle)
    if needle_len == 0:
        return haystack
    first = ctx.read(needle, 1)[0]
    offset = 0
    while True:
        byte = ctx.read(haystack + offset, 1)[0]
        if byte == 0:
            ctx.cycles(offset + 1)
            return 0
        if byte == first:
            matched = True
            for i in range(1, needle_len):
                if ctx.read(haystack + offset + i, 1)[0] != \
                        ctx.read(needle + i, 1)[0]:
                    matched = False
                    break
            if matched:
                ctx.cycles(offset + needle_len)
                return haystack + offset
        offset += 1


@native("atoi")
def _atoi(ctx: NativeContext) -> int:
    addr = ctx.arg(0)
    text = []
    offset = 0
    while True:
        byte = ctx.read(addr + offset, 1)[0]
        char = chr(byte)
        if offset == 0 and char == "-":
            text.append(char)
        elif char.isdigit():
            text.append(char)
        else:
            break
        offset += 1
    ctx.cycles(offset + 1)
    if not text or text == ["-"]:
        return 0
    return int("".join(text)) & 0xFFFFFFFF


@native("itoa")
def _itoa(ctx: NativeContext) -> int:
    value, buf = ctx.arg(0), ctx.arg(1)
    text = str(value).encode()
    ctx.write(buf, text + b"\x00")
    ctx.cycles(len(text) + 1)
    return buf


# ---------------------------------------------------------------------------
# Heap routines
# ---------------------------------------------------------------------------

@native("malloc")
def _malloc(ctx: NativeContext) -> int:
    size = ctx.arg(0)
    payload = ctx.allocator.malloc(size)
    ctx.cycles(16)
    ctx.hooks.sink.malloc(ctx.pc, payload, size)
    return payload


@native("calloc")
def _calloc(ctx: NativeContext) -> int:
    count, unit = ctx.arg(0), ctx.arg(1)
    size = (count * unit) & 0xFFFFFFFF
    payload = ctx.allocator.malloc(size)
    # Announce the allocation before zeroing so red-zone tools know the
    # block is live when they see the writes.
    ctx.hooks.sink.malloc(ctx.pc, payload, size)
    if payload and size:
        ctx.write(payload, b"\x00" * size)
    ctx.cycles(size + 16)
    return payload


@native("realloc")
def _realloc(ctx: NativeContext) -> int:
    old, size = ctx.arg(0), ctx.arg(1)
    if old == 0:
        ctx.cpu.regs[0] = size
        return _malloc(ctx)
    block = ctx.allocator.read_block(old - 12)
    new = ctx.allocator.malloc(size)
    ctx.hooks.sink.malloc(ctx.pc, new, size)
    for offset in range(min(block.size, size)):
        ctx.copy_byte(new + offset, old + offset)
    ctx.hooks.sink.free(ctx.pc, old)
    ctx.allocator.free(old)
    ctx.cycles(size + 32)
    return new


@native("free")
def _free(ctx: NativeContext) -> int:
    payload = ctx.arg(0)
    ctx.hooks.sink.free(ctx.pc, payload)
    ctx.allocator.free(payload)
    ctx.cycles(16)
    return 0


def native_name_at(lib_base: int, addr: int) -> str | None:
    """The native mapped at ``addr`` for a given library base, if any."""
    offset = addr - lib_base
    for name, native_offset in NATIVE_OFFSETS.items():
        if native_offset == offset:
            return name
    return None


def build_native_map(lib_base: int) -> dict[int, str]:
    """Absolute address -> native name for a concrete layout."""
    return {lib_base + offset: name for name, offset in NATIVE_OFFSETS.items()}
