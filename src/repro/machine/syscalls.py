"""Syscall numbering and the FlashBack-style syscall log.

The log records the result of every non-deterministic syscall during live
execution.  During replay, ``time`` and ``rand`` return the logged values
so re-execution is deterministic (§4.1's FlashBack alternative); ``recv``
is replayed through the network proxy instead, because recovery must be
able to *drop* the attack message, and ``send`` is sandboxed.

If recovery changes the syscall sequence (the dropped message made fewer
or different calls), replay falls back to live values from that point;
the output-commit check in :mod:`repro.runtime.recovery` decides whether
the divergence is acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.assembler import SYSCALL_NAMES

#: Single source of truth lives in the assembler (so `sys recv` works in
#: .asm sources); the machine re-exports it.
SYSCALL_NUMBERS = dict(SYSCALL_NAMES)

SYS_EXIT = SYSCALL_NUMBERS["exit"]
SYS_RECV = SYSCALL_NUMBERS["recv"]
SYS_SEND = SYSCALL_NUMBERS["send"]
SYS_TIME = SYSCALL_NUMBERS["time"]
SYS_RAND = SYSCALL_NUMBERS["rand"]
SYS_LOG = SYSCALL_NUMBERS["log"]
SYS_GETPID = SYSCALL_NUMBERS["getpid"]


@dataclass(frozen=True)
class SyscallRecord:
    """One logged syscall result."""

    number: int
    result: int
    msg_id: int | None = None
    payload: bytes | None = None


@dataclass
class SyscallLog:
    """Append-only log with a replay cursor."""

    records: list[SyscallRecord] = field(default_factory=list)
    cursor: int = 0

    def append(self, record: SyscallRecord):
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def next_matching(self, number: int) -> SyscallRecord | None:
        """Advance the cursor to the next record of ``number``; None if the
        replay has diverged from the log (different syscall order)."""
        if self.cursor < len(self.records):
            record = self.records[self.cursor]
            if record.number == number:
                self.cursor += 1
                return record
        return None

    def truncate(self, length: int):
        """Forget records past ``length`` (rollback to a checkpoint)."""
        del self.records[length:]
        self.cursor = min(self.cursor, length)
