"""Address-space layout and randomization.

Address-space randomization is Sweeper's baseline lightweight monitor
(§3.1): the loader slides each region (code, data, heap, stack, native
library) by an independent random page offset.  An exploit built against
the *reference* layout — the addresses an attacker would learn from a
stock binary — therefore lands in unmapped memory with probability
``1 - 2**-entropy_bits`` per guessed base, crashing the process instead of
compromising it.  The paper models the residual success probability as
``rho = 2**-12``; the default entropy here matches that.

The reference layout deliberately places natives so that, at offset zero,
``strcat`` sits at ``0x4f0f0907`` and ``free`` at ``0x4f0eaaa0`` — the
addresses quoted in the paper's Table 2 — which makes the reproduction's
reports directly comparable with the original.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.machine.memory import PAGE_SIZE

#: Window bases far enough apart that maximal slides never overlap.
REF_CODE_BASE = 0x08048000
REF_DATA_BASE = 0x18000000
REF_HEAP_BASE = 0x30000000
REF_LIB_BASE = 0x4F000000
REF_STACK_TOP = 0xBF000000

STACK_SIZE = 64 * 1024
DEFAULT_ENTROPY_BITS = 12


@dataclass(frozen=True)
class AddressSpaceLayout:
    """Concrete region bases for one process instance."""

    code_base: int
    data_base: int
    heap_base: int
    lib_base: int
    stack_top: int
    entropy_bits: int = DEFAULT_ENTROPY_BITS
    randomized: bool = True
    slide_pages: dict[str, int] = field(default_factory=dict)

    @property
    def stack_base(self) -> int:
        return self.stack_top - STACK_SIZE

    def describe(self) -> str:
        return (f"code={self.code_base:#010x} data={self.data_base:#010x} "
                f"heap={self.heap_base:#010x} lib={self.lib_base:#010x} "
                f"stack_top={self.stack_top:#010x}")


def ReferenceLayout(entropy_bits: int = DEFAULT_ENTROPY_BITS
                    ) -> AddressSpaceLayout:
    """The unrandomized layout an attacker learns from a stock binary."""
    return AddressSpaceLayout(
        code_base=REF_CODE_BASE, data_base=REF_DATA_BASE,
        heap_base=REF_HEAP_BASE, lib_base=REF_LIB_BASE,
        stack_top=REF_STACK_TOP, entropy_bits=entropy_bits,
        randomized=False,
        slide_pages={name: 0 for name in
                     ("code", "data", "heap", "lib", "stack")})


def randomized_layout(rng: random.Random,
                      entropy_bits: int = DEFAULT_ENTROPY_BITS,
                      pin: dict[str, int] | None = None
                      ) -> AddressSpaceLayout:
    """Draw an independent page slide for each region.

    Each base moves *up* by ``slide * PAGE_SIZE`` with
    ``slide ∈ [0, 2**entropy_bits)``; an exploit targeting the reference
    layout succeeds only when the relevant slide is 0, i.e. with
    probability ``2**-entropy_bits`` — the paper's ``rho``.

    ``pin`` forces specific region slides *after* the draws (stratified
    layout-cohort sampling pins the exploit-critical region to its
    stratum value).  Every region's slide is drawn from ``rng`` whether
    or not it is pinned, so pinned and unpinned layouts with the same
    rng state agree on every unpinned region.
    """
    # rng is required: an implicit OS-seeded Random here would be the one
    # nondeterministic draw in the whole reproduction.
    slides = {name: rng.randrange(2 ** entropy_bits)
              for name in ("code", "data", "heap", "lib", "stack")}
    for name, slide in (pin or {}).items():
        if name not in slides:
            raise ValueError(f"unknown region {name!r} in layout pin")
        if not 0 <= slide < 2 ** entropy_bits:
            raise ValueError(f"pinned slide {slide} for {name!r} outside "
                             f"[0, 2**{entropy_bits})")
        slides[name] = slide
    return AddressSpaceLayout(
        code_base=REF_CODE_BASE + slides["code"] * PAGE_SIZE,
        data_base=REF_DATA_BASE + slides["data"] * PAGE_SIZE,
        heap_base=REF_HEAP_BASE + slides["heap"] * PAGE_SIZE,
        lib_base=REF_LIB_BASE + slides["lib"] * PAGE_SIZE,
        stack_top=REF_STACK_TOP + slides["stack"] * PAGE_SIZE,
        entropy_bits=entropy_bits, randomized=True, slide_pages=slides)


def guess_probability(entropy_bits: int = DEFAULT_ENTROPY_BITS) -> float:
    """Probability a fixed-address exploit defeats one randomized base."""
    return 2.0 ** -entropy_bits
