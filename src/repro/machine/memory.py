"""Paged guest memory with copy-on-write snapshots.

The memory model is the foundation of two Sweeper mechanisms:

1. **Lightweight checkpointing** — :meth:`PagedMemory.snapshot` freezes the
   current pages and shares them with the snapshot, exactly like the
   fork()-based shadow-process checkpoints of Rx/FlashBack.  The first
   write to a frozen page copies it (copy-on-write), so checkpoint cost is
   proportional to the *written* working set, not the address space.

2. **Lightweight attack detection** — accesses to unmapped addresses fault
   (SEGV), and the first page is a permanent NULL guard (NULL_DEREF).
   Under address-space randomization, hijacked control flow and wild
   pointers land in unmapped memory with high probability, which is the
   paper's primary lightweight monitor.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass

from repro.errors import (FAULT_NULL, FAULT_PROT, FAULT_SEGV, ReproError,
                          VMFault)

PAGE_SIZE = 4096
PAGE_SHIFT = 12
NULL_GUARD_END = 0x1000

#: In-page 32-bit word codec, shared by every word-granular fast path
#: (read_word/write_word here, cells and fused supercells in execcore):
#: ``unpack_from``/``pack_into`` beat ``int.from_bytes``/``to_bytes``
#: over slices by 3-5x — no intermediate bytes object is created.
u32_get = struct.Struct("<I").unpack_from
u32_put = struct.Struct("<I").pack_into


@dataclass(frozen=True)
class Region:
    """A mapped address range.  ``end`` is exclusive and page-aligned."""

    name: str
    start: int
    end: int
    writable: bool = True


#: Longest chain of delta snapshots before a full page table is taken
#: again.  Bounds both the parent-chain walk at materialization time and
#: how much history a long-lived delta chain can pin in memory.
MAX_DELTA_DEPTH = 64


class MemorySnapshot:
    """An immutable view of memory at checkpoint time.

    Holds shared references to the page objects that existed when the
    snapshot was taken; :class:`PagedMemory` copies any such page before
    modifying it.  ``code_epoch`` records the memory's code-change epoch
    so a rollback knows whether instruction bytes have changed since.

    A snapshot is stored either *full* (``parent is None``; ``delta``
    holds the complete page table) or as a *delta*: a parent reference
    plus only the pages dirtied since the parent was taken.  Taking a
    delta costs O(dirty pages); the full table is materialized lazily —
    and cached — only when something actually consumes :attr:`pages`
    (rollback, analysis, introspection).  A clean interval is the
    zero-delta degenerate case: its materialized table is the parent's
    dict, shared by reference.
    """

    __slots__ = ("regions", "code_epoch", "page_count", "parent", "delta",
                 "delta_depth", "_pages_full")

    def __init__(self, pages: dict[int, bytearray] | None = None,
                 regions: list[Region] | None = None, code_epoch: int = 0,
                 parent: "MemorySnapshot | None" = None,
                 delta: dict[int, bytearray] | None = None,
                 page_count: int | None = None):
        self.regions = list(regions) if regions is not None else []
        self.code_epoch = code_epoch
        self.parent = parent
        if pages is not None:          # full-table construction
            self.delta = pages
            self._pages_full = pages
            self.delta_depth = 0
            self.page_count = len(pages)
        else:
            self.delta = delta if delta is not None else {}
            self._pages_full = None
            self.delta_depth = 0 if parent is None else \
                parent.delta_depth + 1
            self.page_count = page_count if page_count is not None else \
                len(self.delta)

    @property
    def pages(self) -> dict[int, bytearray]:
        """The complete page table at snapshot time (materialized lazily
        for delta snapshots; cached along the chain, and shared with the
        parent outright when the delta is empty)."""
        full = self._pages_full
        if full is not None:
            return full
        chain = [self]
        node = self.parent
        while node._pages_full is None:
            chain.append(node)
            node = node.parent
        full = node._pages_full
        for snap in reversed(chain):
            if snap.delta:
                full = dict(full)
                full.update(snap.delta)
            snap._pages_full = full
        return full

    def page_identities(self) -> set[int]:
        """Identity set of this snapshot's page objects.

        The fleet's memory accounting deduplicates pages across nodes and
        checkpoints by object identity — COW-shared pages are one object,
        so they count once however many snapshots reference them.  Going
        through :attr:`pages` keeps the semantics of the materialized
        full table (delta chains resolve to whatever page object is live
        at this snapshot's depth)."""
        return {id(page) for page in self.pages.values()}


class PagedMemory:
    """Sparse paged memory for one guest process.

    Write tracking is a dirty-page bitmap (``_dirty``): the set of page
    indices whose page object differs from the one shared with the last
    snapshot — pages COW-copied or newly materialized since then.  The
    hot write path is therefore a single set-membership test (already
    dirty → write straight through); the frozen-page check only runs on
    a page's *first* write per checkpoint interval.  ``cow_copies`` is
    derived from the bitmap transitions (it counts frozen pages entering
    the dirty set), and the checkpoint cost model charges COW work from
    it instead of intercepting every write.
    """

    def __init__(self):
        self._pages: dict[int, bytearray] = {}
        self._frozen: set[int] = set()
        self._dirty: set[int] = set()
        self._regions: list[Region] = []
        #: Page index -> owning region.  Regions are page-aligned so a
        #: page belongs to at most one region; this turns every mapping
        #: check into a single dict probe instead of a list walk (which
        #: thrashed when accesses alternate between stack and data).
        self._page_region: dict[int, Region] = {}
        #: Cumulative count of pages copied by COW faults (dirty-bitmap
        #: transitions of frozen pages); the timing model charges
        #: checkpoint cost from this.
        self.cow_copies = 0
        #: Callbacks ``fn(start, end)`` fired when code bytes in a range
        #: may have changed meaning: region unmapped/remapped, or a
        #: loader patch into read-only memory.  The CPU registers one to
        #: invalidate its predecoded instruction stream.
        self._code_listeners: list = []
        #: Monotone code-change epoch.  Every event that can alter
        #: instruction bytes (unmap, patch to read-only memory) takes a
        #: fresh value; snapshots record the value at freeze time, so a
        #: rollback across *any* such event — however many checkpoints
        #: ago — is detectable.  The counter itself never rewinds, which
        #: keeps epochs unique across rollback/re-patch timelines.
        self._code_epoch = 0
        self._epoch_counter = itertools.count(1)
        #: The newest snapshot/restore source, and whether the page
        #: *set* changed behind the dirty bitmap's back (unmap pops
        #: pages without dirtying).  Together they let a snapshot of a
        #: clean interval share the previous snapshot's page table
        #: outright instead of copying it — checkpoints taken while only
        #: modeled (cycle-charged) work ran cost O(1), and a fleet of
        #: idle nodes holds one page table per *distinct* state.
        self._last_snapshot: MemorySnapshot | None = None
        self._pages_mutated = False

    # -- mapping -----------------------------------------------------------

    @property
    def regions(self) -> list[Region]:
        return list(self._regions)

    @property
    def code_epoch(self) -> int:
        """The current code-change epoch (see ``_code_epoch``).  Callers
        compare it against ``MemorySnapshot.code_epoch`` to tell whether
        a rollback will cross a code change — in which case every
        predecoded cell *and fused trace* is dropped and must be rebuilt
        from the restored bytes."""
        return self._code_epoch

    def region_named(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise ReproError(f"no region named {name!r}")

    def region_at(self, addr: int) -> Region | None:
        return self._page_region.get(addr >> PAGE_SHIFT)

    def _index_region(self, region: Region):
        for index in range(region.start >> PAGE_SHIFT,
                           region.end >> PAGE_SHIFT):
            self._page_region[index] = region

    def map_region(self, name: str, start: int, size: int,
                   writable: bool = True) -> Region:
        """Map ``size`` bytes (rounded up to pages) at page-aligned ``start``."""
        if start % PAGE_SIZE:
            raise ReproError(f"region {name!r} start {start:#x} not page aligned")
        if start < NULL_GUARD_END:
            raise ReproError(f"region {name!r} overlaps the NULL guard page")
        end = start + _round_up(size)
        for existing in self._regions:
            if start < existing.end and existing.start < end:
                raise ReproError(
                    f"region {name!r} overlaps {existing.name!r}")
        region = Region(name=name, start=start, end=end, writable=writable)
        self._regions.append(region)
        self._index_region(region)
        return region

    def extend_region(self, name: str, new_end: int) -> Region:
        """Grow a region (heap brk).  ``new_end`` is rounded up to a page."""
        region = self.region_named(name)
        new_end = region.start + _round_up(new_end - region.start)
        if new_end < region.end:
            raise ReproError(f"cannot shrink region {name!r}")
        for other in self._regions:
            if other is not region and region.start < other.end \
                    and other.start < new_end:
                raise ReproError(
                    f"extending {name!r} would overlap {other.name!r}")
        grown = Region(name=region.name, start=region.start, end=new_end,
                       writable=region.writable)
        self._regions[self._regions.index(region)] = grown
        self._index_region(grown)
        return grown

    def unmap_region(self, name: str) -> Region:
        """Unmap a region, dropping its pages.

        The address range may later be remapped with different contents,
        so code listeners (the CPU's predecoded-instruction cache) are
        told to forget everything they derived from it.
        """
        region = self.region_named(name)
        self._regions.remove(region)
        for index in range(region.start >> PAGE_SHIFT,
                           (region.end + PAGE_SIZE - 1) >> PAGE_SHIFT):
            self._pages.pop(index, None)
            self._frozen.discard(index)
            self._dirty.discard(index)
            self._page_region.pop(index, None)
        self._pages_mutated = True
        self._code_epoch = next(self._epoch_counter)
        self._notify_code_changed(region.start, region.end)
        return region

    def add_code_listener(self, fn):
        """Register ``fn(start, end)`` to hear about code-range changes."""
        self._code_listeners.append(fn)

    def _notify_code_changed(self, start: int, end: int):
        for fn in self._code_listeners:
            fn(start, end)

    def is_mapped(self, addr: int) -> bool:
        return self.region_at(addr) is not None

    def mapped_page_count(self) -> int:
        """Number of pages currently spanned by mapped regions."""
        return sum((r.end - r.start) >> PAGE_SHIFT for r in self._regions)

    def page_identities(self) -> set[int]:
        """Identity set of the live page objects (see
        :meth:`MemorySnapshot.page_identities`) — the process-side half
        of the fleet's COW-sharing accounting, counting a golden-forked
        or checkpoint-shared page once per distinct object."""
        return {id(page) for page in self._pages.values()}

    # -- access ------------------------------------------------------------

    def _check(self, addr: int, size: int, write: bool):
        addr &= 0xFFFFFFFF
        if addr < NULL_GUARD_END:
            raise VMFault(FAULT_NULL, pc=-1, addr=addr)
        end = addr + size
        # Fast path: the whole access falls inside the region owning the
        # first page (one dict probe).
        region = self._page_region.get(addr >> PAGE_SHIFT)
        if region is not None and end <= region.end:
            if write and not region.writable:
                raise VMFault(FAULT_PROT, pc=-1, addr=addr)
            return
        cursor = addr
        while cursor < end:
            region = self._page_region.get(cursor >> PAGE_SHIFT)
            if region is None:
                raise VMFault(FAULT_SEGV, pc=-1, addr=cursor)
            if write and not region.writable:
                raise VMFault(FAULT_PROT, pc=-1, addr=cursor)
            cursor = min(end, region.end)

    def _page_for_read(self, index: int) -> bytes | bytearray:
        return self._pages.get(index, b"\x00" * PAGE_SIZE)

    def _page_for_write(self, index: int) -> bytearray:
        # Dirty fast path: a page written since the last snapshot is
        # private by construction, so one set probe suffices.
        if index in self._dirty:
            return self._pages[index]
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        elif index in self._frozen:
            page = bytearray(page)
            self._pages[index] = page
            self._frozen.discard(index)
            self.cow_copies += 1
        self._dirty.add(index)
        return page

    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes, faulting on unmapped or NULL-guard access."""
        if size == 0:
            return b""
        self._check(addr, size, write=False)
        index, offset = divmod(addr, PAGE_SIZE)
        end = offset + size
        if end <= PAGE_SIZE:                     # common case: one page
            page = self._pages.get(index)
            if page is None:
                return bytes(size)
            return bytes(page[offset:end])
        out = bytearray()
        cursor = addr
        remaining = size
        while remaining:
            index, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - offset)
            out += self._page_for_read(index)[offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes):
        """Write bytes, faulting on unmapped, NULL-guard or read-only access."""
        if not data:
            return
        self._check(addr, len(data), write=True)
        self._write_pages(addr, data)

    def _write_pages(self, addr: int, data: bytes):
        index, offset = divmod(addr, PAGE_SIZE)
        end = offset + len(data)
        if end <= PAGE_SIZE:                     # common case: one page
            self._page_for_write(index)[offset:end] = data
            return
        cursor = addr
        view = memoryview(data)
        while view:
            index, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(len(view), PAGE_SIZE - offset)
            self._page_for_write(index)[offset:offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    def write_unchecked(self, addr: int, data: bytes):
        """Write ignoring protections (loader patching read-only code).

        Patching non-writable memory can change instruction bytes, so
        code listeners are notified for the affected range.
        """
        self._write_pages(addr, data)
        region = self.region_at(addr)
        if region is not None and not region.writable:
            self._code_epoch = next(self._epoch_counter)
            self._notify_code_changed(addr, addr + len(data))

    def read_byte(self, addr: int) -> int:
        return self.read(addr, 1)[0]

    def write_byte(self, addr: int, value: int):
        self.write(addr, bytes([value & 0xFF]))

    def read_word(self, addr: int) -> int:
        """Read one little-endian 32-bit word (the stack/load fast path)."""
        self._check(addr, 4, write=False)
        index, offset = divmod(addr, PAGE_SIZE)
        if offset <= PAGE_SIZE - 4:
            page = self._pages.get(index)
            if page is None:
                return 0
            return u32_get(page, offset)[0]
        return int.from_bytes(self.read(addr, 4), "little")

    def write_word(self, addr: int, value: int):
        """Write one little-endian 32-bit word (the stack/store fast path)."""
        self._check(addr, 4, write=True)
        index, offset = divmod(addr, PAGE_SIZE)
        if offset <= PAGE_SIZE - 4:
            u32_put(self._page_for_write(index), offset, value & 0xFFFFFFFF)
            return
        self._write_pages(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_cstring(self, addr: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string (faults if it runs off the map)."""
        out = bytearray()
        cursor = addr
        while len(out) < limit:
            byte = self.read_byte(cursor)
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1
        raise ReproError(f"unterminated string at {addr:#x}")

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> MemorySnapshot:
        """Take a copy-on-write snapshot (the Rx shadow process).

        Snapshots are *incremental*: with a previous snapshot to parent
        on, the new one records only the pages dirtied since it — an
        O(dirty) dict build instead of the O(mapped) page-table copy —
        and the full table materializes lazily if rollback or analysis
        ever selects this snapshot.  A clean interval (checkpoints
        during modeled busy-work, repeated snapshots of an idle node)
        is the zero-delta degenerate case and costs O(1).  A full table
        is recorded when there is no parent, when the page *set* mutated
        behind the dirty bitmap (region unmap), and every
        ``MAX_DELTA_DEPTH`` snapshots to bound chain walks.
        """
        last = self._last_snapshot
        if last is not None and not self._pages_mutated \
                and last.delta_depth < MAX_DELTA_DEPTH:
            dirty = self._dirty
            snap = MemorySnapshot(
                regions=self._regions, code_epoch=self._code_epoch,
                parent=last,
                delta={index: self._pages[index] for index in dirty},
                page_count=len(self._pages))
            if dirty:
                self._frozen |= dirty
                dirty.clear()
        else:
            self._frozen = set(self._pages)
            self._dirty.clear()
            snap = MemorySnapshot(pages=dict(self._pages),
                                  regions=self._regions,
                                  code_epoch=self._code_epoch)
        self._last_snapshot = snap
        self._pages_mutated = False
        return snap

    def restore(self, snap: MemorySnapshot):
        """Roll memory back to ``snap`` (near-instant, like a context switch).

        Container objects (page table, page-region index, dirty bitmap)
        are mutated in place: execution cells and fused supercells
        capture them by identity.  Restoring a delta snapshot
        materializes its full table (walking the parent chain once;
        the result is cached on the snapshot).  Rolling back across a
        code-epoch change — any unmap or read-only patch between the
        snapshot and now, however many checkpoints back the snapshot is
        — flushes predecoded state (decode cache, cells and fused
        traces) so stale decodings cannot survive the rollback.
        """
        if snap.code_epoch != self._code_epoch:
            self._code_epoch = snap.code_epoch
            self._notify_code_changed(0, 1 << 32)
        self._pages.clear()
        self._pages.update(snap.pages)
        self._regions = list(snap.regions)
        self._page_region.clear()
        for region in self._regions:
            self._index_region(region)
        # Restored pages are shared with the snapshot again, and the
        # snapshot's page table is current — an immediately following
        # clean-interval snapshot may share it.
        self._frozen = set(self._pages)
        self._dirty.clear()
        self._last_snapshot = snap
        self._pages_mutated = False

    def dirty_page_count(self) -> int:
        """Pages written (COW-copied or created) since the last snapshot
        or restore — a straight read of the dirty bitmap."""
        return len(self._dirty)

    def dirty_page_indices(self) -> set[int]:
        """The dirty bitmap itself, as a copy."""
        return set(self._dirty)

    def dirty_pages_since(self, snap: MemorySnapshot) -> int:
        """How many pages differ from ``snap`` by identity (COW accounting).

        For the most recent snapshot this *is* the dirty bitmap — a
        single identity check and a ``len`` instead of a walk over every
        mapped page.  The identity walk (which materializes the
        snapshot's page table) remains for older snapshots still
        retained by the checkpoint manager.
        """
        if snap is self._last_snapshot:
            return len(self._dirty)
        dirty = 0
        snap_pages = snap.pages
        for index, page in self._pages.items():
            if snap_pages.get(index) is not page:
                dirty += 1
        return dirty


def _round_up(size: int) -> int:
    return (size + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
