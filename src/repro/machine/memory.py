"""Paged guest memory with copy-on-write snapshots.

The memory model is the foundation of two Sweeper mechanisms:

1. **Lightweight checkpointing** — :meth:`PagedMemory.snapshot` freezes the
   current pages and shares them with the snapshot, exactly like the
   fork()-based shadow-process checkpoints of Rx/FlashBack.  The first
   write to a frozen page copies it (copy-on-write), so checkpoint cost is
   proportional to the *written* working set, not the address space.

2. **Lightweight attack detection** — accesses to unmapped addresses fault
   (SEGV), and the first page is a permanent NULL guard (NULL_DEREF).
   Under address-space randomization, hijacked control flow and wild
   pointers land in unmapped memory with high probability, which is the
   paper's primary lightweight monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (FAULT_NULL, FAULT_PROT, FAULT_SEGV, ReproError,
                          VMFault)

PAGE_SIZE = 4096
PAGE_SHIFT = 12
NULL_GUARD_END = 0x1000


@dataclass(frozen=True)
class Region:
    """A mapped address range.  ``end`` is exclusive and page-aligned."""

    name: str
    start: int
    end: int
    writable: bool = True


@dataclass
class MemorySnapshot:
    """An immutable view of memory at checkpoint time.

    Holds shared references to the page objects that existed when the
    snapshot was taken; :class:`PagedMemory` copies any such page before
    modifying it.
    """

    pages: dict[int, bytearray]
    regions: list[Region]
    page_count: int = field(init=False)

    def __post_init__(self):
        self.page_count = len(self.pages)


class PagedMemory:
    """Sparse paged memory for one guest process."""

    def __init__(self):
        self._pages: dict[int, bytearray] = {}
        self._frozen: set[int] = set()
        self._regions: list[Region] = []
        self._region_hot: Region | None = None   # last-hit cache
        #: Cumulative count of pages copied by COW faults; the timing
        #: model charges checkpoint cost from this.
        self.cow_copies = 0

    # -- mapping -----------------------------------------------------------

    @property
    def regions(self) -> list[Region]:
        return list(self._regions)

    def region_named(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise ReproError(f"no region named {name!r}")

    def region_at(self, addr: int) -> Region | None:
        hot = self._region_hot
        if hot is not None and hot.start <= addr < hot.end:
            return hot
        for region in self._regions:
            if region.start <= addr < region.end:
                self._region_hot = region
                return region
        return None

    def map_region(self, name: str, start: int, size: int,
                   writable: bool = True) -> Region:
        """Map ``size`` bytes (rounded up to pages) at page-aligned ``start``."""
        if start % PAGE_SIZE:
            raise ReproError(f"region {name!r} start {start:#x} not page aligned")
        if start < NULL_GUARD_END:
            raise ReproError(f"region {name!r} overlaps the NULL guard page")
        end = start + _round_up(size)
        for existing in self._regions:
            if start < existing.end and existing.start < end:
                raise ReproError(
                    f"region {name!r} overlaps {existing.name!r}")
        region = Region(name=name, start=start, end=end, writable=writable)
        self._regions.append(region)
        self._region_hot = None
        return region

    def extend_region(self, name: str, new_end: int) -> Region:
        """Grow a region (heap brk).  ``new_end`` is rounded up to a page."""
        region = self.region_named(name)
        new_end = region.start + _round_up(new_end - region.start)
        if new_end < region.end:
            raise ReproError(f"cannot shrink region {name!r}")
        for other in self._regions:
            if other is not region and region.start < other.end \
                    and other.start < new_end:
                raise ReproError(
                    f"extending {name!r} would overlap {other.name!r}")
        grown = Region(name=region.name, start=region.start, end=new_end,
                       writable=region.writable)
        self._regions[self._regions.index(region)] = grown
        self._region_hot = None
        return grown

    def is_mapped(self, addr: int) -> bool:
        return self.region_at(addr) is not None

    def mapped_page_count(self) -> int:
        """Number of pages currently spanned by mapped regions."""
        return sum((r.end - r.start) >> PAGE_SHIFT for r in self._regions)

    # -- access ------------------------------------------------------------

    def _check(self, addr: int, size: int, write: bool):
        addr &= 0xFFFFFFFF
        if addr < NULL_GUARD_END:
            raise VMFault(FAULT_NULL, pc=-1, addr=addr)
        end = addr + size
        cursor = addr
        while cursor < end:
            region = self.region_at(cursor)
            if region is None:
                raise VMFault(FAULT_SEGV, pc=-1, addr=cursor)
            if write and not region.writable:
                raise VMFault(FAULT_PROT, pc=-1, addr=cursor)
            cursor = min(end, region.end)

    def _page_for_read(self, index: int) -> bytes | bytearray:
        return self._pages.get(index, b"\x00" * PAGE_SIZE)

    def _page_for_write(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        elif index in self._frozen:
            page = bytearray(page)
            self._pages[index] = page
            self._frozen.discard(index)
            self.cow_copies += 1
        return page

    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes, faulting on unmapped or NULL-guard access."""
        if size == 0:
            return b""
        self._check(addr, size, write=False)
        out = bytearray()
        cursor = addr
        remaining = size
        while remaining:
            index, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - offset)
            out += self._page_for_read(index)[offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes):
        """Write bytes, faulting on unmapped, NULL-guard or read-only access."""
        if not data:
            return
        self._check(addr, len(data), write=True)
        cursor = addr
        view = memoryview(data)
        while view:
            index, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(len(view), PAGE_SIZE - offset)
            self._page_for_write(index)[offset:offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    def write_unchecked(self, addr: int, data: bytes):
        """Write ignoring protections (loader patching read-only code)."""
        cursor = addr
        view = memoryview(data)
        while view:
            index, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(len(view), PAGE_SIZE - offset)
            self._page_for_write(index)[offset:offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    def read_byte(self, addr: int) -> int:
        return self.read(addr, 1)[0]

    def write_byte(self, addr: int, value: int):
        self.write(addr, bytes([value & 0xFF]))

    def read_word(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little")

    def write_word(self, addr: int, value: int):
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_cstring(self, addr: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string (faults if it runs off the map)."""
        out = bytearray()
        cursor = addr
        while len(out) < limit:
            byte = self.read_byte(cursor)
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1
        raise ReproError(f"unterminated string at {addr:#x}")

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> MemorySnapshot:
        """Take a copy-on-write snapshot (the Rx shadow process)."""
        self._frozen = set(self._pages)
        return MemorySnapshot(pages=dict(self._pages),
                              regions=list(self._regions))

    def restore(self, snap: MemorySnapshot):
        """Roll memory back to ``snap`` (near-instant, like a context switch)."""
        self._pages = dict(snap.pages)
        self._regions = list(snap.regions)
        self._region_hot = None
        # Restored pages are shared with the snapshot again.
        self._frozen = set(self._pages)

    def dirty_pages_since(self, snap: MemorySnapshot) -> int:
        """How many pages differ from ``snap`` by identity (COW accounting)."""
        dirty = 0
        for index, page in self._pages.items():
            if snap.pages.get(index) is not page:
                dirty += 1
        return dirty


def _round_up(size: int) -> int:
    return (size + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
