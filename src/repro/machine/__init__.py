"""The virtual machine substrate.

This package stands in for the paper's x86/Linux process environment: a
32-bit little-endian von-Neumann machine with paged memory, a randomized
address-space layout, a boundary-tagged heap allocator, a native "libc"
mapped at library addresses, and a syscall layer with Flashback-style
logging for deterministic replay.
"""

from repro.machine.memory import PagedMemory, MemorySnapshot, PAGE_SIZE
from repro.machine.layout import AddressSpaceLayout, ReferenceLayout
from repro.machine.cpu import CPU, ControlEvent
from repro.machine.process import Process, load_program
from repro.machine.syscalls import SyscallLog, SYSCALL_NUMBERS

__all__ = [
    "PagedMemory", "MemorySnapshot", "PAGE_SIZE",
    "AddressSpaceLayout", "ReferenceLayout",
    "CPU", "ControlEvent",
    "Process", "load_program",
    "SyscallLog", "SYSCALL_NUMBERS",
]
