"""Reference model of the Sweeper delivery path.

:meth:`~repro.runtime.sweeper.Sweeper.apply_bundle` turns a verifier
verdict into one of four dispositions, and the mapping is the whole
consumer-side protocol (§3.3 piecemeal distribution):

- an untrusting consumer with a verifiable bundle (input present)
  **installs** on a verified verdict and **rejects** — nothing
  installed, no filter added — on any rejection;
- a bundle without its input **withholds** any signatures it carries
  (an uncheckable filter is exactly the forged benign-traffic DoS) but
  still applies its VSEFs, because a bogus VSEF only wastes cycles;
- with no signatures to withhold, or with ``verify_foreign`` off
  entirely, the bundle **applies** as-is.

:class:`DeliveryModel` additionally tracks the consumer state those
dispositions build: the installed VSEF key set (deduplicated by
``(kind, params)`` — reapplying a bundle installs nothing new), the
proxy filter count (signatures are *not* deduplicated: the signature
set appends, so a duplicate install grows the filter list), and the
per-bundle outcome log.  The stateful suite compares all three against
the real Sweeper after every rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spec.invariants import fail
from repro.spec.verifier import DEFERRED, VERIFIED

DISPOSITION_INSTALL = "install"     # verified: VSEFs + signatures
DISPOSITION_REJECT = "reject"       # rejected: nothing installed
DISPOSITION_WITHHOLD = "withhold"   # no input: VSEFs yes, signatures no
DISPOSITION_APPLY = "apply"         # unverified apply-as-is


def disposition(verify_foreign: bool, has_input: bool,
                has_signatures: bool, verdict: str) -> str:
    """The accept/reject/withhold decision, stated once."""
    if not verify_foreign:
        return DISPOSITION_APPLY
    if has_input:
        return (DISPOSITION_INSTALL if verdict == VERIFIED
                else DISPOSITION_REJECT)
    if has_signatures:
        return DISPOSITION_WITHHOLD
    return DISPOSITION_APPLY


#: Disposition -> the BundleOutcome.verified value it must log.
OUTCOME_VERIFIED = {DISPOSITION_INSTALL: True, DISPOSITION_REJECT: False,
                    DISPOSITION_WITHHOLD: None, DISPOSITION_APPLY: None}


@dataclass
class DeliveryModel:
    """Consumer state the delivery path accumulates."""

    verify_foreign: bool = True
    #: Installed VSEF identity keys (deduplicated).
    vsef_keys: set = field(default_factory=set)
    #: Proxy filter count (appends; duplicates grow it).
    signature_count: int = 0
    #: (bundle_id, disposition, verified) per apply_bundle call.
    outcomes: list = field(default_factory=list)

    def apply_bundle(self, bundle_id: str, vsef_keys, signature_count: int,
                     has_input: bool, verdict: str) -> str:
        """Apply one bundle; returns its disposition.

        ``verdict`` is the :func:`~repro.spec.verifier.model_verdict`
        category for this (consumer image, bundle); it is only
        consulted when the spec says verification runs (untrusting
        consumer, input present) — :data:`DEFERRED` otherwise.
        """
        outcome = disposition(self.verify_foreign, has_input,
                              signature_count > 0, verdict)
        if self.verify_foreign and not has_input:
            if verdict != DEFERRED:
                fail("delivery", f"bundle {bundle_id!r} has no input but a "
                     f"non-deferred verdict {verdict!r}")
        if outcome != DISPOSITION_REJECT:
            self.vsef_keys |= set(vsef_keys)
        if outcome in (DISPOSITION_INSTALL, DISPOSITION_APPLY):
            self.signature_count += signature_count
        self.outcomes.append((bundle_id, outcome,
                              OUTCOME_VERIFIED[outcome]))
        return outcome


def assert_delivery_refines(model: DeliveryModel, sweeper) -> None:
    """The real Sweeper's installed-antibody state and bundle log match
    the model's."""
    if sweeper.installed_vsef_keys() != frozenset(model.vsef_keys):
        fail("refinement",
             f"installed VSEF keys diverged:\n"
             f"  impl  {sorted(sweeper.installed_vsef_keys())}\n"
             f"  model {sorted(model.vsef_keys)}")
    if len(sweeper.proxy.signatures) != model.signature_count:
        fail("refinement",
             f"proxy filter count: impl {len(sweeper.proxy.signatures)} "
             f"model {model.signature_count}")
    impl_log = [(o.bundle_id, o.verified) for o in sweeper.bundle_log]
    model_log = [(bundle_id, verified)
                 for bundle_id, _, verified in model.outcomes]
    if impl_log != model_log:
        fail("refinement", f"bundle log diverged:\n  impl  {impl_log}\n"
             f"  model {model_log}")
