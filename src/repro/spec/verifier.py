"""Reference model of the :class:`~repro.antibody.verify.SandboxVerifier`.

The verifier pipeline is a four-stage decision function plus a memo, and
the spec states both:

1. **deferral** — a bundle without its exploit input cannot be verified
   yet (piecemeal distribution); no counters move;
2. **prescreen** — every carried signature must match the bundle's own
   attack input (pure byte check); a mismatch is a forged filter and the
   bundle is rejected before any sandbox work;
3. **audit** — the static audit screens the bundle against the
   program's CFG; the screen counter moves on *every* bundle that
   reaches this stage (memo hits included — the audit is the cheap
   always-on gate), the reject counter on failures;
4. **trial** — one sandbox boot per image (ever), one replay trial per
   *(image, bundle)* identity; the verdict is memoized, and a memo hit
   re-runs nothing.

The verdict is one of five categories, and the model's counter
evolution (boots / trials / cache-hits / audit-screens / audit-rejects)
must match the implementation's :meth:`stats` exactly after every call.

The trial outcome itself (does the exploit input trip a VSEF or fault
the sandbox?) is guest-execution ground truth the spec does not
re-derive: the suite supplies it as a deterministic oracle per bundle —
known by construction for genuine and benign bundles, resolved once
from the first real trial for byte-tampered ones (determinism makes
that sound: the memoized verdict is exactly what any re-run would
produce).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spec.invariants import fail

#: Verdict categories.
VERIFIED = "verified"
DEFERRED = "deferred"                       # no exploit input yet
REJECTED_FORGED = "rejected-forged"         # signature fails the byte check
REJECTED_AUDIT = "rejected-audit"           # static audit screens it out
REJECTED_UNDETECTED = "rejected-undetected" # trial ran; nothing detected

#: VerificationResult.stage -> the category it implies (trial resolves
#: to VERIFIED or REJECTED_UNDETECTED via ``verified``).
_STAGES = {"deferred": DEFERRED, "prescreen": REJECTED_FORGED,
           "audit": REJECTED_AUDIT}


def classify_result(result) -> str:
    """Map a real :class:`~repro.antibody.verify.VerificationResult`
    onto its spec category via the ``stage`` the pipeline recorded."""
    if result.stage in _STAGES:
        return _STAGES[result.stage]
    if result.stage != "trial":
        fail("verdict", f"result carries unknown stage {result.stage!r}: "
             f"{result}")
    return VERIFIED if result.verified else REJECTED_UNDETECTED


def model_verdict(has_input: bool, signatures_match: bool, audit_ok: bool,
                  attack_detected: bool) -> str:
    """The decision function, stated once: the category a bundle with
    these four ground truths must receive."""
    if not has_input:
        return DEFERRED
    if not signatures_match:
        return REJECTED_FORGED
    if not audit_ok:
        return REJECTED_AUDIT
    return VERIFIED if attack_detected else REJECTED_UNDETECTED


@dataclass
class VerifierModel:
    """Counter evolution + memo of the verifier pipeline.

    Keys are caller-chosen stable identities for the image and bundle
    *objects* (the implementation memoizes per object identity, not per
    content — a wire-replayed copy of a bundle legitimately re-trials).
    """

    boots: int = 0
    trials: int = 0
    cache_hits: int = 0
    audit_screens: int = 0
    audit_rejects: int = 0
    booted: set = field(default_factory=set)
    memo: dict = field(default_factory=dict)

    def verify(self, image_key, bundle_key, has_input: bool,
               signatures_match: bool, audit_ok: bool,
               attack_detected: bool) -> str:
        category = model_verdict(has_input, signatures_match, audit_ok,
                                 attack_detected)
        if category in (DEFERRED, REJECTED_FORGED):
            return category
        self.audit_screens += 1
        if category == REJECTED_AUDIT:
            self.audit_rejects += 1
            return category
        key = (image_key, bundle_key)
        if key in self.memo:
            self.cache_hits += 1
            return self.memo[key]
        if image_key not in self.booted:
            self.booted.add(image_key)
            self.boots += 1
        self.trials += 1
        self.memo[key] = category
        return category

    def stats(self) -> dict:
        return {"boots": self.boots, "trials": self.trials,
                "cache_hits": self.cache_hits,
                "audit_screens": self.audit_screens,
                "audit_rejects": self.audit_rejects}


def assert_verifier_refines(model: VerifierModel, verifier) -> None:
    """The implementation's counters match the model's exactly."""
    if verifier.stats() != model.stats():
        fail("refinement",
             f"verifier counters diverged: impl {verifier.stats()} "
             f"model {model.stats()}")
