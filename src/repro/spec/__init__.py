"""Executable protocol specifications for the community defense.

The community-defense correctness claims — exactly-once
``(available_at, seq)`` bundle delivery, no-skip on late publishes,
verifier rejection soundness under forged bundles — carry the weight of
the fleet/ρ pipeline, and until now were pinned only by example-based
tests.  This package ports the machine-checked-spec idiom (the Zeus
EuroSys'21 artifact ships its protocol as a TLA+ spec; the
formal-spec-of-attestation line models exactly our bundle shape —
untrusted producer, evidence, verifier) to Python: each protocol gets a
small, obviously-correct **reference model** whose state the real
implementation must refine, plus the protocol **invariants stated once**
as assertable predicates.

- :mod:`repro.spec.invariants` — the predicates (exactly-once, global
  ``(available_at, seq)`` order, no-skip, no-redeliver, rejection
  soundness, acceptance completeness), stated once, asserted everywhere.
- :mod:`repro.spec.bus` — :class:`BusModel`, the append-only-log +
  per-subscriber-cursor semantics of
  :class:`~repro.antibody.distribution.CommunityBus`.
- :mod:`repro.spec.verifier` — :class:`VerifierModel`, the
  :class:`~repro.antibody.verify.SandboxVerifier` verdict pipeline
  (input-None deferral, signature byte check, audit screen, memoized
  trial) with its counter evolution.
- :mod:`repro.spec.delivery` — :class:`DeliveryModel`, the
  :meth:`~repro.runtime.sweeper.Sweeper.apply_bundle`
  accept/reject/withhold outcomes and the installed-antibody state.
- :mod:`repro.spec.trace` — cross-process history checks: the replica
  buses the parallel fleet's workers observe must linearize to the one
  model-legal history the coordinator's real bus defines.

The models are *specs*, not reimplementations: they are deliberately
naive (linear scans, no heaps, no indices) so that reading one is
reading the protocol.  ``tests/test_spec_*.py`` drive the real
implementations against them with ``hypothesis`` stateful suites —
randomized publish / poll / late-publish / join / crash-restore /
Byzantine-producer interleavings — asserting after every step that
implementation state refines model state.
"""

from repro.spec.bus import BusModel, PollRewound, assert_bus_refines
from repro.spec.delivery import (DeliveryModel, DISPOSITION_APPLY,
                                 DISPOSITION_INSTALL, DISPOSITION_REJECT,
                                 DISPOSITION_WITHHOLD, disposition)
from repro.spec.invariants import SpecViolation
from repro.spec.trace import (assert_history_legal,
                              assert_replicas_linearize)
from repro.spec.verifier import (DEFERRED, REJECTED_AUDIT, REJECTED_FORGED,
                                 REJECTED_UNDETECTED, VERIFIED,
                                 VerifierModel, classify_result,
                                 model_verdict)

__all__ = [
    "BusModel", "PollRewound", "assert_bus_refines",
    "DeliveryModel", "disposition",
    "DISPOSITION_APPLY", "DISPOSITION_INSTALL", "DISPOSITION_REJECT",
    "DISPOSITION_WITHHOLD",
    "SpecViolation",
    "assert_history_legal", "assert_replicas_linearize",
    "VerifierModel", "classify_result", "model_verdict",
    "VERIFIED", "DEFERRED", "REJECTED_FORGED", "REJECTED_AUDIT",
    "REJECTED_UNDETECTED",
]
