"""The community-defense protocol invariants, stated once.

Every predicate here raises :class:`SpecViolation` — an
``AssertionError`` subclass so plain ``pytest`` and ``hypothesis``
shrinking both treat a violation as a failing example — and is phrased
against *model-level* data (sequence numbers, availability times,
verdict categories), never against implementation internals.  The
stateful suites in ``tests/test_spec_*.py`` call these after every rule;
the cross-shard trace check (:mod:`repro.spec.trace`) calls the same
predicates over worker-observed histories.  One statement of each
invariant, asserted everywhere it must hold.

Delivery invariants (the :class:`~repro.spec.bus.BusModel` refinement):

- **exactly-once** — no subscriber ever receives the same log entry
  twice (:func:`assert_exactly_once`);
- **ordered** — each poll batch is in strictly increasing
  ``(available_at, seq)`` order (:func:`assert_batch_ordered`);
- **no-skip** — after a poll at local time ``now``, nothing available
  by ``now`` remains undelivered (:func:`assert_no_skip`);
- **no-redeliver across crash/restore** — exactly-once is stated over
  the subscriber's whole lifetime, so a consumer that crashes and
  resubscribes under the same name must not see drained entries again
  (the same :func:`assert_exactly_once`, applied to the concatenated
  history).

Verifier invariants (the :class:`~repro.spec.verifier.VerifierModel`
refinement):

- **rejection soundness** — every rejection has the spec-prescribed
  cause: forged filter, failed audit, or undetected exploit
  (:func:`assert_rejection_sound`);
- **acceptance completeness** — every bundle the spec says is genuine
  is verified, never spuriously rejected
  (:func:`assert_acceptance_complete`).
"""

from __future__ import annotations


class SpecViolation(AssertionError):
    """The real implementation diverged from the reference model."""


def fail(invariant: str, detail: str):
    raise SpecViolation(f"[{invariant}] {detail}")


# -- delivery -----------------------------------------------------------------

def assert_exactly_once(name: str, delivered_seqs) -> None:
    """No log entry is delivered to ``name`` more than once — over the
    subscriber's whole lifetime, crashes and restores included."""
    seen = set()
    for seq in delivered_seqs:
        if seq in seen:
            fail("exactly-once",
                 f"subscriber {name!r} received seq {seq} twice "
                 f"(history: {list(delivered_seqs)})")
        seen.add(seq)


def assert_batch_ordered(name: str, batch) -> None:
    """One poll batch is in strictly increasing ``(available_at, seq)``
    order: availability time first, publish order as the tie-break."""
    keys = [(available_at, seq) for available_at, seq in batch]
    if keys != sorted(keys) or len(set(keys)) != len(keys):
        fail("ordered",
             f"subscriber {name!r} batch out of (available_at, seq) "
             f"order: {keys}")


def assert_no_skip(name: str, now: float, delivered_seqs, log) -> None:
    """After a poll at ``now``, every log entry available by ``now`` has
    been delivered — late publishes with early availability included.

    ``log`` is an iterable of ``(seq, available_at)`` pairs covering the
    whole published history.
    """
    held = set(delivered_seqs)
    for seq, available_at in log:
        if available_at <= now and seq not in held:
            fail("no-skip",
                 f"subscriber {name!r} polled at {now} but seq {seq} "
                 f"(available at {available_at}) was never delivered")


# -- verification -------------------------------------------------------------

def assert_rejection_sound(desc: str, impl_category: str,
                           model_category: str, verified_cat: str) -> None:
    """A rejection (or deferral) must have the spec-prescribed cause —
    the implementation never rejects for a reason the model does not,
    and never rejects what the model accepts."""
    if impl_category != verified_cat and impl_category != model_category:
        fail("rejection-sound",
             f"{desc}: implementation says {impl_category!r} but the "
             f"spec says {model_category!r}")


def assert_acceptance_complete(desc: str, impl_category: str,
                               model_category: str,
                               verified_cat: str) -> None:
    """Every spec-genuine bundle is verified — protection is never
    spuriously refused."""
    if model_category == verified_cat and impl_category != verified_cat:
        fail("acceptance-complete",
             f"{desc}: spec says genuine ({verified_cat!r}) but the "
             f"implementation answered {impl_category!r}")
