"""Reference model of the :class:`~repro.antibody.distribution.CommunityBus`.

The real bus carries three index structures (availability-sorted list,
per-app minima, per-subscriber pending heaps) purely for fleet-scale
performance.  The *protocol* underneath is small, and this model states
it with nothing but a list and linear scans:

- the log is append-only; ``seq`` is the list index;
- ``publish`` stamps ``available_at = produced_at + γ₂`` and mints a
  per-bus id ``ab-N`` **only when the bundle carries none** — a
  preserved (wire-replicated or forged) id does not advance the
  counter, so forged ids can collide with later minted ones and the
  model must reproduce exactly that;
- a subscriber joins with the full backlog owed to it (late joiners
  lose nothing) and a lifetime high-water poll clock;
- ``poll(name, now)`` refuses a rewinding clock
  (:class:`PollRewound` — a *spec-legal refusal*, distinct from a
  :class:`~repro.spec.invariants.SpecViolation`) and otherwise delivers
  every not-yet-delivered entry with ``available_at <= now`` (inclusive
  boundary), in ``(available_at, seq)`` order, exactly once.

:func:`assert_bus_refines` is the refinement check the stateful suite
runs after every rule: the real bus's observable state (log,
subscribers, high waters, backlogs, availability views) must match the
model's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spec.invariants import fail


class PollRewound(Exception):
    """The model refuses a non-monotone subscriber clock, as the spec
    requires the implementation to (``ReproError`` there)."""


@dataclass(frozen=True)
class LogEntry:
    """One published bundle as the spec sees it: placement and timing,
    no payload (payload integrity is the verifier model's concern)."""

    seq: int
    bundle_id: str
    app: str
    produced_at: float
    available_at: float


@dataclass
class BusModel:
    """Append-only log + per-subscriber delivered-set semantics."""

    latency: float = 3.0
    log: list[LogEntry] = field(default_factory=list)
    next_id: int = 1
    #: name -> delivered seqs, in delivery order (the lifetime history).
    delivered: dict[str, list[int]] = field(default_factory=dict)
    #: name -> lifetime poll-clock high-water mark.
    high_water: dict[str, float] = field(default_factory=dict)

    def publish(self, app: str, produced_at: float,
                bundle_id: str = "") -> LogEntry:
        if not bundle_id:
            bundle_id = f"ab-{self.next_id}"
            self.next_id += 1
        entry = LogEntry(seq=len(self.log), bundle_id=bundle_id, app=app,
                         produced_at=produced_at,
                         available_at=produced_at + self.latency)
        self.log.append(entry)
        return entry

    def subscribe(self, name: str) -> str:
        if name not in self.delivered:
            self.delivered[name] = []
            self.high_water[name] = float("-inf")
        return name

    def poll(self, name: str, now: float) -> list[LogEntry]:
        self.subscribe(name)
        if now < self.high_water[name]:
            raise PollRewound(
                f"subscriber {name!r} polled at {now} after polling at "
                f"{self.high_water[name]}")
        self.high_water[name] = now
        held = set(self.delivered[name])
        batch = sorted(
            (entry for entry in self.log
             if entry.seq not in held and entry.available_at <= now),
            key=lambda entry: (entry.available_at, entry.seq))
        self.delivered[name].extend(entry.seq for entry in batch)
        return batch

    def backlog(self, name: str) -> int:
        """Entries still owed to ``name`` — available or not, exactly
        like the implementation's pending heap."""
        if name not in self.delivered:
            return 0
        return len(self.log) - len(self.delivered[name])

    def available(self, now: float) -> list[LogEntry]:
        return sorted((e for e in self.log if e.available_at <= now),
                      key=lambda e: (e.available_at, e.seq))

    def first_available(self, app: str | None = None) -> float | None:
        times = [e.available_at for e in self.log
                 if app is None or e.app == app]
        return min(times) if times else None


def assert_bus_refines(model: BusModel, bus) -> None:
    """The real bus's observable state matches the model's.

    ``bus`` is a :class:`~repro.antibody.distribution.CommunityBus`
    exposing the pure state hooks ``log_entries()``, ``subscribers()``
    and ``high_water(name)``.
    """
    impl_log = bus.log_entries()
    model_log = [(e.seq, e.bundle_id, e.app, e.produced_at, e.available_at)
                 for e in model.log]
    if impl_log != model_log:
        fail("refinement", f"log diverged:\n  impl  {impl_log}\n"
             f"  model {model_log}")
    if set(bus.subscribers()) != set(model.delivered):
        fail("refinement",
             f"subscriber sets diverged: impl {sorted(bus.subscribers())} "
             f"model {sorted(model.delivered)}")
    for name in model.delivered:
        if bus.high_water(name) != model.high_water[name]:
            fail("refinement",
                 f"high water for {name!r}: impl {bus.high_water(name)} "
                 f"model {model.high_water[name]}")
        if bus.subscriber_backlog(name) != model.backlog(name):
            fail("refinement",
                 f"backlog for {name!r}: impl "
                 f"{bus.subscriber_backlog(name)} "
                 f"model {model.backlog(name)}")
    for app in {None} | {e.app for e in model.log}:
        if bus.first_available_time(app) != model.first_available(app):
            fail("refinement",
                 f"first_available_time({app!r}): impl "
                 f"{bus.first_available_time(app)} "
                 f"model {model.first_available(app)}")
