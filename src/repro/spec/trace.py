"""Cross-process history checks for the parallel fleet.

PR 7's guarantee is that a fleet run with worker processes is
bit-identical to the sequential run.  The specification backing is
this: the coordinator's real bus defines *one* history, every replica
bus a worker hosts observes a publish sequence that linearizes into
that history, and the history itself is model-legal — it could have
been produced by :class:`~repro.spec.bus.BusModel`.

A history here is what ``CommunityBus.log_entries()`` returns: a list
of ``(seq, bundle_id, app, produced_at, available_at)`` tuples in
publish order.  :func:`repro.worm.parallel` ships each worker's replica
history home in its finalize payload and the coordinator runs these
checks before merging results; a failure surfaces as
:class:`~repro.worm.parallel.FleetDivergence` wrapping the
:class:`~repro.spec.invariants.SpecViolation`.
"""

from __future__ import annotations

from repro.spec.invariants import fail


def assert_history_legal(history, latency: float) -> None:
    """``history`` could have been produced by the bus model: sequence
    numbers are the contiguous publish order, every entry is stamped
    ``available_at = produced_at + γ₂``, and every entry carries an id.
    """
    for index, (seq, bundle_id, app, produced_at, available_at) in \
            enumerate(history):
        if seq != index:
            fail("history-legal",
                 f"entry {index} carries seq {seq}: the log must be "
                 f"append-only with seq == publish order")
        if available_at != produced_at + latency:
            fail("history-legal",
                 f"seq {seq} ({bundle_id!r}, app {app!r}) available at "
                 f"{available_at}, but produced_at {produced_at} + "
                 f"latency {latency} = {produced_at + latency}")
        if not bundle_id:
            fail("history-legal", f"seq {seq} was published without an id")


def assert_replicas_linearize(reference, replicas,
                              latency: float,
                              require_complete: bool = True) -> None:
    """Every replica history linearizes into the single reference
    history: it is a prefix of it (``require_complete`` demands full
    equality — the fleet drains every broadcast before finalize, so a
    worker that saw fewer publishes lost one).

    ``replicas`` maps a worker label to its observed history.
    """
    assert_history_legal(reference, latency)
    for label, observed in replicas.items():
        bound = len(observed)
        if bound > len(reference) or observed != reference[:bound]:
            fail("linearization",
                 f"worker {label!r} observed a history that is not a "
                 f"prefix of the coordinator's:\n"
                 f"  observed  {observed}\n"
                 f"  reference {reference}")
        if require_complete and bound != len(reference):
            fail("linearization",
                 f"worker {label!r} observed only {bound} of "
                 f"{len(reference)} publishes before finalize")
