"""The runtime module (Fig. 1): checkpointing, proxy, monitor, recovery.

This is the always-on part of Sweeper.  During normal execution only two
lightweight mechanisms run: periodic in-memory checkpoints (Rx-style COW
shadow snapshots) and the lightweight monitors (address-space
randomization faults + deployed antibodies).  Everything else — replay,
heavyweight analysis, recovery — activates only after an attack.
"""

from repro.runtime.checkpoint import Checkpoint, CheckpointManager
from repro.runtime.clock import VirtualClock
from repro.runtime.proxy import NetworkProxy, LoggedMessage
from repro.runtime.monitor import Detection, classify_fault
from repro.runtime.recovery import RecoveryManager, RecoveryResult
from repro.runtime.sweeper import Sweeper, SweeperConfig, SweeperEvent

__all__ = [
    "Checkpoint", "CheckpointManager",
    "VirtualClock",
    "NetworkProxy", "LoggedMessage",
    "Detection", "classify_fault",
    "RecoveryManager", "RecoveryResult",
    "Sweeper", "SweeperConfig", "SweeperEvent",
]
