"""Lightweight checkpointing (Rx [45] / FlashBack [52] style).

Checkpoints are in-memory COW snapshots taken every ``interval_ms`` of
*virtual* time, with bounded retention (the paper's defaults: every
200 ms, keep the 20 most recent).  Taking one costs virtual cycles
proportional to the number of mapped pages (the fork()-style page-table
copy); the COW copies themselves are charged when writes actually touch
frozen pages.  Figure 4's overhead-vs-interval curve *emerges* from this
cost model rather than being scripted.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from collections import deque
from operator import attrgetter

from repro.machine.cpu import CPU_HZ
from repro.machine.process import Process, ProcessSnapshot

#: Cycle cost of initiating one checkpoint (fork bookkeeping)...
CHECKPOINT_BASE_CYCLES = 1500
#: ...plus per mapped page (page-table entry copy + COW arming).
CHECKPOINT_PER_PAGE_CYCLES = 55
#: Cost charged per page later copied on write (the deferred COW work).
COW_COPY_CYCLES = 180

class Checkpoint:
    """One retained checkpoint.

    ``seq`` orders checkpoints within their owning manager; it is
    assigned by :meth:`CheckpointManager.take` from a per-manager
    counter, so sequence numbers are deterministic per run and never
    leak across Sweeper instances or test cases.  ``virtual_time`` is
    stamped from the manager's injected virtual clock (``None`` when the
    manager runs clockless) — the timeline coordinate fleet tooling and
    event logs report.

    The request path stores only a cheap delta *marker*: the raw
    snapshot ingredients (memory delta snapshot, shared cpu-state dict,
    rng state, log/cursor integers) captured by
    :meth:`~repro.machine.process.Process.snapshot_ingredients`.  The
    restorable :class:`ProcessSnapshot` is materialized — once, cached —
    only when rollback or analysis actually reads :attr:`snapshot`.
    Selection keys (``msg_cursor``, ``taken_at_cycles``) are plain
    attributes so scanning retained checkpoints never materializes them.
    """

    __slots__ = ("seq", "virtual_time", "msg_cursor", "taken_at_cycles",
                 "_snapshot", "_ingredients")

    def __init__(self, snapshot: ProcessSnapshot | None = None,
                 seq: int = 0, virtual_time: float | None = None,
                 ingredients: tuple | None = None):
        self.seq = seq
        self.virtual_time = virtual_time
        self._snapshot = snapshot
        self._ingredients = ingredients
        if snapshot is not None:
            self.msg_cursor = snapshot.msg_cursor
            self.taken_at_cycles = snapshot.taken_at_cycles
        else:
            self.msg_cursor = ingredients[5]
            self.taken_at_cycles = ingredients[1]["cycles"]

    @property
    def snapshot(self) -> ProcessSnapshot:
        snap = self._snapshot
        if snap is None:
            memory, cpu_state, rng_state, log_len, msg_id, cursor = \
                self._ingredients
            snap = ProcessSnapshot(
                memory=memory, cpu_state=cpu_state, rng_state=rng_state,
                syscall_log_len=log_len, current_msg_id=msg_id,
                msg_cursor=cursor)
            self._snapshot = snap
            self._ingredients = None
        return snap


class CheckpointManager:
    """Takes, retains and selects checkpoints for one process.

    ``clock`` (a :class:`~repro.runtime.clock.VirtualClock`) is optional;
    when provided, each checkpoint is stamped with the virtual time of
    its creation.  The interval schedule itself stays cycle-driven —
    checkpoints are charged against executed guest work, not idle time.
    """

    def __init__(self, interval_ms: float = 200.0, max_checkpoints: int = 20,
                 clock=None):
        self.interval_ms = interval_ms
        self.max_checkpoints = max_checkpoints
        self.clock = clock
        #: Retained checkpoints, oldest first.  A deque: retention
        #: eviction pops from the left in O(1) instead of the old
        #: ``list.pop(0)`` shuffle, and ``seq``/``msg_cursor`` are both
        #: monotone along it, so selection bisects instead of scanning.
        self.checkpoints: deque[Checkpoint] = deque()
        self._seq = itertools.count(1)
        self._last_cp_cycles: int | None = None
        self._last_cow_copies = 0
        self.total_taken = 0
        self.total_cost_cycles = 0
        #: Dirty-bitmap size observed at the last take (introspection).
        self.last_dirty_pages = 0

    @property
    def interval_cycles(self) -> int:
        return int(self.interval_ms / 1000.0 * CPU_HZ)

    def due(self, process: Process) -> bool:
        if self._last_cp_cycles is None:
            return True
        return process.cpu.cycles - self._last_cp_cycles >= \
            self.interval_cycles

    def cycles_until_due(self, process: Process) -> int:
        if self._last_cp_cycles is None:
            return 0
        elapsed = process.cpu.cycles - self._last_cp_cycles
        return max(0, self.interval_cycles - elapsed)

    def take(self, process: Process) -> Checkpoint:
        """Take a checkpoint now, charging its virtual cost."""
        memory = process.memory
        # Charge the deferred COW copies performed since the last take.
        # ``cow_copies`` is derived from the memory's dirty-page bitmap
        # (it counts frozen pages that entered the dirty set), so the
        # write path never runs checkpoint accounting code.
        new_copies = memory.cow_copies - self._last_cow_copies
        cost = (CHECKPOINT_BASE_CYCLES
                + CHECKPOINT_PER_PAGE_CYCLES * memory.mapped_page_count()
                + COW_COPY_CYCLES * new_copies)
        process.cpu.cycles += cost
        self.total_cost_cycles += cost
        self._last_cow_copies = memory.cow_copies
        self.last_dirty_pages = memory.dirty_page_count()
        checkpoint = Checkpoint(ingredients=process.snapshot_ingredients(),
                                seq=next(self._seq),
                                virtual_time=self.clock.now
                                if self.clock is not None else None)
        self.checkpoints.append(checkpoint)
        self.total_taken += 1
        self._last_cp_cycles = process.cpu.cycles
        while len(self.checkpoints) > self.max_checkpoints:
            self.checkpoints.popleft()
        return checkpoint

    def adopt_boot_checkpoint(self, process: Process,
                              snapshot: ProcessSnapshot,
                              cost_cycles: int, last_dirty_pages: int,
                              virtual_time: float | None) -> Checkpoint:
        """Install a golden-fork boot checkpoint as if :meth:`take` had
        run on this node's own boot (see :mod:`repro.runtime.golden`).

        ``process`` is the forked process already carrying the golden
        state; ``snapshot`` shares the golden memory pages.  Accounting
        (total cost, interval anchor, dirty-page introspection) is set
        to exactly what an eager boot's first ``take`` would have left.
        """
        self.total_cost_cycles += cost_cycles
        self._last_cow_copies = process.memory.cow_copies
        self.last_dirty_pages = last_dirty_pages
        checkpoint = Checkpoint(snapshot=snapshot, seq=next(self._seq),
                                virtual_time=virtual_time)
        self.checkpoints.append(checkpoint)
        self.total_taken += 1
        self._last_cp_cycles = process.cpu.cycles
        return checkpoint

    def maybe_take(self, process: Process) -> Checkpoint | None:
        if self.due(process):
            return self.take(process)
        return None

    def retained(self) -> tuple[tuple[int, int, int], ...]:
        """The retained checkpoints as plain ``(seq, msg_cursor,
        taken_at_cycles)`` triples, oldest first — the observable
        retention state the executable spec suite
        (``tests/test_spec_checkpoint.py``) compares against its model;
        reading it never materializes a snapshot."""
        return tuple((cp.seq, cp.msg_cursor, cp.taken_at_cycles)
                     for cp in self.checkpoints)

    # -- selection --------------------------------------------------------------

    def latest(self) -> Checkpoint | None:
        return self.checkpoints[-1] if self.checkpoints else None

    def before_message(self, msg_index: int) -> Checkpoint | None:
        """Newest checkpoint taken before the ``msg_index``-th delivered
        message was consumed — the rollback point for analyzing or
        dropping that message.  ``msg_cursor`` is non-decreasing in take
        order, so this bisects instead of scanning."""
        index = bisect_right(self.checkpoints, msg_index,
                             key=attrgetter("msg_cursor"))
        return self.checkpoints[index - 1] if index > 0 else None

    def older_than(self, checkpoint: Checkpoint) -> Checkpoint | None:
        """The next-older retained checkpoint (for widening the replay
        window when a fault does not reproduce).  ``seq`` is strictly
        increasing in take order, so the anchor is found by bisection."""
        index = bisect_left(self.checkpoints, checkpoint.seq,
                            key=attrgetter("seq"))
        if index >= len(self.checkpoints) or \
                self.checkpoints[index].seq != checkpoint.seq:
            return None
        return self.checkpoints[index - 1] if index > 0 else None

    def after_rollback(self, process: Process):
        """Re-arm interval accounting after the process rolled back."""
        self._last_cp_cycles = process.cpu.cycles
        self._last_cow_copies = process.memory.cow_copies

    def discard_after(self, checkpoint: Checkpoint):
        """Drop checkpoints newer than ``checkpoint`` (their timeline was
        rolled back away).  ``seq`` is monotone, so the discards are a
        right-side pop run."""
        while self.checkpoints and self.checkpoints[-1].seq > checkpoint.seq:
            self.checkpoints.pop()
