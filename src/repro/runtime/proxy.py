"""The network proxy: input logging, filtering, replay, output commit.

A separate proxy process in the paper (§3.1), the proxy here is the sole
path between "the network" and the protected process.  It:

- logs every inbound message (replay needs the full recent history);
- applies input-signature antibodies before delivery (filtered requests
  never reach the server);
- tracks which messages were actually delivered, in order, so rollback
  knows exactly what to re-feed;
- records committed (externally visible) responses so recovery can
  suppress duplicates and detect divergence (the Rx output-commit
  problem, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.antibody.signatures import SignatureSet
from repro.machine.process import Process


@dataclass
class LoggedMessage:
    """One inbound request as the proxy saw it."""

    msg_id: int
    data: bytes
    arrival_time: float = 0.0
    filtered_by: str | None = None     # signature id if blocked
    malicious: bool = False            # marked by analysis


@dataclass
class CommittedOutput:
    msg_id: int | None
    data: bytes


class NetworkProxy:
    """Message log + filter + replay + output commit for one process.

    ``clock`` (a :class:`~repro.runtime.clock.VirtualClock`) is optional;
    when provided it supplies the default arrival stamp for submitted
    messages, so every layer of one node shares a single timeline.
    """

    def __init__(self, clock=None):
        self.clock = clock
        self.signatures = SignatureSet()
        self.log: list[LoggedMessage] = []
        self.delivered: list[int] = []      # msg_ids, in delivery order
        self.committed: list[CommittedOutput] = []
        self._committed_by_msg: dict[int | None, list[bytes]] = {}
        self.filtered_count = 0

    # -- ingress ------------------------------------------------------------

    def submit(self, data: bytes,
               arrival_time: float | None = None) -> LoggedMessage:
        """Log one inbound request, applying signature filters."""
        if arrival_time is None:
            arrival_time = self.clock.now if self.clock is not None else 0.0
        message = LoggedMessage(msg_id=len(self.log), data=bytes(data),
                                arrival_time=arrival_time)
        signature = self.signatures.match(data)
        if signature is not None:
            message.filtered_by = signature.sig_id
            self.filtered_count += 1
        self.log.append(message)
        return message

    def deliver(self, message: LoggedMessage, process: Process) -> bool:
        """Hand one logged message to the process (unless filtered)."""
        if message.filtered_by is not None:
            return False
        process.feed(message.data, msg_id=message.msg_id)
        self.delivered.append(message.msg_id)
        return True

    # -- replay support -----------------------------------------------------------

    def delivered_since(self, cursor: int,
                        exclude: set[int] | None = None
                        ) -> list[LoggedMessage]:
        """Messages the process consumed from delivery index ``cursor``
        on, in order, minus ``exclude`` — the replay feed."""
        exclude = exclude or set()
        out = []
        for msg_id in self.delivered[cursor:]:
            if msg_id in exclude:
                continue
            out.append(self.log[msg_id])
        return out

    def mark_malicious(self, msg_ids: list[int]):
        for msg_id in msg_ids:
            if 0 <= msg_id < len(self.log):
                self.log[msg_id].malicious = True

    def rewind_delivery(self, cursor: int):
        """Forget deliveries past ``cursor`` (the timeline rolled back);
        the replayed deliveries are re-recorded as they happen."""
        del self.delivered[cursor:]

    # -- egress / output commit -------------------------------------------------------

    def commit(self, msg_id: int | None, data: bytes):
        """Record a response that actually left the machine."""
        self.committed.append(CommittedOutput(msg_id=msg_id, data=data))
        self._committed_by_msg.setdefault(msg_id, []).append(data)

    def committed_for(self, msg_id: int | None) -> list[bytes]:
        return list(self._committed_by_msg.get(msg_id, []))

    def reconcile(self, msg_id: int | None, data: bytes) -> str:
        """Classify a response produced during recovery re-execution.

        Returns ``"duplicate"`` (already committed byte-identical — must
        be suppressed), ``"divergent"`` (committed but different bytes —
        the §4.1 consistency hazard) or ``"new"`` (safe to send).
        """
        previous = self._committed_by_msg.get(msg_id)
        if previous:
            if data in previous:
                return "duplicate"
            return "divergent"
        return "new"
