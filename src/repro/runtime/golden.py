"""Golden boot images: pay for server boot once per (app, layout).

A fleet of near-identical nodes previously booted every guest from
scratch — N runs of the same initialization code producing N private
copies of the same post-boot pages.  Structural sharing fixes both
costs at once, the same move CXL memory-sharing systems use to make N
copies of a read-mostly working set cost ~1: boot one *donor* per
distinct ``(image, layout, checkpoint config)``, freeze its post-boot
state as a :class:`GoldenImage`, and *fork* every subsequent node from
it.  A fork shares the golden page objects copy-on-write (they enter
the fork's memory frozen, exactly as restored checkpoint pages do), so
a node that never diverges from boot state holds **zero** private page
bytes, and the fleet's aggregate checkpoint memory grows with the
number of *written* pages, not with N.

Exactness is non-negotiable: a forked node must be bit-identical to one
booted eagerly with the same seed, or the fleet's matched-seed
Gillespie equality breaks.  That holds because guest boot is
deterministic given (image, layout) — the only per-seed state in a
freshly booted node is the process rng (untouched when boot draws no
``rand``), the pid (derived from the seed in ``Process.__init__``), and
the layout itself (part of the cache key).  :meth:`GoldenImage.forkable`
refuses to fork when the donor's boot consumed entropy (``rand`` draws
or ``getpid`` calls — either would bake seed-dependent values into the
shared pages); ineligible keys simply boot eagerly, trading the
optimization for correctness.  ``time`` needs no gate: SYS_TIME reports
``cpu.virtual_time()`` — guest cycles over CPU_HZ, process-local and
independent of both the node seed and the Sweeper's virtual clock — so
a boot that reads the time bakes the same value on every node, even
when a restart re-boots mid-run at nonzero clock.

Randomized-layout fleets keep the savings through **layout cohorts**:
the cache key's layout component means nodes sharing one layout draw
(``SweeperConfig.layout_seed``) share one golden image, so a fleet of
randomized consumers pays one donor boot per *cohort* rather than per
node — 2^entropy_bits distinct layouts would otherwise defeat the cache
entirely.  ``stats()["layouts"]`` reports how many distinct layouts the
cache actually holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.process import Process, ProcessSnapshot
from repro.machine.syscalls import SYS_RAND, SyscallRecord


def layout_key(layout) -> tuple:
    """Hashable identity of one concrete address-space layout."""
    return (layout.code_base, layout.data_base, layout.heap_base,
            layout.lib_base, layout.stack_top, layout.entropy_bits,
            layout.randomized)


@dataclass
class GoldenImage:
    """Everything needed to fork a booted node instead of booting it.

    ``snapshot`` is the donor's boot checkpoint — taken *after* the
    checkpoint cost was charged, so its cpu state is the exact post-boot
    state.  Its page objects are shared by every fork (and by the donor
    itself) and must never be mutated; copy-on-write guarantees that, as
    every holder sees them frozen.
    """

    key: tuple
    #: The donor's program image, retained so the cache key's
    #: ``id(image)`` component can never alias a recycled address after
    #: the caller drops its own reference (lookups identity-check it).
    image: object
    snapshot: ProcessSnapshot
    boot_records: tuple[SyscallRecord, ...]
    boot_debug_log: tuple[bytes, ...]
    boot_sent: tuple
    call_targets: frozenset[int]
    #: Every pc the donor had decoded by boot end (linear sweep plus
    #: lazy decodes its boot run performed); forks adopt the same set.
    decoded_pcs: tuple[int, ...]
    #: Virtual-clock deltas relative to the donor's clock at boot start.
    checkpoint_virtual_delta: float
    boot_clock_delta: float
    #: CheckpointManager accounting at boot end.
    checkpoint_cost_cycles: int
    last_dirty_pages: int
    #: Entropy consumed during boot; forking requires zero of both.
    rand_draws: int
    getpid_calls: int
    forks: int = 0

    @property
    def forkable(self) -> bool:
        return self.rand_draws == 0 and self.getpid_calls == 0

    @property
    def boot_cycles(self) -> int:
        return self.snapshot.taken_at_cycles

    def boot_stats_payload(self) -> dict:
        """The layout-independent boot statistics as a plain picklable
        dict — what a fleet worker ships to its coordinator so untouched
        nodes anywhere in the fleet can synthesize their boot-state
        report without the coordinator holding any golden image."""
        return {"boot_clock_delta": self.boot_clock_delta,
                "boot_cycles": self.boot_cycles}

    def fork_into(self, process: Process) -> ProcessSnapshot:
        """Install the golden boot state into a freshly loaded process.

        ``process`` keeps its own seed-derived identity (rng, pid) and
        its own predecoded cells; memory, cpu state and the boot syscall
        log come from the golden image, pages shared copy-on-write.
        Returns the process snapshot to install as the node's boot
        checkpoint (per-fork rng state, shared memory snapshot).
        """
        assert self.forkable
        rng_state = process.rng.getstate()
        process.restore_full(self.snapshot, keep_log=False)
        process.set_rng_state(rng_state)
        process.syscall_log.records = list(self.boot_records)
        process.syscall_log.cursor = 0
        process.debug_log = list(self.boot_debug_log)
        process.sent = list(self.boot_sent)
        process.cpu.known_call_targets |= self.call_targets
        process.cpu.adopt_decoded(self.decoded_pcs)
        self.forks += 1
        state = self.snapshot.cpu_state
        return ProcessSnapshot(
            memory=self.snapshot.memory,
            cpu_state={**state, "regs": list(state["regs"]),
                       "control_ring": list(state["control_ring"])},
            rng_state=rng_state,
            syscall_log_len=self.snapshot.syscall_log_len,
            current_msg_id=self.snapshot.current_msg_id,
            msg_cursor=self.snapshot.msg_cursor)


class GoldenImageCache:
    """Per-fleet registry of golden boot images.

    One cache is shared by every node of one fleet run; the first node
    built for a given ``(image, layout, checkpoint config)`` boots
    eagerly and donates its state, all later nodes with the same key
    fork.  Keys are per-cache, so separate fleets (and tests) never
    share state.
    """

    def __init__(self):
        self._images: dict[tuple, GoldenImage] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._images)

    def key_for(self, image, layout, interval_ms: float,
                max_checkpoints: int) -> tuple:
        return (id(image), layout_key(layout), interval_ms, max_checkpoints)

    def get(self, key: tuple, image=None) -> GoldenImage | None:
        golden = self._images.get(key)
        if golden is not None and golden.forkable and \
                (image is None or golden.image is image):
            self.hits += 1
            return golden
        self.misses += 1
        return None

    def peek(self, key: tuple) -> GoldenImage | None:
        """Introspection lookup that does not count as a hit/miss."""
        return self._images.get(key)

    def boot_stats(self, image, interval_ms: float,
                   max_checkpoints: int) -> GoldenImage | None:
        """Any golden image of ``image`` under this checkpoint config,
        regardless of layout.

        Boot *statistics* (virtual clock delta, guest cycles) are
        layout-independent — sliding region bases changes operand
        values, never the boot instruction sequence or its cycle count
        — so one image per (program, checkpoint config) is enough to
        synthesize the boot-state report of an untouched node on any
        layout, without booting it.
        """
        for golden in self._images.values():
            if golden.image is image and golden.key[2:] == \
                    (interval_ms, max_checkpoints):
                return golden
        return None

    def offer(self, key: tuple, image, donor_process: Process,
              checkpoint_snapshot: ProcessSnapshot,
              checkpoint_virtual_delta: float, boot_clock_delta: float,
              checkpoint_cost_cycles: int, last_dirty_pages: int):
        """Capture a freshly booted donor's state (first boot per key).

        Side-effect free on the donor: the checkpoint snapshot already
        exists and all mutable containers are copied out.
        """
        if key in self._images:
            return
        records = donor_process.syscall_log.records
        self._images[key] = GoldenImage(
            key=key,
            image=image,
            snapshot=checkpoint_snapshot,
            boot_records=tuple(records),
            boot_debug_log=tuple(donor_process.debug_log),
            boot_sent=tuple(donor_process.sent),
            call_targets=frozenset(donor_process.cpu.known_call_targets),
            decoded_pcs=tuple(sorted(donor_process.cpu._decode_cache)),
            checkpoint_virtual_delta=checkpoint_virtual_delta,
            boot_clock_delta=boot_clock_delta,
            checkpoint_cost_cycles=checkpoint_cost_cycles,
            last_dirty_pages=last_dirty_pages,
            rand_draws=sum(1 for r in records if r.number == SYS_RAND),
            getpid_calls=donor_process.getpid_calls)

    # -- fleet introspection -------------------------------------------------

    def stats(self) -> dict:
        return {
            "images": len(self._images),
            #: Distinct address-space layouts among the cached images —
            #: with layout-cohort sharing this equals the number of
            #: cohorts that booted, not the number of nodes, which is
            #: what keeps golden forking alive for randomized-layout
            #: fleets (one donor boot per cohort, every member forks).
            "layouts": len({key[1] for key in self._images}),
            "hits": self.hits,
            "misses": self.misses,
            "forks": sum(g.forks for g in self._images.values()),
        }
