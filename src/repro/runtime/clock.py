"""The virtual clock: never-rewinding time shared by one Sweeper stack.

Every timing claim in the paper — checkpoint overhead, γ₁ analysis
latency, recovery time, the community response time γ — is made in
*virtual* seconds: time derived from the guest's cycle counter plus the
modeled cost of runtime work.  Unlike the CPU cycle counter, which
rewinds on every rollback, the virtual clock is monotonic: rollbacks
consume time, they do not undo it.

Historically the clock was a bare float embedded in ``Sweeper``.  It is
now a small injectable object so that a fleet scheduler can own the
clocks of many nodes: the scheduler aligns each node to the global
event time with :meth:`advance_to` before delivering an event, and the
node's own execution (cycles, analysis, recovery) advances it further
with :meth:`advance`.  Components that stamp times (the proxy's message
log, the checkpoint manager) read the same instance, so one node's
timeline is consistent across layers by construction.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic virtual time in seconds.

    The two mutators enforce the never-rewind invariant differently:
    ``advance`` refuses negative deltas loudly (a negative delta is a
    bug in the caller's accounting), while ``advance_to`` treats a
    target in the past as a no-op (the normal case when a scheduler
    aligns a node that is already ahead of the global event time).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"virtual clock cannot rewind ({seconds})")
        self._now += seconds
        return self._now

    def advance_to(self, target: float) -> float:
        """Move time forward to ``target`` if it is in the future."""
        if target > self._now:
            self._now = float(target)
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock({self._now:.6f})"
