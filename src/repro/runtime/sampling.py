"""Sampled heavyweight monitoring (§4.2 "Sampling to Catch More Attacks").

Address-space randomization is probabilistic: with probability ρ an
exploit guesses the layout and succeeds silently.  The paper's answer is
to run heavyweight detection (dynamic taint analysis) on a *fraction* of
requests — the instrumentation is dynamic, so the decision can be made
per message, and hosts can sample more aggressively when idle.

:class:`RequestSampler` implements that policy: every Nth request is
served with a :class:`~repro.analysis.taint.TaintTracker` attached.
Attaching the tracker flips the hook manager's sink live, which makes
the batched CPU loop select its instrumented path for exactly that
request — unsampled requests keep running predecoded cells at full
speed, which is what makes per-message sampling decisions free.  A
taint violation on a sampled request is a *pre-corruption* detection —
it fires at the sink, before the hijacked control transfer executes —
so the runtime can drop the request like a VSEF block and derive
taint-grade antibodies (propagation-subset VSEF + exact signature)
directly from the tracker, without needing a crash to replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.taint import TaintReport, TaintTracker


@dataclass
class SampledDetection:
    """A taint violation caught on a sampled request."""

    msg_id: int | None
    report: TaintReport
    virtual_time: float


class RequestSampler:
    """Decides which requests get heavyweight (taint) monitoring.

    ``every`` = N means requests 0, N, 2N, ... are sampled; 0 disables
    sampling.  ``overhead_factor`` is the virtual-time multiplier charged
    to a sampled request (TaintCheck-class instrumentation).
    """

    def __init__(self, every: int = 0, overhead_factor: float = 20.0):
        if every < 0:
            raise ValueError("sampling period cannot be negative")
        self.every = every
        self.overhead_factor = overhead_factor
        self.requests_seen = 0
        self.requests_sampled = 0
        self.detections: list[SampledDetection] = []

    def should_sample(self) -> bool:
        """Called once per request; advances the request counter."""
        index = self.requests_seen
        self.requests_seen += 1
        if self.every <= 0:
            return False
        sampled = index % self.every == 0
        if sampled:
            self.requests_sampled += 1
        return sampled

    def make_tool(self) -> TaintTracker:
        """A fresh tracker for one sampled request."""
        return TaintTracker(raise_on_violation=True)

    def record(self, msg_id: int | None, report: TaintReport,
               virtual_time: float) -> SampledDetection:
        detection = SampledDetection(msg_id=msg_id, report=report,
                                     virtual_time=virtual_time)
        self.detections.append(detection)
        return detection

    @property
    def sample_rate(self) -> float:
        if self.requests_seen == 0:
            return 0.0
        return self.requests_sampled / self.requests_seen
