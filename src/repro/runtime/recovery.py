"""Fast recovery: rollback + re-execution without the attack input (§3.1).

Once analysis has identified the malicious message(s), recovery:

1. rolls the process back to the newest checkpoint that precedes the
   first malicious message;
2. re-executes the benign messages received since then, in order, with
   deterministic ``time``/``rand`` from the FlashBack syscall log;
3. reconciles re-produced outputs against the proxy's commit log —
   byte-identical responses to already-answered requests are suppressed
   (the output-commit problem), divergent ones are counted and, under
   ``strict``, abort recovery in favour of a restart (§4.1).

The result is continuous service: concurrent valid requests complete
without the multi-second restart + cache-warmup penalty the paper's
introduction complains about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AttackDetected, RecoveryFailed, VMFault
from repro.machine.cpu import CPU_HZ
from repro.machine.process import Process
from repro.runtime.checkpoint import Checkpoint, CheckpointManager
from repro.runtime.proxy import NetworkProxy

_RECOVERY_STEP_BUDGET = 30_000_000


@dataclass
class RecoveryResult:
    """Outcome of one recovery pass."""

    ok: bool
    replayed_messages: int = 0
    dropped_messages: int = 0
    duplicates_suppressed: int = 0
    new_outputs: list[bytes] = field(default_factory=list)
    divergences: int = 0
    virtual_seconds: float = 0.0
    detail: str = ""


class RecoveryManager:
    """Performs rollback + re-execution recovery for one process."""

    def __init__(self, strict: bool = False):
        self.strict = strict

    def recover(self, process: Process, proxy: NetworkProxy,
                checkpoints: CheckpointManager, checkpoint: Checkpoint,
                drop_msg_ids: set[int]) -> RecoveryResult:
        """Roll back to ``checkpoint`` and re-execute without the attack."""
        replay_feed = proxy.delivered_since(checkpoint.msg_cursor,
                                            exclude=drop_msg_ids)
        dropped = len(proxy.delivered_since(checkpoint.msg_cursor)) \
            - len(replay_feed)

        process.restore_full(checkpoint.snapshot, keep_log=True)
        checkpoints.discard_after(checkpoint)
        checkpoints.after_rollback(process)
        proxy.rewind_delivery(checkpoint.msg_cursor)

        process.replay_mode = True
        sent_before = len(process.sent)
        start_cycles = process.cpu.cycles
        result = RecoveryResult(ok=True, dropped_messages=dropped)
        try:
            for message in replay_feed:
                proxy.deliver(message, process)
                run = process.run(max_steps=_RECOVERY_STEP_BUDGET)
                if run.reason == "exit":
                    result.detail = "process exited during recovery replay"
                    break
                result.replayed_messages += 1
        except VMFault as fault:
            # A *different* fault during recovery replay means the attack
            # corrupted state before the chosen checkpoint, or the service
            # is inherently divergent: fall back to restart semantics.
            process.replay_mode = False
            raise RecoveryFailed(
                f"fault during recovery replay: {fault}") from fault
        except AttackDetected as blocked:
            # An antibody fired on a message we believed benign: the
            # malicious set was incomplete.  Fall back to restart.
            process.replay_mode = False
            raise RecoveryFailed(
                f"antibody fired during recovery replay: {blocked}") \
                from blocked
        finally:
            process.replay_mode = False

        # Output commit: suppress duplicates, surface divergence.
        for sent in process.sent[sent_before:]:
            verdict = proxy.reconcile(sent.msg_id, sent.data)
            if verdict == "duplicate":
                result.duplicates_suppressed += 1
            elif verdict == "divergent":
                result.divergences += 1
            else:
                proxy.commit(sent.msg_id, sent.data)
                result.new_outputs.append(sent.data)
        del process.sent[sent_before:]

        if result.divergences and self.strict:
            raise RecoveryFailed(
                f"{result.divergences} divergent response(s) during "
                "re-execution; aborting to restart (§4.1)")

        # Future syscalls append fresh records from here.
        process.syscall_log.truncate(process.syscall_log.cursor)
        result.virtual_seconds = (process.cpu.cycles - start_cycles) / CPU_HZ
        return result
