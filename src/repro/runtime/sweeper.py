"""The Sweeper orchestrator: the end-to-end defense loop of Fig. 3.

``Sweeper`` wraps one protected process with the full stack: lightweight
monitoring + checkpointing during normal execution; rollback/replay
analysis after a detection; antibody generation, installation and
publication; and rollback/re-execute recovery.  It also maintains the
global virtual clock used by every timing experiment — a clock that,
unlike the process's cycle counter, never rewinds across rollbacks.

Typical use::

    sweeper = Sweeper(image, app_name="squid")
    responses = sweeper.submit(benign_request)
    responses = sweeper.submit(exploit)       # detected, analyzed, healed
    assert sweeper.antibodies                 # VSEFs + signature now live
    responses = sweeper.submit(benign_request)  # service continues
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.pipeline import AnalysisOutcome, AnalysisPipeline
from repro.analysis.taint import TaintViolation
from repro.antibody.distribution import AntibodyBundle, CommunityBus
from repro.antibody.signatures import generate_exact
from repro.antibody.verify import verify_antibody
from repro.antibody.vsef import VSEF, InstalledVSEF, install_vsef
from repro.errors import AttackDetected, RecoveryFailed, VMFault
from repro.isa.assembler import Image, assemble
from repro.machine.cpu import CPU_HZ
from repro.machine.layout import (AddressSpaceLayout, ReferenceLayout,
                                  randomized_layout)
from repro.machine.process import Process
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.clock import VirtualClock
from repro.runtime.monitor import (Detection, detection_from_fault,
                                   detection_from_vsef)
from repro.runtime.proxy import NetworkProxy
from repro.runtime.recovery import RecoveryManager, RecoveryResult
from repro.runtime.sampling import RequestSampler

_RUN_STEP_BUDGET = 50_000_000


def vsef_key(vsef: VSEF) -> tuple:
    """The identity under which installed VSEFs are deduplicated:
    ``(kind, sorted stringified params)``.  Module-level so the
    executable spec (:mod:`repro.spec.delivery`) and the Sweeper agree
    on one definition."""
    return (vsef.kind, tuple(sorted(
        (k, str(v)) for k, v in vsef.params.items())))


def boot_layout(config: "SweeperConfig",
                seed: int | None = None) -> AddressSpaceLayout:
    """The concrete address-space layout a Sweeper with ``config`` loads.

    Exposed so fleet tooling can name a node's golden-image cache key
    without materializing the node; must match what ``_new_process``
    hands to :class:`~repro.machine.process.Process` exactly (a
    randomized layout draws from ``random.Random(seed)``, as the
    process loader would).

    ``config.layout_seed`` (when set) overrides every other seed source
    — including the restart path's ``seed + 1`` — so all members of one
    layout cohort load the same layout and keep it across restarts,
    which is what lets them share a single golden boot image.
    """
    if config.layout_seed is not None:
        seed = config.layout_seed
    elif seed is None:
        seed = config.seed
    if config.randomize_layout:
        return randomized_layout(random.Random(seed),
                                 entropy_bits=config.entropy_bits,
                                 pin=config.layout_pin)
    return ReferenceLayout()


@dataclass
class SweeperConfig:
    """Tunables; defaults follow §5.1 (200 ms interval, 20 checkpoints)."""

    checkpoint_interval_ms: float = 200.0
    max_checkpoints: int = 20
    entropy_bits: int = 12
    seed: int = 0
    enable_membug: bool = True
    enable_taint: bool = True
    enable_slicing: bool = True
    isolate_by_replay: bool = True
    strict_recovery: bool = False
    publish_antibodies: bool = True
    #: γ₂ dissemination latency for the community bus (Vigilante's <3 s).
    dissemination_latency: float = 3.0
    #: §4.2 sampling: run taint analysis on every Nth request (0 = off).
    #: Catches attacks that defeat address randomization (the ρ case).
    sample_every: int = 0
    #: Proactive protection (§3.1).  True slides every region by a random
    #: page offset (the ρ = 2^-entropy attenuation); False loads the
    #: reference layout — an *unprotected* host, which is what the fleet
    #: uses for susceptible consumer nodes so a worm's hijack genuinely
    #: lands instead of faulting.
    randomize_layout: bool = True
    #: Layout-draw seed.  ``None`` draws from ``seed`` (a private layout
    #: per node); a shared value puts several nodes in one layout
    #: *cohort* — identical region slides, hence one shared golden boot
    #: image — while each keeps its own process seed (rng, pid).
    layout_seed: int | None = None
    #: Forced region slides applied after the layout draw (see
    #: :func:`~repro.machine.layout.randomized_layout`); how stratified
    #: cohort sampling pins the exploit-critical slide to its stratum.
    layout_pin: dict[str, int] | None = None
    #: Verify foreign antibody bundles in a sandbox before installing
    #: them (:meth:`Sweeper.apply_bundle`).  Bundles that carry their
    #: exploit input replay it in a sandboxed fork of the clean program:
    #: if nothing detects the attack the bundle is rejected and never
    #: installed.  Bundles without the input yet (piecemeal early
    #: stages) are applied immediately and verified when it arrives —
    #: the paper's deferrable-verification discipline (§3.3).
    verify_foreign: bool = True


@dataclass
class SweeperEvent:
    """One entry in the virtual-time event log (drives Figure 5).

    ``wall_seconds`` carries any *host* wall-clock measurement (e.g. how
    long analysis really took on this machine).  It lives outside
    ``detail`` so the (virtual_time, kind, detail) triple is reproducible
    byte-for-byte across runs of the same seed.
    """

    virtual_time: float
    kind: str
    detail: str = ""
    wall_seconds: float | None = None


@dataclass
class BundleOutcome:
    """What :meth:`Sweeper.apply_bundle` did with one foreign bundle.

    ``verified`` is tri-state: ``True`` — the bundle replayed in a
    sandbox, its signatures matched its attack input and something
    detected the attack; ``False`` — rejected (nothing detected the
    input, or a signature failed to match it): no VSEF installed, no
    signature added; ``None`` — not verifiable yet (no exploit input,
    or verification disabled) and applied on the paper's
    apply-now-verify-later discipline — though an unverifiable bundle's
    *signatures* are withheld (filters can DoS benign traffic; VSEFs
    cannot), so ``signatures`` counts only what was installed.
    """

    bundle_id: str
    stage: str
    verified: bool | None
    vsefs: list[VSEF] = field(default_factory=list)   # newly installed
    signatures: int = 0                               # filters added
    detail: str = ""

    @property
    def rejected(self) -> bool:
        return self.verified is False


@dataclass
class AttackRecord:
    """Everything Sweeper did about one attack."""

    detection: Detection
    outcome: AnalysisOutcome | None
    recovery: RecoveryResult | None
    vsefs_installed: list[VSEF] = field(default_factory=list)
    signature_ids: list[str] = field(default_factory=list)
    detected_at: float = 0.0
    first_vsef_at: float | None = None
    recovered_at: float | None = None


class Sweeper:
    """Protects one server process end to end."""

    def __init__(self, image: Image | str, app_name: str = "app",
                 config: SweeperConfig | None = None,
                 bus: CommunityBus | None = None,
                 clock: VirtualClock | None = None,
                 golden=None):
        if isinstance(image, str):
            image = assemble(image)
        self.image = image
        self.app_name = app_name
        self.config = config or SweeperConfig()
        self.vclock = clock if clock is not None else VirtualClock()
        #: Optional :class:`~repro.runtime.golden.GoldenImageCache`: the
        #: first node booted per (image, layout, checkpoint config)
        #: donates its boot state, later ones fork it copy-on-write.
        self.golden = golden
        self.booted_from_golden = False
        self.process = self._new_process(self.config.seed)
        self.proxy = NetworkProxy(clock=self.vclock)
        self.checkpoints = CheckpointManager(
            interval_ms=self.config.checkpoint_interval_ms,
            max_checkpoints=self.config.max_checkpoints,
            clock=self.vclock)
        self.recovery = RecoveryManager(strict=self.config.strict_recovery)
        self.pipeline = AnalysisPipeline(
            self.process, self.checkpoints, self.proxy,
            enable_membug=self.config.enable_membug,
            enable_taint=self.config.enable_taint,
            enable_slicing=self.config.enable_slicing,
            isolate_by_replay=self.config.isolate_by_replay)
        self.bus = bus if bus is not None else (
            CommunityBus(self.config.dissemination_latency)
            if self.config.publish_antibodies else None)

        self.sampler = RequestSampler(every=self.config.sample_every)
        self._last_cycles = self.process.cpu.cycles
        self._inbox: deque = deque()        # scheduled, not-yet-served requests
        self.events: list[SweeperEvent] = []
        self.attacks: list[AttackRecord] = []
        self.bundle_log: list[BundleOutcome] = []
        self.detections: list[Detection] = []
        self.antibodies: list[VSEF] = []
        self._installed: list[InstalledVSEF] = []
        self._vsef_keys: set[tuple] = set()

        self._boot()

    # -- clock / events ---------------------------------------------------------

    @property
    def clock(self) -> float:
        """Current virtual time (seconds); never rewinds."""
        return self.vclock.now

    def _new_process(self, seed: int) -> Process:
        return Process(self.image, layout=boot_layout(self.config, seed),
                       seed=seed, name=self.app_name)

    def _sync_clock(self):
        delta = self.process.cpu.cycles - self._last_cycles
        if delta > 0:
            self.vclock.advance(delta / CPU_HZ)
        self._last_cycles = self.process.cpu.cycles

    def _rebase_cycles(self):
        """After a rollback the cycle counter rewound; re-anchor it."""
        self._last_cycles = self.process.cpu.cycles

    def _event(self, kind: str, detail: str = "",
               wall_seconds: float | None = None):
        self.events.append(SweeperEvent(virtual_time=self.clock, kind=kind,
                                        detail=detail,
                                        wall_seconds=wall_seconds))

    # -- normal operation -----------------------------------------------------------

    def _boot(self):
        """Run server initialization up to its first recv.

        With a golden cache attached, the first boot per (image, layout,
        checkpoint config) runs eagerly and donates its state; every
        later boot forks that state copy-on-write instead of executing
        initialization again — bit-identical by construction (see
        :mod:`repro.runtime.golden`).
        """
        key = None
        boot_start = self.vclock.now
        if self.golden is not None:
            key = self.golden.key_for(self.image, self.process.layout,
                                      self.config.checkpoint_interval_ms,
                                      self.config.max_checkpoints)
            image = self.golden.get(key, self.image)
            if image is not None:
                self._boot_from_golden(image, boot_start)
                return
        result = self.process.run(max_steps=_RUN_STEP_BUDGET)
        self._sync_clock()
        if result.reason != "idle":
            raise RecoveryFailed(
                f"server failed to initialize ({result.reason})")
        checkpoint_virtual = self.vclock.now
        checkpoint = self.checkpoints.take(self.process)
        self._sync_clock()
        self._event("boot", "server initialized; first checkpoint taken")
        if key is not None:
            self.golden.offer(
                key, self.image, self.process, checkpoint.snapshot,
                checkpoint_virtual_delta=checkpoint_virtual - boot_start,
                boot_clock_delta=self.vclock.now - boot_start,
                checkpoint_cost_cycles=self.checkpoints.total_cost_cycles,
                last_dirty_pages=self.checkpoints.last_dirty_pages)

    def _boot_from_golden(self, image, boot_start: float):
        """Fork a booted sibling's state instead of executing boot."""
        snapshot = image.fork_into(self.process)
        self.vclock.advance_to(boot_start + image.checkpoint_virtual_delta)
        self.checkpoints.adopt_boot_checkpoint(
            self.process, snapshot,
            cost_cycles=image.checkpoint_cost_cycles,
            last_dirty_pages=image.last_dirty_pages,
            virtual_time=self.vclock.now)
        self.vclock.advance_to(boot_start + image.boot_clock_delta)
        self._last_cycles = self.process.cpu.cycles
        self.booted_from_golden = True
        self._event("boot", "server initialized; first checkpoint taken")

    def advance_busy(self, cycles: int):
        """Account ``cycles`` of additional per-request service work
        (cache lookups, disk I/O, compression — work a real server does
        that the miniature guest programs do not).  Checkpoints fire on
        schedule throughout, so throughput experiments see the same
        contention a saturated server would."""
        remaining = cycles
        while remaining > 0:
            until_due = self.checkpoints.cycles_until_due(self.process)
            if until_due <= 0:
                self.checkpoints.take(self.process)
                continue
            chunk = min(remaining, until_due)
            self.process.cpu.cycles += chunk
            remaining -= chunk
        self._sync_clock()

    def submit(self, data: bytes) -> list[bytes]:
        """Feed one request through the proxy; returns new responses.

        Equivalent to :meth:`schedule` followed by :meth:`advance` — the
        single-node convenience the fleet scheduler decomposes.
        """
        self.schedule(data)
        return self.advance()

    def schedule(self, data: bytes):
        """Phase 1: log one inbound request (filters apply now, at
        arrival) and queue it for service.  Returns the logged message."""
        message = self.proxy.submit(data)
        self._inbox.append(message)
        return message

    def advance(self) -> list[bytes]:
        """Phase 2: serve every scheduled request in arrival order;
        returns the new responses.  A steppable scheduler calls this
        once per delivered event; ``submit`` calls it immediately."""
        responses: list[bytes] = []
        while self._inbox:
            responses.extend(self._serve(self._inbox.popleft()))
        return responses

    def _serve(self, message) -> list[bytes]:
        if message.filtered_by is not None:
            self._event("filtered",
                        f"msg {message.msg_id} blocked by "
                        f"{message.filtered_by}")
            self.detections.append(Detection(
                kind="filter", virtual_time=self.clock,
                msg_id=message.msg_id, signature_id=message.filtered_by))
            return []
        sent_before = len(self.process.sent)
        tracker = None
        if self.sampler.should_sample():
            # §4.2: heavyweight taint monitoring for this request only.
            tracker = self.sampler.make_tool()
            self.process.hooks.attach(tracker, self.process)
        cycles_start = self.process.cpu.cycles
        self.proxy.deliver(message, self.process)
        try:
            self._run_protected()
        except TaintViolation as violation:
            self._handle_sampled_detection(message, tracker, violation)
        finally:
            if tracker is not None:
                if tracker in self.process.hooks.tools:
                    self.process.hooks.detach(tracker, self.process)
                # Charge the sampled request's instrumentation overhead.
                executed = self.process.cpu.cycles - cycles_start
                if executed > 0:
                    self.vclock.advance(
                        executed / CPU_HZ
                        * (self.sampler.overhead_factor - 1.0))
        responses = []
        for sent in self.process.sent[sent_before:]:
            self.proxy.commit(sent.msg_id, sent.data)
            responses.append(sent.data)
        return responses

    def _run_protected(self):
        """Run until idle, checkpointing on schedule, handling attacks."""
        while True:
            budget = self.checkpoints.cycles_until_due(self.process)
            try:
                if budget <= 0:
                    self.checkpoints.take(self.process)
                    self._sync_clock()
                    continue
                result = self.process.run(max_cycles=budget,
                                          max_steps=_RUN_STEP_BUDGET)
                self._sync_clock()
                if result.reason in ("idle", "exit"):
                    return
            except VMFault as fault:
                self._sync_clock()
                self._handle_fault(fault)
                return
            except AttackDetected as blocked:
                self._sync_clock()
                self._handle_vsef_block(blocked)
                return

    # -- attack handling -----------------------------------------------------------------

    def _handle_fault(self, fault: VMFault):
        detection = detection_from_fault(fault, self.clock,
                                         self.process.current_msg_id)
        self.detections.append(detection)
        self._event("detect", detection.describe())
        record = AttackRecord(detection=detection, outcome=None,
                              recovery=None, detected_at=self.clock)
        self.attacks.append(record)

        wall_start = time.perf_counter()
        outcome = self.pipeline.analyze(fault)
        record.outcome = outcome
        self._rebase_cycles()

        # Advance the clock step by step, publishing antibodies piecemeal
        # as each stage completes (§3.3 "Distribution").
        base = self.clock
        published_initial = False
        for step in outcome.steps:
            self.vclock.advance_to(base + step.cumulative_virtual)
            self._event(f"analysis:{step.name}", step.summary)
            new_vsefs = self._install_new(step.vsefs)
            record.vsefs_installed.extend(new_vsefs)
            if new_vsefs and record.first_vsef_at is None:
                record.first_vsef_at = self.clock
                self._event("antibody:first-vsef",
                            new_vsefs[0].describe())
            if new_vsefs and self.bus is not None:
                stage = "initial" if not published_initial else "improved"
                published_initial = True
                self.bus.publish(AntibodyBundle(
                    app=self.app_name, vsefs=list(new_vsefs),
                    produced_at=self.clock, stage=stage))

        # Input signature once the exploit input is isolated.
        if outcome.exploit_input is not None:
            signature = generate_exact(outcome.exploit_input)
            self.proxy.signatures.add(signature)
            record.signature_ids.append(signature.sig_id)
            self._event("antibody:signature",
                        f"exact-match filter {signature.sig_id}")
            self.proxy.mark_malicious(outcome.malicious_msg_ids)
            if self.bus is not None:
                self.bus.publish(AntibodyBundle(
                    app=self.app_name, vsefs=list(record.vsefs_installed),
                    signatures=[signature],
                    exploit_input=outcome.exploit_input,
                    produced_at=self.clock, stage="final"))

        # Recovery: rollback & re-execute without the malicious input.
        record.recovery = self._recover(outcome,
                                        suspect=detection.msg_id)
        record.recovered_at = self.clock
        self._event("recovered", "service restored",
                    wall_seconds=time.perf_counter() - wall_start)

    def _recover(self, outcome: AnalysisOutcome,
                 suspect: int | None = None) -> RecoveryResult | None:
        drop = set(outcome.malicious_msg_ids)
        if not drop and suspect is not None:
            # Analysis could not isolate the input; drop the request that
            # was being served when the monitor tripped.
            drop = {suspect}
        checkpoint = outcome.checkpoint
        if drop:
            candidate = self.checkpoints.before_message(
                self._delivery_index(min(drop)))
            if candidate is not None:
                checkpoint = candidate
        if checkpoint is None:
            self._event("recovery:restart",
                        "no usable checkpoint; restarting process")
            self._restart()
            return None
        try:
            result = self.recovery.recover(self.process, self.proxy,
                                           self.checkpoints, checkpoint,
                                           drop)
        except RecoveryFailed as failed:
            self._event("recovery:restart", str(failed))
            self._restart()
            return None
        self._rebase_cycles()
        self.vclock.advance(result.virtual_seconds)
        return result

    def _delivery_index(self, msg_id: int) -> int:
        try:
            return self.proxy.delivered.index(msg_id)
        except ValueError:
            return len(self.proxy.delivered)

    def _restart(self):
        """Full restart: the expensive fallback Sweeper tries to avoid."""
        self.vclock.advance(5.0)  # §1.1: "restarting ... takes up to several seconds"
        config = self.config
        self.process = self._new_process(config.seed + 1)
        self.checkpoints = CheckpointManager(
            interval_ms=config.checkpoint_interval_ms,
            max_checkpoints=config.max_checkpoints,
            clock=self.vclock)
        self.pipeline = AnalysisPipeline(
            self.process, self.checkpoints, self.proxy,
            enable_membug=config.enable_membug,
            enable_taint=config.enable_taint,
            enable_slicing=config.enable_slicing,
            isolate_by_replay=config.isolate_by_replay)
        self.proxy.rewind_delivery(0)
        self.proxy.delivered.clear()
        self._installed.clear()
        self._last_cycles = self.process.cpu.cycles
        self._boot()
        for vsef in self.antibodies:
            self._installed.append(install_vsef(vsef, self.process))

    def _handle_sampled_detection(self, message, tracker, violation):
        """A sampled request tripped taint analysis *before* corruption
        took effect: derive taint-grade antibodies on the spot, then drop
        the request via rollback (§4.2).

        This path fires even when the exploit would have *succeeded*
        (layouts guessed correctly): the sink check does not depend on
        the attack crashing.
        """
        report = tracker.report()
        # Detach before recovery so replay does not re-trip the sink.
        if tracker in self.process.hooks.tools:
            self.process.hooks.detach(tracker, self.process)
        self.sampler.record(message.msg_id, report, self.clock)
        detection = Detection(kind="sampled", virtual_time=self.clock,
                              msg_id=message.msg_id,
                              suspicion=str(violation))
        self.detections.append(detection)
        self._event("sampled-detect", str(violation))

        drop = set(report.malicious_msg_ids) or {message.msg_id}
        vsef = report.derive_vsef(self.process)
        new_vsefs = self._install_new([vsef] if vsef else [])
        signatures = []
        first = min(drop)
        if 0 <= first < len(self.proxy.log):
            signature = generate_exact(self.proxy.log[first].data)
            self.proxy.signatures.add(signature)
            signatures.append(signature)
            self.proxy.mark_malicious(sorted(drop))
        if (new_vsefs or signatures) and self.bus is not None:
            self.bus.publish(AntibodyBundle(
                app=self.app_name, vsefs=new_vsefs, signatures=signatures,
                exploit_input=self.proxy.log[first].data
                if signatures else None,
                produced_at=self.clock, stage="initial"))
        if new_vsefs:
            self._event("antibody:first-vsef", new_vsefs[0].describe())

        checkpoint = self.checkpoints.before_message(
            self._delivery_index(first)) or self.checkpoints.latest()
        if checkpoint is None:
            self._restart()
            return
        try:
            result = self.recovery.recover(self.process, self.proxy,
                                           self.checkpoints, checkpoint,
                                           drop)
        except RecoveryFailed as failed:
            self._event("recovery:restart", str(failed))
            self._restart()
            return
        self._rebase_cycles()
        self.vclock.advance(result.virtual_seconds)
        self._event("recovered", "sampled detection handled cleanly")

    def _handle_vsef_block(self, blocked: AttackDetected):
        """An antibody fired: clean block, no corruption, cheap recovery."""
        detection = detection_from_vsef(blocked, self.clock,
                                        self.process.current_msg_id)
        self.detections.append(detection)
        self._event("vsef-block", detection.describe())
        drop = {self.process.current_msg_id} \
            if self.process.current_msg_id is not None else set()
        checkpoint = None
        if drop:
            checkpoint = self.checkpoints.before_message(
                self._delivery_index(min(drop)))
        if checkpoint is None:
            checkpoint = self.checkpoints.latest()
        if checkpoint is None:
            return
        try:
            result = self.recovery.recover(self.process, self.proxy,
                                           self.checkpoints, checkpoint,
                                           drop)
        except RecoveryFailed as failed:
            self._event("recovery:restart", str(failed))
            self._restart()
            return
        self._rebase_cycles()
        self.vclock.advance(result.virtual_seconds)
        if drop:
            self.proxy.mark_malicious(sorted(drop))

    # -- antibody management ---------------------------------------------------------------

    def _vsef_key(self, vsef: VSEF) -> tuple:
        return vsef_key(vsef)

    def _install_new(self, vsefs: list[VSEF]) -> list[VSEF]:
        installed = []
        for vsef in vsefs:
            key = self._vsef_key(vsef)
            if key in self._vsef_keys:
                continue
            self._vsef_keys.add(key)
            vsef.app = self.app_name
            self._installed.append(install_vsef(vsef, self.process))
            self.antibodies.append(vsef)
            installed.append(vsef)
        return installed

    def apply_foreign_vsefs(self, vsefs: list[VSEF]) -> list[VSEF]:
        """Apply antibodies received from the community (consumer role)."""
        return self._install_new(vsefs)

    def apply_bundle(self, bundle: AntibodyBundle,
                     verifier=None) -> BundleOutcome:
        """Apply one community bundle, verifying it in a sandbox first.

        The §3.3 consumer delivery path.  When ``config.verify_foreign``
        is on and the bundle carries its exploit input, the bundle
        replays in a sandboxed fork of the clean program (``verifier``,
        a :class:`~repro.antibody.verify.SandboxVerifier`, shares one
        boot across bundles and consumers; without one a throwaway
        sandbox is booted).  A bundle whose input is *not* detected —
        or whose signatures do not match its own attack input — is
        rejected — logged, nothing installed, no signature added — so a
        tampered bundle can neither plant a bogus filter (denial of
        service on benign traffic) nor masquerade as protection.  Early
        bundles without the input yet apply their VSEFs immediately (a
        bogus VSEF only wastes cycles, §3.3) and verify when the input
        arrives; any *signatures* such a bundle carries are withheld —
        a filter cannot be validated without the attack it claims to
        block, and the producer protocol always pairs signatures with
        their input.

        Verification runs off the service path (its cost is host wall
        clock, not consumer virtual time), matching the paper's
        "verify when convenient" discipline.
        """
        verified = None
        signatures = list(bundle.signatures)
        if self.config.verify_foreign:
            if bundle.exploit_input is not None:
                result = (verifier.verify(self.image, bundle)
                          if verifier is not None
                          else verify_antibody(self.image, bundle))
                if not result.verified:
                    outcome = BundleOutcome(
                        bundle_id=bundle.bundle_id, stage=bundle.stage,
                        verified=False, detail=result.detail)
                    self.bundle_log.append(outcome)
                    self._event("antibody:rejected",
                                f"bundle "
                                f"{bundle.bundle_id or '<unpublished>'} "
                                f"failed sandbox verification: "
                                f"{result.detail}")
                    return outcome
                verified = True
                self._event("antibody:verified",
                            f"bundle {bundle.bundle_id or '<unpublished>'} "
                            f"detected by {result.detected_by} in sandbox")
            elif signatures:
                # No input means no verification: VSEFs still apply (a
                # bogus one only wastes cycles) but a filter that cannot
                # be checked against its attack is exactly the forged
                # benign-traffic DoS, so the signatures are withheld.
                signatures = []
                self._event("antibody:signatures-withheld",
                            f"bundle {bundle.bundle_id or '<unpublished>'} "
                            f"carries signatures but no exploit input; "
                            f"filters withheld pending a verifiable bundle")
        applied = self.apply_foreign_vsefs(bundle.vsefs)
        for signature in signatures:
            self.proxy.signatures.add(signature)
        outcome = BundleOutcome(
            bundle_id=bundle.bundle_id, stage=bundle.stage,
            verified=verified, vsefs=applied,
            signatures=len(signatures))
        self.bundle_log.append(outcome)
        return outcome

    # -- introspection ------------------------------------------------------------------------
    # The accessors below are the Sweeper's *serialization-boundary*
    # surface: everything a fleet coordinator needs to know about a node
    # hosted in another process, reduced to plain picklable values so a
    # worker can ship them in one finalize message (and the in-process
    # fleet reads the same accessors, keeping both paths honest).

    @property
    def boot_count(self) -> int:
        """How many times this node booted: 1, plus one per restart.

        Each eager-or-golden boot logs exactly one ``boot`` event, so
        the event log is the authoritative count — which is what lets a
        coordinator replay this node's golden-cache traffic (initial
        layout, then the restart path's ``seed + 1`` layout per extra
        boot) without sharing the cache object across processes."""
        return sum(1 for event in self.events if event.kind == "boot")

    def first_attack_latency(self) -> tuple[float, float | None] | None:
        """``(detected_at, first_vsef_at)`` of the *first* analyzed
        attack, or None when no attack ran — the producer-side numbers
        behind the fleet's γ₁ measurement, detached from the live
        :class:`AttackRecord` graph so they cross process boundaries."""
        if not self.attacks:
            return None
        record = self.attacks[0]
        return (record.detected_at, record.first_vsef_at)

    def installed_vsef_keys(self) -> frozenset:
        """The identity keys (:func:`vsef_key`) of every installed
        antibody — the deduplication state the executable spec
        (:mod:`repro.spec.delivery`) checks refinement against."""
        return frozenset(self._vsef_keys)

    def active_signature_ids(self) -> tuple[str, ...]:
        """``sig_id`` of every filter on the proxy, in install order
        (exact then token, mirroring the proxy's match order)."""
        return tuple(s.sig_id for s in self.proxy.signatures.exact) \
            + tuple(s.sig_id for s in self.proxy.signatures.token)

    def bundle_outcome_counts(self) -> tuple[int, int, int]:
        """``(verified, rejected, deferred)`` over the bundle log —
        the consumer-side verification tallies as plain ints."""
        verified = rejected = deferred = 0
        for outcome in self.bundle_log:
            if outcome.verified is True:
                verified += 1
            elif outcome.verified is False:
                rejected += 1
            else:
                deferred += 1
        return verified, rejected, deferred

    def memory_page_identities(self) -> set[int]:
        """Identity set of every page this node holds — live memory plus
        all checkpoint snapshots.  COW-shared pages (golden forks,
        clean-interval checkpoints) appear once however many holders
        reference them, which is exactly what the fleet's sharing-factor
        accounting sums per node and unions across a fleet (or across
        one worker's slice of it)."""
        pages = self.process.memory.page_identities()
        for checkpoint in self.checkpoints.checkpoints:
            pages |= checkpoint.snapshot.memory.page_identities()
        return pages

    def stats(self) -> dict:
        cpu = self.process.cpu
        return {
            "virtual_time": self.clock,
            "requests_seen": len(self.proxy.log),
            "requests_filtered": self.proxy.filtered_count,
            "attacks_handled": len(self.attacks),
            "detections": len(self.detections),
            "antibodies": len(self.antibodies),
            "checkpoints_taken": self.checkpoints.total_taken,
            "checkpoint_cost_seconds":
                self.checkpoints.total_cost_cycles / CPU_HZ,
            # Execution-core introspection: how much of the guest is
            # served by the predecoded fast path, and how much memory
            # churn the last checkpoint interval saw.
            "predecoded_insns": cpu.predecoded_count,
            "cow_page_copies": self.process.memory.cow_copies,
            "dirty_pages_last_checkpoint":
                self.checkpoints.last_dirty_pages,
        }
