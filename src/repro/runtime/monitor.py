"""Lightweight monitoring: fault classification and detection records.

Monitoring against *generic* attacks is free-riding on address-space
randomization: a hijack lands in unmapped memory and the resulting fault
is the detection signal.  Monitoring against *specific* (known) attacks
is done by deployed antibodies — signature filters at the proxy and
VSEFs in the CPU check table — which raise
:class:`~repro.errors.AttackDetected` cleanly instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (AttackDetected, FAULT_BADPC, FAULT_DIVZERO,
                          FAULT_ILLEGAL, FAULT_NULL, VMFault)


@dataclass
class Detection:
    """One attack detection event."""

    kind: str                  # "crash" (ASLR/fault) | "vsef" | "filter"
    virtual_time: float
    msg_id: int | None
    fault: VMFault | None = None
    vsef_id: str | None = None
    signature_id: str | None = None
    suspicion: str = ""

    def describe(self) -> str:
        if self.kind == "crash":
            return f"lightweight monitor tripped: {self.suspicion}"
        if self.kind == "vsef":
            return f"VSEF {self.vsef_id} blocked the request"
        return f"input filter {self.signature_id} dropped the request"


def classify_fault(fault: VMFault) -> str:
    """A one-line suspicion classification for the event log."""
    if fault.kind == FAULT_NULL:
        return "NULL-pointer dereference"
    if fault.kind in (FAULT_BADPC, FAULT_ILLEGAL):
        return ("wild control transfer (consistent with a hijack defeated "
                "by address-space randomization)")
    if fault.kind == FAULT_DIVZERO:
        return "arithmetic fault"
    return "invalid memory access (possible overflow under randomization)"


def detection_from_fault(fault: VMFault, virtual_time: float,
                         msg_id: int | None) -> Detection:
    return Detection(kind="crash", virtual_time=virtual_time, msg_id=msg_id,
                     fault=fault, suspicion=classify_fault(fault))


def detection_from_vsef(blocked: AttackDetected, virtual_time: float,
                        msg_id: int | None) -> Detection:
    return Detection(kind="vsef", virtual_time=virtual_time, msg_id=msg_id,
                     vsef_id=blocked.vsef_id, suspicion=blocked.reason)
