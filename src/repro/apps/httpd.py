"""``httpd`` — the Apache 1.3.x stand-in, carrying two real bug analogues.

**Apache1 (CVE-2003-0542)**: ``try_alias_list`` copies the request path
into a fixed 72-byte stack buffer with an unbounded byte-copy loop
(``lmatcher``), exactly the shape of the mod_alias/mod_rewrite overflow.
A long path overwrites the saved frame pointer and return address; the
paper's Table 2 blames the copying store (their ``0x808c3ee lmatcher``)
and protects ``try_alias_list``'s return address.

**Apache2 (CVE-2003-1054)**: a ``Referer:`` header whose URL has an
*empty* host (``ftp://`` / ``http://`` with nothing after the scheme)
reaches ``is_ip`` with a NULL pointer, matching Table 2's
"crash at is_ip; accessing NULL pointer" and its
``Referer: (ftp://|http://){0}?`` signature.

The binary also contains ``backdoor``, a tiny "shell" gadget at a fixed
text offset: the stack-smash exploit targets its *reference-layout*
address, so on an unrandomized host the hijack genuinely succeeds (the
worm "owns" the server), while under ASLR it faults — which is the
lightweight detection the whole system builds on.
"""

from __future__ import annotations

from repro.isa.assembler import Image, assemble

#: Stack buffer size in try_alias_list; paths shorter than this are safe.
ALIAS_BUF_SIZE = 72
#: Fixed text offset of the backdoor gadget (pinned by padding below so
#: exploit payloads stay stable as the rest of the program evolves).
BACKDOOR_OFFSET = 0x105

HTTPD_SOURCE = r"""
; httpd -- Apache 1.3.x analogue (see module docstring)
.equ REQMAX 8192

.text
main:
    jmp start

pad: .space 256                 ; pins backdoor at a stable text offset

; What a successful control-flow hijack reaches: the "shell".
backdoor:
    mov r0, owned_str
    mov r1, 7
    sys send
    mov r0, 0
    sys exit

start:
    ; boot work: allocate the document cache
    mov r0, 2048
    call @malloc
    mov r1, doccache
    st [r1], r0

mainloop:
    mov r0, reqbuf
    mov r1, REQMAX
    sys recv
    cmp r0, 0
    je mainloop
    ; NUL-terminate the request
    mov r1, reqbuf
    add r1, r0
    mov r2, 0
    stb [r1], r2
    call handle_request
    jmp mainloop

; ---------------------------------------------------------------------
handle_request:
    push fp
    mov fp, sp
    push r4
    push r5
    ; method must be "GET "
    mov r0, reqbuf
    mov r1, get_str
    mov r2, 4
    call @strncmp
    cmp r0, 0
    jne hr_bad
    ; resolve the path against the alias list (Apache1 vulnerability)
    mov r0, reqbuf
    add r0, 4
    call try_alias_list
    mov r4, r0                  ; page id
    ; Referer handling (Apache2 vulnerability)
    mov r0, reqbuf
    mov r1, referer_str
    call @strstr
    cmp r0, 0
    je hr_respond
    add r0, 9                   ; skip "Referer: "
    mov r5, r0
    mov r1, http_str
    mov r2, 7
    call @strncmp
    cmp r0, 0
    jne hr_try_ftp
    mov r0, r5
    add r0, 7
    jmp hr_hostcheck
hr_try_ftp:
    mov r0, r5
    mov r1, ftp_str
    mov r2, 6
    call @strncmp
    cmp r0, 0
    jne hr_respond              ; unrecognized scheme: ignore referer
    mov r0, r5
    add r0, 6
hr_hostcheck:
    ; empty host -> the buggy lookup yields NULL (CVE-2003-1054 analogue)
    ldb r1, [r0]
    cmp r1, 0
    je hr_nullhost
    cmp r1, 10
    je hr_nullhost
    cmp r1, 13
    je hr_nullhost
    jmp hr_isip
hr_nullhost:
    mov r0, 0
hr_isip:
    call is_ip                  ; NULL dereference inside when r0 == 0

hr_respond:
    ; per-request heap churn: log entry
    mov r0, 48
    call @malloc
    mov r5, r0
    mov r1, reqbuf
    mov r2, 47
    call @strncpy
    mov r0, r5
    call @free
    ; page 1 = index, anything else = generic page
    cmp r4, 1
    je hr_index
    mov r0, generic_page
    mov r1, 192
    sys send
    jmp hr_out
hr_index:
    mov r0, index_page
    mov r1, 192
    sys send
    jmp hr_out
hr_bad:
    mov r0, badreq_str
    mov r1, 16
    sys send
hr_out:
    pop r5
    pop r4
    mov sp, fp
    pop fp
    ret

; ---------------------------------------------------------------------
; try_alias_list: match path (r0) against the alias table.
; CVE-2003-0542 analogue: the copy loop is unbounded, the buffer is 72
; bytes below fp -- a long path reaches the saved fp and return address.
try_alias_list:
    push fp
    mov fp, sp
    sub sp, 72                  ; char buf[72]
    mov r1, r0                  ; src cursor
    mov r2, fp
    sub r2, 72                  ; dst cursor
lmatcher:                       ; the paper's blamed copy loop
    ldb r3, [r1]
    cmp r3, 0
    je lm_done
    cmp r3, ' '
    je lm_done
    stb [r2], r3                ; <- the overflowing store
    add r1, 1
    add r2, 1
    jmp lmatcher
lm_done:
    mov r3, 0
    stb [r2], r3
    ; alias lookups
    mov r0, fp
    sub r0, 72
    mov r1, alias_root
    call @strcmp
    cmp r0, 0
    je tal_hit
    mov r0, fp
    sub r0, 72
    mov r1, alias_index
    call @strcmp
    cmp r0, 0
    je tal_hit
    mov r0, 2                   ; no alias: generic page
    jmp tal_out
tal_hit:
    mov r0, 1
tal_out:
    mov sp, fp
    pop fp
    ret                         ; <- hijacked return when smashed

; ---------------------------------------------------------------------
; is_ip: does host (r0) look like a dotted quad?  No NULL check.
is_ip:
    push fp
    mov fp, sp
    ldb r1, [r0]                ; <- CVE-2003-1054 analogue: NULL deref
    cmp r1, '0'
    jl ii_no
    cmp r1, '9'
    jg ii_no
    mov r0, 1
    jmp ii_out
ii_no:
    mov r0, 0
ii_out:
    mov sp, fp
    pop fp
    ret

.data
get_str:      .asciiz "GET "
referer_str:  .asciiz "Referer: "
http_str:     .asciiz "http://"
ftp_str:      .asciiz "ftp://"
alias_root:   .asciiz "/"
alias_index:  .asciiz "/index.html"
owned_str:    .asciiz "OWNED!"
badreq_str:   .asciiz "HTTP/1.0 400 Bad"
index_page:   .asciiz "HTTP/1.0 200 OK\n\nWelcome to the index page of the reproduction httpd server. It intentionally mirrors the behaviour of Apache 1.3.x for the Sweeper evaluation workloads, nothing more."
generic_page: .asciiz "HTTP/1.0 200 OK\n\nGeneric content page served by the reproduction httpd server. The body length is fixed so that throughput numbers are comparable across request streams.."
doccache:     .word 0
reqbuf:       .space 8200
"""


def build_httpd() -> Image:
    """Assemble the httpd image (entry ``main``)."""
    image = assemble(HTTPD_SOURCE)
    section, offset = image.symbols["backdoor"]
    assert section == "text" and offset == BACKDOOR_OFFSET, \
        f"backdoor moved to {offset:#x}; update BACKDOOR_OFFSET"
    return image
