"""Benign request streams and the throughput harness (§5.3's workload).

``benign_requests`` generates realistic traffic per application;
``measure_throughput`` drives it through either a raw (unprotected)
process or a full Sweeper deployment and reports virtual-time
throughput, which is what Figures 4 and 5 plot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.machine.cpu import CPU_HZ
from repro.machine.process import Process
from repro.runtime.sweeper import Sweeper, SweeperConfig

_HTTPD_PATHS = ["/", "/index.html", "/about", "/docs/guide",
                "/static/logo.png", "/api/status"]
_HTTPD_REFERERS = ["http://example.com/", "http://news.site/today",
                   "ftp://mirror.site/pub", ""]
_SQUID_SITES = ["http://example.com/page", "http://cache.test/obj",
                "http://mirror.site/dist/file.tgz"]
_SQUID_FTP_USERS = ["anonymous", "builder", "mirror01", "fetch"]
_CVS_DIRS = ["/src", "/src/module", "/src/module/alpha", "/docs", "/tools"]
_CVS_ENTRIES = ["main.c", "util.c", "README", "Makefile", "parse.y"]


def _benign_request(app: str, rng: random.Random, index: int) -> bytes:
    """One benign request for ``app``, drawn from ``rng``.

    The draw order per request is part of the format: streams and batch
    generation share it, so a seed names the same traffic everywhere.
    """
    if app == "httpd":
        path = rng.choice(_HTTPD_PATHS)
        referer = rng.choice(_HTTPD_REFERERS)
        request = f"GET {path} HTTP/1.0\n"
        if referer:
            request += f"Referer: {referer}\n"
        request += "User-Agent: repro-bench\n"
        return request.encode()
    if app == "squidp":
        if rng.random() < 0.25:
            user = rng.choice(_SQUID_FTP_USERS)
            return f"GET ftp://{user}@ftp.site/pub/file{index}".encode()
        return f"GET {rng.choice(_SQUID_SITES)}?r={index}".encode()
    if app == "cvsd":
        roll = rng.random()
        if roll < 0.4:
            return f"Directory {rng.choice(_CVS_DIRS)}\n".encode()
        if roll < 0.8:
            return f"Entry {rng.choice(_CVS_ENTRIES)}\n".encode()
        return b"noop\n"
    raise KeyError(f"unknown app {app!r}")


class TrafficStream:
    """Seeded, unbounded benign-request stream for one app.

    Every fleet node owns one (with a node-specific seed), so per-node
    traffic is independent yet the whole fleet replays from a single
    configuration seed.  ``benign_requests`` is the batch view of the
    same generator.
    """

    def __init__(self, app: str, seed: int = 11):
        if app not in ("httpd", "squidp", "cvsd"):
            raise KeyError(f"unknown app {app!r}")
        self.app = app
        self.seed = seed
        self._rng = random.Random(seed)
        self.generated = 0

    def next_request(self) -> bytes:
        data = _benign_request(self.app, self._rng, self.generated)
        self.generated += 1
        return data

    def take(self, count: int) -> list[bytes]:
        return [self.next_request() for _ in range(count)]


def benign_requests(app: str, count: int, seed: int = 11) -> list[bytes]:
    """``count`` benign requests for ``app`` ∈ {httpd, squidp, cvsd}."""
    return TrafficStream(app, seed=seed).take(count)


@dataclass
class ThroughputResult:
    """Virtual-time throughput of one run."""

    requests: int
    responses: int
    bytes_in: int
    bytes_out: int
    virtual_seconds: float
    protected: bool

    @property
    def mbps(self) -> float:
        """Megabits per virtual second, counting both directions (the
        paper reports Squid client-perceived throughput in Mbps)."""
        if self.virtual_seconds <= 0:
            return 0.0
        return (self.bytes_in + self.bytes_out) * 8 / self.virtual_seconds \
            / 1e6

    @property
    def requests_per_second(self) -> float:
        if self.virtual_seconds <= 0:
            return 0.0
        return self.requests / self.virtual_seconds


def measure_throughput(image, requests: list[bytes],
                       config: SweeperConfig | None = None,
                       protected: bool = True,
                       seed: int = 0,
                       per_request_work_cycles: int = 0
                       ) -> ThroughputResult:
    """Serve ``requests`` and measure virtual-time throughput.

    ``protected=True`` runs the full Sweeper stack (checkpointing +
    monitors); ``protected=False`` runs the bare process, the baseline
    every overhead figure compares against.

    ``per_request_work_cycles`` models the service work a production
    server performs beyond our miniature guests' parsing (cache lookups,
    disk transfers); it keeps the virtual machine saturated so that
    checkpoint cost competes with real work, as on the paper's testbed.
    """
    bytes_in = sum(len(r) for r in requests)
    if protected:
        sweeper = Sweeper(image, config=config or SweeperConfig(seed=seed))
        start = sweeper.clock
        bytes_out = 0
        responses = 0
        for request in requests:
            for response in sweeper.submit(request):
                bytes_out += len(response)
                responses += 1
            if per_request_work_cycles:
                sweeper.advance_busy(per_request_work_cycles)
        elapsed = sweeper.clock - start
        return ThroughputResult(requests=len(requests), responses=responses,
                                bytes_in=bytes_in, bytes_out=bytes_out,
                                virtual_seconds=elapsed, protected=True)
    process = Process(image, seed=seed)
    process.run(max_steps=50_000_000)     # boot to first recv
    start_cycles = process.cpu.cycles
    bytes_out = 0
    responses = 0
    for request in requests:
        sent_before = len(process.sent)
        process.feed(request)
        process.run(max_steps=50_000_000)
        process.cpu.cycles += per_request_work_cycles
        for sent in process.sent[sent_before:]:
            bytes_out += len(sent.data)
            responses += 1
    elapsed = (process.cpu.cycles - start_cycles) / CPU_HZ
    return ThroughputResult(requests=len(requests), responses=responses,
                            bytes_in=bytes_in, bytes_out=bytes_out,
                            virtual_seconds=elapsed, protected=False)
