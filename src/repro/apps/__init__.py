"""The evaluation workloads: three servers, four vulnerabilities (Table 1).

Each server is written in the reproduction's assembly and re-creates one
of the paper's real-world targets, with a faithful analogue of the CVE it
was attacked through:

====================  =============  ==============  =====================
module                paper target   CVE             bug class
====================  =============  ==============  =====================
:mod:`repro.apps.httpd`   Apache 1.3.27  CVE-2003-0542   stack smashing
:mod:`repro.apps.httpd`   Apache 1.3.12  CVE-2003-1054   NULL dereference
:mod:`repro.apps.cvsd`    cvs 1.11.4     CVE-2003-0015   double free
:mod:`repro.apps.squidp`  squid 2.3      CVE-2002-0068   heap overflow
====================  =============  ==============  =====================

:mod:`repro.apps.exploits` builds the attack payloads (including
polymorphic variants) and :mod:`repro.apps.workload` generates benign
request streams and measures throughput.
"""

from repro.apps.httpd import HTTPD_SOURCE, build_httpd
from repro.apps.squidp import SQUIDP_SOURCE, build_squidp
from repro.apps.cvsd import CVSD_SOURCE, build_cvsd
from repro.apps.exploits import (APP_EXPLOITS, EXPLOITS, ExploitSpec,
                                 ExploitStream, apache1_exploit,
                                 apache2_exploit, cvs_exploit, squid_exploit)
from repro.apps.workload import (benign_requests, ThroughputResult,
                                 TrafficStream, measure_throughput)

__all__ = [
    "HTTPD_SOURCE", "build_httpd",
    "SQUIDP_SOURCE", "build_squidp",
    "CVSD_SOURCE", "build_cvsd",
    "APP_EXPLOITS", "EXPLOITS", "ExploitSpec", "ExploitStream",
    "apache1_exploit", "apache2_exploit", "cvs_exploit", "squid_exploit",
    "benign_requests", "ThroughputResult", "TrafficStream",
    "measure_throughput",
]
