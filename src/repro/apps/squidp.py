"""``squidp`` — the Squid 2.3 stand-in with CVE-2002-0068 (Fig. 2).

``ftpBuildTitleUrl`` reproduces the paper's walkthrough exactly:

1. ``t = xcalloc(64 + strlen(user), 1)`` — the undersized title buffer;
2. ``buf = rfc1738_escape_part(user)`` — allocates ``strlen(user)*3 + 1``
   and %-escapes every non-alphanumeric byte (3x expansion);
3. ``strcat(t, buf)`` — unbounded, so a user string with many escaped
   characters overflows ``t``.

Crash mode matches the paper: the escape buffer is large enough to be
mmap'd away from the main arena (glibc behaviour our allocator mirrors),
a small connection-scratch block sits between ``t`` and the brk (so the
overflow clobbers heap metadata → "heap inconsistent"), and the copy
finally runs off the arena's last mapped page → SEGV *inside lib strcat*
called by ``ftpBuildTitleUrl`` — Table 2's
``0x4f0f0907 (lib. strcat)`` / ``0x804ee82 (ftpBuildTitleUrl)`` row.

Benign FTP URLs (short or mostly-alphanumeric user parts) fit ``t``
comfortably; plain HTTP requests take the proxy fast path.
"""

from __future__ import annotations

from repro.isa.assembler import Image, assemble

SQUIDP_SOURCE = r"""
; squidp -- Squid 2.3 analogue (see module docstring)
.equ REQMAX 16384

.text
main:
    ; boot: warm the cache index
    mov r0, 2048
    call @malloc
    mov r1, cache_ptr
    st [r1], r0

sq_loop:
    mov r0, reqbuf
    mov r1, REQMAX
    sys recv
    cmp r0, 0
    je sq_loop
    mov r1, reqbuf
    add r1, r0
    mov r2, 0
    stb [r1], r2
    call handle_sq
    jmp sq_loop

; ---------------------------------------------------------------------
handle_sq:
    push fp
    mov fp, sp
    push r4
    push r5
    mov r0, reqbuf
    mov r1, get_str
    mov r2, 4
    call @strncmp
    cmp r0, 0
    jne hs_bad
    mov r4, reqbuf
    add r4, 4                   ; url
    mov r0, r4
    mov r1, ftp_scheme
    mov r2, 6
    call @strncmp
    cmp r0, 0
    jne hs_http
    ; --- FTP path: build the title URL (the vulnerable path) ---
    mov r0, r4
    call ftpBuildTitleUrl       ; returns heap title string
    mov r4, r0
    call @strlen
    mov r1, r0
    mov r0, r4
    sys send                    ; respond with the title
    mov r0, r4
    call @free
    jmp hs_out
hs_http:
    ; --- plain proxy path: log-entry churn + canned response ---
    mov r0, 64
    call @malloc
    mov r5, r0
    mov r1, r4
    mov r2, 63
    call @strncpy
    mov r0, r5
    call @free
    mov r0, proxy_resp
    mov r1, 160
    sys send
    jmp hs_out
hs_bad:
    mov r0, bad_str
    mov r1, 12
    sys send
hs_out:
    pop r5
    pop r4
    mov sp, fp
    pop fp
    ret

; ---------------------------------------------------------------------
; ftpBuildTitleUrl: r0 = "ftp://user@host/..." -> heap title string.
; This is Fig. 2 of the paper, line for line.
ftpBuildTitleUrl:
    push fp
    mov fp, sp
    push r4
    push r5
    push r6
    push r7
    mov r4, r0                  ; url
    ; find the '@' delimiting the user part
    mov r0, r4
    add r0, 6
    mov r1, '@'
    call @strchr
    cmp r0, 0
    je fb_nouser
    mov r5, r0                  ; position of '@'
    mov r6, r4
    add r6, 6                   ; user start
    mov r7, r5
    sub r7, r6                  ; user length
    ; user = malloc(len+1); memcpy; terminate
    mov r0, r7
    add r0, 1
    call @malloc
    push r0
    mov r1, r6
    mov r2, r7
    call @memcpy
    pop r0
    mov r6, r0                  ; r6 = user (heap copy)
    add r0, r7
    mov r1, 0
    stb [r0], r1
    ; (1) len = 64 + strlen(user); t = xcalloc(len, 1)
    mov r0, r6
    call @strlen
    mov r7, r0
    add r0, 64
    mov r1, 1
    call @calloc
    mov r5, r0                  ; r5 = t
    ; connection bookkeeping allocated after t (sits before brk)
    mov r0, 32
    call @malloc
    mov r1, conn_scratch
    st [r1], r0
    ; strcpy(t, "ftp://")
    mov r0, r5
    mov r1, ftp_scheme
    call @strcpy
    ; (2) buf = rfc1738_escape_part(user)
    mov r0, r6
    call rfc1738_escape_part
    push r0
    ; (3) strcat(t, buf)   <- CVE-2002-0068: t overflows in lib strcat
    mov r1, r0
    mov r0, r5
    call @strcat
    ; cleanup
    pop r0
    call @free                  ; buf
    mov r1, conn_scratch
    ld r0, [r1]
    call @free                  ; scratch
    mov r0, r6
    call @free                  ; user
    mov r0, r5                  ; return t
    jmp fb_out
fb_nouser:
    ; no user part: title is just a copy of the url
    mov r0, r4
    call @strlen
    add r0, 1
    call @malloc
    mov r1, r4
    call @strcpy
fb_out:
    pop r7
    pop r6
    pop r5
    pop r4
    mov sp, fp
    pop fp
    ret

; ---------------------------------------------------------------------
; rfc1738_escape_part: r0 = string -> heap string with %XX escapes.
; bufsize = strlen(user)*3 + 1  (Fig. 2 step 2)
rfc1738_escape_part:
    push fp
    mov fp, sp
    push r4
    push r5
    push r6
    push r7
    mov r4, r0
    call @strlen
    mov r5, r0
    mul r0, 3
    add r0, 1
    mov r1, 1
    call @calloc
    mov r6, r0                  ; buf
    mov r7, r6                  ; out cursor
rep_loop:
    ldb r1, [r4]
    cmp r1, 0
    je rep_done
    cmp r1, '0'
    jl rep_esc
    cmp r1, '9'
    jle rep_copy
    cmp r1, 'A'
    jl rep_esc
    cmp r1, 'Z'
    jle rep_copy
    cmp r1, 'a'
    jl rep_esc
    cmp r1, 'z'
    jle rep_copy
    jmp rep_esc
rep_copy:
    stb [r7], r1
    add r7, 1
    jmp rep_next
rep_esc:
    mov r2, '%'
    stb [r7], r2
    add r7, 1
    mov r2, r1
    shr r2, 4
    mov r3, hexdigits
    add r3, r2
    ldb r2, [r3]
    stb [r7], r2
    add r7, 1
    mov r2, r1
    and r2, 15
    mov r3, hexdigits
    add r3, r2
    ldb r2, [r3]
    stb [r7], r2
    add r7, 1
rep_next:
    add r4, 1
    jmp rep_loop
rep_done:
    mov r1, 0
    stb [r7], r1
    mov r0, r6
    pop r7
    pop r6
    pop r5
    pop r4
    mov sp, fp
    pop fp
    ret

.data
get_str:      .asciiz "GET "
ftp_scheme:   .asciiz "ftp://"
hexdigits:    .asciiz "0123456789ABCDEF"
bad_str:      .asciiz "400 invalid"
proxy_resp:   .asciiz "HTTP/1.0 200 OK\nVia: squidp reproduction proxy\n\nCached object body follows; the byte count of this canned answer is held constant for the throughput benchmarks."
cache_ptr:    .word 0
conn_scratch: .word 0
reqbuf:       .space 16392
"""


def build_squidp() -> Image:
    """Assemble the squidp image (entry ``main``)."""
    return assemble(SQUIDP_SOURCE)
