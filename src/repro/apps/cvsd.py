"""``cvsd`` — the CVS 1.11.4 stand-in with CVE-2003-0015 (double free).

The real bug: CVS's ``dirswitch`` error handling freed the current
directory buffer and then, on a malformed ``Directory`` request, the
cleanup path freed it again — with attacker-controlled bytes written
into the stale buffer in between, turning the second ``free`` into a
wild pointer dereference inside libc.

The analogue here does exactly that: a ``Directory`` argument starting
with ``..`` takes the error path, which (a) frees ``cur_dir``, (b) logs
the offending path into the now-freed buffer (the use-after-free write
that plants the attacker's bytes over the free-list link) and (c) runs
the generic cleanup, freeing ``cur_dir`` a second time.  ``free`` chases
the planted link and faults — Table 2's "Crash at 0x4f0eaaa0 (lib.
free); heap inconsistent / Double free by dirswitch" row.

Benign ``Directory``/``Entry``/``noop`` requests maintain a heap-backed
current-directory string, giving the workload realistic allocator churn.
"""

from __future__ import annotations

from repro.isa.assembler import Image, assemble

CVSD_SOURCE = r"""
; cvsd -- CVS 1.11.4 analogue (see module docstring)
.equ REQMAX 4096

.text
main:
    ; boot: cur_dir = strdup("/")
    mov r0, 8
    call @malloc
    mov r1, root_str
    call @strcpy
    mov r1, cur_dir
    st [r1], r0

cvs_loop:
    mov r0, reqbuf
    mov r1, REQMAX
    sys recv
    cmp r0, 0
    je cvs_loop
    mov r1, reqbuf
    add r1, r0
    mov r2, 0
    stb [r1], r2
    call handle_cvs
    jmp cvs_loop

; ---------------------------------------------------------------------
handle_cvs:
    push fp
    mov fp, sp
    mov r0, reqbuf
    mov r1, dir_cmd
    mov r2, 10
    call @strncmp
    cmp r0, 0
    je hc_dir
    mov r0, reqbuf
    mov r1, entry_cmd
    mov r2, 6
    call @strncmp
    cmp r0, 0
    je hc_entry
    ; anything else: treat as noop
    mov r0, ok_str
    mov r1, 3
    sys send
    jmp hc_out
hc_entry:
    ; record the entry in a scratch log (heap churn)
    mov r0, 48
    call @malloc
    mov r2, r0
    mov r1, reqbuf
    push r2
    mov r2, 47
    call @strncpy
    pop r0
    call @free
    mov r0, ok_str
    mov r1, 3
    sys send
    jmp hc_out
hc_dir:
    mov r0, reqbuf
    add r0, 10
    call dirswitch
    mov r0, ok_str
    mov r1, 3
    sys send
hc_out:
    mov sp, fp
    pop fp
    ret

; ---------------------------------------------------------------------
; dirswitch: r0 = directory argument.
; CVE-2003-0015 analogue lives in the error path.
dirswitch:
    push fp
    mov fp, sp
    push r4
    push r5
    mov r4, r0
    ; malformed? (paths escaping the repository start with "..")
    mov r1, dotdot
    mov r2, 2
    call @strncmp
    cmp r0, 0
    je ds_error
    ; normal switch: cur_dir = strdup(arg); free(old)
    mov r0, r4
    call @strlen
    add r0, 1
    call @malloc
    mov r5, r0
    mov r1, r4
    call @strcpy
    mov r1, cur_dir
    ld r0, [r1]
    call @free
    mov r1, cur_dir
    st [r1], r5
    jmp ds_out
ds_error:
    ; (a) error cleanup frees the current directory buffer ...
    mov r1, cur_dir
    ld r0, [r1]
    call @free
    ; (b) ... then "logs" the offending path into the stale buffer
    ;     (use-after-free write planting attacker bytes on the free link)
    mov r1, cur_dir
    ld r0, [r1]
    mov r1, r4
    call @strcpy
    ; (c) ... and the generic request cleanup frees it AGAIN.
    mov r1, cur_dir
    ld r0, [r1]
    call @free                  ; <- double free: SEGV inside lib free
ds_out:
    pop r5
    pop r4
    mov sp, fp
    pop fp
    ret

.data
dir_cmd:   .asciiz "Directory "
entry_cmd: .asciiz "Entry "
dotdot:    .asciiz ".."
root_str:  .asciiz "/"
ok_str:    .asciiz "ok\n"
cur_dir:   .word 0
reqbuf:    .space 4104
"""


def build_cvsd() -> Image:
    """Assemble the cvsd image (entry ``main``)."""
    return assemble(CVSD_SOURCE)
