#!/usr/bin/env python3
"""Protect your own server: write it in assembly, break it, watch
Sweeper heal it.

This example builds a small key-value store with a classic bug — an
unbounded copy of the key into a fixed stack buffer — and puts it under
Sweeper protection.  It is the "bring your own application" walkthrough:
nothing here is specific to the three bundled evaluation servers.

Run:  python examples/custom_server.py
"""

from repro import Sweeper, SweeperConfig, assemble

KVSTORE_SOURCE = r"""
; kvstore: "SET key value" / "GET key" over the message protocol.
; Bug: parse_key copies the key into a 24-byte stack buffer with no
; bounds check.
.equ KEYBUF 24

.text
main:
    ; value storage: one heap slot
    mov r0, 128
    call @malloc
    mov r1, slot
    st [r1], r0

loop:
    mov r0, req
    mov r1, 512
    sys recv
    cmp r0, 0
    je loop
    mov r1, req
    add r1, r0
    mov r2, 0
    stb [r1], r2
    call handle
    jmp loop

handle:
    push fp
    mov fp, sp
    mov r0, req
    mov r1, set_cmd
    mov r2, 4
    call @strncmp
    cmp r0, 0
    je do_set
    mov r0, req
    mov r1, get_cmd
    mov r2, 4
    call @strncmp
    cmp r0, 0
    je do_get
    mov r0, err_str
    mov r1, 4
    sys send
    jmp done
do_set:
    mov r0, req
    add r0, 4
    call parse_key          ; <- vulnerable
    ; store the value (after the space) in the slot
    mov r0, req
    add r0, 4
    mov r1, ' '
    call @strchr
    cmp r0, 0
    je no_value
    add r0, 1
    mov r1, r0
    mov r2, slot
    ld r0, [r2]
    call @strcpy
no_value:
    mov r0, ok_str
    mov r1, 3
    sys send
    jmp done
do_get:
    mov r0, req
    add r0, 4
    call parse_key          ; <- vulnerable
    mov r1, slot
    ld r0, [r1]
    call @strlen
    mov r1, r0
    mov r2, slot
    ld r0, [r2]
    sys send
done:
    mov sp, fp
    pop fp
    ret

; parse_key: copy the key (up to a space) into a 24-byte stack buffer.
parse_key:
    push fp
    mov fp, sp
    sub sp, KEYBUF
    mov r1, r0
    mov r2, fp
    sub r2, KEYBUF
pk_copy:
    ldb r3, [r1]
    cmp r3, 0
    je pk_done
    cmp r3, ' '
    je pk_done
    stb [r2], r3            ; no bounds check!
    add r1, 1
    add r2, 1
    jmp pk_copy
pk_done:
    mov r3, 0
    stb [r2], r3
    mov sp, fp
    pop fp
    ret

.data
set_cmd: .asciiz "SET "
get_cmd: .asciiz "GET "
ok_str:  .asciiz "ok\n"
err_str: .asciiz "err\n"
slot:    .word 0
req:     .space 520
"""


def main():
    print("=== protecting a custom key-value server ===\n")
    image = assemble(KVSTORE_SOURCE)
    sweeper = Sweeper(image, app_name="kvstore",
                      config=SweeperConfig(seed=9))

    print("-- normal operation --")
    for request in (b"SET color blue", b"GET color", b"SET size 42",
                    b"GET size"):
        responses = sweeper.submit(request)
        print(f"  {request!r} -> {responses}")

    print("\n-- attack: a 60-byte key smashes parse_key's frame --")
    exploit = b"SET " + b"K" * 60 + b" boom"
    sweeper.submit(exploit)
    if not sweeper.attacks:
        raise SystemExit("expected an attack record!")
    attack = sweeper.attacks[0]
    print(f"  detection: {attack.detection.describe()}")
    outcome = attack.outcome
    print(f"  crash site: {outcome.coredump.crash_site}")
    print(f"  classification: {outcome.coredump.classification}")
    for report in outcome.membug_reports:
        print(f"  memory bug: {report.describe(sweeper.process)}")
    print(f"  malicious input: messages {outcome.malicious_msg_ids}")
    print("  antibodies:")
    for vsef in attack.vsefs_installed:
        print(f"    {vsef.describe()}")

    print("\n-- after recovery --")
    print(f"  GET color -> {sweeper.submit(b'GET color')}")
    sweeper.submit(exploit)
    print(f"  re-attack: filtered={sweeper.proxy.filtered_count}, "
          f"new crashes={len(sweeper.attacks) - 1}")
    print(f"  GET size  -> {sweeper.submit(b'GET size')}")


if __name__ == "__main__":
    main()
