#!/usr/bin/env python3
"""Executed community fleet (§6): watch a worm race the community.

Boots 26 real Sweeper nodes — 20 vulnerable httpd hosts (4 producers
with full analysis on randomized layouts, 16 unprotected consumers the
worm can genuinely own), plus squidp/cvsd riders — on one shared
CommunityBus, releases a polymorphic Apache1 worm, and prints the
measured t0, gamma and infection ratio next to the Gillespie run the
fleet mirrors draw-for-draw and the ODE prediction.

Run:  python examples/fleet_outbreak.py
"""

from repro.worm.fleet import FleetConfig, run_fleet


def main():
    config = FleetConfig(seed=0)
    print(f"booting {config.total_nodes} nodes "
          f"(N={config.vulnerable_nodes} vulnerable, "
          f"{config.producers} producers, beta={config.beta}/s) ...\n")
    result = run_fleet(config)
    if result.t0 is None:
        print("the worm never reached a producer before the horizon — "
              f"{result.infected_final}/{result.population} hosts owned, "
              "no antibodies produced; try a longer horizon or another seed")
        return

    timeline = []
    for node in result.nodes:
        if node["infected_at"] is not None:
            timeline.append((node["infected_at"], "owned   ", node["name"]))
    timeline.append((result.t0, "detected", "first producer contact"))
    timeline.append((result.availability, "immune  ",
                     "antibodies reach the community"))
    for t, what, who in sorted(timeline):
        print(f"  t={t:8.3f}s  {what}  {who}")

    print(f"\nmeasured gamma = gamma1 ({result.gamma1_first_vsef * 1000:.0f}"
          f" ms to first VSEF) + gamma2 ({config.gamma2:.0f} s) "
          f"= {result.gamma_measured:.3f} s")
    print(f"contacts: {result.contacts} ({result.contacts_blocked} blocked "
          f"by executed antibodies after immunity)")
    print(f"\ninfection ratio   executed {result.infection_ratio:6.2%}   "
          f"gillespie {result.gillespie['infection_ratio']:6.2%}   "
          f"ode {result.model['infection_ratio']:6.2%}"
          if result.model else "")
    print(f"aggregate guest throughput: "
          f"{result.aggregate_insns_per_second:,.0f} insns/s "
          f"({result.wall_seconds:.2f} s wall for the whole outbreak)")


if __name__ == "__main__":
    main()
