#!/usr/bin/env python3
"""Quickstart: protect a server, survive a zero-day, keep serving.

This walks the full Fig. 3 story on the Squid heap overflow
(CVE-2002-0068): benign service, attack detection by the lightweight
monitor, rollback/replay analysis through all four tools, antibody
generation, recovery, and the blocked re-attack.

Run:  python examples/quickstart.py
"""

from repro import Sweeper, SweeperConfig, build_squidp, squid_exploit
from repro.apps.workload import benign_requests


def main():
    print("=== Sweeper quickstart: Squid + CVE-2002-0068 ===\n")
    sweeper = Sweeper(build_squidp(), app_name="squid",
                      config=SweeperConfig(seed=42))
    print(f"server booted; layout: {sweeper.process.layout.describe()}\n")

    print("-- serving benign traffic --")
    for request in benign_requests("squidp", 6):
        responses = sweeper.submit(request)
        print(f"  {request[:48]!r} -> {len(responses)} response(s)")

    print("\n-- the worm strikes --")
    exploit = squid_exploit()
    print(f"  exploit: GET ftp://\\\\...\\\\@ftp.site "
          f"({len(exploit)} bytes)")
    responses = sweeper.submit(exploit)
    print(f"  responses to the exploit: {responses}  (none: it was eaten)")

    attack = sweeper.attacks[0]
    print(f"\n  detection: {attack.detection.describe()}")
    print("\n  analysis pipeline (virtual time, cumulative):")
    outcome = attack.outcome
    for step in outcome.steps:
        print(f"    {step.name:13s} +{step.virtual_seconds * 1000:8.1f} ms "
              f"(cum {step.cumulative_virtual * 1000:8.1f} ms) "
              f" {step.summary[:80]}")
    print(f"\n  malicious input: message(s) {outcome.malicious_msg_ids}")
    print(f"  slicing cross-check: "
          f"{'consistent' if outcome.slice_verified else 'INCONSISTENT'}")

    print("\n  antibodies generated:")
    for vsef in attack.vsefs_installed:
        print(f"    VSEF  {vsef.describe()}   [{vsef.provenance}]")
    for sig_id in attack.signature_ids:
        print(f"    SIG   {sig_id} (exact match on the exploit bytes)")

    recovery = attack.recovery
    print(f"\n  recovery: replayed {recovery.replayed_messages} benign "
          f"message(s), dropped {recovery.dropped_messages}, "
          f"suppressed {recovery.duplicates_suppressed} duplicate "
          f"response(s)")

    print("\n-- service continues --")
    for request in benign_requests("squidp", 3, seed=99):
        responses = sweeper.submit(request)
        print(f"  {request[:48]!r} -> {len(responses)} response(s)")

    print("\n-- the worm tries again --")
    sweeper.submit(exploit)
    print(f"  filtered by input signature: "
          f"{sweeper.proxy.filtered_count} request(s)")
    print(f"  total crashes after antibodies: "
          f"{len(sweeper.attacks) - 1}")

    print("\nfinal stats:", sweeper.stats())


if __name__ == "__main__":
    main()
