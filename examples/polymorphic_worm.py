#!/usr/bin/env python3
"""Polymorphic worms: where signatures fail and VSEFs hold (§3.3).

A worm that mutates its payload evades exact-match input signatures.
This example attacks Squid with five polymorphic variants and shows the
division of labor the paper describes: the exact signature stops only
the seen payload; the vulnerability-specific execution filter stops
*every* variant, because all of them must still overflow the same
``strcat``; and a token-conjunction signature learned from a few
variants generalizes to unseen ones.

Run:  python examples/polymorphic_worm.py
"""

from repro import Sweeper, SweeperConfig, build_squidp
from repro.antibody.signatures import generate_token
from repro.apps.exploits import polymorphic_variants, squid_exploit
from repro.apps.workload import benign_requests


def main():
    print("=== polymorphic worm vs Sweeper (Squid) ===\n")
    sweeper = Sweeper(build_squidp(), app_name="squid",
                      config=SweeperConfig(seed=13))
    for request in benign_requests("squidp", 4):
        sweeper.submit(request)

    print("-- wave 0: the original exploit --")
    sweeper.submit(squid_exploit())
    print(f"  detected & analyzed; antibodies: "
          f"{[v.kind for v in sweeper.antibodies]}")
    print(f"  exact signature installed: "
          f"{sweeper.attacks[0].signature_ids}\n")

    print("-- waves 1-5: polymorphic variants --")
    variants = polymorphic_variants("Squid", count=5, seed=17)
    for index, variant in enumerate(variants, start=1):
        filtered_before = sweeper.proxy.filtered_count
        crashes_before = len(sweeper.attacks)
        vsef_before = sum(1 for d in sweeper.detections
                          if d.kind == "vsef")
        sweeper.submit(variant)
        if sweeper.proxy.filtered_count > filtered_before:
            how = "input signature"
        elif sum(1 for d in sweeper.detections
                 if d.kind == "vsef") > vsef_before:
            how = "VSEF (clean block + rollback)"
        elif len(sweeper.attacks) > crashes_before:
            how = "crash -> re-analyzed"
        else:
            how = "??"
        print(f"  variant {index} ({len(variant):5d} bytes, "
              f"fill={variant[10:11]!r}): stopped by {how}")

    crashes = len(sweeper.attacks) - 1
    print(f"\n  post-antibody crashes: {crashes} "
          f"(the VSEF catches what the exact signature cannot)")

    print("\n-- learning a token signature from observed variants --")
    observed = [squid_exploit()] + variants[:2]
    token_sig = generate_token(observed)
    print(f"  invariant tokens: "
          f"{[t[:24] for t in token_sig.tokens]}")
    unseen = polymorphic_variants("Squid", count=3, seed=99)
    hits = sum(1 for v in unseen if token_sig.matches(v))
    benign_hits = sum(1 for r in benign_requests("squidp", 50)
                      if token_sig.matches(r))
    print(f"  matches {hits}/3 unseen variants, "
          f"{benign_hits}/50 benign requests (false positives)")


if __name__ == "__main__":
    main()
