#!/usr/bin/env python3
"""Community defense (§6): producers protect consumers, even from worms
thousands of times faster than Slammer.

Part 1 plays out the mechanism: a Producer host catches the CVS double
free, publishes antibodies piecemeal on the community bus, and a
Consumer host — running *no* analysis modules — verifies and applies
them before the worm arrives.

Part 2 runs the paper's epidemic math end to end: the measured γ₁ from
part 1 plus Vigilante's 3 s dissemination gives γ, and the SI model
(Figures 6-8) says what fraction of the Internet that saves.

Run:  python examples/community_defense.py
"""

from repro import Sweeper, SweeperConfig, CommunityBus, verify_antibody
from repro.apps.exploits import EXPLOITS
from repro.apps.workload import benign_requests
from repro.worm.community import (SLAMMER, HITLIST_4K, end_to_end_gamma,
                                  infection_ratio_grid)
from repro.worm.si_model import WormParams, solve_outbreak


def part1_mechanism() -> float:
    print("=== Part 1: producer -> bus -> consumer ===\n")
    spec = EXPLOITS["CVS"]
    bus = CommunityBus(dissemination_latency=3.0)

    producer = Sweeper(spec.build_image(), app_name=spec.app,
                       config=SweeperConfig(seed=5), bus=bus)
    for request in benign_requests(spec.app, 4):
        producer.submit(request)
    print("producer: serving benign CVS traffic")
    producer.submit(spec.payload())
    record = producer.attacks[0]
    gamma1 = record.first_vsef_at - record.detected_at
    print(f"producer: attack caught; first VSEF after "
          f"{gamma1 * 1000:.1f} ms (virtual)")
    for bundle in bus.published:
        print(f"  published {bundle.stage:8s} bundle: "
              f"{len(bundle.vsefs)} VSEF(s), "
              f"{len(bundle.signatures)} signature(s), "
              f"input={'yes' if bundle.exploit_input else 'no'}")

    consumer = Sweeper(spec.build_image(), app_name=spec.app,
                       config=SweeperConfig(seed=77, enable_membug=False,
                                            enable_taint=False,
                                            enable_slicing=False,
                                            publish_antibodies=False))
    final = next(b for b in bus.available(now=1e9) if b.stage == "final")
    verdict = verify_antibody(spec.build_image(), final, seed=88)
    print(f"\nconsumer: verified foreign bundle in a sandbox -> "
          f"{verdict.detected_by} ({'OK' if verdict.verified else 'NO'})")
    consumer.apply_foreign_vsefs(final.vsefs)
    for signature in final.signatures:
        consumer.proxy.signatures.add(signature)
    consumer.submit(spec.payload())
    survived = not consumer.attacks
    print(f"consumer: worm attack "
          f"{'FILTERED/BLOCKED — host survives' if survived else 'LANDED'}")
    return gamma1


def part2_epidemics(gamma1: float):
    print("\n=== Part 2: what the response time buys (SI model) ===\n")
    gamma = end_to_end_gamma(analysis_seconds=max(gamma1, 2.0),
                             dissemination_seconds=3.0)
    print(f"end-to-end gamma = gamma1 + gamma2 = {gamma:.1f} s "
          f"(paper budget: 2 s + 3 s)\n")

    for scenario, label in ((SLAMMER, "Slammer (beta=0.1)"),
                            (HITLIST_4K, "hit-list worm (beta=4000, "
                                         "with ASLR rho=2^-12)")):
        print(f"{label}: infection ratio by deployment ratio "
              f"(gamma={gamma:.0f} s)")
        for alpha in scenario.alphas:
            result = solve_outbreak(WormParams(
                beta=scenario.beta, population=scenario.population,
                producer_ratio=alpha, gamma=gamma, rho=scenario.rho))
            bar = "#" * int(result.infection_ratio * 50)
            print(f"  alpha={alpha:<7} -> {result.infection_ratio:6.2%} "
                  f"{bar}")
        print()

    print("the gamma knee (Fig. 7/8 captions), hit-list beta=4000, "
          "alpha=0.0001:")
    grid = infection_ratio_grid(HITLIST_4K)
    for gamma_s in HITLIST_4K.gammas:
        ratio = grid[gamma_s][0.0001]
        print(f"  gamma={gamma_s:>3}s -> {ratio:6.2%}")


def main():
    gamma1 = part1_mechanism()
    part2_epidemics(gamma1)


if __name__ == "__main__":
    main()
