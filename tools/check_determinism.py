"""Determinism lint over ``src/repro/``.

Sweeper's guarantees — bit-identical replay, reproducible fleet runs,
content-addressed golden images — hold only if nothing in the library
reads ambient entropy.  This AST pass forbids the ways that sneaks in:

- wall-clock reads (``time.time``/``monotonic``/``time_ns``,
  ``datetime.now``/``utcnow``/``today``),
- OS entropy (``os.urandom``, ``random.SystemRandom``, ``uuid.uuid4``,
  ``secrets``),
- the process-global random module (``random.random()``,
  ``random.randint()``, ... are seeded from the OS), and
- ``random.Random()`` constructed with no seed argument.

``time.perf_counter`` is allowed only in the named reporting modules:
they time the host-side run for human-facing throughput numbers, and
nothing downstream branches on the value.

``tests/`` is scanned too, under relaxed rules: host timing
(``perf_counter``) is always fine there, and randomness *inside a
hypothesis-decorated function* (``@given``, ``@rule``, ...) is exempt —
hypothesis seeds and restores the global random state around every
example, so such draws are reproducible by construction.  Ambient
entropy outside hypothesis's control (wall clock, ``os.urandom``,
module-level global-random draws) stays forbidden: a test that seeds
itself from the OS can go green on one machine and red on another.
Benchmarks remain out of scope — they time themselves freely.

Usage: ``python tools/check_determinism.py`` from the repo root.
Exit status 1 when any violation is found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
TESTS = ROOT / "tests"

# Decorators whose bodies run under hypothesis's control: it seeds the
# process-global RNG per example (deriving from the example's buffer)
# and restores it afterwards, so global-random draws inside are
# reproducible.  ``composite`` builds strategies, the stateful four run
# inside ``run_state_machine_as_test`` — all hypothesis-managed.
HYPOTHESIS_DECORATORS = {"given", "composite", "rule", "initialize",
                         "invariant", "precondition"}

# Dotted call targets that are never acceptable in the library.
FORBIDDEN = {
    "os.urandom": "OS entropy; draw from a seeded random.Random",
    "random.SystemRandom": "OS entropy; use a seeded random.Random",
    "uuid.uuid4": "OS entropy; derive ids from seeded state",
    "time.time": "wall clock; use the VirtualClock",
    "time.time_ns": "wall clock; use the VirtualClock",
    "time.monotonic": "wall clock; use the VirtualClock",
    "time.monotonic_ns": "wall clock; use the VirtualClock",
    "time.clock_gettime": "wall clock; use the VirtualClock",
    "time.localtime": "wall clock; use the VirtualClock",
    "time.gmtime": "wall clock; use the VirtualClock",
    "datetime.now": "wall clock; use the VirtualClock",
    "datetime.utcnow": "wall clock; use the VirtualClock",
    "datetime.today": "wall clock; use the VirtualClock",
    "datetime.datetime.now": "wall clock; use the VirtualClock",
    "datetime.datetime.utcnow": "wall clock; use the VirtualClock",
    "datetime.date.today": "wall clock; use the VirtualClock",
    "date.today": "wall clock; use the VirtualClock",
}

# The module-level random functions share one OS-seeded global RNG.
GLOBAL_RANDOM = {"random", "randint", "randrange", "choice", "choices",
                 "shuffle", "sample", "seed", "uniform", "getrandbits",
                 "randbytes", "betavariate", "gauss", "expovariate"}

FORBIDDEN_MODULES = {"secrets"}

# perf_counter measures host wall time for *reporting* (wall_seconds in
# results); nothing deterministic branches on it.  Keep the list short.
PERF_COUNTER_ALLOWED = {
    "runtime/sweeper.py",
    "worm/fleet.py",
    "analysis/pipeline.py",
}


def _dotted(node: ast.expr) -> str | None:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _hypothesis_spans(tree: ast.AST) -> list[tuple[int, int]]:
    """Line spans of functions decorated with a hypothesis decorator."""
    spans = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            dotted = _dotted(target)
            if dotted and dotted.split(".")[-1] in HYPOTHESIS_DECORATORS:
                spans.append((node.lineno, node.end_lineno or node.lineno))
                break
    return spans


def check_file(path: Path, rel: str | None = None) -> list[str]:
    if rel is None:
        rel = path.relative_to(SRC).as_posix()
    in_tests = rel.startswith("tests/")
    tree = ast.parse(path.read_text(), filename=str(path))
    spans = _hypothesis_spans(tree) if in_tests else []
    findings = []

    def hypothesis_managed(node: ast.AST) -> bool:
        return any(lo <= node.lineno <= hi for lo, hi in spans)

    def perf_counter_ok() -> bool:
        return in_tests or rel in PERF_COUNTER_ALLOWED

    def report(node: ast.AST, what: str, why: str):
        findings.append(f"{rel}:{node.lineno}: {what} — {why}")

    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module = node.module if isinstance(node, ast.ImportFrom) \
                else None
            for alias in node.names:
                name = alias.name
                if module is None:
                    if name in FORBIDDEN_MODULES:
                        report(node, f"import {name}",
                               "OS entropy; use a seeded random.Random")
                    continue
                if module in FORBIDDEN_MODULES:
                    report(node, f"from {module} import {name}",
                           "OS entropy; use a seeded random.Random")
                dotted = f"{module}.{name}"
                if dotted in FORBIDDEN:
                    report(node, f"from {module} import {name}",
                           FORBIDDEN[dotted])
                elif module == "random" and name in GLOBAL_RANDOM \
                        and not hypothesis_managed(node):
                    report(node, f"from random import {name}",
                           "process-global RNG is OS-seeded; pass a "
                           "random.Random(seed)")
                elif dotted == "time.perf_counter" \
                        and not perf_counter_ok():
                    report(node, "from time import perf_counter",
                           "host timing is reporting-only; allowed "
                           "modules: " + ", ".join(sorted(
                               PERF_COUNTER_ALLOWED)))
            continue

        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        if dotted in FORBIDDEN:
            report(node, f"{dotted}()", FORBIDDEN[dotted])
        elif dotted == "time.perf_counter" and not perf_counter_ok():
            report(node, "time.perf_counter()",
                   "host timing is reporting-only; allowed modules: "
                   + ", ".join(sorted(PERF_COUNTER_ALLOWED)))
        elif dotted.startswith("random.") \
                and dotted.split(".", 1)[1] in GLOBAL_RANDOM \
                and not hypothesis_managed(node):
            report(node, f"{dotted}()",
                   "process-global RNG is OS-seeded; pass a "
                   "random.Random(seed)")
        elif dotted in ("random.Random", "Random") and not node.args \
                and not node.keywords and not hypothesis_managed(node):
            report(node, f"{dotted}()",
                   "unseeded Random draws from the OS; pass a seed")
    return findings


def main() -> int:
    files = sorted(SRC.rglob("*.py"))
    all_findings = []
    for path in files:
        all_findings.extend(check_file(path))
    test_files = sorted(TESTS.glob("*.py"))
    for path in test_files:
        rel = "tests/" + path.relative_to(TESTS).as_posix()
        all_findings.extend(check_file(path, rel=rel))
    files += test_files
    if all_findings:
        print(f"determinism lint: {len(all_findings)} violation(s)")
        for finding in all_findings:
            print(f"  {finding}")
        return 1
    print(f"determinism lint: ok ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
