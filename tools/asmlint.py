"""Guest-binary lint over every application image in ``apps/``.

Static checks on the assembled guest programs, powered by the CFG
recovery in ``analysis/static/``:

- **fall-through into data** (error): control can flow off the end of a
  decoded instruction — or branch via an immediate — into bytes that do
  not decode.  Executing the image would hit an ILLEGAL fault on that
  path.
- **store to a code page** (error): a STW/STB whose base register is
  statically a text address.  Guest text is mapped read-only, so the
  store faults (self-modifying code belongs in writable regions).
- **stack-imbalanced path** (error): within one function (a direct call
  target), some path reaches RET with a nonzero stack depth, or two
  paths join at a block with different depths.  The abstract
  interpreter models push/pop, ``sub/add sp, imm`` frame allocation and
  the ``mov fp, sp`` / ``mov sp, fp`` frame idiom.
- **unreachable block** (note, never fails): a recovered basic block no
  path from the program entry (or any address-taken root) reaches.
  Deliberate in places — httpd's ``backdoor`` is the hijack target the
  exploit jumps to, by design off every legitimate path — so these are
  reported for the record, not gated.

Exit status is 1 when any error-class finding exists, 0 otherwise.

Usage: ``python tools/asmlint.py`` from the repo root.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.static import recover_image_cfg          # noqa: E402
from repro.analysis.static.dataflow import reaching_definitions  # noqa: E402
from repro.apps import build_cvsd, build_httpd, build_squidp  # noqa: E402
from repro.isa.opcodes import FP, SP, Op                      # noqa: E402

IMAGES = (("httpd", build_httpd), ("squidp", build_squidp),
          ("cvsd", build_cvsd))

_NO_FALLTHROUGH = {Op.JMPI, Op.JMPR, Op.RET, Op.HALT}
_TRANSFER_IMMS = {Op.JMPI, Op.CALLI, Op.JE, Op.JNE, Op.JL, Op.JLE,
                  Op.JG, Op.JGE, Op.JB, Op.JAE}


def _flow_reached(cfg) -> set[int]:
    """Addresses control reaches from decoded code by fall-through or
    an immediate transfer target (symbol roots do not count)."""
    reached: set[int] = set()
    for pc, insn in cfg.insns.items():
        if insn.op not in _NO_FALLTHROUGH:
            reached.add(pc + insn.length)
        if insn.op in _TRANSFER_IMMS:
            target = cfg.imm_targets.get(pc)
            if target is not None and target[0] == "text":
                reached.add(int(target[1]))
    return reached


def check_fallthrough_into_data(cfg) -> list[str]:
    reached = _flow_reached(cfg)
    return [f"fall-through into data at text+{addr:#x}: {reason}"
            for addr, reason in sorted(cfg.undecodable.items())
            if addr in reached]


def check_stores_to_code(cfg) -> list[str]:
    rdefs = reaching_definitions(cfg)
    findings = []
    for pc, insn in sorted(cfg.insns.items()):
        if insn.op is not Op.STW and insn.op is not Op.STB:
            continue
        sole = rdefs.sole_def(pc, insn.operands[0])
        if sole is None:
            continue
        def_pc, def_insn = sole
        if def_insn.op is not Op.MOVRI:
            continue
        target = cfg.imm_targets.get(def_pc)
        if target is not None and target[0] == "text":
            findings.append(
                f"store to code page at text+{pc:#x} "
                f"(base set at text+{def_pc:#x} -> text+{target[1]:#x})")
    return findings


def _function_entries(cfg) -> set[int]:
    entries = set(cfg.call_sites.values()) if cfg.call_sites else set()
    entries |= {a for a in cfg.address_taken if a in cfg.insns}
    return {e for e in entries if e in cfg.owner}


def check_stack_balance(cfg) -> list[str]:
    """Abstract interpretation of stack depth per function.

    State is (depth, fp_offset): bytes pushed since function entry and
    the depth captured by the last ``mov fp, sp``.  An unmodelled SP
    write abandons the path (reported as a note elsewhere if it ever
    matters); RET at nonzero depth or a join at differing depths is an
    imbalance.
    """
    findings = []
    for entry in sorted(_function_entries(cfg)):
        seen: dict[int, tuple] = {}
        work = [(cfg.owner[entry], 0, None)]
        while work:
            block_start, depth, fp_offset = work.pop()
            prior = seen.get(block_start)
            if prior is not None:
                if prior != (depth, fp_offset):
                    findings.append(
                        f"stack-imbalanced join at text+{block_start:#x} "
                        f"in function text+{entry:#x}: depth {prior[0]} "
                        f"vs {depth}")
                continue
            seen[block_start] = (depth, fp_offset)
            block = cfg.blocks[block_start]
            abandoned = False
            for pc in block.pcs:
                insn = cfg.insns[pc]
                op = insn.op
                if op is Op.PUSHR or op is Op.PUSHI:
                    depth += 4
                elif op is Op.POPR:
                    depth -= 4
                    if insn.operands[0] == SP:
                        abandoned = True
                        break
                elif op is Op.SUBRI and insn.operands[0] == SP:
                    depth += insn.operands[1]
                elif op is Op.ADDRI and insn.operands[0] == SP:
                    depth -= insn.operands[1]
                elif op is Op.MOVRR and insn.operands == (FP, SP):
                    fp_offset = depth
                elif op is Op.MOVRR and insn.operands == (SP, FP):
                    if fp_offset is None:
                        abandoned = True
                        break
                    depth = fp_offset
                elif op is Op.RET:
                    if depth != 0:
                        findings.append(
                            f"stack-imbalanced path: RET at text+{pc:#x} "
                            f"in function text+{entry:#x} with depth "
                            f"{depth}")
                elif insn.operands and insn.operands[0] == SP \
                        and op not in (Op.CMPRR, Op.CMPRI, Op.STW, Op.STB,
                                       Op.CALLI, Op.CALLR, Op.JMPR):
                    abandoned = True        # unmodelled SP write
                    break
            if abandoned:
                continue
            last_op = cfg.insns[block.last].op
            succs = cfg.succs.get(block_start, ())
            callee = cfg.call_sites.get(block.last)
            for succ in succs:
                if last_op is Op.CALLI and succ == callee:
                    continue                # stay within this function
                work.append((succ, depth, fp_offset))
    return findings


def check_unreachable_blocks(cfg, image) -> list[str]:
    entry = image.symbols.get(image.entry)
    starts = []
    if entry is not None and entry[1] in cfg.owner:
        starts.append(cfg.owner[entry[1]])
    starts.extend(cfg.owner[a] for a in cfg.address_taken
                  if a in cfg.owner)
    live = cfg.reachable_from(starts)
    names = {offset: name for name, (section, offset)
             in image.symbols.items() if section == "text"}
    notes = []
    for start in sorted(set(cfg.blocks) - live):
        label = names.get(start)
        suffix = f" ({label})" if label else ""
        notes.append(f"unreachable block at text+{start:#x}{suffix}")
    return notes


def lint_image(name: str, image) -> tuple[list[str], list[str]]:
    cfg = recover_image_cfg(image)
    errors = (check_fallthrough_into_data(cfg)
              + check_stores_to_code(cfg)
              + check_stack_balance(cfg))
    notes = check_unreachable_blocks(cfg, image)
    return errors, notes


def main() -> int:
    failed = False
    for name, build in IMAGES:
        errors, notes = lint_image(name, build())
        status = "FAIL" if errors else "ok"
        print(f"{name}: {status} ({len(errors)} errors, "
              f"{len(notes)} notes)")
        for finding in errors:
            print(f"  error: {finding}")
        for note in notes:
            print(f"  note:  {note}")
        failed = failed or bool(errors)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
