"""Docs link-check: every cross-reference in the front-door docs must
resolve to a real file.

Checks two classes of reference in README.md, ARCHITECTURE.md,
ROADMAP.md and docs/*.md:

- markdown links ``[text](target)`` with relative targets (anchors are
  stripped; external ``http(s)://`` targets are skipped);
- backticked repo paths like ``benchmarks/bench_rho.py`` or
  ``worm/fleet.py`` — anything in backticks that looks like a path with
  a file extension (``.py``, ``.json``, ``.md``).  The docs' idiom
  writes source files package-relative (``machine/cpu.py``), so each
  path may resolve against the repo root, ``src/repro/`` or the doc's
  own directory.  Prose backticks (identifiers, flags, ``pkg/`` package
  names) are ignored.

A stale reference — a bench renamed, a doc moved — fails CI with the
offending file, line and target.

Usage: ``python tools/check_docs_links.py`` from the repo root.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

DOCS = [ROOT / "README.md", ROOT / "ARCHITECTURE.md", ROOT / "ROADMAP.md",
        *sorted((ROOT / "docs").glob("*.md"))]

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Backticked multi-segment paths ending in a checkable extension.
TICK_PATH = re.compile(r"`([\w./-]+/[\w.-]+\.(?:py|json|md))`")


def check_file(doc: Path) -> list[str]:
    failures = []
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        targets = []
        for match in MD_LINK.finditer(line):
            target = match.group(1).split("#", 1)[0]
            if not target or target.startswith(("http://", "https://",
                                                "mailto:")):
                continue
            targets.append((target, [doc.parent / target]))
        for match in TICK_PATH.finditer(line):
            target = match.group(1)
            # Scratch results/ paths are generated, not tracked.
            if target.startswith("benchmarks/results/"):
                continue
            targets.append((target, [ROOT / target,
                                     ROOT / "src" / "repro" / target,
                                     doc.parent / target]))
        for target, candidates in targets:
            if not any(c.exists() for c in candidates):
                failures.append(f"{doc.relative_to(ROOT)}:{lineno}: "
                                f"broken reference {target!r}")
    return failures


def main() -> int:
    failures: list[str] = []
    for doc in DOCS:
        if not doc.exists():
            failures.append(f"front-door doc missing: "
                            f"{doc.relative_to(ROOT)}")
            continue
        failures.extend(check_file(doc))
    if failures:
        print("docs link-check failed:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"docs link-check ok ({len(DOCS)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
