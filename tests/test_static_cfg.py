"""Unit tests for static guest-binary analysis: CFG recovery over
assembled images, dominators, reaching definitions and static taint."""

from __future__ import annotations

from repro.analysis.static import (imm_field_offset, reaching_definitions,
                                   recover_image_cfg, static_taint)
from repro.apps import build_cvsd, build_httpd, build_squidp
from repro.isa.assembler import assemble
from repro.isa.opcodes import Op

_BRANCHY = """
.text
main:
 mov r0, reqbuf
 mov r1, 64
 jmp getreq
getreq:
 sys recv
 cmp r0, 0
 je done
 mov r1, reqbuf
 ld r2, [r1+0]
 cmp r2, 65
 jne other
 call handler
 jmp done
other:
 mov r3, 1
done:
 halt
handler:
 add r2, 1
 ret
.data
reqbuf: .space 64
"""


def _cfg(source: str):
    return recover_image_cfg(assemble(source))


class TestRecovery:
    def test_blocks_partition_decoded_instructions(self):
        cfg = _cfg(_BRANCHY)
        owned = [pc for block in cfg.blocks.values() for pc in block.pcs]
        assert sorted(owned) == sorted(cfg.insns)
        assert sorted(owned) == sorted(cfg.owner)
        for pc, block_start in cfg.owner.items():
            assert pc in cfg.blocks[block_start].pcs

    def test_conditional_branch_has_two_successors(self):
        cfg = _cfg(_BRANCHY)
        branches = [pc for pc, insn in cfg.insns.items()
                    if insn.op is Op.JE or insn.op is Op.JNE]
        for pc in branches:
            assert len(cfg.succs[cfg.owner[pc]]) == 2

    def test_edges_are_inverse_of_each_other(self):
        cfg = _cfg(_BRANCHY)
        for block, succs in cfg.succs.items():
            for succ in succs:
                assert block in cfg.preds[succ]
        for block, preds in cfg.preds.items():
            for pred in preds:
                assert block in cfg.succs[pred]

    def test_call_records_site_and_links_fallthrough(self):
        image = assemble(_BRANCHY)
        cfg = recover_image_cfg(image)
        handler = image.symbols["handler"][1]
        call_pc = next(pc for pc, insn in cfg.insns.items()
                       if insn.op is Op.CALLI)
        block = cfg.owner[call_pc]
        assert handler in cfg.succs[block]
        assert call_pc + cfg.insns[call_pc].length in cfg.succs[block]

    def test_dominators_entry_dominates_all(self):
        image = assemble(_BRANCHY)
        cfg = recover_image_cfg(image)
        entry = image.symbols["main"][1]
        dom = cfg.dominators(entry)
        for block in cfg.reachable_from([entry]):
            assert entry in dom[block]
            assert block in dom[block]

    def test_imm_field_offset_walks_signature(self):
        assert imm_field_offset(Op.JMPI) == 1       # opcode, imm
        assert imm_field_offset(Op.MOVRI) == 2      # opcode, reg, imm
        assert imm_field_offset(Op.ADDRI) == 2


class TestAppImages:
    def test_httpd_decodes_fully_except_pad(self):
        image = build_httpd()
        cfg = recover_image_cfg(image)
        pad = image.symbols["pad"][1]
        assert list(cfg.undecodable) == [pad]
        # Every other text symbol is a recovered instruction boundary.
        for name, (section, offset) in image.symbols.items():
            if section == "text" and name != "pad":
                assert offset in cfg.insns, name

    def test_squidp_and_cvsd_decode_fully(self):
        for build in (build_squidp, build_cvsd):
            cfg = recover_image_cfg(build())
            assert not cfg.undecodable
            assert len(cfg.blocks) > 10

    def test_httpd_recv_seeds_and_native_calls_found(self):
        cfg = recover_image_cfg(build_httpd())
        assert 1 in set(cfg.syscalls.values())       # recv
        assert "strncmp" in set(cfg.native_calls.values())


class TestDataflow:
    def test_sole_def_finds_movri(self):
        image = assemble(_BRANCHY)
        cfg = recover_image_cfg(image)
        rdefs = reaching_definitions(cfg)
        # At 'jmp getreq', r1's sole def is the 'mov r1, 64' above it.
        jmp_pc = min(pc for pc, insn in cfg.insns.items()
                     if insn.op is Op.JMPI)       # main's 'jmp getreq'
        sole = rdefs.sole_def(jmp_pc, 1)
        assert sole is not None
        def_pc, insn = sole
        assert insn.op is Op.MOVRI and insn.operands[1] == 64

    def test_calls_clobber_definitions(self):
        image = assemble(_BRANCHY)
        cfg = recover_image_cfg(image)
        rdefs = reaching_definitions(cfg)
        call_pc = next(pc for pc, insn in cfg.insns.items()
                       if insn.op is Op.CALLI)
        after = call_pc + cfg.insns[call_pc].length
        assert rdefs.sole_def(after, 3) is None

    def test_taint_reaches_post_recv_not_pre(self):
        image = assemble(_BRANCHY)
        cfg = recover_image_cfg(image)
        taint = static_taint(cfg)
        handler = image.symbols["handler"][1]
        other = image.symbols["other"][1]
        assert taint.reaches(handler)
        assert taint.reaches(other)
        assert taint.reaches(image.symbols["getreq"][1])
        # main runs before any input arrives — not input-reachable.
        assert not taint.reaches(image.symbols["main"][1])

    def test_httpd_backdoor_statically_unreachable(self):
        image = build_httpd()
        cfg = recover_image_cfg(image)
        taint = static_taint(cfg)
        assert taint.reaches(image.symbols["handle_request"][1])
        assert taint.reaches(image.symbols["mainloop"][1])
        assert not taint.reaches(image.symbols["backdoor"][1])
