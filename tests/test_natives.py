"""Unit tests for the native libc routines."""

import pytest

from repro.errors import VMFault
from repro.machine.natives import NATIVE_OFFSETS, build_native_map
from tests.conftest import run_fragment


class TestStringRoutines:
    def test_strlen(self):
        process = run_fragment(" mov r0, s\n call @strlen\n",
                               data='s: .asciiz "hello"')
        assert process.cpu.regs[0] == 5

    def test_strlen_empty(self):
        process = run_fragment(" mov r0, s\n call @strlen\n",
                               data='s: .asciiz ""')
        assert process.cpu.regs[0] == 0

    def test_strcpy_copies_terminator(self):
        process = run_fragment(
            " mov r0, dst\n mov r1, src\n call @strcpy\n"
            " mov r0, dst\n call @strlen\n",
            data='src: .asciiz "abc"\ndst: .space 16')
        assert process.cpu.regs[0] == 3
        dst = process.symbols["dst"]
        assert process.memory.read(dst, 4) == b"abc\x00"

    def test_strncpy_pads_with_nul(self):
        process = run_fragment(
            " mov r0, dst\n mov r1, src\n mov r2, 6\n call @strncpy\n",
            data='src: .asciiz "ab"\ndst: .byte 0xFF,0xFF,0xFF,0xFF,0xFF,0xFF')
        dst = process.symbols["dst"]
        assert process.memory.read(dst, 6) == b"ab\x00\x00\x00\x00"

    def test_strcat_appends(self):
        process = run_fragment(
            " mov r0, dst\n mov r1, a\n call @strcpy\n"
            " mov r0, dst\n mov r1, b\n call @strcat\n",
            data='a: .asciiz "foo"\nb: .asciiz "bar"\ndst: .space 16')
        dst = process.symbols["dst"]
        assert process.memory.read_cstring(dst) == b"foobar"

    def test_strncat_respects_limit(self):
        process = run_fragment(
            " mov r0, dst\n mov r1, a\n call @strcpy\n"
            " mov r0, dst\n mov r1, b\n mov r2, 2\n call @strncat\n",
            data='a: .asciiz "x"\nb: .asciiz "yyyy"\ndst: .space 16')
        dst = process.symbols["dst"]
        assert process.memory.read_cstring(dst) == b"xyy"

    def test_memcpy_and_memset(self):
        process = run_fragment(
            " mov r0, dst\n mov r1, src\n mov r2, 4\n call @memcpy\n"
            " mov r0, dst+4\n mov r1, 'z'\n mov r2, 3\n call @memset\n",
            data='src: .asciiz "wxyz"\ndst: .space 16')
        dst = process.symbols["dst"]
        assert process.memory.read(dst, 7) == b"wxyzzzz"

    @pytest.mark.parametrize("a,b,expected", [
        ("abc", "abc", 0), ("abd", "abc", 1), ("abb", "abc", 0xFFFFFFFF),
        ("ab", "abc", 0xFFFFFFFF), ("abc", "ab", 1)])
    def test_strcmp(self, a, b, expected):
        process = run_fragment(
            " mov r0, sa\n mov r1, sb\n call @strcmp\n",
            data=f'sa: .asciiz "{a}"\nsb: .asciiz "{b}"')
        assert process.cpu.regs[0] == expected

    def test_strncmp_stops_at_limit(self):
        process = run_fragment(
            " mov r0, sa\n mov r1, sb\n mov r2, 3\n call @strncmp\n",
            data='sa: .asciiz "abcX"\nsb: .asciiz "abcY"')
        assert process.cpu.regs[0] == 0

    def test_strchr_found_and_missing(self):
        process = run_fragment(
            " mov r0, s\n mov r1, 'l'\n call @strchr\n mov r4, r0\n"
            " mov r0, s\n mov r1, 'q'\n call @strchr\n mov r5, r0\n",
            data='s: .asciiz "hello"')
        assert process.cpu.regs[4] == process.symbols["s"] + 2
        assert process.cpu.regs[5] == 0

    def test_strstr(self):
        process = run_fragment(
            " mov r0, hay\n mov r1, pin\n call @strstr\n mov r4, r0\n"
            " mov r0, hay\n mov r1, missing\n call @strstr\n mov r5, r0\n",
            data=('hay: .asciiz "Referer: ftp://x"\n'
                  'pin: .asciiz "ftp://"\n'
                  'missing: .asciiz "gopher"'))
        assert process.cpu.regs[4] == process.symbols["hay"] + 9
        assert process.cpu.regs[5] == 0

    def test_strstr_empty_needle_returns_haystack(self):
        process = run_fragment(
            " mov r0, hay\n mov r1, empty\n call @strstr\n",
            data='hay: .asciiz "abc"\nempty: .asciiz ""')
        assert process.cpu.regs[0] == process.symbols["hay"]

    @pytest.mark.parametrize("text,expected", [
        ("123", 123), ("-45", (-45) & 0xFFFFFFFF), ("0", 0),
        ("42abc", 42), ("abc", 0), ("", 0)])
    def test_atoi(self, text, expected):
        process = run_fragment(
            " mov r0, s\n call @atoi\n", data=f's: .asciiz "{text}"')
        assert process.cpu.regs[0] == expected

    def test_itoa(self):
        process = run_fragment(
            " mov r0, 3041\n mov r1, buf\n call @itoa\n",
            data="buf: .space 16")
        buf = process.symbols["buf"]
        assert process.memory.read_cstring(buf) == b"3041"


class TestHeapRoutines:
    def test_malloc_free_roundtrip(self):
        process = run_fragment(
            " mov r0, 64\n call @malloc\n mov r4, r0\n call @free\n"
            " mov r0, 64\n call @malloc\n mov r5, r0\n")
        assert process.cpu.regs[4] == process.cpu.regs[5]   # reuse

    def test_calloc_zeroes(self):
        process = run_fragment(
            " mov r0, 8\n mov r1, 1\n call @calloc\n ld r4, [r0]\n"
            " ld r5, [r0+4]\n")
        assert process.cpu.regs[4] == 0
        assert process.cpu.regs[5] == 0

    def test_realloc_preserves_prefix(self):
        process = run_fragment("""
    mov r0, 8
    call @malloc
    mov r4, r0
    mov r1, 0x31323334
    st [r4], r1
    mov r0, r4
    mov r1, 64
    call @realloc
    ld r5, [r0]
""")
        assert process.cpu.regs[5] == 0x31323334

    def test_realloc_null_acts_like_malloc(self):
        process = run_fragment(
            " mov r0, 0\n mov r1, 16\n call @realloc\n")
        assert process.cpu.regs[0] != 0


class TestFaultAttribution:
    def _run_faulting(self, body: str, data: str = ""):
        from repro.machine.process import Process
        from repro.isa.assembler import assemble

        source = f".text\nmain:\n{body}\n halt\n"
        if data:
            source += f".data\n{data}\n"
        process = Process(assemble(source), seed=3)
        with pytest.raises(VMFault) as excinfo:
            process.run(max_steps=200_000)
        return process, excinfo.value

    def test_native_fault_reports_library_pc_and_caller(self):
        process, fault = self._run_faulting(
            " mov r0, 0x800000\n call @strlen\n")
        assert fault.kind == "SEGV"
        # pc is the native's own library address...
        assert fault.pc == process.native_addresses["strlen"]
        # ...and the application caller is carried along.
        assert fault.source_pc is not None
        code = process.memory.region_named("code")
        assert code.start <= fault.source_pc < code.end

    def test_strcat_runs_off_heap_mapping(self):
        dots = ", ".join(["46"] * 5000)
        process, fault = self._run_faulting(
            " mov r0, 64\n call @malloc\n mov r4, r0\n"
            " mov r1, big\n call @strcat\n",
            data=f"big: .byte {dots}\nterm: .byte 0")
        assert fault.kind == "SEGV"
        assert fault.pc == process.native_addresses["strcat"]


def test_native_map_is_complete():
    table = build_native_map(0x4F000000)
    assert table[0x4F000000 + NATIVE_OFFSETS["strcat"]] == "strcat"
    assert len(table) == len(NATIVE_OFFSETS)


def test_paper_addresses_preserved_at_reference_layout():
    assert 0x4F000000 + NATIVE_OFFSETS["strcat"] == 0x4F0F0907
    assert 0x4F000000 + NATIVE_OFFSETS["free"] == 0x4F0EAAA0
