"""Unit tests for the network proxy (log, filter, replay, output commit)."""

from repro.antibody.signatures import generate_exact, generate_token
from repro.machine.process import load_program
from repro.runtime.proxy import NetworkProxy
from tests.conftest import ECHO_SOURCE


def test_submit_assigns_sequential_ids():
    proxy = NetworkProxy()
    first = proxy.submit(b"a")
    second = proxy.submit(b"b")
    assert (first.msg_id, second.msg_id) == (0, 1)
    assert [m.data for m in proxy.log] == [b"a", b"b"]


def test_signature_filtering_blocks_before_delivery():
    proxy = NetworkProxy()
    proxy.signatures.add(generate_exact(b"EVIL"))
    process = load_program(ECHO_SOURCE)
    message = proxy.submit(b"EVIL")
    assert message.filtered_by is not None
    assert proxy.filtered_count == 1
    assert not proxy.deliver(message, process)
    assert not process.input_queue


def test_token_signatures_also_filter():
    proxy = NetworkProxy()
    proxy.signatures.add(generate_token([b"GET /aaaEVILbbb", b"GET /xxEVILyy"]))
    assert proxy.submit(b"GET /zzzEVILqqq").filtered_by is not None
    assert proxy.submit(b"GET /benign").filtered_by is None


def test_delivery_order_recorded():
    proxy = NetworkProxy()
    process = load_program(ECHO_SOURCE)
    for payload in (b"one", b"two", b"three"):
        proxy.deliver(proxy.submit(payload), process)
    assert proxy.delivered == [0, 1, 2]


def test_delivered_since_with_exclusions():
    proxy = NetworkProxy()
    process = load_program(ECHO_SOURCE)
    for payload in (b"a", b"b", b"c", b"d"):
        proxy.deliver(proxy.submit(payload), process)
    replay = proxy.delivered_since(1, exclude={2})
    assert [m.data for m in replay] == [b"b", b"d"]


def test_rewind_delivery():
    proxy = NetworkProxy()
    process = load_program(ECHO_SOURCE)
    for payload in (b"a", b"b", b"c"):
        proxy.deliver(proxy.submit(payload), process)
    proxy.rewind_delivery(1)
    assert proxy.delivered == [0]
    # The log itself is never rewound: replay needs it.
    assert len(proxy.log) == 3


def test_mark_malicious():
    proxy = NetworkProxy()
    proxy.submit(b"benign")
    proxy.submit(b"evil")
    proxy.mark_malicious([1])
    assert not proxy.log[0].malicious
    assert proxy.log[1].malicious


def test_output_commit_reconcile():
    proxy = NetworkProxy()
    proxy.commit(0, b"response-0")
    assert proxy.reconcile(0, b"response-0") == "duplicate"
    assert proxy.reconcile(0, b"different") == "divergent"
    assert proxy.reconcile(1, b"anything") == "new"
    assert proxy.committed_for(0) == [b"response-0"]
    assert proxy.committed_for(9) == []
