"""Failure-injection and degraded-mode tests.

Sweeper's value depends on what happens when things go wrong: the
checkpoint containing the attack was evicted, the taint step is
unavailable, recovery diverges, or multiple different vulnerabilities
are exploited in sequence.
"""

import pytest

from repro.apps.exploits import EXPLOITS, apache1_exploit, apache2_exploit
from repro.apps.httpd import build_httpd
from repro.apps.workload import benign_requests
from repro.runtime.sweeper import Sweeper, SweeperConfig


class TestIsolationFallback:
    def test_taint_disabled_uses_one_at_a_time_replay(self):
        """The paper measured input isolation by replaying suspicious
        messages one at a time (their taint port was unintegrated);
        the same fallback engages when taint is disabled."""
        spec = EXPLOITS["Squid"]
        config = SweeperConfig(seed=5, enable_taint=False,
                               enable_slicing=False)
        sweeper = Sweeper(spec.build_image(), app_name=spec.app,
                          config=config)
        for request in benign_requests(spec.app, 4):
            sweeper.submit(request)
        sweeper.submit(spec.payload())
        outcome = sweeper.attacks[0].outcome
        assert outcome.malicious_msg_ids == [4]
        assert outcome.exploit_input == spec.payload()
        assert sweeper.proxy.signatures.exact      # signature still built

    def test_membug_disabled_still_produces_initial_vsef(self):
        spec = EXPLOITS["CVS"]
        config = SweeperConfig(seed=5, enable_membug=False,
                               enable_taint=False, enable_slicing=False)
        sweeper = Sweeper(spec.build_image(), app_name=spec.app,
                          config=config)
        for request in benign_requests(spec.app, 2):
            sweeper.submit(request)
        sweeper.submit(spec.payload())
        record = sweeper.attacks[0]
        assert record.vsefs_installed
        assert record.vsefs_installed[0].provenance == "memory_state"
        # The initial VSEF alone blocks the replayed exploit.
        crashes = len(sweeper.attacks)
        sweeper.submit(spec.payload())
        assert len(sweeper.attacks) == crashes


class TestCheckpointPressure:
    def test_tiny_retention_still_recovers(self):
        """With only 2 retained checkpoints the replay window may have
        to widen to the oldest available checkpoint — or analysis
        degrades gracefully to the static step."""
        spec = EXPLOITS["Apache2"]
        config = SweeperConfig(seed=5, max_checkpoints=2,
                               checkpoint_interval_ms=5.0)
        sweeper = Sweeper(spec.build_image(), app_name=spec.app,
                          config=config)
        for request in benign_requests(spec.app, 8):
            sweeper.submit(request)
        sweeper.submit(spec.payload())
        record = sweeper.attacks[0]
        assert record.vsefs_installed          # at least the initial VSEF
        # Service survives either way (recovery or restart).
        responses = sweeper.submit(b"GET / HTTP/1.0\n")
        assert responses

    def test_many_checkpoints_bounded(self):
        config = SweeperConfig(seed=5, max_checkpoints=4,
                               checkpoint_interval_ms=1.0)
        sweeper = Sweeper(build_httpd(), app_name="httpd", config=config)
        for request in benign_requests("httpd", 20):
            sweeper.submit(request)
            sweeper.advance_busy(5_000)
        assert len(sweeper.checkpoints.checkpoints) <= 4


class TestRestartFallback:
    def test_restart_reinstalls_antibodies(self):
        """After a forced restart, previously learned antibodies are
        reinstalled into the fresh process."""
        spec = EXPLOITS["Squid"]
        sweeper = Sweeper(spec.build_image(), app_name=spec.app,
                          config=SweeperConfig(seed=5))
        for request in benign_requests(spec.app, 3):
            sweeper.submit(request)
        sweeper.submit(spec.payload())
        antibodies_before = list(sweeper.antibodies)
        assert antibodies_before
        clock_before = sweeper.clock
        sweeper._restart()
        assert sweeper.clock >= clock_before + 5.0     # restart penalty
        # The fresh process carries the VSEF check table.
        assert sweeper.process.cpu.pre_checks or sweeper.process.hooks.tools
        responses = sweeper.submit(b"GET http://example.com/x")
        assert responses

    def test_restart_process_is_fresh(self):
        sweeper = Sweeper(build_httpd(), app_name="httpd",
                          config=SweeperConfig(seed=5))
        old_process = sweeper.process
        sweeper._restart()
        assert sweeper.process is not old_process
        assert sweeper.process.layout.slide_pages != \
            old_process.layout.slide_pages or True   # layouts independent


class TestSequentialDistinctAttacks:
    def test_two_different_vulnerabilities_both_healed(self):
        """httpd carries two CVEs; exploit both in one session."""
        sweeper = Sweeper(build_httpd(), app_name="httpd",
                          config=SweeperConfig(seed=5))
        for request in benign_requests("httpd", 3):
            sweeper.submit(request)

        sweeper.submit(apache1_exploit())
        assert len(sweeper.attacks) == 1
        first_kinds = {v.kind for v in sweeper.attacks[0].vsefs_installed}
        assert "ret_guard" in first_kinds

        for request in benign_requests("httpd", 2, seed=44):
            assert sweeper.submit(request)

        sweeper.submit(apache2_exploit())
        assert len(sweeper.attacks) == 2
        second_kinds = {v.kind for v in sweeper.attacks[1].vsefs_installed}
        assert "null_check" in second_kinds

        # Both re-attacks blocked, service alive.
        crashes = len(sweeper.attacks)
        sweeper.submit(apache1_exploit())
        sweeper.submit(apache2_exploit())
        assert len(sweeper.attacks) == crashes
        assert sweeper.submit(b"GET / HTTP/1.0\n")

    def test_vsefs_deduplicated_across_repeats(self):
        """Re-analyzing an equivalent attack does not duplicate VSEFs."""
        spec = EXPLOITS["Apache2"]
        sweeper = Sweeper(spec.build_image(), app_name=spec.app,
                          config=SweeperConfig(seed=5))
        for request in benign_requests(spec.app, 2):
            sweeper.submit(request)
        sweeper.submit(spec.payload())
        count_after_first = len(sweeper.antibodies)
        # A variant slips past the exact signature but hits the same
        # null_check VSEF; no new crash analysis, no duplicates.
        sweeper.submit(apache2_exploit(scheme=b"http://"))
        assert len(sweeper.antibodies) == count_after_first


class TestStrictRecoveryMode:
    def test_strict_divergence_forces_restart_but_service_survives(self):
        """A stateful server whose outputs depend on dropped input
        diverges under strict recovery; Sweeper falls back to restart
        and keeps serving."""
        counter_source = """
.text
main:
loop:
    mov r0, buf
    mov r1, 64
    sys recv
    cmp r0, 0
    je loop
    mov r1, total
    ld r2, [r1]
    add r2, r0
    st [r1], r2
    mov r0, r2
    mov r1, out
    call @itoa
    mov r0, out
    call @strlen
    mov r1, r0
    mov r0, out
    sys send
    mov r1, buf
    ldb r2, [r1]
    cmp r2, '!'
    jne loop
    mov r3, 0
    ld r4, [r3]            ; crash on '!' requests
    jmp loop
.data
total: .word 0
buf:   .space 72
out:   .space 16
"""
        sweeper = Sweeper(counter_source, app_name="counter",
                          config=SweeperConfig(seed=5,
                                               strict_recovery=True,
                                               enable_slicing=False))
        sweeper.submit(b"aaaa")
        sweeper.submit(b"bb")
        sweeper.submit(b"!boom")       # crash; drop changes later totals
        # Whether recovery succeeded or restarted, service continues.
        responses = sweeper.submit(b"cc")
        assert responses
        assert len(sweeper.attacks) == 1
