"""Unit tests for rollback + re-execution recovery."""

import pytest

from repro.errors import RecoveryFailed
from repro.machine.process import load_program
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.proxy import NetworkProxy
from repro.runtime.recovery import RecoveryManager
from tests.conftest import ECHO_SOURCE

#: A stateful server: keeps a running sum of request bytes, echoes the
#: current total with every response.  Makes corruption/divergence and
#: replay effects visible in the outputs.
COUNTER_SOURCE = """
.text
main:
loop:
    mov r0, buf
    mov r1, 64
    sys recv
    cmp r0, 0
    je loop
    mov r1, total
    ld r2, [r1]
    add r2, r0
    st [r1], r2
    mov r0, r2
    mov r1, out
    call @itoa
    mov r0, out
    call @strlen
    mov r1, r0
    mov r0, out
    sys send
    jmp loop
.data
total: .word 0
buf:   .space 72
out:   .space 16
"""


def _serve(process, proxy, payload: bytes):
    message = proxy.submit(payload)
    sent_before = len(process.sent)
    proxy.deliver(message, process)
    process.run(max_steps=200_000)
    for sent in process.sent[sent_before:]:
        proxy.commit(sent.msg_id, sent.data)
    return [sent.data for sent in process.sent[sent_before:]]


def setup_counter():
    process = load_program(COUNTER_SOURCE, seed=1)
    process.run(max_steps=100_000)
    proxy = NetworkProxy()
    checkpoints = CheckpointManager()
    return process, proxy, checkpoints


def test_recovery_drops_malicious_and_replays_benign():
    process, proxy, checkpoints = setup_counter()
    checkpoint = checkpoints.take(process)
    assert _serve(process, proxy, b"aaaa") == [b"4"]       # total 4
    assert _serve(process, proxy, b"evil-blob") == [b"13"]  # total 13
    assert _serve(process, proxy, b"bb") == [b"15"]        # total 15

    result = RecoveryManager().recover(process, proxy, checkpoints,
                                       checkpoint, drop_msg_ids={1})
    assert result.ok
    assert result.dropped_messages == 1
    assert result.replayed_messages == 2
    # State excludes the attack: total is 4 + 2 = 6 now.
    assert _serve(process, proxy, b"z") == [b"7"]


def test_recovery_suppresses_committed_duplicates():
    process, proxy, checkpoints = setup_counter()
    checkpoint = checkpoints.take(process)
    _serve(process, proxy, b"one")
    _serve(process, proxy, b"two!")
    result = RecoveryManager().recover(process, proxy, checkpoints,
                                       checkpoint, drop_msg_ids=set())
    # Both responses were already committed byte-identically.
    assert result.duplicates_suppressed == 2
    assert result.new_outputs == []
    assert result.divergences == 0


def test_recovery_detects_divergence():
    """Dropping an earlier message changes later totals: those responses
    diverge from what was already committed (§4.1)."""
    process, proxy, checkpoints = setup_counter()
    checkpoint = checkpoints.take(process)
    _serve(process, proxy, b"aaaa")      # -> "4"
    _serve(process, proxy, b"bb")        # -> "6"
    result = RecoveryManager().recover(process, proxy, checkpoints,
                                       checkpoint, drop_msg_ids={0})
    assert result.divergences == 1       # "bb" now answers "2", not "6"


def test_strict_recovery_aborts_on_divergence():
    process, proxy, checkpoints = setup_counter()
    checkpoint = checkpoints.take(process)
    _serve(process, proxy, b"aaaa")
    _serve(process, proxy, b"bb")
    with pytest.raises(RecoveryFailed):
        RecoveryManager(strict=True).recover(process, proxy, checkpoints,
                                             checkpoint, drop_msg_ids={0})


def test_recovery_virtual_time_accounted():
    process, proxy, checkpoints = setup_counter()
    checkpoint = checkpoints.take(process)
    for payload in (b"a", b"b", b"c"):
        _serve(process, proxy, payload)
    result = RecoveryManager().recover(process, proxy, checkpoints,
                                       checkpoint, drop_msg_ids=set())
    assert result.virtual_seconds > 0


def test_recovery_rewinds_delivery_and_checkpoints():
    process, proxy, checkpoints = setup_counter()
    keep = checkpoints.take(process)
    _serve(process, proxy, b"aaaa")
    checkpoints.take(process)
    _serve(process, proxy, b"bb")
    RecoveryManager().recover(process, proxy, checkpoints, keep,
                              drop_msg_ids={0, 1})
    assert [c.seq for c in checkpoints.checkpoints] == [keep.seq]
    assert proxy.delivered == []
    # Service continues cleanly from zero state.
    assert _serve(process, proxy, b"xyz") == [b"3"]


def test_recovery_with_echo_has_no_divergence():
    """A stateless echo server replays byte-identically no matter what
    is dropped."""
    process = load_program(ECHO_SOURCE, seed=1)
    process.run(max_steps=100_000)
    proxy = NetworkProxy()
    checkpoints = CheckpointManager()
    checkpoint = checkpoints.take(process)
    for payload in (b"one", b"evil", b"two"):
        _serve(process, proxy, payload)
    result = RecoveryManager(strict=True).recover(
        process, proxy, checkpoints, checkpoint, drop_msg_ids={1})
    assert result.divergences == 0
    assert result.duplicates_suppressed == 2
