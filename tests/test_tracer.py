"""Tests for the execution tracer debugging tool."""

from repro.instrument.tracer import ExecutionTracer
from repro.machine.process import load_program
from tests.conftest import HEAP_ECHO_SOURCE


def traced_process(limit=10_000, trace_memory=False):
    process = load_program(HEAP_ECHO_SOURCE, seed=2)
    tracer = ExecutionTracer(limit=limit, trace_memory=trace_memory)
    process.hooks.attach(tracer, process)
    return process, tracer


def test_records_instructions_and_calls():
    process, tracer = traced_process()
    process.feed(b"hi")
    process.run(max_steps=100_000)
    text = tracer.render()
    assert "NATIVE malloc" in text
    assert "NATIVE strcpy" in text
    assert "NATIVE free" in text
    assert "CALL" in text and "RET" in text
    assert "SYS" in text
    assert tracer.instruction_count > 0


def test_symbolizes_known_addresses():
    process, tracer = traced_process()
    process.feed(b"x")
    process.run(max_steps=100_000)
    text = tracer.render()
    assert "<@malloc>" in text or "@malloc" in text


def test_bounded_event_ring():
    process, tracer = traced_process(limit=50)
    for index in range(6):
        process.feed(b"request payload %d" % index)
    process.run(max_steps=100_000)
    assert len(tracer.events) <= 50
    assert tracer.instruction_count > 50   # more happened than retained


def test_render_last_n():
    process, tracer = traced_process()
    process.feed(b"x")
    process.run(max_steps=100_000)
    lines = tracer.render(last=5).splitlines()
    assert len(lines) == 6       # header + 5 events


def test_memory_tracing_optional():
    process, tracer = traced_process(trace_memory=True)
    process.feed(b"abc")
    process.run(max_steps=100_000)
    assert any(event.strip().startswith(("WRITE", "READ"))
               for event in tracer.events)


def test_clear_resets():
    process, tracer = traced_process()
    process.feed(b"x")
    process.run(max_steps=100_000)
    tracer.clear()
    assert not tracer.events
    assert tracer.instruction_count == 0


def test_detach_stops_tracing():
    process, tracer = traced_process()
    process.feed(b"x")
    process.run(max_steps=100_000)
    process.hooks.detach(tracer, process)
    seen = len(tracer.events)
    process.feed(b"y")
    process.run(max_steps=100_000)
    assert len(tracer.events) == seen
