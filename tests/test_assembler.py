"""Unit tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.encoding import decode_bytes
from repro.isa.opcodes import Op


def test_minimal_program():
    image = assemble(".text\nmain:\n halt\n")
    assert image.text == bytes([int(Op.HALT)])
    assert image.symbols["main"] == ("text", 0)
    assert image.entry == "main"


def test_entry_must_exist():
    with pytest.raises(AssemblerError):
        assemble(".text\nstart:\n halt\n")          # no 'main'
    image = assemble(".text\nstart:\n halt\n", entry="start")
    assert image.entry == "start"


def test_entry_must_be_in_text():
    with pytest.raises(AssemblerError):
        assemble(".text\n halt\n.data\nmain: .word 0\n")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\nmain:\nmain:\n halt\n")


def test_undefined_label_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\nmain:\n jmp nowhere\n")


def test_unknown_mnemonic_reports_line():
    with pytest.raises(AssemblerError) as excinfo:
        assemble(".text\nmain:\n frobnicate r0\n")
    assert "line 3" in str(excinfo.value)


def test_data_directives():
    image = assemble("""
.text
main:
    halt
.data
b:   .byte 1, 2, 0xFF
w:   .word 0x11223344, -1
s:   .asciiz "hi"
sp:  .space 4
raw: .ascii "ab"
""")
    data = image.data
    assert data[0:3] == bytes([1, 2, 0xFF])
    assert data[3:7] == (0x11223344).to_bytes(4, "little")
    assert data[7:11] == b"\xff\xff\xff\xff"
    assert data[11:14] == b"hi\x00"
    assert data[14:18] == b"\x00\x00\x00\x00"
    assert data[18:20] == b"ab"


def test_string_escapes():
    image = assemble('.text\nmain:\n halt\n.data\ns: .asciiz "a\\nb\\t"\n')
    assert image.data == b"a\nb\t\x00"


def test_equ_constants():
    image = assemble("""
.equ SIZE 64
.text
main:
    mov r0, SIZE
    halt
""")
    insn = decode_bytes(image.text)
    assert insn.op == Op.MOVRI
    assert insn.operands == (0, 64)


def test_char_literals():
    image = assemble(".text\nmain:\n mov r0, 'A'\n cmp r0, ' '\n halt\n")
    first = decode_bytes(image.text)
    assert first.operands == (0, ord("A"))
    second = decode_bytes(image.text, offset=first.length)
    assert second.op == Op.CMPRI
    assert second.operands == (0, 0x20)


def test_negative_and_hex_immediates():
    image = assemble(".text\nmain:\n mov r0, -4\n mov r1, 0xFF\n halt\n")
    first = decode_bytes(image.text)
    assert first.operands[1] == 0xFFFFFFFC
    second = decode_bytes(image.text, offset=first.length)
    assert second.operands[1] == 0xFF


def test_memory_operands():
    image = assemble("""
.text
main:
    ld r0, [r1+8]
    ld r2, [r3]
    ldb r4, [r5-4]
    st [r6+12], r7
    stb [r1], r2
    halt
""")
    insn = decode_bytes(image.text)
    assert insn.op == Op.LDW and insn.operands == (0, 1, 8)
    offset = insn.length
    insn = decode_bytes(image.text, offset)
    assert insn.op == Op.LDW and insn.operands == (2, 3, 0)
    offset += insn.length
    insn = decode_bytes(image.text, offset)
    assert insn.op == Op.LDB
    assert insn.operands == (4, 5, 0xFFFFFFFC)     # -4 wrapped
    offset += insn.length
    insn = decode_bytes(image.text, offset)
    assert insn.op == Op.STW and insn.operands == (6, 12, 7)
    offset += insn.length
    insn = decode_bytes(image.text, offset)
    assert insn.op == Op.STB and insn.operands == (1, 0, 2)


def test_mnemonic_selection_rr_vs_ri():
    image = assemble(".text\nmain:\n add r0, r1\n add r0, 5\n halt\n")
    first = decode_bytes(image.text)
    assert first.op == Op.ADDRR
    second = decode_bytes(image.text, first.length)
    assert second.op == Op.ADDRI


def test_jump_and_call_forms():
    image = assemble("""
.text
main:
    jmp main
    jmp r3
    call main
    call r2
    je main
    jne main
    halt
""")
    ops = []
    offset = 0
    while offset < len(image.text):
        insn = decode_bytes(image.text, offset)
        ops.append(insn.op)
        offset += insn.length
    assert ops == [Op.JMPI, Op.JMPR, Op.CALLI, Op.CALLR, Op.JE, Op.JNE,
                   Op.HALT]


def test_label_relocations_recorded():
    image = assemble("""
.text
main:
    mov r0, value
    call helper
    halt
helper:
    ret
.data
value: .word 99
""")
    targets = {(r.target, r.value) for r in image.relocations}
    helper_offset = image.symbols["helper"][1]
    assert ("data", 0) in targets
    assert ("text", helper_offset) in targets


def test_native_imports_become_relocations():
    image = assemble(".text\nmain:\n call @strlen\n halt\n")
    reloc = image.relocations[0]
    assert reloc.target == "native"
    assert reloc.value == "strlen"


def test_label_plus_offset():
    image = assemble("""
.text
main:
    mov r0, table+8
    halt
.data
table: .word 1, 2, 3
""")
    reloc = image.relocations[0]
    assert reloc.target == "data"
    assert reloc.addend == 8


def test_word_directive_with_label_reference():
    image = assemble("""
.text
main:
    halt
.data
ptr: .word main
""")
    reloc = image.relocations[0]
    assert reloc.section == "data"
    assert reloc.target == "text"
    assert reloc.value == 0


def test_sys_accepts_names_and_numbers():
    by_name = assemble(".text\nmain:\n sys recv\n halt\n")
    by_number = assemble(".text\nmain:\n sys 1\n halt\n")
    assert by_name.text == by_number.text


def test_sys_rejects_unknown_name():
    with pytest.raises(AssemblerError):
        assemble(".text\nmain:\n sys frob\n halt\n")


def test_instructions_rejected_in_data_section():
    with pytest.raises(AssemblerError):
        assemble(".text\nmain:\n halt\n.data\n mov r0, 1\n")


def test_comments_and_blank_lines_ignored():
    image = assemble("""
; leading comment
.text
main:            ; trailing comment
    # hash comment
    halt         # another
""")
    assert image.text == bytes([int(Op.HALT)])


def test_comment_chars_inside_strings_kept():
    image = assemble('.text\nmain:\n halt\n.data\ns: .asciiz "a;b#c"\n')
    assert image.data == b"a;b#c\x00"


def test_label_on_same_line_as_instruction():
    image = assemble(".text\nmain: halt\n")
    assert image.symbols["main"] == ("text", 0)
    assert image.text == bytes([int(Op.HALT)])


def test_two_pass_forward_references():
    image = assemble("""
.text
main:
    jmp later
    nop
later:
    halt
""")
    insn = decode_bytes(image.text)
    assert insn.op == Op.JMPI
    # target offset = jmp (5) + nop (1)
    assert image.symbols["later"] == ("text", 6)
    reloc = image.relocations[0]
    assert reloc.value == 6


def test_operand_arity_errors():
    for bad in ("mov r0", "mov r0, r1, r2", "pop 5", "st r0, [r1]",
                "ld [r0], r1", "cmp 1, 2"):
        with pytest.raises(AssemblerError):
            assemble(f".text\nmain:\n {bad}\n halt\n")
