"""Differential tests across the CPU's four run-loop tiers.

The batched CPU loop selects among four inner loops: **fused** (trace
supercells + cells), **plain** (per-instruction cells), **checked**
(cells + per-PC VSEF probes) and **instrumented** (step() with full
event emission).  The contract is that the tier is *purely* an
implementation detail: registers, flags, memory, cycle counts, the
control ring and every fault must be bit-identical across all of them.
These tests run the same guest programs down every tier and diff the
final machine state, and they exercise the dirty-page bitmap through
snapshot/restore round-trips.
"""

from __future__ import annotations

import random

from repro.errors import VMFault
from repro.instrument.hooks import Tool
from repro.isa.assembler import assemble
from repro.machine.process import Process

_ALU = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr"]
_COND = ["je", "jne", "jl", "jle", "jg", "jge", "jb", "jae"]


class TouchEverything(Tool):
    """Subscribes to every event so the hook manager goes fully active."""

    name = "touch-everything"

    def __init__(self):
        self.counts: dict[str, int] = {}

    def _bump(self, event):
        self.counts[event] = self.counts.get(event, 0) + 1

    def on_ins(self, pc, insn, cpu):
        self._bump("ins")

    def on_mem_read(self, pc, addr, size):
        self._bump("mem_read")

    def on_mem_write(self, pc, addr, size, data):
        self._bump("mem_write")

    def on_mem_copy(self, pc, dst, src, size):
        self._bump("mem_copy")

    def on_call(self, pc, target, return_addr):
        self._bump("call")

    def on_ret(self, pc, target, sp):
        self._bump("ret")

    def on_branch(self, pc, target, taken):
        self._bump("branch")

    def on_reg_write(self, pc, reg, value):
        self._bump("reg_write")

    def on_malloc(self, pc, payload, size):
        self._bump("malloc")

    def on_free(self, pc, payload):
        self._bump("free")

    def on_native(self, pc, name, args):
        self._bump("native")

    def on_syscall(self, pc, number, args, result):
        self._bump("syscall")


def _machine_state(process: Process) -> dict:
    cpu = process.cpu
    pages = {index: bytes(page)
             for index, page in process.memory._pages.items()}
    return {"regs": list(cpu.regs), "pc": cpu.pc,
            "flags": (cpu.zf, cpu.sf, cpu.cf), "cycles": cpu.cycles,
            "ring": list(cpu.control_ring), "pages": pages}


def _benign_check(cpu, insn):
    """A VSEF probe that fires without charging cycles or touching
    state: arming it forces the checked run loop."""


def run_differential(source: str, feeds=(), max_steps: int = 500_000,
                     seed: int = 7):
    """Run ``source`` down all four run-loop tiers; assert identical
    state.  Returns the fused process, the instrumented one and its
    tool (kept for callers asserting on event counts)."""
    image = assemble(source)
    fused = Process(image, seed=seed)
    plain = Process(image, seed=seed)
    plain.cpu.fusion_enabled = False
    checked = Process(image, seed=seed)
    checked.cpu.pre_checks[checked.symbols[image.entry]] = [_benign_check]
    instrumented = Process(image, seed=seed)
    tool = TouchEverything()
    instrumented.hooks.attach(tool, instrumented)
    processes = [fused, plain, checked, instrumented]
    for process in processes:
        for data in feeds:
            process.feed(data)
    results = [process.run(max_steps=max_steps) for process in processes]
    states = [_machine_state(process) for process in processes]
    for result in results[1:]:
        assert result.reason == results[0].reason
        assert result.cycles == results[0].cycles
    for state in states[1:]:
        assert state == states[0]
    return fused, instrumented, tool


def _random_program(rng: random.Random, length: int = 60) -> str:
    """A random terminating program: ALU soup, loads/stores through a
    scratch buffer, and forward-only conditional branches."""
    lines = [".text", "main:", " mov r6, buf"]
    for index in range(length):
        lines.append(f"L{index}:")
        roll = rng.random()
        if roll < 0.35:
            op = rng.choice(_ALU)
            rd = rng.randrange(6)
            if rng.random() < 0.5:
                lines.append(f" {op} r{rd}, r{rng.randrange(6)}")
            else:
                lines.append(f" {op} r{rd}, {rng.randrange(0xFFFF)}")
        elif roll < 0.5:
            lines.append(f" mov r{rng.randrange(6)}, {rng.randrange(1 << 32)}")
        elif roll < 0.62:
            disp = rng.randrange(0, 252, 4)
            lines.append(f" st [r6+{disp}], r{rng.randrange(6)}")
        elif roll < 0.74:
            disp = rng.randrange(0, 252, 4)
            lines.append(f" ld r{rng.randrange(6)}, [r6+{disp}]")
        elif roll < 0.86:
            if rng.random() < 0.5:
                lines.append(f" cmp r{rng.randrange(6)}, r{rng.randrange(6)}")
            else:
                lines.append(f" cmp r{rng.randrange(6)}, "
                             f"{rng.randrange(0xFFFF)}")
        else:
            target = rng.randrange(index + 1, length + 1)
            lines.append(f" {rng.choice(_COND)} L{target}")
    lines.append(f"L{length}:")
    lines.append(" halt")
    lines.append(".data")
    lines.append("buf: .space 256")
    return "\n".join(lines)


def test_random_programs_bit_identical():
    rng = random.Random(1234)
    for _ in range(25):
        run_differential(_random_program(rng), max_steps=20_000)


def test_calls_natives_and_heap_bit_identical():
    source = """
    .text
    main:
        mov r0, 64
        call @malloc
        mov r5, r0
        mov r1, msg
        call @strcpy
        mov r0, r5
        call @strlen
        mov r4, r0
        mov r0, r5
        call @free
        mov r0, 3
        call fact
        halt
    fact:
        push fp
        mov fp, sp
        cmp r0, 1
        jle base
        push r0
        sub r0, 1
        call fact
        pop r1
        mul r0, r1
        jmp done
    base:
        mov r0, 1
    done:
        pop fp
        ret
    .data
    msg: .asciiz "differential"
    """
    plain, _instrumented, tool = run_differential(source)
    assert plain.cpu.regs[0] == 6          # 3!
    assert tool.counts["native"] >= 4
    assert tool.counts["call"] >= 3
    assert tool.counts["ins"] > 0


def test_server_with_syscalls_bit_identical():
    source = """
    .text
    main:
    loop:
        mov r0, buf
        mov r1, 256
        sys recv
        cmp r0, 0
        je loop
        mov r1, r0
        mov r0, buf
        sys send
        jmp loop
    .data
    buf: .space 256
    """
    feeds = [b"first request", b"second", b"third payload"]
    plain, instrumented, tool = run_differential(source, feeds=feeds)
    assert plain.sent and len(plain.sent) == len(instrumented.sent)
    assert [s.data for s in plain.sent] == [s.data for s in instrumented.sent]
    assert tool.counts["syscall"] >= len(feeds)


def test_faults_identical_on_both_paths():
    source = ".text\nmain:\n mov r1, 64\n ld r0, [r1+0]\n halt\n"
    plain = Process(assemble(source), seed=3)
    instrumented = Process(assemble(source), seed=3)
    instrumented.hooks.attach(TouchEverything(), instrumented)
    faults = []
    for process in (plain, instrumented):
        try:
            process.run(max_steps=1_000)
            raise AssertionError("expected a fault")
        except VMFault as fault:
            faults.append((fault.kind, fault.pc, fault.addr))
    assert faults[0] == faults[1]
    assert plain.cpu.cycles == instrumented.cpu.cycles


def test_stepped_and_batched_identical():
    """Single-stepping and the batched loop agree instruction for
    instruction (same cells, same accounting)."""
    rng = random.Random(99)
    source = _random_program(rng, length=40)
    batched = Process(assemble(source), seed=5)
    stepped = Process(assemble(source), seed=5)
    batched.run(max_steps=10_000)
    from repro.errors import ProcessExited
    try:
        while True:
            stepped.cpu.step()
    except ProcessExited:
        pass
    assert stepped.cpu.regs == batched.cpu.regs
    assert stepped.cpu.cycles == batched.cpu.cycles
    assert (stepped.cpu.zf, stepped.cpu.sf, stepped.cpu.cf) == \
        (batched.cpu.zf, batched.cpu.sf, batched.cpu.cf)


# ---------------------------------------------------------------------------
# Snapshot / restore through the dirty-page bitmap
# ---------------------------------------------------------------------------

def test_snapshot_restore_roundtrip_dirty_bitmap():
    source = """
    .text
    main:
    loop:
        mov r0, buf
        mov r1, 256
        sys recv
        cmp r0, 0
        je loop
        mov r1, r0
        mov r0, buf
        sys send
        jmp loop
    .data
    buf: .space 4200
    """
    process = Process(assemble(source), seed=11)
    process.run(max_steps=100_000)                  # boot to first recv
    memory = process.memory

    snap = process.snapshot_full()
    assert memory.dirty_page_count() == 0           # snapshot resets bitmap

    process.feed(b"A" * 200)
    process.run(max_steps=100_000)
    dirty_after_write = memory.dirty_page_count()
    assert dirty_after_write >= 1                   # buf page went dirty
    assert memory.cow_copies >= 1                   # it was frozen before

    state_after = {index: bytes(page)
                   for index, page in memory._pages.items()}

    process.restore_full(snap)
    assert memory.dirty_page_count() == 0           # restore resets bitmap

    # Re-execute the same input: bit-identical replay, same dirty set.
    process.feed(b"A" * 200)
    process.run(max_steps=100_000)
    assert memory.dirty_page_count() == dirty_after_write
    replay_state = {index: bytes(page)
                    for index, page in memory._pages.items()}
    assert replay_state == state_after


def test_dirty_bitmap_matches_identity_walk():
    source = ".text\nmain:\n mov r6, buf\n st [r6+0], r0\n halt\n.data\n" \
             "buf: .space 64\n"
    process = Process(assemble(source), seed=0)
    memory = process.memory
    snap = memory.snapshot()
    process.run(max_steps=1_000)
    assert memory.dirty_page_count() == memory.dirty_pages_since(snap)


def test_tool_attached_from_pre_check_sees_remaining_stream():
    """PIN-style mid-execution attach: a VSEF pre-check that attaches a
    tool must put the batched loop on the instrumented path immediately,
    and the attaching instruction itself must be observed exactly as
    step() would (checks run once, then the ins event)."""
    source = (".text\nmain:\n mov r0, 0\n add r0, 1\n add r0, 2\n"
              " add r0, 4\n halt\n")
    process = Process(assemble(source), seed=0)
    tool = TouchEverything()
    first_add = process.symbols["main"] + 6      # the first 'add'
    check_runs = []

    def check(cpu, insn):
        check_runs.append(cpu.pc)
        if tool not in process.hooks.tools:
            process.hooks.attach(tool, process)

    process.cpu.pre_checks[first_add] = [check]
    result = process.run(max_steps=1_000)
    assert result.reason == "exit"
    assert process.cpu.regs[0] == 7
    # The check ran once (not re-run by loop re-selection) and the tool
    # saw the attaching instruction plus everything after it: add, add,
    # add, halt.
    assert len(check_runs) == 1
    assert tool.counts["ins"] == 4
