"""Shared fixtures and helpers for the Sweeper reproduction test suite."""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.machine.layout import ReferenceLayout
from repro.machine.process import Process

#: A minimal echo server: reads a message, echoes it back, repeats.
ECHO_SOURCE = """
.text
main:
loop:
    mov r0, buf
    mov r1, 512
    sys recv
    cmp r0, 0
    je loop
    mov r1, r0
    mov r0, buf
    sys send
    jmp loop
.data
buf: .space 512
"""

#: A server exercising the heap on every request: dup the message into a
#: fresh allocation, echo from the copy, free it.
HEAP_ECHO_SOURCE = """
.text
main:
loop:
    mov r0, buf
    mov r1, 512
    sys recv
    cmp r0, 0
    je loop
    mov r4, r0              ; length
    add r0, 1
    call @malloc
    mov r5, r0
    mov r1, buf
    call @strcpy
    mov r0, r5
    mov r1, r4
    sys send
    mov r0, r5
    call @free
    jmp loop
.data
buf: .space 520
"""


def run_fragment(body: str, data: str = "", max_steps: int = 200_000,
                 seed: int = 0, layout=None) -> Process:
    """Assemble ``body`` (instructions after ``main:``), run to HALT."""
    source = f".text\nmain:\n{body}\n halt\n"
    if data:
        source += f".data\n{data}\n"
    process = Process(assemble(source), seed=seed, layout=layout)
    result = process.run(max_steps=max_steps)
    assert result.reason == "exit", f"fragment did not halt: {result.reason}"
    return process


@pytest.fixture
def echo_process() -> Process:
    return Process(assemble(ECHO_SOURCE), seed=7)


@pytest.fixture
def heap_echo_process() -> Process:
    return Process(assemble(HEAP_ECHO_SOURCE), seed=7)


@pytest.fixture
def reference_layout():
    return ReferenceLayout()
