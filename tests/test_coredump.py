"""Unit tests for static memory-state (core dump) analysis."""

import pytest

from repro.analysis.coredump import CoreDumpAnalyzer
from repro.errors import VMFault
from repro.isa.assembler import assemble
from repro.machine.process import Process

#: NULL dereference inside a leaf function.
NULL_DEREF_SOURCE = """
.text
main:
    call victim
    halt
victim:
    push fp
    mov fp, sp
    mov r0, 0
    ld r1, [r0]
    mov sp, fp
    pop fp
    ret
"""

#: Stack smash: overwrite the return address in-frame, then return.
STACK_SMASH_SOURCE = """
.text
main:
    call victim
    halt
victim:
    push fp
    mov fp, sp
    mov r0, fp
    add r0, 4
    mov r1, 0x66600000
    st [r0], r1          ; clobber own return address
    mov sp, fp
    pop fp
    ret                  ; wild return
"""

#: Heap corruption then free -> crash inside lib free.
DOUBLE_FREE_SOURCE = """
.text
main:
    call victim
    halt
victim:
    push fp
    mov fp, sp
    mov r0, 16
    call @malloc
    mov r4, r0
    call @free
    mov r1, 0x70000000    ; plant a wild free-list link
    mov r0, r4
    st [r0], r1
    call @free            ; double free -> SEGV in lib free
    mov sp, fp
    pop fp
    ret
"""

#: strcat overflow running off the heap mapping -> crash in lib strcat.
HEAP_OVERFLOW_SOURCE = """
.text
main:
    call victim
    halt
victim:
    push fp
    mov fp, sp
    mov r0, 8
    call @malloc
    mov r4, r0
    mov r1, big
    mov r0, r4
    call @strcat
    mov sp, fp
    pop fp
    ret
.data
""" + "big: .byte " + ", ".join(["46"] * 6000) + "\nterm: .byte 0\n"


def crash(source: str, seed: int = 3):
    process = Process(assemble(source), seed=seed)
    with pytest.raises(VMFault) as excinfo:
        process.run(max_steps=300_000)
    return process, excinfo.value


class TestNullDeref:
    def test_classification_and_vsef(self):
        process, fault = crash(NULL_DEREF_SOURCE)
        report = CoreDumpAnalyzer(process).analyze(fault)
        assert report.fault_kind == "NULL_DEREF"
        assert report.classification == "NULL pointer dereference"
        assert "victim" in report.crash_site
        assert report.stack_consistent
        assert report.heap_consistent
        vsef = report.vsefs[0]
        assert vsef.kind == "null_check"
        assert vsef.params["reg"] == 0

    def test_summary_format(self):
        process, fault = crash(NULL_DEREF_SOURCE)
        report = CoreDumpAnalyzer(process).analyze(fault)
        assert report.summary().startswith("Crash at ")


class TestStackSmash:
    def test_wild_return_classified_and_guarded(self):
        process, fault = crash(STACK_SMASH_SOURCE)
        report = CoreDumpAnalyzer(process).analyze(fault)
        assert report.classification == "stack smashing (wild return)"
        assert "victim" in report.crash_site
        vsef = report.vsefs[0]
        assert vsef.kind == "ret_guard"
        assert vsef.params["function"] == "victim"

    def test_fault_carries_ret_source(self):
        _process, fault = crash(STACK_SMASH_SOURCE)
        assert fault.kind == "BAD_PC"
        assert fault.pc == 0x66600000
        assert fault.source_pc is not None


class TestDoubleFree:
    def test_crash_in_free_with_inconsistent_heap(self):
        process, fault = crash(DOUBLE_FREE_SOURCE)
        assert fault.pc == process.native_addresses["free"]
        report = CoreDumpAnalyzer(process).analyze(fault)
        assert "lib. free" in report.crash_site
        vsef = report.vsefs[0]
        assert vsef.kind == "double_free"


class TestHeapOverflow:
    def test_crash_in_strcat_yields_bounds_vsef(self):
        process, fault = crash(HEAP_OVERFLOW_SOURCE)
        assert fault.pc == process.native_addresses["strcat"]
        report = CoreDumpAnalyzer(process).analyze(fault)
        assert "lib. strcat" in report.crash_site
        assert report.classification == "overflow in lib. strcat"
        vsef = report.vsefs[0]
        assert vsef.kind == "heap_bounds"
        assert vsef.params["native"] == "strcat"
        assert vsef.params["caller"] is not None

    def test_caller_named_in_note(self):
        process, fault = crash(HEAP_OVERFLOW_SOURCE)
        report = CoreDumpAnalyzer(process).analyze(fault)
        assert "victim" in report.vsefs[0].note


class TestStackWalk:
    def test_clean_stack_walks_fully(self):
        process = Process(assemble(NULL_DEREF_SOURCE), seed=1)
        with pytest.raises(VMFault):
            process.run(max_steps=100_000)
        walk = CoreDumpAnalyzer(process).walk_stack()
        assert walk.consistent
        assert walk.frames
        assert walk.frames[0]["function"] == "main"

    def test_smashed_frame_detected(self):
        source = """
.text
main:
    call victim
    halt
victim:
    push fp
    mov fp, sp
    mov r0, fp
    add r0, 4
    mov r1, 0x41414141
    st [r0], r1
    mov r2, 0
    ld r3, [r2]           ; crash while frame is smashed (pre-return)
    ret
"""
        process = Process(assemble(source), seed=1)
        with pytest.raises(VMFault):
            process.run(max_steps=100_000)
        walk = CoreDumpAnalyzer(process).walk_stack()
        assert not walk.consistent
        assert "not a call site" in walk.problem
