"""Stateful model checking of the CommunityBus against ``repro.spec.bus``.

:class:`BusMachine` drives a real
:class:`~repro.antibody.distribution.CommunityBus` and the naive
:class:`~repro.spec.bus.BusModel` through randomized interleavings of
publish / late-publish / duplicate republish / forged-id publish /
subscriber join / crash-and-resubscribe / poll (forward and rewinding
clocks), asserting after every step that the implementation refines the
model: identical logs, ids, backlogs, high-water marks and availability
views, with every poll batch checked against the stated invariants
(exactly-once over the subscriber's lifetime, strict
``(available_at, seq)`` order, no-skip).

The direct ``@given`` properties at the bottom are the satellite: the
non-monotone-clock rejection, ``first_available_time`` as a running
minimum, and the inclusive γ₂ boundary get example-free property
coverage of their own.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, initialize,
                                 invariant, rule)

from repro.antibody.distribution import AntibodyBundle, CommunityBus
from repro.errors import ReproError
from repro.spec.bus import BusModel, PollRewound, assert_bus_refines
from repro.spec.invariants import (SpecViolation, assert_batch_ordered,
                                   assert_exactly_once, assert_no_skip)
from tests.spec_harness import spec_settings

APPS = ("cvs", "squid", "httpd")
SUBSCRIBERS = ("n0", "n1", "n2", "n3")

#: Times mix a coarse grid (forcing exact availability ties and
#: boundary hits) with arbitrary finite floats.
times = st.one_of(
    st.sampled_from([0.0, 0.5, 1.0, 2.0, 2.5, 5.0, 10.0]),
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False))


class BusMachine(RuleBasedStateMachine):
    published = Bundle("published")

    @initialize(latency=st.sampled_from([0.0, 1.0, 3.0]))
    def setup(self, latency):
        self.bus = CommunityBus(dissemination_latency=latency)
        self.model = BusModel(latency=latency)
        #: name -> impl-observed delivered history as model seqs.
        self.history = {}

    # -- publishing rules ----------------------------------------------------

    def _publish(self, bundle: AntibodyBundle):
        expected = self.model.publish(bundle.app, bundle.produced_at,
                                      bundle_id=bundle.bundle_id)
        self.bus.publish(bundle)
        assert bundle.bundle_id == expected.bundle_id, \
            f"id diverged: impl {bundle.bundle_id!r} model " \
            f"{expected.bundle_id!r}"
        return bundle

    @rule(target=published, app=st.sampled_from(APPS), produced_at=times)
    def publish(self, app, produced_at):
        """A producer publishes a fresh bundle; the bus mints its id.
        ``produced_at`` is unconstrained by poll clocks, so late
        publishes with early availability arise constantly."""
        return self._publish(AntibodyBundle(app=app,
                                            produced_at=produced_at))

    @rule(target=published, app=st.sampled_from(APPS), produced_at=times,
          forged=st.sampled_from(["ab-1", "ab-3", "forged-x", "pool-0"]))
    def publish_forged_id(self, app, produced_at, forged):
        """Byzantine producer: a preset (possibly colliding) id rides
        in.  publish preserves any non-empty id and must not advance
        the mint counter."""
        return self._publish(AntibodyBundle(app=app, produced_at=produced_at,
                                            bundle_id=forged))

    @rule(bundle=published)
    def republish_same_object(self, bundle):
        """Byzantine producer: the *same* bundle object replayed.  It
        keeps its id and occupies a fresh log seq — duplicate content,
        distinct delivery."""
        self._publish(bundle)

    # -- subscriber rules ----------------------------------------------------

    @rule(name=st.sampled_from(SUBSCRIBERS))
    def join(self, name):
        self.bus.subscribe(name)
        self.model.subscribe(name)
        self.history.setdefault(name, [])

    @rule(name=st.sampled_from(SUBSCRIBERS))
    def crash_and_resubscribe(self, name):
        """A consumer crashes and comes back under the same identity.
        subscribe is idempotent: no backlog reset, no redelivery — the
        lifetime exactly-once claim survives the crash."""
        before = self.bus.subscriber_backlog(name) \
            if name in self.model.delivered else None
        self.bus.subscribe(name)
        self.model.subscribe(name)
        self.history.setdefault(name, [])
        if before is not None and \
                self.bus.subscriber_backlog(name) != before:
            raise SpecViolation(
                f"resubscribing {name!r} changed its backlog "
                f"({before} -> {self.bus.subscriber_backlog(name)})")

    @rule(name=st.sampled_from(SUBSCRIBERS), now=times)
    def poll(self, name, now):
        """Poll at an arbitrary absolute time.  A time before the
        subscriber's high-water mark must be *refused* by both sides
        (spec-legal refusal); otherwise the batches must agree and
        satisfy every delivery invariant."""
        self.model.subscribe(name)
        self.history.setdefault(name, [])
        rewinds = now < self.model.high_water[name]
        if rewinds:
            with pytest.raises(PollRewound):
                self.model.poll(name, now)
            with pytest.raises(ReproError):
                self.bus.poll(name, now)
            return
        expected = self.model.poll(name, now)
        batch = self.bus.poll(name, now)
        impl_view = [(b.bundle_id, b.app,
                      b.produced_at + self.bus.dissemination_latency)
                     for b in batch]
        model_view = [(e.bundle_id, e.app, e.available_at)
                      for e in expected]
        if impl_view != model_view:
            raise SpecViolation(
                f"poll({name!r}, {now}) diverged:\n  impl  {impl_view}\n"
                f"  model {model_view}")
        # The stated delivery invariants, on the observed history.
        assert_batch_ordered(name, [(e.available_at, e.seq)
                                    for e in expected])
        self.history[name].extend(e.seq for e in expected)
        assert_exactly_once(name, self.history[name])
        assert_no_skip(name, now, self.history[name],
                       [(e.seq, e.available_at) for e in self.model.log])

    # -- the refinement, after every step ------------------------------------

    @invariant()
    def refines(self):
        assert_bus_refines(self.model, self.bus)
        now = max([0.0, *self.model.high_water.values()])
        impl = [(b.bundle_id, b.app) for b in self.bus.available(now)]
        model = [(e.bundle_id, e.app) for e in self.model.available(now)]
        if impl != model:
            raise SpecViolation(
                f"available({now}) diverged:\n  impl  {impl}\n"
                f"  model {model}")


BusMachine.TestCase.settings = spec_settings()
TestBusRefinement = BusMachine.TestCase


# -- satellite: direct property coverage --------------------------------------

@spec_settings()
@given(produced=st.lists(st.tuples(st.sampled_from(APPS), times),
                         min_size=1, max_size=20))
def test_first_available_time_is_the_running_minimum(produced):
    bus = CommunityBus(dissemination_latency=3.0)
    for app, produced_at in produced:
        bus.publish(AntibodyBundle(app=app, produced_at=produced_at))
    for app in (None, *APPS):
        mine = [t + 3.0 for a, t in produced if app in (None, a)]
        assert bus.first_available_time(app) == (min(mine) if mine
                                                 else None)


@spec_settings()
@given(first=times, rewind=st.floats(min_value=1e-9, max_value=50.0,
                                     allow_nan=False))
def test_poll_rejects_any_non_monotone_clock(first, rewind):
    bus = CommunityBus(dissemination_latency=0.0)
    bus.publish(AntibodyBundle(app="cvs", produced_at=0.0))
    bus.poll("n0", now=first)
    earlier = first - rewind
    if earlier == first:            # 1e-9 can vanish at large magnitudes
        return
    with pytest.raises(ReproError, match="monotone"):
        bus.poll("n0", now=earlier)
    # The refusal must not corrupt the subscriber: an equal-time poll
    # still works and the high-water mark is unchanged.
    assert bus.high_water("n0") == first
    bus.poll("n0", now=first)


@spec_settings()
@given(produced_at=times, latency=st.sampled_from([0.0, 1.0, 3.0]))
def test_gamma2_boundary_is_inclusive(produced_at, latency):
    bus = CommunityBus(dissemination_latency=latency)
    bundle = bus.publish(AntibodyBundle(app="cvs",
                                        produced_at=produced_at))
    boundary = produced_at + latency
    just_before = math.nextafter(boundary, -math.inf)
    if just_before >= boundary:
        return
    assert bus.available(just_before) == []
    assert bus.poll("n0", now=just_before) == []
    assert bus.available(boundary) == [bundle]
    assert bus.poll("n0", now=boundary) == [bundle]
