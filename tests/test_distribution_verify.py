"""Unit tests for antibody distribution and sandboxed verification."""

from repro.antibody.distribution import AntibodyBundle, CommunityBus
from repro.antibody.signatures import generate_exact
from repro.antibody.verify import verify_antibody
from repro.antibody.vsef import VSEF, CodeLoc
from repro.apps.cvsd import build_cvsd
from repro.apps.exploits import cvs_exploit
from repro.apps.squidp import build_squidp
from repro.apps.exploits import squid_exploit


class TestCommunityBus:
    def test_latency_gates_availability(self):
        bus = CommunityBus(dissemination_latency=3.0)
        bus.publish(AntibodyBundle(app="squid", produced_at=1.0))
        assert bus.available(now=2.0) == []
        assert len(bus.available(now=4.1)) == 1

    def test_piecemeal_publication_ordering(self):
        bus = CommunityBus(dissemination_latency=1.0)
        bus.publish(AntibodyBundle(app="squid", stage="final",
                                   produced_at=5.0))
        bus.publish(AntibodyBundle(app="squid", stage="initial",
                                   produced_at=0.1))
        available = bus.available(now=1.5)
        assert [bundle.stage for bundle in available] == ["initial"]

    def test_response_time_is_gamma(self):
        """γ = γ₁ (production) + γ₂ (dissemination)."""
        bus = CommunityBus(dissemination_latency=3.0)
        bus.publish(AntibodyBundle(app="squid", produced_at=0.06))
        assert bus.response_time("squid") == 3.06

    def test_per_app_filtering(self):
        bus = CommunityBus(dissemination_latency=0.0)
        bus.publish(AntibodyBundle(app="squid", produced_at=1.0))
        bus.publish(AntibodyBundle(app="cvs", produced_at=2.0))
        assert bus.first_available_time("cvs") == 2.0
        assert bus.first_available_time() == 1.0
        assert bus.first_available_time("httpd") is None

    def test_bundle_serialization(self):
        bundle = AntibodyBundle(
            app="squid",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            signatures=[generate_exact(b"evil")],
            exploit_input=b"evil", produced_at=0.5, stage="final")
        data = bundle.to_dict()
        assert data["app"] == "squid"
        assert data["exploit_input"] == b"evil".hex()
        assert data["vsefs"][0]["kind"] == "double_free"


class TestCommunityBusCursors:
    def test_simultaneous_arrivals_order_by_publish_seq(self):
        """Bundles that become available at the same instant drain in
        publish order — the deterministic tie-break."""
        bus = CommunityBus(dissemination_latency=1.0)
        first = bus.publish(AntibodyBundle(app="httpd", stage="initial",
                                           produced_at=2.0))
        second = bus.publish(AntibodyBundle(app="cvs", stage="initial",
                                            produced_at=2.0))
        assert bus.available(now=3.0) == [first, second]
        assert bus.poll("c1", now=3.0) == [first, second]

    def test_poll_is_incremental_and_never_redelivers(self):
        bus = CommunityBus(dissemination_latency=0.0)
        a = bus.publish(AntibodyBundle(app="squid", produced_at=1.0))
        assert bus.poll("c1", now=2.0) == [a]
        assert bus.poll("c1", now=5.0) == []
        b = bus.publish(AntibodyBundle(app="squid", produced_at=4.0))
        assert bus.poll("c1", now=5.0) == [b]

    def test_draining_exactly_at_gamma2_boundary(self):
        """The availability boundary is inclusive: polling at exactly
        produced_at + γ₂ sees the bundle, an instant before does not."""
        bus = CommunityBus(dissemination_latency=3.0)
        bundle = bus.publish(AntibodyBundle(app="squid", produced_at=0.25))
        assert bus.poll("c1", now=3.25 - 1e-12) == []
        assert bus.poll("c1", now=3.25) == [bundle]
        assert bus.available(now=3.25) == [bundle]

    def test_late_publish_with_earlier_availability_not_skipped(self):
        """A slow producer's bundle can become available *earlier* than
        one a subscriber already drained; the cursor must not skip it."""
        bus = CommunityBus(dissemination_latency=1.0)
        late = bus.publish(AntibodyBundle(app="squid", produced_at=9.0))
        assert bus.poll("c1", now=10.0) == [late]
        early = bus.publish(AntibodyBundle(app="squid", produced_at=0.5))
        assert bus.poll("c1", now=10.0) == [early]
        assert bus.poll("c1", now=20.0) == []

    def test_late_subscriber_sees_full_backlog(self):
        bus = CommunityBus(dissemination_latency=0.0)
        bundles = [bus.publish(AntibodyBundle(app="squid", produced_at=t))
                   for t in (1.0, 2.0)]
        assert bus.poll("latecomer", now=10.0) == bundles

    def test_bundle_ids_are_per_bus(self):
        """Satellite: publish assigns ids from a per-bus counter, so
        many buses in one process never interleave."""
        bus_a, bus_b = CommunityBus(), CommunityBus()
        bundle_a = bus_a.publish(AntibodyBundle(app="squid"))
        bundle_b = bus_b.publish(AntibodyBundle(app="cvs"))
        assert bundle_a.bundle_id == "ab-1"
        assert bundle_b.bundle_id == "ab-1"
        assert bus_a.publish(AntibodyBundle(app="squid")).bundle_id == "ab-2"
        # An already-identified bundle (e.g. revived from the wire and
        # re-shared) keeps its id.
        relayed = AntibodyBundle.from_dict(bundle_a.to_dict())
        assert bus_b.publish(relayed).bundle_id == "ab-1"

    def test_same_antibody_from_multiple_producers_applies_once(self):
        """Two producers publishing equivalent VSEFs: a consumer drains
        both bundles but installs the filter only once."""
        from repro.runtime.sweeper import Sweeper, SweeperConfig

        bus = CommunityBus(dissemination_latency=0.0)
        for producer in ("p1", "p2"):
            bus.publish(AntibodyBundle(
                app="cvs", produced_at=1.0,
                vsefs=[VSEF(kind="double_free", params={"caller": None},
                            provenance=producer)]))
        consumer = Sweeper(build_cvsd(), app_name="cvs",
                           config=SweeperConfig(
                               seed=9, enable_membug=False,
                               enable_taint=False, enable_slicing=False,
                               publish_antibodies=False))
        applied = []
        for bundle in bus.poll("consumer", now=2.0):
            applied.extend(consumer.apply_foreign_vsefs(bundle.vsefs))
        assert len(applied) == 1
        assert len(consumer.antibodies) == 1


class TestVerification:
    def test_vsef_bundle_verifies_against_exploit(self):
        bundle = AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            exploit_input=cvs_exploit())
        result = verify_antibody(build_cvsd(), bundle, seed=17)
        assert result.verified
        assert result.detected_by == "vsef"

    def test_bundle_without_vsefs_still_verifies_via_crash(self):
        """An empty antibody is verifiable because the exploit still
        trips the lightweight monitor in the sandbox."""
        bundle = AntibodyBundle(app="squid", vsefs=[],
                                exploit_input=squid_exploit())
        result = verify_antibody(build_squidp(), bundle, seed=17)
        assert result.verified
        assert result.detected_by == "fault"

    def test_bundle_without_input_cannot_verify_yet(self):
        bundle = AntibodyBundle(app="cvs", vsefs=[], exploit_input=None)
        result = verify_antibody(build_cvsd(), bundle)
        assert not result.verified
        assert "no exploit input" in result.detail

    def test_benign_input_does_not_verify(self):
        bundle = AntibodyBundle(app="cvs", vsefs=[],
                                exploit_input=b"Entry main.c\n")
        result = verify_antibody(build_cvsd(), bundle, seed=17)
        assert not result.verified


class TestWireFormat:
    def test_bundle_full_json_round_trip(self):
        """Bundles survive json.dumps/loads intact: the actual wire
        format a community deployment would ship."""
        import json

        from repro.antibody.signatures import generate_token

        original = AntibodyBundle(
            app="squid",
            vsefs=[VSEF(kind="heap_bounds",
                        params={"native": "strcat",
                                "caller": CodeLoc("code", 0x1E6)}),
                   VSEF(kind="taint_subset",
                        params={"pcs": [CodeLoc("lib", "memcpy")],
                                "sinks": [CodeLoc("lib", "strcat")]})],
            signatures=[generate_exact(b"\x00\xffGET evil"),
                        generate_token([b"GET ftp://aaaa@x",
                                        b"GET ftp://bbbb@x"])],
            exploit_input=squid_exploit(),
            produced_at=1.25, stage="final")
        wire = json.dumps(original.to_dict())
        revived = AntibodyBundle.from_dict(json.loads(wire))
        assert revived.bundle_id == original.bundle_id
        assert revived.app == original.app
        assert revived.stage == "final"
        assert revived.produced_at == 1.25
        assert revived.exploit_input == original.exploit_input
        assert [v.kind for v in revived.vsefs] == \
            [v.kind for v in original.vsefs]
        assert revived.vsefs[0].params["caller"] == CodeLoc("code", 0x1E6)
        assert revived.vsefs[1].params["pcs"] == [CodeLoc("lib", "memcpy")]
        assert revived.signatures[0].matches(b"\x00\xffGET evil")
        assert revived.signatures[1].matches(b"GET ftp://cccc@x")

    def test_revived_bundle_still_verifies(self):
        """A bundle that crossed the wire still verifies in a sandbox."""
        import json

        original = AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            exploit_input=cvs_exploit())
        revived = AntibodyBundle.from_dict(json.loads(
            json.dumps(original.to_dict())))
        result = verify_antibody(build_cvsd(), revived, seed=31)
        assert result.verified

    def test_bundle_without_input_round_trips(self):
        original = AntibodyBundle(app="httpd", stage="initial")
        revived = AntibodyBundle.from_dict(original.to_dict())
        assert revived.exploit_input is None
        assert revived.vsefs == []
