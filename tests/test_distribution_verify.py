"""Unit tests for antibody distribution and sandboxed verification."""

import pytest

from repro.antibody.distribution import AntibodyBundle, CommunityBus
from repro.errors import ReproError
from repro.antibody.signatures import generate_exact
from repro.antibody.verify import verify_antibody
from repro.antibody.vsef import VSEF, CodeLoc
from repro.apps.cvsd import build_cvsd
from repro.apps.exploits import cvs_exploit
from repro.apps.squidp import build_squidp
from repro.apps.exploits import squid_exploit


class TestCommunityBus:
    def test_latency_gates_availability(self):
        bus = CommunityBus(dissemination_latency=3.0)
        bus.publish(AntibodyBundle(app="squid", produced_at=1.0))
        assert bus.available(now=2.0) == []
        assert len(bus.available(now=4.1)) == 1

    def test_piecemeal_publication_ordering(self):
        bus = CommunityBus(dissemination_latency=1.0)
        bus.publish(AntibodyBundle(app="squid", stage="final",
                                   produced_at=5.0))
        bus.publish(AntibodyBundle(app="squid", stage="initial",
                                   produced_at=0.1))
        available = bus.available(now=1.5)
        assert [bundle.stage for bundle in available] == ["initial"]

    def test_response_time_is_gamma(self):
        """γ = γ₁ (production) + γ₂ (dissemination)."""
        bus = CommunityBus(dissemination_latency=3.0)
        bus.publish(AntibodyBundle(app="squid", produced_at=0.06))
        assert bus.response_time("squid") == 3.06

    def test_per_app_filtering(self):
        bus = CommunityBus(dissemination_latency=0.0)
        bus.publish(AntibodyBundle(app="squid", produced_at=1.0))
        bus.publish(AntibodyBundle(app="cvs", produced_at=2.0))
        assert bus.first_available_time("cvs") == 2.0
        assert bus.first_available_time() == 1.0
        assert bus.first_available_time("httpd") is None

    def test_bundle_serialization(self):
        bundle = AntibodyBundle(
            app="squid",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            signatures=[generate_exact(b"evil")],
            exploit_input=b"evil", produced_at=0.5, stage="final")
        data = bundle.to_dict()
        assert data["app"] == "squid"
        assert data["exploit_input"] == b"evil".hex()
        assert data["vsefs"][0]["kind"] == "double_free"


class TestCommunityBusCursors:
    def test_simultaneous_arrivals_order_by_publish_seq(self):
        """Bundles that become available at the same instant drain in
        publish order — the deterministic tie-break."""
        bus = CommunityBus(dissemination_latency=1.0)
        first = bus.publish(AntibodyBundle(app="httpd", stage="initial",
                                           produced_at=2.0))
        second = bus.publish(AntibodyBundle(app="cvs", stage="initial",
                                            produced_at=2.0))
        assert bus.available(now=3.0) == [first, second]
        assert bus.poll("c1", now=3.0) == [first, second]

    def test_poll_is_incremental_and_never_redelivers(self):
        bus = CommunityBus(dissemination_latency=0.0)
        a = bus.publish(AntibodyBundle(app="squid", produced_at=1.0))
        assert bus.poll("c1", now=2.0) == [a]
        assert bus.poll("c1", now=5.0) == []
        b = bus.publish(AntibodyBundle(app="squid", produced_at=4.0))
        assert bus.poll("c1", now=5.0) == [b]

    def test_draining_exactly_at_gamma2_boundary(self):
        """The availability boundary is inclusive: polling at exactly
        produced_at + γ₂ sees the bundle, an instant before does not."""
        bus = CommunityBus(dissemination_latency=3.0)
        bundle = bus.publish(AntibodyBundle(app="squid", produced_at=0.25))
        assert bus.poll("c1", now=3.25 - 1e-12) == []
        assert bus.poll("c1", now=3.25) == [bundle]
        assert bus.available(now=3.25) == [bundle]

    def test_late_publish_with_earlier_availability_not_skipped(self):
        """A slow producer's bundle can become available *earlier* than
        one a subscriber already drained; the cursor must not skip it."""
        bus = CommunityBus(dissemination_latency=1.0)
        late = bus.publish(AntibodyBundle(app="squid", produced_at=9.0))
        assert bus.poll("c1", now=10.0) == [late]
        early = bus.publish(AntibodyBundle(app="squid", produced_at=0.5))
        assert bus.poll("c1", now=10.0) == [early]
        assert bus.poll("c1", now=20.0) == []

    def test_late_subscriber_sees_full_backlog(self):
        bus = CommunityBus(dissemination_latency=0.0)
        bundles = [bus.publish(AntibodyBundle(app="squid", produced_at=t))
                   for t in (1.0, 2.0)]
        assert bus.poll("latecomer", now=10.0) == bundles

    def test_bundle_ids_are_per_bus(self):
        """Satellite: publish assigns ids from a per-bus counter, so
        many buses in one process never interleave."""
        bus_a, bus_b = CommunityBus(), CommunityBus()
        bundle_a = bus_a.publish(AntibodyBundle(app="squid"))
        bundle_b = bus_b.publish(AntibodyBundle(app="cvs"))
        assert bundle_a.bundle_id == "ab-1"
        assert bundle_b.bundle_id == "ab-1"
        assert bus_a.publish(AntibodyBundle(app="squid")).bundle_id == "ab-2"
        # An already-identified bundle (e.g. revived from the wire and
        # re-shared) keeps its id.
        relayed = AntibodyBundle.from_dict(bundle_a.to_dict())
        assert bus_b.publish(relayed).bundle_id == "ab-1"

    def test_same_antibody_from_multiple_producers_applies_once(self):
        """Two producers publishing equivalent VSEFs: a consumer drains
        both bundles but installs the filter only once."""
        from repro.runtime.sweeper import Sweeper, SweeperConfig

        bus = CommunityBus(dissemination_latency=0.0)
        for producer in ("p1", "p2"):
            bus.publish(AntibodyBundle(
                app="cvs", produced_at=1.0,
                vsefs=[VSEF(kind="double_free", params={"caller": None},
                            provenance=producer)]))
        consumer = Sweeper(build_cvsd(), app_name="cvs",
                           config=SweeperConfig(
                               seed=9, enable_membug=False,
                               enable_taint=False, enable_slicing=False,
                               publish_antibodies=False))
        applied = []
        for bundle in bus.poll("consumer", now=2.0):
            applied.extend(consumer.apply_foreign_vsefs(bundle.vsefs))
        assert len(applied) == 1
        assert len(consumer.antibodies) == 1


class TestBusIndex:
    """The availability-sorted index and per-subscriber pending heaps
    must preserve the cursor bus's exactly-once, deterministic-order
    contract at any backlog size."""

    def test_late_subscriber_after_1k_publishes_sees_all_exactly_once(self):
        """Satellite: a subscriber that joins after 1000 publishes must
        still see every bundle exactly once, in (available_at, seq)
        order — draining in chunks as its clock advances."""
        bus = CommunityBus(dissemination_latency=2.0)
        rng_times = [((i * 7919) % 1000) / 10.0 for i in range(1000)]
        bundles = [bus.publish(AntibodyBundle(app="httpd", produced_at=t))
                   for t in rng_times]
        assert len(bus.published) == 1000
        bus.subscribe("latecomer")
        assert bus.subscriber_backlog("latecomer") == 1000
        seen = []
        for now in (10.0, 25.0, 25.0, 60.0, 102.0):
            seen.extend(bus.poll("latecomer", now))
        assert len(seen) == 1000
        assert len({id(b) for b in seen}) == 1000          # exactly once
        expected = sorted(
            range(1000),
            key=lambda i: (rng_times[i] + 2.0, i))
        assert seen == [bundles[i] for i in expected]
        assert bus.subscriber_backlog("latecomer") == 0    # compacted
        assert bus.poll("latecomer", 200.0) == []

    def test_available_matches_bruteforce_after_interleaved_publishes(self):
        bus = CommunityBus(dissemination_latency=1.0)
        times = [5.0, 0.5, 3.25, 0.5, 9.0, 2.0]
        bundles = [bus.publish(AntibodyBundle(app="a", produced_at=t))
                   for t in times]
        for now in (0.0, 1.5, 3.0, 4.25, 6.0, 100.0):
            expected = [b for _, _, b in sorted(
                (t + 1.0, i, b)
                for i, (t, b) in enumerate(zip(times, bundles))
                if t + 1.0 <= now)]
            assert bus.available(now) == expected

    def test_first_available_time_tracks_running_minimum(self):
        bus = CommunityBus(dissemination_latency=1.0)
        assert bus.first_available_time() is None
        bus.publish(AntibodyBundle(app="a", produced_at=5.0))
        assert bus.first_available_time() == 6.0
        bus.publish(AntibodyBundle(app="b", produced_at=0.5))
        assert bus.first_available_time() == 1.5
        assert bus.first_available_time("a") == 6.0
        assert bus.first_available_time("b") == 1.5
        assert bus.first_available_time("c") is None

    def test_non_monotone_poll_raises(self):
        """Satellite: a subscriber polling with a clock earlier than its
        previous poll would observe an order inconsistent with
        ``available()`` — the bus refuses instead."""
        bus = CommunityBus(dissemination_latency=0.0)
        bus.publish(AntibodyBundle(app="a", produced_at=1.0))
        bus.poll("c1", now=5.0)
        with pytest.raises(ReproError, match="monotone"):
            bus.poll("c1", now=4.0)
        assert bus.poll("c1", now=5.0) == []      # equal time is fine
        # Other subscribers keep their own high-water marks.
        bus.poll("c2", now=1.0)

    def test_publish_fans_out_to_existing_subscribers(self):
        bus = CommunityBus(dissemination_latency=0.0)
        bus.subscribe("early")
        a = bus.publish(AntibodyBundle(app="x", produced_at=1.0))
        assert bus.subscriber_backlog("early") == 1
        assert bus.poll("early", now=2.0) == [a]


class TestVerification:
    def test_vsef_bundle_verifies_against_exploit(self):
        bundle = AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            exploit_input=cvs_exploit())
        result = verify_antibody(build_cvsd(), bundle, seed=17)
        assert result.verified
        assert result.detected_by == "vsef"

    def test_bundle_without_vsefs_still_verifies_via_crash(self):
        """An empty antibody is verifiable because the exploit still
        trips the lightweight monitor in the sandbox."""
        bundle = AntibodyBundle(app="squid", vsefs=[],
                                exploit_input=squid_exploit())
        result = verify_antibody(build_squidp(), bundle, seed=17)
        assert result.verified
        assert result.detected_by == "fault"

    def test_bundle_without_input_cannot_verify_yet(self):
        bundle = AntibodyBundle(app="cvs", vsefs=[], exploit_input=None)
        result = verify_antibody(build_cvsd(), bundle)
        assert not result.verified
        assert "no exploit input" in result.detail

    def test_benign_input_does_not_verify(self):
        bundle = AntibodyBundle(app="cvs", vsefs=[],
                                exploit_input=b"Entry main.c\n")
        result = verify_antibody(build_cvsd(), bundle, seed=17)
        assert not result.verified


class TestWireFormat:
    def test_bundle_full_json_round_trip(self):
        """Bundles survive json.dumps/loads intact: the actual wire
        format a community deployment would ship."""
        import json

        from repro.antibody.signatures import generate_token

        original = AntibodyBundle(
            app="squid",
            vsefs=[VSEF(kind="heap_bounds",
                        params={"native": "strcat",
                                "caller": CodeLoc("code", 0x1E6)}),
                   VSEF(kind="taint_subset",
                        params={"pcs": [CodeLoc("lib", "memcpy")],
                                "sinks": [CodeLoc("lib", "strcat")]})],
            signatures=[generate_exact(b"\x00\xffGET evil"),
                        generate_token([b"GET ftp://aaaa@x",
                                        b"GET ftp://bbbb@x"])],
            exploit_input=squid_exploit(),
            produced_at=1.25, stage="final")
        wire = json.dumps(original.to_dict())
        revived = AntibodyBundle.from_dict(json.loads(wire))
        assert revived.bundle_id == original.bundle_id
        assert revived.app == original.app
        assert revived.stage == "final"
        assert revived.produced_at == 1.25
        assert revived.exploit_input == original.exploit_input
        assert [v.kind for v in revived.vsefs] == \
            [v.kind for v in original.vsefs]
        assert revived.vsefs[0].params["caller"] == CodeLoc("code", 0x1E6)
        assert revived.vsefs[1].params["pcs"] == [CodeLoc("lib", "memcpy")]
        assert revived.signatures[0].matches(b"\x00\xffGET evil")
        assert revived.signatures[1].matches(b"GET ftp://cccc@x")

    def test_revived_bundle_still_verifies(self):
        """A bundle that crossed the wire still verifies in a sandbox."""
        import json

        original = AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            exploit_input=cvs_exploit())
        revived = AntibodyBundle.from_dict(json.loads(
            json.dumps(original.to_dict())))
        result = verify_antibody(build_cvsd(), revived, seed=31)
        assert result.verified

    def test_bundle_without_input_round_trips(self):
        original = AntibodyBundle(app="httpd", stage="initial")
        revived = AntibodyBundle.from_dict(original.to_dict())
        assert revived.exploit_input is None
        assert revived.vsefs == []

    def test_unpublished_bundle_round_trips_without_bundle_id(self):
        """Satellite: a bundle serialized before it was ever published
        may lack the ``bundle_id`` key entirely on the wire (older
        producers never emitted it); from_dict must not KeyError, and a
        later publish assigns a fresh id."""
        wire = AntibodyBundle(app="httpd", stage="initial").to_dict()
        del wire["bundle_id"]
        revived = AntibodyBundle.from_dict(wire)
        assert revived.bundle_id == ""
        bus = CommunityBus()
        assert bus.publish(revived).bundle_id == "ab-1"
