"""Unit tests for antibody distribution and sandboxed verification."""

import pytest

from repro.antibody.distribution import AntibodyBundle, CommunityBus
from repro.errors import ReproError
from repro.antibody.signatures import generate_exact
from repro.antibody.verify import SandboxVerifier, verify_antibody
from repro.antibody.vsef import VSEF, CodeLoc
from repro.apps.cvsd import build_cvsd
from repro.apps.exploits import cvs_exploit
from repro.apps.squidp import build_squidp
from repro.apps.exploits import squid_exploit


class TestCommunityBus:
    def test_latency_gates_availability(self):
        bus = CommunityBus(dissemination_latency=3.0)
        bus.publish(AntibodyBundle(app="squid", produced_at=1.0))
        assert bus.available(now=2.0) == []
        assert len(bus.available(now=4.1)) == 1

    def test_piecemeal_publication_ordering(self):
        bus = CommunityBus(dissemination_latency=1.0)
        bus.publish(AntibodyBundle(app="squid", stage="final",
                                   produced_at=5.0))
        bus.publish(AntibodyBundle(app="squid", stage="initial",
                                   produced_at=0.1))
        available = bus.available(now=1.5)
        assert [bundle.stage for bundle in available] == ["initial"]

    def test_response_time_is_gamma(self):
        """γ = γ₁ (production) + γ₂ (dissemination)."""
        bus = CommunityBus(dissemination_latency=3.0)
        bus.publish(AntibodyBundle(app="squid", produced_at=0.06))
        assert bus.response_time("squid") == 3.06

    def test_per_app_filtering(self):
        bus = CommunityBus(dissemination_latency=0.0)
        bus.publish(AntibodyBundle(app="squid", produced_at=1.0))
        bus.publish(AntibodyBundle(app="cvs", produced_at=2.0))
        assert bus.first_available_time("cvs") == 2.0
        assert bus.first_available_time() == 1.0
        assert bus.first_available_time("httpd") is None

    def test_bundle_serialization(self):
        bundle = AntibodyBundle(
            app="squid",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            signatures=[generate_exact(b"evil")],
            exploit_input=b"evil", produced_at=0.5, stage="final")
        data = bundle.to_dict()
        assert data["app"] == "squid"
        assert data["exploit_input"] == b"evil".hex()
        assert data["vsefs"][0]["kind"] == "double_free"


class TestCommunityBusCursors:
    def test_simultaneous_arrivals_order_by_publish_seq(self):
        """Bundles that become available at the same instant drain in
        publish order — the deterministic tie-break."""
        bus = CommunityBus(dissemination_latency=1.0)
        first = bus.publish(AntibodyBundle(app="httpd", stage="initial",
                                           produced_at=2.0))
        second = bus.publish(AntibodyBundle(app="cvs", stage="initial",
                                            produced_at=2.0))
        assert bus.available(now=3.0) == [first, second]
        assert bus.poll("c1", now=3.0) == [first, second]

    def test_poll_is_incremental_and_never_redelivers(self):
        bus = CommunityBus(dissemination_latency=0.0)
        a = bus.publish(AntibodyBundle(app="squid", produced_at=1.0))
        assert bus.poll("c1", now=2.0) == [a]
        assert bus.poll("c1", now=5.0) == []
        b = bus.publish(AntibodyBundle(app="squid", produced_at=4.0))
        assert bus.poll("c1", now=5.0) == [b]

    def test_draining_exactly_at_gamma2_boundary(self):
        """The availability boundary is inclusive: polling at exactly
        produced_at + γ₂ sees the bundle, an instant before does not."""
        bus = CommunityBus(dissemination_latency=3.0)
        bundle = bus.publish(AntibodyBundle(app="squid", produced_at=0.25))
        assert bus.poll("c1", now=3.25 - 1e-12) == []
        assert bus.poll("c1", now=3.25) == [bundle]
        assert bus.available(now=3.25) == [bundle]

    def test_late_publish_with_earlier_availability_not_skipped(self):
        """A slow producer's bundle can become available *earlier* than
        one a subscriber already drained; the cursor must not skip it."""
        bus = CommunityBus(dissemination_latency=1.0)
        late = bus.publish(AntibodyBundle(app="squid", produced_at=9.0))
        assert bus.poll("c1", now=10.0) == [late]
        early = bus.publish(AntibodyBundle(app="squid", produced_at=0.5))
        assert bus.poll("c1", now=10.0) == [early]
        assert bus.poll("c1", now=20.0) == []

    def test_late_subscriber_sees_full_backlog(self):
        bus = CommunityBus(dissemination_latency=0.0)
        bundles = [bus.publish(AntibodyBundle(app="squid", produced_at=t))
                   for t in (1.0, 2.0)]
        assert bus.poll("latecomer", now=10.0) == bundles

    def test_bundle_ids_are_per_bus(self):
        """Satellite: publish assigns ids from a per-bus counter, so
        many buses in one process never interleave."""
        bus_a, bus_b = CommunityBus(), CommunityBus()
        bundle_a = bus_a.publish(AntibodyBundle(app="squid"))
        bundle_b = bus_b.publish(AntibodyBundle(app="cvs"))
        assert bundle_a.bundle_id == "ab-1"
        assert bundle_b.bundle_id == "ab-1"
        assert bus_a.publish(AntibodyBundle(app="squid")).bundle_id == "ab-2"
        # An already-identified bundle (e.g. revived from the wire and
        # re-shared) keeps its id.
        relayed = AntibodyBundle.from_dict(bundle_a.to_dict())
        assert bus_b.publish(relayed).bundle_id == "ab-1"

    def test_same_antibody_from_multiple_producers_applies_once(self):
        """Two producers publishing equivalent VSEFs: a consumer drains
        both bundles but installs the filter only once."""
        from repro.runtime.sweeper import Sweeper, SweeperConfig

        bus = CommunityBus(dissemination_latency=0.0)
        for producer in ("p1", "p2"):
            bus.publish(AntibodyBundle(
                app="cvs", produced_at=1.0,
                vsefs=[VSEF(kind="double_free", params={"caller": None},
                            provenance=producer)]))
        consumer = Sweeper(build_cvsd(), app_name="cvs",
                           config=SweeperConfig(
                               seed=9, enable_membug=False,
                               enable_taint=False, enable_slicing=False,
                               publish_antibodies=False))
        applied = []
        for bundle in bus.poll("consumer", now=2.0):
            applied.extend(consumer.apply_foreign_vsefs(bundle.vsefs))
        assert len(applied) == 1
        assert len(consumer.antibodies) == 1


class TestBusIndex:
    """The availability-sorted index and per-subscriber pending heaps
    must preserve the cursor bus's exactly-once, deterministic-order
    contract at any backlog size."""

    def test_late_subscriber_after_1k_publishes_sees_all_exactly_once(self):
        """Satellite: a subscriber that joins after 1000 publishes must
        still see every bundle exactly once, in (available_at, seq)
        order — draining in chunks as its clock advances."""
        bus = CommunityBus(dissemination_latency=2.0)
        rng_times = [((i * 7919) % 1000) / 10.0 for i in range(1000)]
        bundles = [bus.publish(AntibodyBundle(app="httpd", produced_at=t))
                   for t in rng_times]
        assert len(bus.published) == 1000
        bus.subscribe("latecomer")
        assert bus.subscriber_backlog("latecomer") == 1000
        seen = []
        for now in (10.0, 25.0, 25.0, 60.0, 102.0):
            seen.extend(bus.poll("latecomer", now))
        assert len(seen) == 1000
        assert len({id(b) for b in seen}) == 1000          # exactly once
        expected = sorted(
            range(1000),
            key=lambda i: (rng_times[i] + 2.0, i))
        assert seen == [bundles[i] for i in expected]
        assert bus.subscriber_backlog("latecomer") == 0    # compacted
        assert bus.poll("latecomer", 200.0) == []

    def test_available_matches_bruteforce_after_interleaved_publishes(self):
        bus = CommunityBus(dissemination_latency=1.0)
        times = [5.0, 0.5, 3.25, 0.5, 9.0, 2.0]
        bundles = [bus.publish(AntibodyBundle(app="a", produced_at=t))
                   for t in times]
        for now in (0.0, 1.5, 3.0, 4.25, 6.0, 100.0):
            expected = [b for _, _, b in sorted(
                (t + 1.0, i, b)
                for i, (t, b) in enumerate(zip(times, bundles))
                if t + 1.0 <= now)]
            assert bus.available(now) == expected

    def test_first_available_time_tracks_running_minimum(self):
        bus = CommunityBus(dissemination_latency=1.0)
        assert bus.first_available_time() is None
        bus.publish(AntibodyBundle(app="a", produced_at=5.0))
        assert bus.first_available_time() == 6.0
        bus.publish(AntibodyBundle(app="b", produced_at=0.5))
        assert bus.first_available_time() == 1.5
        assert bus.first_available_time("a") == 6.0
        assert bus.first_available_time("b") == 1.5
        assert bus.first_available_time("c") is None

    def test_non_monotone_poll_raises(self):
        """Satellite: a subscriber polling with a clock earlier than its
        previous poll would observe an order inconsistent with
        ``available()`` — the bus refuses instead."""
        bus = CommunityBus(dissemination_latency=0.0)
        bus.publish(AntibodyBundle(app="a", produced_at=1.0))
        bus.poll("c1", now=5.0)
        with pytest.raises(ReproError, match="monotone"):
            bus.poll("c1", now=4.0)
        assert bus.poll("c1", now=5.0) == []      # equal time is fine
        # Other subscribers keep their own high-water marks.
        bus.poll("c2", now=1.0)

    def test_publish_fans_out_to_existing_subscribers(self):
        bus = CommunityBus(dissemination_latency=0.0)
        bus.subscribe("early")
        a = bus.publish(AntibodyBundle(app="x", produced_at=1.0))
        assert bus.subscriber_backlog("early") == 1
        assert bus.poll("early", now=2.0) == [a]


class TestVerification:
    def test_vsef_bundle_verifies_against_exploit(self):
        bundle = AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            exploit_input=cvs_exploit())
        result = verify_antibody(build_cvsd(), bundle, seed=17)
        assert result.verified
        assert result.detected_by == "vsef"

    def test_bundle_without_vsefs_still_verifies_via_crash(self):
        """An empty antibody is verifiable because the exploit still
        trips the lightweight monitor in the sandbox."""
        bundle = AntibodyBundle(app="squid", vsefs=[],
                                exploit_input=squid_exploit())
        result = verify_antibody(build_squidp(), bundle, seed=17)
        assert result.verified
        assert result.detected_by == "fault"

    def test_bundle_without_input_cannot_verify_yet(self):
        bundle = AntibodyBundle(app="cvs", vsefs=[], exploit_input=None)
        result = verify_antibody(build_cvsd(), bundle)
        assert not result.verified
        assert "no exploit input" in result.detail

    def test_benign_input_does_not_verify(self):
        bundle = AntibodyBundle(app="cvs", vsefs=[],
                                exploit_input=b"Entry main.c\n")
        result = verify_antibody(build_cvsd(), bundle, seed=17)
        assert not result.verified


class TestSandboxVerifier:
    """The delivery-path verifier: one boot per image, forked trials,
    memoized verdicts."""

    def _exploit_bundle(self):
        return AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            exploit_input=cvs_exploit())

    def test_one_boot_shared_across_bundles(self):
        image = build_cvsd()
        verifier = SandboxVerifier()
        first = verifier.verify(image, self._exploit_bundle())
        second = verifier.verify(image, self._exploit_bundle())
        assert first.verified and second.verified
        assert verifier.stats() == {"boots": 1, "trials": 2,
                                    "cache_hits": 0,
                                    "audit_screens": 2, "audit_rejects": 0}

    def test_repeat_verify_is_memoized(self):
        image = build_cvsd()
        bundle = self._exploit_bundle()
        verifier = SandboxVerifier()
        first = verifier.verify(image, bundle)
        again = verifier.verify(image, bundle)
        assert again is first
        assert verifier.stats() == {"boots": 1, "trials": 1,
                                    "cache_hits": 1,
                                    "audit_screens": 2, "audit_rejects": 0}

    def test_trials_isolated_by_snapshot_restore(self):
        """An attack run in the sandbox must not contaminate the next
        trial: a benign-input bundle after an exploit trial still comes
        back unverified, and the exploit still verifies after it."""
        image = build_cvsd()
        verifier = SandboxVerifier()
        assert verifier.verify(image, self._exploit_bundle()).verified
        benign = AntibodyBundle(app="cvs", vsefs=[],
                                exploit_input=b"Entry main.c\n")
        result = verifier.verify(image, benign)
        assert not result.verified
        assert "did not trigger" in result.detail
        assert verifier.verify(image, self._exploit_bundle()).verified

    def test_no_input_short_circuits_without_boot(self):
        verifier = SandboxVerifier()
        result = verifier.verify(build_cvsd(),
                                 AntibodyBundle(app="cvs"))
        assert not result.verified
        assert "no exploit input" in result.detail
        assert verifier.stats()["boots"] == 0

    def test_matches_one_shot_verify_antibody(self):
        """The forked-sandbox trial and the one-shot sandbox agree."""
        image = build_cvsd()
        for bundle in (self._exploit_bundle(),
                       AntibodyBundle(app="cvs", vsefs=[],
                                      exploit_input=b"Entry main.c\n")):
            shared = SandboxVerifier(seed=1234).verify(image, bundle)
            oneshot = verify_antibody(image, bundle, seed=1234)
            assert shared.verified == oneshot.verified
            assert shared.detected_by == oneshot.detected_by


class TestVerifiedDelivery:
    """Satellite: ``Sweeper.apply_bundle`` — the consumer delivery path
    must sandbox-verify bundles before installing anything."""

    def _consumer(self, **overrides):
        from repro.runtime.sweeper import Sweeper, SweeperConfig

        config = SweeperConfig(
            seed=9, enable_membug=False, enable_taint=False,
            enable_slicing=False, publish_antibodies=False,
            randomize_layout=True, entropy_bits=4, **overrides)
        return Sweeper(build_cvsd(), app_name="cvs", config=config)

    def test_tampered_bundle_rejected_and_never_installed(self):
        """A bundle whose 'exploit input' is benign traffic (with a
        bogus signature that would filter that traffic — the DoS a
        forged antibody could mount) must be rejected by a
        randomized-layout consumer: nothing installed, no signature
        added, the benign request still served."""
        consumer = self._consumer()
        benign = b"Entry main.c\n"
        tampered = AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            signatures=[generate_exact(benign)],
            exploit_input=benign)
        outcome = consumer.apply_bundle(tampered,
                                        verifier=SandboxVerifier())
        assert outcome.rejected
        assert outcome.verified is False
        assert outcome.vsefs == []
        assert outcome.signatures == 0
        assert consumer.antibodies == []
        assert [e.kind for e in consumer.events
                if e.kind.startswith("antibody")] == ["antibody:rejected"]
        # The bogus filter was never added: benign traffic still flows.
        assert consumer.submit(benign)
        assert consumer.proxy.filtered_count == 0

    def test_valid_bundle_verifies_and_immunizes(self):
        consumer = self._consumer()
        bundle = AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            signatures=[generate_exact(cvs_exploit())],
            exploit_input=cvs_exploit())
        outcome = consumer.apply_bundle(bundle, verifier=SandboxVerifier())
        assert outcome.verified is True
        assert len(outcome.vsefs) == 1
        assert outcome.signatures == 1
        assert len(consumer.antibodies) == 1
        assert "antibody:verified" in [e.kind for e in consumer.events]
        # Immunized: the worm's next contact is filtered at the proxy,
        # never reaching the process.
        consumer.submit(cvs_exploit())
        assert consumer.proxy.filtered_count == 1
        assert consumer.attacks == []

    def test_forged_filter_on_genuine_attack_input_rejected(self):
        """The stronger forgery: a *genuine* attack input (the sandbox
        really detects it) smuggling a bogus signature that matches
        benign traffic.  Replaying the attack proves nothing about the
        filter, so verification must also check every signature against
        the bundle's own input — and reject on mismatch."""
        consumer = self._consumer()
        benign = b"Entry main.c\n"
        forged = AntibodyBundle(
            app="cvs",
            signatures=[generate_exact(benign)],   # filters benign traffic
            exploit_input=cvs_exploit())           # genuinely detected
        outcome = consumer.apply_bundle(forged, verifier=SandboxVerifier())
        assert outcome.rejected
        assert outcome.signatures == 0
        assert "does not match" in outcome.detail
        # The bogus filter never landed: benign traffic still flows.
        assert consumer.submit(benign)
        assert consumer.proxy.filtered_count == 0

    def test_forged_filter_rejected_by_one_shot_verify(self):
        """Same forgery through the throwaway-sandbox path."""
        forged = AntibodyBundle(
            app="cvs", signatures=[generate_exact(b"Entry main.c\n")],
            exploit_input=cvs_exploit())
        result = verify_antibody(build_cvsd(), forged)
        assert not result.verified
        assert "does not match" in result.detail

    def test_inputless_signatures_withheld(self):
        """An input-less bundle's VSEFs apply now (bogus ones only
        waste cycles) but its signatures — unverifiable filters — are
        withheld, closing the same DoS via the deferred door."""
        consumer = self._consumer()
        benign = b"Entry main.c\n"
        early = AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            signatures=[generate_exact(benign)])
        outcome = consumer.apply_bundle(early, verifier=SandboxVerifier())
        assert outcome.verified is None
        assert not outcome.rejected
        assert len(outcome.vsefs) == 1              # VSEF applied
        assert outcome.signatures == 0              # filter withheld
        assert "antibody:signatures-withheld" in [e.kind
                                                  for e in consumer.events]
        assert consumer.submit(benign)
        assert consumer.proxy.filtered_count == 0

    def test_inputless_bundle_applies_now_verifies_later(self):
        """Piecemeal early bundles carry no exploit input yet; the
        paper's discipline applies them immediately (a bogus VSEF can
        only waste cycles) and verifies when the input arrives."""
        consumer = self._consumer()
        early = AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})])
        outcome = consumer.apply_bundle(early, verifier=SandboxVerifier())
        assert outcome.verified is None
        assert not outcome.rejected
        assert len(consumer.antibodies) == 1

    def test_verification_can_be_disabled(self):
        consumer = self._consumer(verify_foreign=False)
        benign = b"Entry main.c\n"
        tampered = AntibodyBundle(
            app="cvs", signatures=[generate_exact(benign)],
            exploit_input=benign)
        outcome = consumer.apply_bundle(tampered)
        assert outcome.verified is None          # applied, unverified
        assert outcome.signatures == 1
        consumer.submit(benign)
        assert consumer.proxy.filtered_count == 1   # the DoS lands

    def test_apply_bundle_without_shared_verifier(self):
        """No fleet-shared verifier: apply_bundle boots a throwaway
        sandbox via the one-shot path and still rejects."""
        consumer = self._consumer()
        tampered = AntibodyBundle(app="cvs",
                                  exploit_input=b"Entry main.c\n")
        assert consumer.apply_bundle(tampered).rejected


class TestWireFormat:
    def test_bundle_full_json_round_trip(self):
        """Bundles survive json.dumps/loads intact: the actual wire
        format a community deployment would ship."""
        import json

        from repro.antibody.signatures import generate_token

        original = AntibodyBundle(
            app="squid",
            vsefs=[VSEF(kind="heap_bounds",
                        params={"native": "strcat",
                                "caller": CodeLoc("code", 0x1E6)}),
                   VSEF(kind="taint_subset",
                        params={"pcs": [CodeLoc("lib", "memcpy")],
                                "sinks": [CodeLoc("lib", "strcat")]})],
            signatures=[generate_exact(b"\x00\xffGET evil"),
                        generate_token([b"GET ftp://aaaa@x",
                                        b"GET ftp://bbbb@x"])],
            exploit_input=squid_exploit(),
            produced_at=1.25, stage="final")
        wire = json.dumps(original.to_dict())
        revived = AntibodyBundle.from_dict(json.loads(wire))
        assert revived.bundle_id == original.bundle_id
        assert revived.app == original.app
        assert revived.stage == "final"
        assert revived.produced_at == 1.25
        assert revived.exploit_input == original.exploit_input
        assert [v.kind for v in revived.vsefs] == \
            [v.kind for v in original.vsefs]
        assert revived.vsefs[0].params["caller"] == CodeLoc("code", 0x1E6)
        assert revived.vsefs[1].params["pcs"] == [CodeLoc("lib", "memcpy")]
        assert revived.signatures[0].matches(b"\x00\xffGET evil")
        assert revived.signatures[1].matches(b"GET ftp://cccc@x")

    def test_revived_bundle_still_verifies(self):
        """A bundle that crossed the wire still verifies in a sandbox."""
        import json

        original = AntibodyBundle(
            app="cvs",
            vsefs=[VSEF(kind="double_free", params={"caller": None})],
            exploit_input=cvs_exploit())
        revived = AntibodyBundle.from_dict(json.loads(
            json.dumps(original.to_dict())))
        result = verify_antibody(build_cvsd(), revived, seed=31)
        assert result.verified

    def test_bundle_without_input_round_trips(self):
        original = AntibodyBundle(app="httpd", stage="initial")
        revived = AntibodyBundle.from_dict(original.to_dict())
        assert revived.exploit_input is None
        assert revived.vsefs == []

    def test_unpublished_bundle_round_trips_without_bundle_id(self):
        """Satellite: a bundle serialized before it was ever published
        may lack the ``bundle_id`` key entirely on the wire (older
        producers never emitted it); from_dict must not KeyError, and a
        later publish assigns a fresh id."""
        wire = AntibodyBundle(app="httpd", stage="initial").to_dict()
        del wire["bundle_id"]
        revived = AntibodyBundle.from_dict(wire)
        assert revived.bundle_id == ""
        bus = CommunityBus()
        assert bus.publish(revived).bundle_id == "ab-1"
