"""Stateful model checking of CheckpointManager retention + selection.

The satellite suite: a real :class:`CheckpointManager` over a live echo
process is driven through randomized take / work / feed-message /
rollback(+discard) / adopt-boot-checkpoint sequences, against a model
that is nothing but a capped list of ``(seq, msg_cursor)`` pairs:

- **retention** — at most ``max_checkpoints`` retained, evicting
  oldest-first, with ``seq`` strictly increasing and ``msg_cursor``
  non-decreasing along the deque (the monotonicity that licenses the
  implementation's bisect-based selection);
- **adoption** — :meth:`adopt_boot_checkpoint` slots into the same
  sequence/retention discipline as a real ``take`` (it is "the boot's
  first take", golden-forked in);
- **selection** — ``before_message`` / ``older_than`` / ``latest``
  answer exactly what a linear scan over the model answers, probed
  after every step;
- **rollback** — ``discard_after`` drops precisely the newer-than
  suffix, and restoring an old snapshot rewinds the message cursor the
  way the model predicts.
"""

from __future__ import annotations

from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from repro.machine.process import load_program
from repro.runtime.checkpoint import CheckpointManager
from repro.spec.invariants import SpecViolation
from tests.conftest import ECHO_SOURCE
from tests.spec_harness import spec_settings


class CheckpointMachine(RuleBasedStateMachine):
    @initialize(cap=st.sampled_from([1, 2, 3, 5, 20]),
                adopt_boot=st.booleans())
    def setup(self, cap, adopt_boot):
        self.process = load_program(ECHO_SOURCE, seed=1)
        self.process.run(max_steps=100_000)          # to first recv
        self.manager = CheckpointManager(interval_ms=200.0,
                                         max_checkpoints=cap)
        self.cap = cap
        #: The model: retained (seq, msg_cursor) pairs, oldest first.
        self.model = []
        self.next_seq = 1
        self.fed = 0                                  # messages consumed
        #: seq -> live Checkpoint (for rollback targets / older_than).
        self.live = {}
        if adopt_boot:
            # The golden-fork path: the boot state arrives as an
            # adopted checkpoint instead of an eager first take.
            cp = self.manager.adopt_boot_checkpoint(
                self.process, self.process.snapshot_full(),
                cost_cycles=1234, last_dirty_pages=0, virtual_time=None)
            self._model_append(cp)

    def _model_append(self, cp):
        if cp.seq != self.next_seq:
            raise SpecViolation(
                f"checkpoint got seq {cp.seq}, model expected "
                f"{self.next_seq}")
        if cp.msg_cursor != self.fed:
            raise SpecViolation(
                f"checkpoint seq {cp.seq} recorded msg_cursor "
                f"{cp.msg_cursor}, but {self.fed} messages were consumed")
        self.next_seq += 1
        self.model.append((cp.seq, cp.msg_cursor))
        self.live[cp.seq] = cp
        if len(self.model) > self.cap:
            evicted, _ = self.model.pop(0)
            del self.live[evicted]

    # -- rules ---------------------------------------------------------------

    @rule(cycles=st.sampled_from([0, 10_000, 2_000_000]))
    def work(self, cycles):
        """Guest work accrues between checkpoints (drives the interval
        schedule; retention semantics must not care)."""
        self.process.cpu.cycles += cycles

    @rule()
    def feed_message(self):
        """The process consumes one request, advancing the cursor the
        next checkpoint must record."""
        self.process.feed(b"x")
        self.process.run(max_steps=100_000)
        self.fed += 1

    @rule()
    def take(self):
        self._model_append(self.manager.take(self.process))

    @precondition(lambda self: self.live)
    @rule(pick=st.integers(min_value=0, max_value=200))
    def rollback(self, pick):
        """Roll back to a retained checkpoint: restore its snapshot,
        discard the newer suffix, re-arm interval accounting.  The
        model truncates its list and rewinds its message count."""
        seqs = sorted(self.live)
        target = self.live[seqs[pick % len(seqs)]]
        self.process.restore_full(target.snapshot)
        self.manager.discard_after(target)
        self.manager.after_rollback(self.process)
        self.model = [entry for entry in self.model
                      if entry[0] <= target.seq]
        self.live = {seq: cp for seq, cp in self.live.items()
                     if seq <= target.seq}
        self.fed = target.msg_cursor

    @precondition(lambda self: self.live)
    @rule(probe=st.integers(min_value=0, max_value=30))
    def probe_selection(self, probe):
        """before_message / older_than / latest against linear-scan
        oracles over the model."""
        hits = [seq for seq, cursor in self.model if cursor <= probe]
        expected = hits[-1] if hits else None
        found = self.manager.before_message(probe)
        if (found.seq if found else None) != expected:
            raise SpecViolation(
                f"before_message({probe}): impl "
                f"{found.seq if found else None}, model {expected} "
                f"(retained {self.model})")
        newest = self.manager.latest()
        if newest.seq != self.model[-1][0]:
            raise SpecViolation(
                f"latest(): impl {newest.seq}, model {self.model[-1][0]}")
        older = self.manager.older_than(newest)
        model_older = self.model[-2][0] if len(self.model) > 1 else None
        if (older.seq if older else None) != model_older:
            raise SpecViolation(
                f"older_than(latest): impl "
                f"{older.seq if older else None}, model {model_older}")

    # -- the refinement, after every step ------------------------------------

    @invariant()
    def retention_refines(self):
        retained = self.manager.retained()
        if [(seq, cursor) for seq, cursor, _ in retained] != self.model:
            raise SpecViolation(
                f"retention diverged:\n"
                f"  impl  {[(s, m) for s, m, _ in retained]}\n"
                f"  model {self.model}")
        if len(retained) > self.cap:
            raise SpecViolation(
                f"{len(retained)} checkpoints retained, cap {self.cap}")
        seqs = [seq for seq, _, _ in retained]
        cursors = [cursor for _, cursor, _ in retained]
        if seqs != sorted(set(seqs)):
            raise SpecViolation(f"seqs not strictly increasing: {seqs}")
        if cursors != sorted(cursors):
            raise SpecViolation(
                f"msg_cursors not non-decreasing: {cursors} — the "
                f"bisect selection contract is broken")


CheckpointMachine.TestCase.settings = spec_settings()
TestCheckpointRetention = CheckpointMachine.TestCase
