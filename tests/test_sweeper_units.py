"""Unit-level Sweeper orchestrator tests (integration in test_sweeper_e2e)."""

import random

import pytest

from repro.antibody.vsef import VSEF
from repro.apps.httpd import build_httpd
from repro.apps.workload import benign_requests
from repro.errors import VMFault
from repro.machine.layout import randomized_layout
from repro.machine.memory import PAGE_SIZE
from repro.runtime.sweeper import Sweeper, SweeperConfig


@pytest.fixture
def sweeper():
    return Sweeper(build_httpd(), app_name="httpd",
                   config=SweeperConfig(seed=3))


class TestSubmitSemantics:
    def test_benign_request_returns_responses(self, sweeper):
        responses = sweeper.submit(b"GET / HTTP/1.0\n")
        assert len(responses) == 1

    def test_filtered_request_returns_empty(self, sweeper):
        from repro.antibody.signatures import generate_exact

        sweeper.proxy.signatures.add(generate_exact(b"BLOCKED"))
        assert sweeper.submit(b"BLOCKED") == []
        assert sweeper.detections[-1].kind == "filter"

    def test_responses_committed_to_proxy(self, sweeper):
        sweeper.submit(b"GET / HTTP/1.0\n")
        assert len(sweeper.proxy.committed) == 1
        assert sweeper.proxy.committed[0].msg_id == 0

    def test_source_string_accepted(self):
        source = """
.text
main:
loop:
    mov r0, buf
    mov r1, 64
    sys recv
    cmp r0, 0
    je loop
    mov r1, r0
    mov r0, buf
    sys send
    jmp loop
.data
buf: .space 64
"""
        sweeper = Sweeper(source, app_name="echo")
        assert sweeper.submit(b"ping") == [b"ping"]


class TestClockAndCheckpoints:
    def test_advance_busy_takes_scheduled_checkpoints(self, sweeper):
        taken_before = sweeper.checkpoints.total_taken
        interval = sweeper.checkpoints.interval_cycles
        sweeper.advance_busy(interval * 5)
        assert sweeper.checkpoints.total_taken >= taken_before + 4

    def test_advance_busy_advances_clock(self, sweeper):
        from repro.machine.cpu import CPU_HZ

        before = sweeper.clock
        sweeper.advance_busy(CPU_HZ)      # one virtual second
        assert sweeper.clock == pytest.approx(before + 1.0, rel=0.05)

    def test_stats_keys(self, sweeper):
        sweeper.submit(b"GET / HTTP/1.0\n")
        stats = sweeper.stats()
        for key in ("virtual_time", "requests_seen", "requests_filtered",
                    "attacks_handled", "detections", "antibodies",
                    "checkpoints_taken", "checkpoint_cost_seconds"):
            assert key in stats
        assert stats["requests_seen"] == 1


class TestForeignVSEFs:
    def test_apply_foreign_vsefs_installs_once(self, sweeper):
        vsef = VSEF(kind="double_free", params={"caller": None})
        first = sweeper.apply_foreign_vsefs([vsef])
        second = sweeper.apply_foreign_vsefs([vsef])
        assert first == [vsef]
        assert second == []
        assert sweeper.antibodies == [vsef]

    def test_equivalent_vsefs_deduplicated(self, sweeper):
        a = VSEF(kind="double_free", params={"caller": None})
        b = VSEF(kind="double_free", params={"caller": None})
        installed = sweeper.apply_foreign_vsefs([a, b])
        assert len(installed) == 1


class TestErrorFormatting:
    def test_vmfault_message_fields(self):
        fault = VMFault("SEGV", pc=0x1234, addr=0x5678,
                        source_pc=0x9ABC, detail="why")
        text = str(fault)
        assert "SEGV" in text
        assert "0x00001234" in text
        assert "0x00005678" in text
        assert "0x00009abc" in text
        assert "why" in text

    def test_attack_detected_message(self):
        from repro.errors import AttackDetected

        blocked = AttackDetected("vsef-1", 0x40, "double free")
        assert "vsef-1" in str(blocked)
        assert blocked.reason == "double free"


class TestLayoutSafety:
    def test_extreme_slides_never_overlap(self):
        """Even maximal slides keep every region window disjoint, so a
        randomized process can always be loaded."""
        from repro.apps.squidp import build_squidp
        from repro.machine.process import Process

        class MaxRandom(random.Random):
            def randrange(self, stop):
                return stop - 1

        layout = randomized_layout(MaxRandom(), entropy_bits=12)
        process = Process(build_squidp(), layout=layout, seed=0)
        process.run(max_steps=2_000_000)
        process.feed(b"GET http://x/y")
        process.run(max_steps=2_000_000)
        assert process.sent

    def test_slides_respect_entropy_budget(self):
        for seed in range(5):
            layout = randomized_layout(random.Random(seed),
                                       entropy_bits=8)
            assert all(0 <= slide < 2 ** 8
                       for slide in layout.slide_pages.values())
            assert layout.code_base % PAGE_SIZE == 0


class TestEventLog:
    def test_boot_event_first(self, sweeper):
        assert sweeper.events[0].kind == "boot"

    def test_filtered_event_recorded(self, sweeper):
        from repro.antibody.signatures import generate_exact

        sweeper.proxy.signatures.add(generate_exact(b"X"))
        sweeper.submit(b"X")
        assert any(e.kind == "filtered" for e in sweeper.events)
