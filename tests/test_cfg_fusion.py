"""CFG-driven trace extension: superblocks across block boundaries.

The fusion tier's contiguous supercells stop at every control transfer.
CFG-driven extension splices a run's statically-unique successor into
the trace — through unconditional immediate jumps (the target is the
only successor) and into single-entry call targets (one predecessor,
address never taken).  These tests pin the policy (what may and may not
be extended), the bit-identical semantics of extended traces against
the plain per-cell tier and raw ``step()`` (registers, flags, cycles,
control ring, memory pages and the dirty bitmap), and the invalidation
story when a patch lands inside a spliced region.
"""

from __future__ import annotations

from repro.errors import ProcessExited
from repro.isa.assembler import assemble
from repro.isa.opcodes import Op
from repro.machine.process import Process

#: Straight-line chain of unconditionally-jump-linked blocks, with a
#: dead block between the head and its target so the splice is
#: genuinely non-contiguous.
_JMP_CHAIN = """
.text
main:
 mov r0, 1
 jmp part2
dead:
 add r0, 64
 halt
part2:
 add r0, 2
 jmp part3
part3:
 add r0, 4
 halt
"""

_SINGLE_CALL = """
.text
main:
 mov r0, 3
 call helper
 add r0, 16
 halt
helper:
 add r0, 8
 ret
"""

_TWO_CALLERS = """
.text
main:
 call helper
 call helper
 halt
helper:
 add r0, 1
 ret
"""

_ADDRESS_TAKEN = """
.text
main:
 mov r7, helper
 call helper
 halt
helper:
 add r0, 1
 ret
"""


def _snap(process: Process) -> dict:
    cpu = process.cpu
    memory = process.memory
    return {
        "regs": list(cpu.regs), "pc": cpu.pc,
        "flags": (cpu.zf, cpu.sf, cpu.cf), "cycles": cpu.cycles,
        "ring": list(cpu.control_ring),
        "pages": {index: bytes(page)
                  for index, page in memory._pages.items()},
        "dirty": memory.dirty_page_indices(),
    }


def _run_tiers(source: str, seed: int = 9, max_steps: int = 1_000):
    """Run fused / plain / stepped to completion; return the fused
    process plus the three final snapshots (which must already agree —
    asserted here so every test gets the differential for free)."""
    image = assemble(source)
    fused = Process(image, seed=seed)
    plain = Process(image, seed=seed)
    plain.cpu.fusion_enabled = False
    stepped = Process(image, seed=seed)
    stepped.cpu.fusion_enabled = False
    assert fused.run(max_steps=max_steps).reason == "exit"
    assert plain.run(max_steps=max_steps).reason == "exit"
    try:
        while True:
            stepped.cpu.step()
    except ProcessExited:
        pass
    snaps = [_snap(p) for p in (fused, plain, stepped)]
    assert snaps[0] == snaps[1] == snaps[2]
    return fused, snaps[0]


def _extended_members(process: Process):
    """Members of the trace at ``main``, asserting it was extended."""
    main = process.symbols["main"]
    assert main in process.cpu._traces
    members = process.cpu._traces[main][3]
    noncontig = sum(
        1 for j in range(len(members) - 1)
        if members[j][0] + members[j][1].length != members[j + 1][0])
    assert noncontig >= 1, "trace was not CFG-extended"
    return members


def test_jmp_chain_fuses_into_one_superblock():
    fused, snap = _run_tiers(_JMP_CHAIN)
    members = _extended_members(fused)
    ops = [insn.op for _pc, insn in members]
    # mov; jmp -> part2's add; jmp -> part3's add: both jumps mid-trace.
    assert ops == [Op.MOVRI, Op.JMPI, Op.ADDRI, Op.JMPI, Op.ADDRI]
    assert snap["regs"][0] == 1 + 2 + 4
    # Mid-trace jumps still record their branch events.
    branches = [e for e in snap["ring"] if e.kind == "branch"]
    assert len(branches) == 2


def test_single_entry_call_target_is_inlined():
    fused, snap = _run_tiers(_SINGLE_CALL)
    members = _extended_members(fused)
    ops = [insn.op for _pc, insn in members]
    assert ops == [Op.MOVRI, Op.CALLI, Op.ADDRI, Op.RET]
    helper = fused.symbols["helper"]
    assert members[2][0] == helper
    assert snap["regs"][0] == 3 + 8 + 16
    kinds = [e.kind for e in snap["ring"]]
    assert kinds.count("call") == 1 and kinds.count("ret") == 1


def test_multi_caller_helper_is_not_inlined():
    fused, _snap_ = _run_tiers(_TWO_CALLERS)
    for _head, (_fn, _k, _end, members) in fused.cpu._traces.items():
        for j in range(len(members) - 1):
            pc, insn = members[j]
            assert pc + insn.length == members[j + 1][0], \
                "two-caller helper must not be spliced into a trace"
    assert _snap_["regs"][0] == 2


def test_address_taken_helper_is_not_inlined():
    fused, _snap_ = _run_tiers(_ADDRESS_TAKEN)
    helper = fused.symbols["helper"]
    for head, (_fn, _k, _end, members) in fused.cpu._traces.items():
        assert not any(pc == helper and head != helper
                       for pc, _insn in members), \
            "address-taken helper must not be spliced into a caller trace"


def test_patch_inside_spliced_region_resplits_trace():
    """A patch landing in the spliced-in block must drop the extended
    supercell; surviving members re-fuse along still-valid links and
    the next run executes the patched bytes."""
    process = Process(assemble(_JMP_CHAIN), seed=5)
    members = _extended_members(process)
    patch_pc = members[2][0]                     # part2's 'add r0, 2'
    assert process.cpu._decode_cache[patch_pc].op is Op.ADDRI
    process.memory.write_unchecked(patch_pc + 2,
                                   (0x20).to_bytes(4, "little"))
    assert all(patch_pc not in (pc for pc, _insn in trace[3])
               for trace in process.cpu._traces.values())
    assert process.run(max_steps=100).reason == "exit"
    assert process.cpu.regs[0] == 1 + 0x20 + 4


def test_budget_pause_inside_spliced_region_resumes_checked():
    """A step budget pausing inside the spliced-in portion of an
    extended trace must land on the exact next pc (in another block!)
    and resume on the checked tier when a VSEF check is armed there."""
    process = Process(assemble(_JMP_CHAIN), seed=6)
    _extended_members(process)
    result = process.run(max_steps=3)           # mov, jmp, part2's add
    assert result.reason == "steps"
    part2 = process.symbols["part2"]
    jmp_part3 = part2 + 6                       # after 'add r0, 2'
    assert process.cpu.pc == jmp_part3
    hits = []
    process.cpu.pre_checks[jmp_part3] = [
        lambda cpu, insn: hits.append(cpu.pc)]
    assert process.run(max_steps=100).reason == "exit"
    assert process.cpu.regs[0] == 7
    assert hits == [jmp_part3]
