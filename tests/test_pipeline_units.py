"""Unit-level tests for the analysis pipeline and monitor helpers
(integration coverage lives in test_sweeper_e2e)."""

import pytest

from repro.analysis.pipeline import AnalysisOutcome, StepResult
from repro.analysis.slicing import BackwardSlicer
from repro.antibody.vsef import VSEF
from repro.errors import (FAULT_BADPC, FAULT_DIVZERO, FAULT_ILLEGAL,
                          FAULT_NULL, FAULT_SEGV, VMFault)
from repro.isa.assembler import assemble
from repro.machine.process import Process
from repro.runtime.monitor import (classify_fault, detection_from_fault,
                                   detection_from_vsef)


def _fault(kind):
    return VMFault(kind, pc=0x1000)


class TestMonitorClassification:
    def test_null(self):
        assert "NULL" in classify_fault(_fault(FAULT_NULL))

    def test_wild_control(self):
        for kind in (FAULT_BADPC, FAULT_ILLEGAL):
            assert "randomization" in classify_fault(_fault(kind))

    def test_arithmetic(self):
        assert "arithmetic" in classify_fault(_fault(FAULT_DIVZERO))

    def test_segv(self):
        assert "overflow" in classify_fault(_fault(FAULT_SEGV))

    def test_detection_records(self):
        crash = detection_from_fault(_fault(FAULT_SEGV), 1.5, msg_id=7)
        assert crash.kind == "crash"
        assert crash.msg_id == 7
        assert "monitor tripped" in crash.describe()

        from repro.errors import AttackDetected

        blocked = detection_from_vsef(
            AttackDetected("vsef-9", 0x2000, "double free blocked"),
            2.0, msg_id=8)
        assert blocked.kind == "vsef"
        assert blocked.vsef_id == "vsef-9"
        assert "vsef-9" in blocked.describe()


class TestOutcomeAccessors:
    def _step(self, name, cumulative, vsefs=()):
        return StepResult(name=name, wall_seconds=0.0,
                          virtual_seconds=0.01,
                          cumulative_virtual=cumulative, summary="",
                          vsefs=list(vsefs))

    def test_time_accessors(self):
        outcome = AnalysisOutcome(detection_fault=_fault(FAULT_SEGV))
        vsef = VSEF(kind="double_free", params={"caller": None})
        outcome.steps = [
            self._step("memory_state", 0.04, vsefs=[vsef]),
            self._step("reproduce", 0.05),
            self._step("memory_bug", 0.20, vsefs=[vsef]),
            self._step("input_taint", 0.40),
            self._step("slicing", 1.0),
        ]
        assert outcome.time_to_first_vsef == 0.04
        assert outcome.time_to_best_vsef == 0.20
        assert outcome.initial_analysis_time == 0.40
        assert outcome.total_analysis_time == 1.0
        assert len(outcome.all_vsefs) == 2
        assert outcome.step("reproduce") is not None
        assert outcome.step("nonexistent") is None

    def test_no_vsefs_means_no_first_time(self):
        outcome = AnalysisOutcome(detection_fault=_fault(FAULT_SEGV))
        outcome.steps = [self._step("memory_state", 0.04)]
        assert outcome.time_to_first_vsef is None
        assert outcome.time_to_best_vsef is None
        assert outcome.initial_analysis_time is None

    def test_empty_outcome_total_is_zero(self):
        outcome = AnalysisOutcome(detection_fault=_fault(FAULT_SEGV))
        assert outcome.total_analysis_time == 0.0


class TestForwardSliceFromInput:
    SOURCE = """
.text
main:
loop:
    mov r0, buf
    mov r1, 128
    sys recv
    cmp r0, 0
    je loop
    mov r1, buf
inf:
    ldb r2, [r1]           ; influenced by input
    mov r3, sink
    stb [r3], r2
unrelated:
    mov r4, 777            ; influenced by nothing
    jmp loop
.data
buf: .space 132
sink: .byte 0
"""

    def test_forward_slice_covers_input_influence_only(self):
        process = Process(assemble(self.SOURCE), seed=1)
        slicer = BackwardSlicer(control_deps=False)
        process.hooks.attach(slicer, process)
        process.feed(b"x")
        process.run(max_steps=100_000)
        report = slicer.forward_slice_from_input(0)
        assert report.contains_pc(process.symbols["inf"])
        sink = process.symbols["sink"]
        assert any(slicer.nodes[i].pc for i in report.node_indices)
        assert not report.contains_pc(process.symbols["unrelated"])
        assert report.input_labels == {(0, 0)}

    def test_forward_slice_distinguishes_messages(self):
        process = Process(assemble(self.SOURCE), seed=1)
        slicer = BackwardSlicer(control_deps=False)
        process.hooks.attach(slicer, process)
        process.feed(b"a")
        process.feed(b"b")
        process.run(max_steps=100_000)
        first = slicer.forward_slice_from_input(0)
        second = slicer.forward_slice_from_input(1)
        assert first.input_labels == {(0, 0)}
        assert second.input_labels == {(1, 0)}

    def test_forward_slice_unknown_message_is_empty(self):
        slicer = BackwardSlicer()
        report = slicer.forward_slice_from_input(99)
        assert report.node_indices == set()
        assert report.pcs == set()
