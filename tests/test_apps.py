"""Unit tests for the three servers and the four exploits (Table 1)."""

import pytest

from repro.apps.cvsd import build_cvsd
from repro.apps.exploits import (EXPLOITS, apache1_exploit, apache2_exploit,
                                 cvs_exploit, polymorphic_variants,
                                 squid_exploit)
from repro.apps.httpd import build_httpd
from repro.apps.squidp import build_squidp
from repro.apps.workload import benign_requests, measure_throughput
from repro.errors import VMFault
from repro.machine.layout import ReferenceLayout
from repro.machine.process import Process


def boot(image, seed: int = 3, layout=None) -> Process:
    process = Process(image, seed=seed, layout=layout)
    result = process.run(max_steps=2_000_000)
    assert result.reason == "idle"
    return process


def serve(process: Process, payload: bytes):
    sent_before = len(process.sent)
    process.feed(payload)
    process.run(max_steps=5_000_000)
    return [sent.data for sent in process.sent[sent_before:]]


class TestHttpdBenign:
    def test_index_page_served(self):
        process = boot(build_httpd())
        responses = serve(process, b"GET / HTTP/1.0\n")
        assert len(responses) == 1
        assert responses[0].startswith(b"HTTP/1.0 200 OK")

    def test_generic_page_for_unknown_path(self):
        process = boot(build_httpd())
        responses = serve(process, b"GET /whatever HTTP/1.0\n")
        assert b"Generic content" in responses[0]

    def test_bad_method_rejected(self):
        process = boot(build_httpd())
        responses = serve(process, b"POST / HTTP/1.0\n")
        assert responses[0].startswith(b"HTTP/1.0 400")

    def test_referer_with_host_is_fine(self):
        process = boot(build_httpd())
        responses = serve(
            process, b"GET / HTTP/1.0\nReferer: http://example.com/\n")
        assert responses

    def test_benign_request_stream(self):
        process = boot(build_httpd())
        for request in benign_requests("httpd", 30):
            assert serve(process, request)


class TestApache1Exploit:
    def test_crashes_under_randomization(self):
        process = boot(build_httpd(), seed=11)
        process.feed(apache1_exploit())
        with pytest.raises(VMFault) as excinfo:
            process.run(max_steps=2_000_000)
        assert excinfo.value.kind in ("BAD_PC", "ILLEGAL_OPCODE")

    def test_succeeds_on_reference_layout(self):
        """Without ASLR the hijack lands on the backdoor: the worm wins.
        This is the rho = success case the worm model quantifies."""
        process = boot(build_httpd(), layout=ReferenceLayout())
        process.feed(apache1_exploit())
        result = process.run(max_steps=2_000_000)
        assert result.reason == "exit"           # backdoor exits the server
        assert process.sent[-1].data.startswith(b"OWNED!")

    def test_short_paths_never_smash(self):
        process = boot(build_httpd())
        responses = serve(process, b"GET /" + b"A" * 60 + b" HTTP/1.0\n")
        assert responses


class TestApache2Exploit:
    def test_empty_host_referer_null_derefs(self):
        process = boot(build_httpd(), seed=11)
        process.feed(apache2_exploit())
        with pytest.raises(VMFault) as excinfo:
            process.run(max_steps=2_000_000)
        assert excinfo.value.kind == "NULL_DEREF"

    def test_http_scheme_variant_also_crashes(self):
        process = boot(build_httpd(), seed=11)
        process.feed(apache2_exploit(scheme=b"http://"))
        with pytest.raises(VMFault):
            process.run(max_steps=2_000_000)

    def test_crash_is_in_is_ip(self):
        process = boot(build_httpd(), seed=11)
        process.feed(apache2_exploit())
        with pytest.raises(VMFault) as excinfo:
            process.run(max_steps=2_000_000)
        assert process.function_at(excinfo.value.pc) == "is_ip"


class TestCvsd:
    def test_benign_directory_and_entry(self):
        process = boot(build_cvsd())
        assert serve(process, b"Directory /src\n") == [b"ok\n"]
        assert serve(process, b"Entry main.c\n") == [b"ok\n"]
        assert serve(process, b"noop\n") == [b"ok\n"]

    def test_directory_state_is_heap_backed(self):
        process = boot(build_cvsd())
        serve(process, b"Directory /src/module/alpha\n")
        cur_dir = process.memory.read_word(process.symbols["cur_dir"])
        assert process.memory.read_cstring(cur_dir) == b"/src/module/alpha\n"

    def test_exploit_crashes_in_free(self):
        process = boot(build_cvsd(), seed=11)
        serve(process, b"Directory /src\n")
        process.feed(cvs_exploit())
        with pytest.raises(VMFault) as excinfo:
            process.run(max_steps=2_000_000)
        assert excinfo.value.pc == process.native_addresses["free"]

    def test_heap_inconsistent_after_exploit(self):
        process = boot(build_cvsd(), seed=11)
        serve(process, b"Directory /src\n")
        process.feed(cvs_exploit())
        with pytest.raises(VMFault):
            process.run(max_steps=2_000_000)
        # The UAF strcpy clobbered freed-block metadata.
        assert process.allocator.check_consistency() != []


class TestSquidp:
    def test_http_proxy_path(self):
        process = boot(build_squidp())
        responses = serve(process, b"GET http://example.com/page")
        assert b"squidp reproduction proxy" in responses[0]

    def test_benign_ftp_title(self):
        process = boot(build_squidp())
        responses = serve(process, b"GET ftp://anonymous@ftp.site/pub/x")
        assert responses[0].startswith(b"ftp://anonymous")

    def test_ftp_without_user_part(self):
        process = boot(build_squidp())
        responses = serve(process, b"GET ftp://ftp.site/pub/x")
        assert responses[0].startswith(b"ftp://ftp.site")

    def test_escaping_expands_unsafe_bytes(self):
        process = boot(build_squidp())
        responses = serve(process, b"GET ftp://a\\b@ftp.site/x")
        assert b"%5C" in responses[0]       # '\' escaped

    def test_exploit_crashes_in_strcat(self):
        process = boot(build_squidp(), seed=11)
        process.feed(squid_exploit())
        with pytest.raises(VMFault) as excinfo:
            process.run(max_steps=8_000_000)
        assert excinfo.value.pc == process.native_addresses["strcat"]
        assert excinfo.value.source_pc is not None
        assert process.function_at(excinfo.value.source_pc) == \
            "ftpBuildTitleUrl"

    def test_moderate_escapes_fit_the_buffer(self):
        process = boot(build_squidp())
        responses = serve(process, b"GET ftp://a\\\\b@ftp.site/x")
        assert responses


class TestExploitRegistry:
    def test_table1_contents(self):
        assert set(EXPLOITS) == {"Apache1", "Apache2", "CVS", "Squid"}
        assert EXPLOITS["Squid"].cve == "CVE-2002-0068"
        assert EXPLOITS["CVS"].bug_type == "Double Free"
        assert EXPLOITS["Apache1"].bug_type == "Stack Smashing"
        assert EXPLOITS["Apache2"].bug_type == "NULL Pointer"

    def test_every_exploit_crashes_its_app(self):
        for name, spec in EXPLOITS.items():
            process = boot(spec.build_image(), seed=23)
            if name == "CVS":
                serve(process, b"Directory /src\n")
            process.feed(spec.payload())
            with pytest.raises(VMFault):
                process.run(max_steps=8_000_000)

    def test_polymorphic_variants_all_crash(self):
        for name in ("Apache2", "CVS", "Squid"):
            spec = EXPLOITS[name]
            for variant in polymorphic_variants(name, count=3):
                process = boot(spec.build_image(), seed=29)
                if name == "CVS":
                    serve(process, b"Directory /src\n")
                process.feed(variant)
                with pytest.raises(VMFault):
                    process.run(max_steps=8_000_000)

    def test_variants_are_distinct_bytes(self):
        variants = polymorphic_variants("Squid", count=5)
        assert len(set(variants)) == len(variants)


class TestWorkloadHarness:
    def test_benign_generators_cover_apps(self):
        for app in ("httpd", "squidp", "cvsd"):
            requests = benign_requests(app, 20)
            assert len(requests) == 20

    def test_generator_is_seed_deterministic(self):
        assert benign_requests("httpd", 10, seed=3) == \
            benign_requests("httpd", 10, seed=3)
        assert benign_requests("httpd", 10, seed=3) != \
            benign_requests("httpd", 10, seed=4)

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            benign_requests("nginx", 1)

    def test_throughput_unprotected(self):
        result = measure_throughput(build_squidp(),
                                    benign_requests("squidp", 20),
                                    protected=False)
        assert result.responses == 20
        assert result.mbps > 0
        assert not result.protected

    def test_throughput_protected_close_to_baseline(self):
        """The paper's headline: <1% overhead at the default 200 ms
        checkpoint interval."""
        requests = benign_requests("squidp", 30)
        baseline = measure_throughput(build_squidp(), requests,
                                      protected=False)
        protected = measure_throughput(build_squidp(), requests,
                                       protected=True)
        overhead = 1.0 - protected.mbps / baseline.mbps
        assert overhead < 0.05, f"overhead {overhead:.2%} too high"
