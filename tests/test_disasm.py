"""Unit tests for the disassembler."""

from repro.isa.disasm import disassemble, format_insn, preceded_by_call
from repro.isa.encoding import decode_bytes, encode
from repro.isa.opcodes import Op


def test_format_register_operands():
    insn = decode_bytes(encode(Op.MOVRR, 0, 8))
    assert format_insn(insn) == "movrr r0, sp"


def test_format_immediates_hex():
    insn = decode_bytes(encode(Op.MOVRI, 1, 0xBEEF))
    assert format_insn(insn) == "movri r1, 0xbeef"


def test_format_with_address_prefix():
    insn = decode_bytes(encode(Op.RET))
    assert format_insn(insn, addr=0x1000) == "0x00001000: ret"


def test_format_symbolizes_targets():
    insn = decode_bytes(encode(Op.CALLI, 0x8048100))
    text = format_insn(insn, symbols={0x8048100: "handler"})
    assert "<handler>" in text


def test_disassemble_sequence():
    blob = (encode(Op.MOVRI, 0, 5) + encode(Op.ADDRI, 0, 1)
            + encode(Op.HALT))

    def fetch(addr, n):
        return blob[addr:addr + n]

    lines = disassemble(fetch, 0, count=3)
    assert len(lines) == 3
    assert "movri" in lines[0]
    assert "addri" in lines[1]
    assert "halt" in lines[2]


def test_disassemble_stops_at_bad_bytes():
    blob = encode(Op.NOP) + b"\x00\x00"

    def fetch(addr, n):
        chunk = blob[addr:addr + n]
        if len(chunk) != n:
            raise IndexError(addr)
        return chunk

    lines = disassemble(fetch, 0, count=5)
    assert lines[-1].endswith("(bad)")


class TestPrecededByCall:
    def test_true_after_calli(self):
        blob = encode(Op.CALLI, 0x1234) + encode(Op.NOP)
        ret_addr = len(encode(Op.CALLI, 0x1234))

        def fetch(addr, n):
            chunk = blob[addr:addr + n]
            if len(chunk) != n:
                raise IndexError(addr)
            return chunk

        assert preceded_by_call(fetch, ret_addr)

    def test_true_after_callr(self):
        blob = encode(Op.CALLR, 3) + encode(Op.NOP)

        def fetch(addr, n):
            chunk = blob[addr:addr + n]
            if len(chunk) != n:
                raise IndexError(addr)
            return chunk

        assert preceded_by_call(fetch, len(encode(Op.CALLR, 3)))

    def test_false_for_non_call_site(self):
        blob = encode(Op.MOVRI, 0, 7) + encode(Op.NOP)

        def fetch(addr, n):
            chunk = blob[addr:addr + n]
            if len(chunk) != n:
                raise IndexError(addr)
            return chunk

        assert not preceded_by_call(fetch, len(blob) - 1)

    def test_false_at_address_zero(self):
        def fetch(addr, n):
            raise IndexError(addr)

        assert not preceded_by_call(fetch, 0)


class TestPrecededByCallCfgBacked:
    """The CFG-backed check is exact: a call opcode embedded in another
    instruction's immediate bytes fools the byte scan but not the CFG."""

    def _embedded_call_image(self):
        from repro.isa.assembler import assemble
        from repro.isa.encoding import insn_length
        # mov r0, imm whose top immediate bytes spell 'callr r1', so a
        # CALLR instruction appears to end exactly where the MOVRI ends.
        imm = 0x11 | (0x22 << 8) | (int(Op.CALLR) << 16) | (1 << 24)
        source = f".text\nmain:\n mov r0, {imm}\n halt\n"
        image = assemble(source)
        ret_addr = insn_length(Op.MOVRI)         # the HALT boundary
        return image, ret_addr

    def _fetch_for(self, image):
        text = image.text

        def fetch(addr, n):
            chunk = text[addr:addr + n]
            if len(chunk) != n:
                raise IndexError(addr)
            return chunk

        return fetch

    def test_byte_scan_is_fooled_by_immediate_bytes(self):
        image, ret_addr = self._embedded_call_image()
        assert preceded_by_call(self._fetch_for(image), ret_addr)

    def test_cfg_rejects_embedded_call_bytes(self):
        from repro.analysis.static import recover_image_cfg
        image, ret_addr = self._embedded_call_image()
        cfg = recover_image_cfg(image)
        assert ret_addr in cfg.insns             # a real boundary...
        assert not preceded_by_call(self._fetch_for(image), ret_addr,
                                    cfg=cfg)     # ...but not a call site

    def test_cfg_confirms_real_call_site(self):
        from repro.isa.assembler import assemble
        from repro.analysis.static import recover_image_cfg
        source = (".text\nmain:\n call helper\n halt\n"
                  "helper:\n ret\n")
        image = assemble(source)
        cfg = recover_image_cfg(image)
        ret_addr = next(pc + insn.length for pc, insn in cfg.insns.items()
                        if insn.op is Op.CALLI)
        assert preceded_by_call(self._fetch_for(image), ret_addr, cfg=cfg)

    def test_outside_cfg_falls_back_to_byte_scan(self):
        from repro.analysis.static import recover_image_cfg
        image, _ret = self._embedded_call_image()
        cfg = recover_image_cfg(image)
        blob = encode(Op.CALLI, 0x1234) + encode(Op.NOP)

        def fetch(addr, n):
            chunk = blob[addr:addr + n]
            if len(chunk) != n:
                raise IndexError(addr)
            return chunk

        # An address far outside the recovered text: byte scan decides.
        base = 0x100000
        assert preceded_by_call(fetch, len(encode(Op.CALLI, 0x1234)),
                                cfg=cfg, code_base=base)
