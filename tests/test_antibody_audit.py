"""Static antibody audit: forged bundles die before any sandbox boot.

Two forgeries the sandbox replay cannot expose — a patch offset pointing
at a non-instruction or input-unreachable code, and an overly broad
token filter that also matches benign dispatch traffic — must be caught
by the CFG-based pre-screen, while every genuine pipeline bundle passes
untouched.
"""

from __future__ import annotations

import pytest

from repro.antibody.audit import StaticAuditor
from repro.antibody.distribution import AntibodyBundle, CommunityBus
from repro.antibody.signatures import (TokenSignature, generate_exact,
                                       generate_token)
from repro.antibody.verify import SandboxVerifier, verify_antibody
from repro.antibody.vsef import VSEF, CodeLoc
from repro.apps import build_httpd
from repro.apps.exploits import EXPLOITS, apache1_exploit
from repro.apps.workload import benign_requests
from repro.runtime.sweeper import Sweeper, SweeperConfig


def _bundle(vsefs=(), signatures=(), payload=None):
    return AntibodyBundle(app="httpd", vsefs=list(vsefs),
                          signatures=list(signatures),
                          exploit_input=payload or apache1_exploit())


def _null_check(offset: int) -> VSEF:
    return VSEF(kind="null_check",
                params={"pc": CodeLoc("code", offset), "reg": 0})


@pytest.fixture(scope="module")
def httpd():
    return build_httpd()


@pytest.fixture(scope="module")
def pipeline_bundles():
    """Every bundle the real analysis pipeline publishes across all
    four CVEs (initial / improved / final stages)."""
    out = []
    for name, spec in EXPLOITS.items():
        bus = CommunityBus(dissemination_latency=0.0)
        producer = Sweeper(spec.build_image(), app_name=spec.app,
                           config=SweeperConfig(seed=5), bus=bus)
        for request in benign_requests(spec.app, 3):
            producer.submit(request)
        producer.submit(spec.payload())
        assert bus.published
        out.append((spec, list(bus.published)))
    return out


class TestAuditVerdicts:
    def test_genuine_pipeline_bundles_all_pass(self, pipeline_bundles):
        auditor = StaticAuditor()
        audited = 0
        for spec, bundles in pipeline_bundles:
            image = spec.build_image()
            for bundle in bundles:
                report = auditor.audit(image, bundle)
                assert report.ok, (spec.app, bundle.stage, report.detail)
                audited += 1
        assert audited >= 12

    def test_mid_instruction_offset_rejected(self, httpd):
        offset = httpd.symbols["handle_request"][1] + 1
        report = StaticAuditor().audit(httpd, _bundle([_null_check(offset)]))
        assert not report.ok
        assert [f.code for f in report.findings] == ["bad-boundary"]
        assert "forged patch offset" in report.detail

    def test_offset_into_padding_rejected(self, httpd):
        report = StaticAuditor().audit(
            httpd, _bundle([VSEF(kind="store_guard",
                                 params={"pc": CodeLoc("code", 8)})]))
        assert not report.ok
        assert [f.code for f in report.findings] == ["bad-boundary"]

    def test_input_unreachable_offset_rejected(self, httpd):
        backdoor = httpd.symbols["backdoor"][1]
        report = StaticAuditor().audit(httpd,
                                       _bundle([_null_check(backdoor)]))
        assert not report.ok
        assert [f.code for f in report.findings] == ["unreachable"]

    def test_unknown_native_rejected(self, httpd):
        report = StaticAuditor().audit(
            httpd, _bundle([VSEF(kind="heap_bounds",
                                 params={"native": "strdup"})]))
        assert not report.ok
        assert [f.code for f in report.findings] == ["unknown-native"]

    def test_broad_token_signature_flagged_despite_byte_check(self, httpd):
        """The censoring filter: matches the bundle's own exploit (so
        the byte check admits it) yet every token also matches a benign
        dispatch literal — flagged statically."""
        broad = TokenSignature(sig_id="forged", tokens=[b"GET "])
        bundle = _bundle(signatures=[broad])
        assert broad.matches(bundle.exploit_input)
        report = StaticAuditor().audit(httpd, bundle)
        assert not report.ok
        assert [f.code for f in report.findings] == ["broad-signature"]
        assert "censor" in report.detail

    def test_genuine_polymorphic_token_signature_passes(self, httpd):
        variants = [apache1_exploit(filler=f)
                    for f in (b"A", b"B", b"C", b"Z")]
        poly = generate_token(variants)
        report = StaticAuditor().audit(httpd, _bundle(signatures=[poly]))
        assert report.ok, report.detail

    def test_exact_signature_never_flagged(self, httpd):
        exact = generate_exact(apache1_exploit())
        report = StaticAuditor().audit(httpd, _bundle(signatures=[exact]))
        assert report.ok

    def test_reports_are_cached_per_image_and_bundle(self, httpd):
        auditor = StaticAuditor()
        bundle = _bundle([_null_check(httpd.symbols["backdoor"][1])])
        assert auditor.audit(httpd, bundle) is auditor.audit(httpd, bundle)


class TestVerifierPreScreen:
    def test_forged_offset_rejected_without_boot(self, httpd):
        verifier = SandboxVerifier()
        offset = httpd.symbols["handle_request"][1] + 1
        result = verifier.verify(httpd, _bundle([_null_check(offset)]))
        assert not result.verified
        assert "static audit rejected" in result.detail
        assert verifier.stats() == {"boots": 0, "trials": 0,
                                    "cache_hits": 0,
                                    "audit_screens": 1, "audit_rejects": 1}

    def test_broad_signature_rejected_without_boot(self, httpd):
        verifier = SandboxVerifier()
        broad = TokenSignature(sig_id="forged", tokens=[b"GET "])
        result = verifier.verify(httpd, _bundle(signatures=[broad]))
        assert not result.verified
        assert "static audit rejected" in result.detail
        assert verifier.stats()["boots"] == 0
        assert verifier.stats()["audit_rejects"] == 1

    def test_screen_counts_cover_every_screened_bundle(self, httpd):
        verifier = SandboxVerifier()
        good = _bundle([VSEF(kind="heap_bounds",
                             params={"native": "strcpy"})],
                       [generate_exact(apache1_exploit())])
        verifier.verify(httpd, good)
        verifier.verify(httpd, good)                 # memoized
        verifier.verify(httpd, _bundle([_null_check(8)]))
        stats = verifier.stats()
        assert stats["audit_screens"] == 3
        assert stats["audit_rejects"] == 1
        assert stats["audit_screens"] == (stats["trials"]
                                          + stats["cache_hits"]
                                          + stats["audit_rejects"])

    def test_one_shot_verify_antibody_rejects_too(self, httpd):
        result = verify_antibody(
            httpd, _bundle([_null_check(httpd.symbols["backdoor"][1])]))
        assert not result.verified
        assert "static audit rejected" in result.detail
