"""Fleet subsystem tests: the injectable clock, the schedule/advance
split, and the executed community fleet cross-validated against the
Gillespie process it mirrors."""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import random
import re

import pytest

from repro.apps.exploits import EXPLOITS
from repro.apps.workload import benign_requests
from repro.errors import ReproError
from repro.machine.layout import randomized_layout
from repro.runtime.clock import VirtualClock
from repro.runtime.sweeper import Sweeper, SweeperConfig, boot_layout
from repro.worm.fleet import FleetConfig, ShardedEventQueue, run_fleet

#: Small-but-real fleet: 6 vulnerable httpd nodes (1 producer), no
#: extra apps — fast enough for tier-1 while still executing the whole
#: producer → bus → consumer loop.
SMALL = FleetConfig(seed=2, vulnerable_nodes=6, producers=1,
                    extra_apps=(), beta=1.0, benign_rate=0.3,
                    horizon=40.0)


@pytest.fixture(scope="module")
def small_fleet():
    return run_fleet(SMALL)


class TestVirtualClock:
    def test_advance_and_advance_to(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance(1.5)
        assert clock.now == 1.5
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_never_rewinds(self):
        clock = VirtualClock(start=2.0)
        clock.advance_to(1.0)          # past target: no-op
        assert clock.now == 2.0
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_injected_clock_is_shared_across_layers(self):
        clock = VirtualClock()
        sweeper = Sweeper(EXPLOITS["CVS"].build_image(), app_name="cvsd",
                          config=SweeperConfig(seed=3), clock=clock)
        assert sweeper.vclock is clock
        assert sweeper.proxy.clock is clock
        assert sweeper.checkpoints.clock is clock
        assert sweeper.clock == clock.now > 0        # boot advanced it
        clock.advance_to(10.0)
        assert sweeper.clock == 10.0
        message = sweeper.schedule(b"noop\n")
        assert message.arrival_time == 10.0          # proxy stamps from it
        sweeper.advance()
        checkpoint = sweeper.checkpoints.take(sweeper.process)
        assert checkpoint.virtual_time is not None
        assert checkpoint.virtual_time >= 10.0


class TestScheduleAdvance:
    def _requests(self):
        spec = EXPLOITS["CVS"]
        return spec, benign_requests("cvsd", 4) + [spec.payload()] \
            + benign_requests("cvsd", 2, seed=23)

    def test_split_equals_submit(self):
        """schedule()+advance() is submit(), across an attack."""
        spec, requests = self._requests()
        one = Sweeper(spec.build_image(), app_name="cvsd",
                      config=SweeperConfig(seed=5))
        two = Sweeper(spec.build_image(), app_name="cvsd",
                      config=SweeperConfig(seed=5))
        out_one, out_two = [], []
        for data in requests:
            out_one.append(one.submit(data))
            two.schedule(data)
            out_two.append(two.advance())
        assert out_one == out_two
        assert len(one.attacks) == len(two.attacks) == 1
        assert [(e.virtual_time, e.kind) for e in one.events] == \
            [(e.virtual_time, e.kind) for e in two.events]

    def test_batched_schedule_serves_in_arrival_order(self):
        spec = EXPLOITS["CVS"]
        sweeper = Sweeper(spec.build_image(), app_name="cvsd",
                          config=SweeperConfig(seed=5))
        for data in (b"Entry main.c\n", b"noop\n", b"Directory /src\n"):
            sweeper.schedule(data)
        assert len(sweeper.proxy.log) == 3        # logged at arrival...
        assert not sweeper.proxy.delivered        # ...but not yet served
        responses = sweeper.advance()
        assert len(sweeper.proxy.delivered) == 3
        assert sweeper.proxy.delivered == [0, 1, 2]
        assert responses
        assert sweeper.advance() == []            # inbox drained

    def test_filtered_requests_counted_at_serve_time(self):
        spec, requests = self._requests()
        sweeper = Sweeper(spec.build_image(), app_name="cvsd",
                          config=SweeperConfig(seed=5))
        for data in requests:
            sweeper.submit(data)
        filtered_before = sweeper.proxy.filtered_count
        sweeper.submit(spec.payload())            # exact signature match
        assert sweeper.proxy.filtered_count == filtered_before + 1


class TestEventLogReproducibility:
    """Satellite: wall time lives in its own field, so the
    (virtual_time, kind, detail) log replays identically per seed."""

    _GENERATED_IDS = re.compile(r"(sig-(exact|token)|vsef|ab)-\d+")

    def _attack_events(self):
        spec = EXPLOITS["Squid"]
        sweeper = Sweeper(spec.build_image(), app_name=spec.app,
                          config=SweeperConfig(seed=5))
        for request in benign_requests(spec.app, 3):
            sweeper.submit(request)
        sweeper.submit(spec.payload())
        return sweeper.events

    def test_wall_time_out_of_detail(self):
        events = self._attack_events()
        recovered = [e for e in events if e.kind == "recovered"]
        assert recovered
        assert recovered[0].wall_seconds is not None
        assert recovered[0].wall_seconds > 0
        for event in events:
            assert "wall" not in event.detail

    def test_log_reproducible_across_runs(self):
        """Two same-seed runs produce identical logs (module-global
        antibody/signature counters are normalized out — they are
        deterministic across fresh processes, not within one)."""
        def normalized(events):
            return [(e.virtual_time, e.kind,
                     self._GENERATED_IDS.sub("<id>", e.detail))
                    for e in events]

        assert normalized(self._attack_events()) == \
            normalized(self._attack_events())


class TestShardedEventQueue:
    def _drive(self, shards: int, seed: int) -> list[tuple]:
        """Interleave pushes and pops; mirror against one flat heap."""
        rng = random.Random(seed)
        queue = ShardedEventQueue(shards)
        flat: list[tuple] = []
        seq = itertools.count()
        popped = []
        for step in range(400):
            if rng.random() < 0.6 or not flat:
                t = round(rng.uniform(0, 50), 3)
                kind = rng.randrange(2)
                idx = rng.randrange(-1, 37)
                queue.push(t, kind, idx)
                heapq.heappush(flat, (t, next(seq), kind, idx))
            else:
                got = queue.pop()
                t, fseq, kind, idx = heapq.heappop(flat)
                assert got == (t, kind, idx)
                popped.append(got)
            assert len(queue) == len(flat)
        while flat:
            t, fseq, kind, idx = heapq.heappop(flat)
            assert queue.pop() == (t, kind, idx)
            popped.append((t, kind, idx))
        assert queue.pop() is None
        assert len(queue) == 0
        return popped

    @pytest.mark.parametrize("shards", [1, 3, 8, 64])
    def test_identical_to_flat_heap(self, shards):
        for seed in (0, 1, 2):
            self._drive(shards, seed)

    def test_shard_count_does_not_change_order(self):
        runs = [self._drive(shards, seed=9) for shards in (1, 5, 16)]
        assert runs[0] == runs[1] == runs[2]

    def test_batch_extend_matches_sequential_pushes(self):
        items = [(float(t), 0, i) for i, t in
                 enumerate([5, 1, 3, 3, 2, 8, 0])]
        batched = ShardedEventQueue(3)
        batched.extend(items)
        pushed = ShardedEventQueue(3)
        for t, kind, idx in items:
            pushed.push(t, kind, idx)
        out_b = [batched.pop() for _ in range(len(items))]
        out_p = [pushed.pop() for _ in range(len(items))]
        assert out_b == out_p
        # Simultaneous events drain in scheduling order (seq ties).
        assert out_b[3:5] == [(3.0, 0, 2), (3.0, 0, 3)]


class TestFleetAtScale:
    """Lazy materialization + golden forking, exercised at tier-1 size."""

    #: Contained outbreak with sparse benign traffic: immunity freezes
    #: the epidemic while many consumers are still untouched.
    LAZY = FleetConfig(seed=7, vulnerable_nodes=48, producers=6,
                       extra_apps=(), beta=0.4, benign_rate=0.01,
                       horizon=300.0, post_immunity_slack=4.0)

    @pytest.fixture(scope="class")
    def lazy_fleet(self):
        return run_fleet(self.LAZY)

    def test_untouched_nodes_never_materialize(self, lazy_fleet):
        assert lazy_fleet.nodes_materialized < lazy_fleet.total_nodes
        assert len(lazy_fleet.nodes) == lazy_fleet.total_nodes
        untouched = [n for n in lazy_fleet.nodes
                     if n["benign_requests"] == 0
                     and n["worm_contacts"] == 0 and not n["infected"]]
        assert untouched
        for node in untouched:
            assert node["virtual_time"] > 0        # boot-stub timeline
            assert node["antibodies"] == 0

    def test_consumers_fork_golden_images(self, lazy_fleet):
        golden = lazy_fleet.golden
        assert golden["forks"] >= 1
        # One httpd consumer image + producer layouts at most.
        assert golden["images"] <= self.LAZY.producers + 1

    def test_checkpoint_pages_shared_across_nodes(self, lazy_fleet):
        memory = lazy_fleet.memory
        assert memory["page_bytes_unique"] < \
            memory["page_bytes_per_node_sum"]
        assert memory["sharing_factor"] > 1.5

    def test_scheduler_shards_do_not_change_the_trajectory(self):
        """The tentpole determinism claim at fleet level: any shard
        count realizes the identical executed trajectory."""
        def run(shards):
            config = FleetConfig(
                seed=2, vulnerable_nodes=6, producers=1, extra_apps=(),
                beta=1.0, benign_rate=0.3, horizon=40.0,
                scheduler_shards=shards)
            data = run_fleet(config).to_dict()
            data.pop("wall_seconds")
            data.pop("aggregate_insns_per_second")
            return data

        assert run(1) == run(4) == run(13)

    def test_gillespie_match_holds_with_lazy_boot(self, lazy_fleet):
        gillespie = lazy_fleet.gillespie
        assert gillespie is not None
        assert lazy_fleet.t0 == gillespie["t0"]
        assert lazy_fleet.infected_final == gillespie["final_infected"]
        assert lazy_fleet.contacts_blocked >= 1


class TestEntropyThreading:
    """Satellite: ``SweeperConfig.entropy_bits`` must genuinely thread
    into the layout draw — the number of distinct region slides equals
    2^entropy_bits, which is what makes ρ = 2^-b an executed quantity
    rather than a label."""

    REGIONS = ("code", "data", "heap", "lib", "stack")

    def _slides(self, bits: int, seeds: int = 256) -> list[dict]:
        return [boot_layout(SweeperConfig(seed=s, randomize_layout=True,
                                          entropy_bits=bits)).slide_pages
                for s in range(seeds)]

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_each_region_draws_exactly_2_pow_b_slides(self, bits):
        draws = self._slides(bits)
        for region in self.REGIONS:
            values = {d[region] for d in draws}
            assert values == set(range(2 ** bits))

    def test_one_bit_yields_exactly_32_distinct_layouts(self):
        layouts = {tuple(sorted(d.items())) for d in self._slides(1)}
        assert len(layouts) == 2 ** (5 * 1)      # 2^b per region, 5 regions

    def test_entropy_recorded_on_layout(self):
        layout = boot_layout(SweeperConfig(seed=3, randomize_layout=True,
                                           entropy_bits=5))
        assert layout.entropy_bits == 5
        assert layout.randomized

    def test_layout_seed_overrides_node_seed_and_restart_path(self):
        """Cohort members (different node seeds, one layout_seed) load
        one layout and keep it across the restart path's seed + 1."""
        a = SweeperConfig(seed=1, randomize_layout=True, entropy_bits=4,
                          layout_seed=99)
        b = SweeperConfig(seed=2, randomize_layout=True, entropy_bits=4,
                          layout_seed=99)
        assert boot_layout(a).slide_pages == boot_layout(b).slide_pages
        assert boot_layout(a, seed=a.seed + 1).slide_pages == \
            boot_layout(a).slide_pages

    def test_pin_forces_only_the_pinned_region(self):
        plain = randomized_layout(random.Random(5), entropy_bits=4)
        pinned = randomized_layout(random.Random(5), entropy_bits=4,
                                   pin={"code": 9})
        assert pinned.slide_pages["code"] == 9
        for region in self.REGIONS:
            if region != "code":
                assert pinned.slide_pages[region] == \
                    plain.slide_pages[region]

    def test_pin_validation(self):
        with pytest.raises(ValueError, match="unknown region"):
            randomized_layout(random.Random(0), entropy_bits=4,
                              pin={"bss": 1})
        with pytest.raises(ValueError, match="outside"):
            randomized_layout(random.Random(0), entropy_bits=4,
                              pin={"code": 16})


class TestEmergentRho:
    """ρ < 1 as an executed property: randomized-layout consumers,
    layout cohorts sharing golden images, hijack success decided by the
    collision, the verified delivery path riding along."""

    #: b = 2 over 18 httpd nodes: four cohorts (stratum 0 collides),
    #: enough contacts for faults, hits and an executed epidemic.
    EMERGENT = FleetConfig(seed=0, vulnerable_nodes=18, producers=2,
                           extra_apps=(), entropy_bits=2, beta=1.0,
                           benign_rate=0.05, gamma2=4.0, horizon=120.0,
                           post_immunity_slack=4.0)

    @pytest.fixture(scope="class")
    def emergent_fleet(self):
        return run_fleet(self.EMERGENT)

    def test_rho_is_derived_not_assumed(self, emergent_fleet):
        assert emergent_fleet.rho == 0.25
        layout = emergent_fleet.layout
        assert layout is not None
        assert layout["entropy_bits"] == 2
        assert layout["rho_analytic"] == 0.25
        assert layout["sampling"] == "stratified"
        assert layout["cohorts"] == 4

    def test_hijacks_land_only_via_layout_collisions(self, emergent_fleet):
        layout = emergent_fleet.layout
        colliding = [c for c in layout["per_cohort"] if c["collides"]]
        rest = [c for c in layout["per_cohort"] if not c["collides"]]
        assert len(colliding) == 1                # stratum 0, by design
        assert all(c["critical_slide"] == 0 for c in colliding)
        assert all(c["hits"] == 0 for c in rest)
        assert sum(c["hits"] for c in colliding) >= 1
        assert emergent_fleet.contacts_faulted >= 1

    def test_faulted_hosts_stay_clean(self, emergent_fleet):
        """Every infection is patient zero or a counted colliding-layout
        hit: a faulted contact never owned anybody."""
        assert emergent_fleet.infected_final == \
            1 + sum(c["hits"] for c in emergent_fleet.layout["per_cohort"])

    def test_stratified_estimator_is_exact_when_stratum_sampled(
            self, emergent_fleet):
        layout = emergent_fleet.layout
        colliding_trials = sum(c["trials"]
                               for c in layout["per_cohort"]
                               if c["collides"])
        assert colliding_trials >= 1
        assert layout["rho_estimate"] == 0.25    # pure strata: exact
        assert layout["rho_stddev"] == 0.0

    def test_cohorts_share_golden_boot_images(self, emergent_fleet):
        """Randomization must not defeat COW forking: distinct cached
        layouts are bounded by cohorts (+ producer cohorts), not by
        node count."""
        golden = emergent_fleet.golden
        assert golden["layouts"] <= \
            emergent_fleet.layout["cohorts"] + self.EMERGENT.producers
        assert golden["forks"] >= 1
        assert emergent_fleet.nodes_materialized > golden["images"]

    def test_verified_delivery_path_rode_along(self, emergent_fleet):
        verification = emergent_fleet.verification
        assert verification is not None
        assert verification["bundles_rejected"] == 0   # honest producers
        assert verification["bundles_verified"] >= 1
        sandbox = verification["sandbox"]
        assert sandbox["boots"] == 1                   # one app image
        assert sandbox["cache_hits"] >= 1              # shared verdicts

    def test_emergent_run_is_deterministic(self):
        def run():
            data = run_fleet(self.EMERGENT).to_dict()
            data.pop("wall_seconds")
            data.pop("aggregate_insns_per_second")
            return data

        assert run() == run()

    def test_rho1_regime_is_unchanged(self, small_fleet):
        """entropy_bits = 0 keeps the reactive regime: no layout
        report, no faulted contacts, ρ stays 1."""
        assert small_fleet.rho == 1.0
        assert small_fleet.layout is None
        assert small_fleet.contacts_faulted == 0

    def test_emergent_validation(self):
        with pytest.raises(ReproError, match="entropy_bits"):
            run_fleet(FleetConfig(entropy_bits=-1))
        with pytest.raises(ReproError, match="derived"):
            run_fleet(FleetConfig(entropy_bits=2, rho=0.5))
        with pytest.raises(ReproError, match="strata"):
            run_fleet(FleetConfig(entropy_bits=2, layout_cohorts=5))
        with pytest.raises(ReproError, match="layout_sampling"):
            run_fleet(FleetConfig(entropy_bits=2,
                                  layout_sampling="bogus"))
        # Layout knobs are validated in every regime, so a typo staged
        # at rho = 1 fails here, not when entropy is later flipped on.
        with pytest.raises(ReproError, match="layout_sampling"):
            run_fleet(FleetConfig(layout_sampling="stratifed"))
        with pytest.raises(ReproError, match="layout_cohorts"):
            run_fleet(FleetConfig(layout_cohorts=-5))
        # The derived value is accepted explicitly.
        assert run_fleet(dataclasses.replace(
            self.EMERGENT, rho=0.25)).rho == 0.25


class TestFleet:
    def test_acceptance_shape(self, small_fleet):
        result = small_fleet
        assert result.population == 6
        assert result.producers == 1
        assert result.total_nodes == 6
        assert result.t0 is not None
        assert result.bundles_published >= 1
        # γ = γ₁ + γ₂: availability strictly after t0 by at least γ₂.
        assert result.gamma_measured > SMALL.gamma2
        assert result.gamma1_first_vsef is not None
        assert 1 <= result.infected_final < result.population

    def test_matches_gillespie_exactly(self, small_fleet):
        """The executed fleet realizes the same trajectory as the
        matched-seed Gillespie run with the measured γ plugged in."""
        g = small_fleet.gillespie
        assert g is not None
        assert small_fleet.t0 == g["t0"]
        assert small_fleet.infected_final == g["final_infected"]

    def test_epidemic_freezes_at_availability(self, small_fleet):
        """No executed infection lands after antibodies are reachable:
        community immunity is enforced by real VSEFs, not bookkeeping."""
        for node in small_fleet.nodes:
            if node["infected"]:
                assert node["infected_at"] <= small_fleet.availability

    def test_consumers_apply_foreign_antibodies(self, small_fleet):
        immune = [n for n in small_fleet.nodes
                  if n["role"] == "consumer" and n["immune_at"] is not None]
        assert immune
        for node in immune:
            assert node["antibodies"] >= 1
            assert node["attacks_analyzed"] == 0   # consumers never analyze

    def test_deterministic_from_seed(self):
        def run():
            data = run_fleet(SMALL).to_dict()
            data.pop("wall_seconds")
            data.pop("aggregate_insns_per_second")
            return data

        assert run() == run()

    def test_config_validation(self):
        with pytest.raises(ReproError):
            run_fleet(FleetConfig(rho=0.5))
        with pytest.raises(ReproError):
            run_fleet(FleetConfig(producers=0))
        with pytest.raises(ReproError):
            run_fleet(FleetConfig(worm_exploit="CVS"))
        # App-consistent but merely-crashing exploits cannot play the
        # worm: they never own a host, only fault it.
        with pytest.raises(ReproError):
            run_fleet(FleetConfig(vulnerable_app="cvsd",
                                  worm_exploit="CVS"))
