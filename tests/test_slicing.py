"""Unit tests for dynamic backward slicing."""

import pytest

from repro.analysis.slicing import BackwardSlicer
from repro.errors import ReproError, VMFault
from repro.isa.assembler import assemble
from repro.machine.process import Process


def run_sliced(source: str, feeds=(), seed: int = 3, **slicer_kwargs):
    process = Process(assemble(source), seed=seed)
    slicer = BackwardSlicer(**slicer_kwargs)
    process.hooks.attach(slicer, process)
    fault = None
    if feeds:
        for payload in feeds:
            process.feed(payload)
            try:
                process.run(max_steps=400_000)
            except VMFault as caught:
                fault = caught
                break
    else:
        try:
            process.run(max_steps=400_000)
        except VMFault as caught:
            fault = caught
    return process, slicer, fault


def pc_of(process, label: str, extra: int = 0) -> int:
    return process.symbols[label] + extra


class TestDataDependences:
    def test_chain_is_in_slice(self):
        source = """
.text
main:
a:  mov r0, 5
b:  mov r1, r0
c:  add r1, 2
d:  mov r2, r1
    halt
"""
        process, slicer, _ = run_sliced(source)
        report = slicer.backward_slice()
        for label in ("a", "b", "c", "d"):
            assert report.contains_pc(pc_of(process, label))

    def test_irrelevant_instruction_excluded(self):
        """The defining property of a slice: what did not influence the
        criterion is not in it."""
        source = """
.text
main:
a:  mov r0, 5
x:  mov r3, 99
b:  mov r2, r0
    halt
"""
        process, slicer, _ = run_sliced(source, control_deps=False)
        report = slicer.backward_slice()
        assert report.contains_pc(pc_of(process, "a"))
        assert report.contains_pc(pc_of(process, "b"))
        assert not report.contains_pc(pc_of(process, "x"))

    def test_memory_dependence(self):
        source = """
.text
main:
w:  mov r0, cell
    mov r1, 7
s:  st [r0], r1
l:  ld r2, [r0]
    halt
.data
cell: .word 0
"""
        process, slicer, _ = run_sliced(source, control_deps=False)
        report = slicer.backward_slice()
        assert report.contains_pc(pc_of(process, "s"))
        assert report.contains_pc(pc_of(process, "l"))


class TestControlDependences:
    SOURCE = """
.text
main:
    mov r0, 3
c:  cmp r0, 0
j:  je zero
t:  mov r1, 1
    jmp out
zero:
    mov r1, 2
out:
d:  mov r2, r1
    halt
"""

    def test_branch_and_compare_in_slice(self):
        """The paper's example: slicing sees the control dependence that
        taint analysis misses."""
        process, slicer, _ = run_sliced(self.SOURCE)
        report = slicer.backward_slice()
        assert report.contains_pc(pc_of(process, "c"))
        assert report.contains_pc(pc_of(process, "j"))
        assert report.contains_pc(pc_of(process, "t"))

    def test_control_deps_can_be_disabled(self):
        process, slicer, _ = run_sliced(self.SOURCE, control_deps=False)
        report = slicer.backward_slice()
        assert not report.contains_pc(pc_of(process, "j"))


class TestInputLabels:
    RECV = """
.text
main:
loop:
    mov r0, buf
    mov r1, 128
    sys recv
    cmp r0, 0
    je loop
    mov r1, buf
l:  ldb r2, [r1]
    mov r3, 0
f:  ld r4, [r3]        ; fault; r2 holds input-derived data
    halt
.data
buf: .space 132
"""

    def test_slice_reaches_input_sources(self):
        process, slicer, fault = run_sliced(self.RECV, feeds=[b"abc"])
        assert fault is not None
        report = slicer.backward_slice(
            slicer.last_node_for_pc(pc_of(process, "l")))
        assert (0, 0) in report.input_labels
        assert report.malicious_msg_ids == [0]

    def test_verifies_cross_check(self):
        process, slicer, fault = run_sliced(self.RECV, feeds=[b"abc"])
        report = slicer.backward_slice()
        assert report.verifies([pc_of(process, "f")])
        bogus = process.symbols["main"]     # never influenced the fault
        # 'main' label == first instruction which DID run... use an
        # unexecuted address instead:
        assert not report.verifies([0x123456])


class TestNativeAndAllocatorNodes:
    def test_native_copy_dependence(self):
        source = """
.text
main:
    mov r1, src
    mov r0, dst
    call @strcpy
l:  ldb r4, [r0]
    halt
.data
src: .asciiz "hello"
dst: .space 16
"""
        process, slicer, _ = run_sliced(source, control_deps=False)
        report = slicer.backward_slice(
            slicer.last_node_for_pc(pc_of(process, "l")))
        assert report.contains_pc(process.native_addresses["strcpy"])

    def test_free_depends_on_link_writer(self):
        """A use-after-free write flows into the free() that chases the
        planted link — the CVS cross-check case."""
        source = """
.text
main:
    mov r0, 16
    call @malloc
    mov r4, r0
    call @free
    mov r0, r4
    mov r1, 0x77777777
w:  st [r0], r1          ; plant a (mapped-garbage) link
    mov r0, r4
    call @free            ; double free chases it
    halt
"""
        process, slicer, fault = run_sliced(source)
        assert fault is not None
        report = slicer.backward_slice()
        assert report.contains_pc(process.native_addresses["free"])
        assert report.contains_pc(pc_of(process, "w"))


class TestForwardSlice:
    def test_forward_slice_finds_influenced_nodes(self):
        source = """
.text
main:
a:  mov r0, 1
b:  mov r1, r0
c:  mov r2, 9
    halt
"""
        process, slicer, _ = run_sliced(source, control_deps=False)
        start = slicer.last_node_for_pc(pc_of(process, "a"))
        influenced = slicer.forward_slice(start)
        pcs = {slicer.nodes[i].pc for i in influenced}
        assert pc_of(process, "b") in pcs
        assert pc_of(process, "c") not in pcs


class TestBudget:
    def test_node_budget_enforced(self):
        source = """
.text
main:
loop:
    add r0, 1
    cmp r0, 100000
    jne loop
    halt
"""
        process = Process(assemble(source), seed=1)
        slicer = BackwardSlicer(node_budget=500)
        process.hooks.attach(slicer, process)
        with pytest.raises(ReproError):
            process.run(max_steps=1_000_000)
        assert slicer.truncated
        assert len(slicer.nodes) == 500


def test_empty_slice_report():
    slicer = BackwardSlicer()
    report = slicer.backward_slice()
    assert report.total_nodes == 0
    assert report.pcs == set()
