"""Tests for the worm-model exporters."""

import csv
import io

import pytest

from repro.worm.community import SLAMMER, infection_ratio_grid
from repro.worm.export import grid_to_csv, series_for_gamma


@pytest.fixture(scope="module")
def grid():
    return infection_ratio_grid(SLAMMER)


def test_csv_round_trips(grid):
    text = grid_to_csv(SLAMMER, grid)
    rows = list(csv.reader(io.StringIO(text)))
    header, data = rows[0], rows[1:]
    assert header[0] == "gamma"
    assert len(header) == 1 + len(SLAMMER.alphas)
    assert len(data) == len(SLAMMER.gammas)
    for row, gamma in zip(data, SLAMMER.gammas):
        assert float(row[0]) == gamma
        for value, alpha in zip(row[1:], SLAMMER.alphas):
            assert float(value) == pytest.approx(grid[gamma][alpha],
                                                 abs=1e-6)


def test_csv_computes_grid_when_not_given():
    text = grid_to_csv(SLAMMER)
    assert text.startswith("gamma,")


def test_series_for_gamma(grid):
    series = series_for_gamma(SLAMMER, 5, grid)
    assert [alpha for alpha, _ in series] == list(SLAMMER.alphas)
    assert all(0.0 <= ratio <= 1.0 for _, ratio in series)


def test_series_unknown_gamma_rejected(grid):
    with pytest.raises(KeyError):
        series_for_gamma(SLAMMER, 12345, grid)
